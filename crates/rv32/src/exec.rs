//! Functional RV32IM simulator.
//!
//! A Harvard-style model matching the ART-9 setup: instructions live in
//! their own text array (PC is a byte address, always 4-aligned here),
//! data in a flat little-endian byte memory with the program's data
//! image at [`DATA_BASE`](crate::parse::DATA_BASE) and the stack at the
//! top.
//!
//! ## Halt convention
//!
//! `ebreak`/`ecall` halt, and — like the ART-9 simulators — any control
//! transfer that targets its own address halts (bare-metal idle loop).

use crate::error::Rv32Error;
use crate::instr::{AluOp, BranchOp, Instr, LoadOp, MulOp, StoreOp};
use crate::parse::{Rv32Program, DATA_BASE};
use crate::reg::Reg;

/// Default data-memory size in bytes (64 KiB: data + heap + stack).
pub const DEFAULT_MEM_BYTES: usize = 64 * 1024;

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// `ebreak` or `ecall` executed.
    Break,
    /// A control transfer targeted itself.
    JumpToSelf,
    /// Execution fell off the end of the text section.
    FellOffEnd,
}

/// Everything a cycle model needs to know about one retired instruction.
#[derive(Debug, Clone, Copy)]
pub struct Retire {
    /// The instruction.
    pub instr: Instr,
    /// For branches: whether it was taken.
    pub taken: bool,
    /// For shifts: the effective shift amount (0..=31).
    pub shift_amount: u32,
}

/// The RV32 machine state and functional executor.
///
/// # Examples
///
/// ```
/// use rv32::{parse_program, Machine, Reg};
///
/// let p = parse_program("
///     li   a0, 10
///     li   a1, 0
/// loop:
///     add  a1, a1, a0
///     addi a0, a0, -1
///     bnez a0, loop
///     ebreak
/// ")?;
/// let mut m = Machine::new(&p);
/// m.run(10_000)?;
/// assert_eq!(m.reg(Reg::A1), 55);
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    text: Vec<Instr>,
    regs: [u32; 32],
    pc: u32,
    mem: Vec<u8>,
    instret: u64,
    halted: Option<HaltReason>,
}

impl Machine {
    /// Builds a machine with the default 64 KiB data memory, the data
    /// image at `DATA_BASE` and `sp` at the top of memory.
    pub fn new(program: &Rv32Program) -> Self {
        Self::with_mem_size(program, DEFAULT_MEM_BYTES)
    }

    /// Builds a machine with an explicit data-memory size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the data image does not fit below `mem_bytes`.
    pub fn with_mem_size(program: &Rv32Program, mem_bytes: usize) -> Self {
        let mut mem = vec![0u8; mem_bytes];
        let base = DATA_BASE as usize;
        assert!(
            base + 4 * program.data().len() <= mem_bytes,
            "data image does not fit memory"
        );
        for (i, w) in program.data().iter().enumerate() {
            mem[base + 4 * i..base + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = mem_bytes as u32;
        Self {
            text: program.text().to_vec(),
            regs,
            pc: 0,
            mem,
            instret: 0,
            halted: None,
        }
    }

    /// Reads a register (`x0` is always 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The program counter (byte address).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// All 32 registers by index (`x0` is kept 0) — the whole-file view
    /// the differential harnesses snapshot.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// Data-memory size in bytes (the value passed to
    /// [`Machine::with_mem_size`], or [`DEFAULT_MEM_BYTES`]).
    pub fn mem_size(&self) -> usize {
        self.mem.len()
    }

    /// The first architectural difference between two machines, as a
    /// human-readable description — PC, then the 31 writable registers,
    /// then memory word by word. `None` when the states agree.
    ///
    /// The RV32-side counterpart of
    /// `art9_sim::CoreState::first_difference`, for A/B debugging of
    /// the binary substrate itself.
    pub fn first_difference(&self, other: &Machine) -> Option<String> {
        if self.pc != other.pc {
            return Some(format!("pc {:#x} vs {:#x}", self.pc, other.pc));
        }
        for i in 1..32 {
            if self.regs[i] != other.regs[i] {
                let r = Reg::from_index(i).expect("index < 32");
                return Some(format!(
                    "{r} = {} vs {}",
                    self.regs[i] as i32, other.regs[i] as i32
                ));
            }
        }
        if self.mem.len() != other.mem.len() {
            return Some(format!(
                "memory sizes {} vs {}",
                self.mem.len(),
                other.mem.len()
            ));
        }
        for (addr, (a, b)) in self.mem.iter().zip(other.mem.iter()).enumerate() {
            if a != b {
                return Some(format!("mem[{addr:#x}] = {a:#04x} vs {b:#04x}"));
            }
        }
        None
    }

    /// Whether (and why) the machine halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Reads a 32-bit little-endian word from data memory.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::MemoryFault`] when out of range or misaligned.
    pub fn load_word(&self, address: u32) -> Result<u32, Rv32Error> {
        self.check(address, 4, "load")?;
        let a = address as usize;
        Ok(u32::from_le_bytes(
            self.mem[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Writes a 32-bit little-endian word to data memory.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::MemoryFault`] when out of range or misaligned.
    pub fn store_word(&mut self, address: u32, value: u32) -> Result<(), Rv32Error> {
        self.check(address, 4, "store")?;
        let a = address as usize;
        self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn check(&self, address: u32, width: u32, what: &'static str) -> Result<(), Rv32Error> {
        if address as usize + width as usize > self.mem.len() {
            return Err(Rv32Error::MemoryFault {
                pc: self.pc,
                address,
                cause: "address out of range",
            });
        }
        if !address.is_multiple_of(width) {
            let cause = if what == "load" {
                "misaligned load"
            } else {
                "misaligned store"
            };
            return Err(Rv32Error::MemoryFault {
                pc: self.pc,
                address,
                cause,
            });
        }
        Ok(())
    }

    /// Executes one instruction; returns retirement info for cycle
    /// models, or the halt reason.
    ///
    /// # Errors
    ///
    /// Propagates memory faults and PC range errors.
    pub fn step(&mut self) -> Result<Result<Retire, HaltReason>, Rv32Error> {
        if let Some(reason) = self.halted {
            return Ok(Err(reason));
        }
        let index = (self.pc / 4) as usize;
        if !self.pc.is_multiple_of(4) || index > self.text.len() {
            return Err(Rv32Error::PcOutOfRange {
                pc: self.pc,
                text_bytes: self.text.len() * 4,
            });
        }
        if index == self.text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            return Ok(Err(HaltReason::FellOffEnd));
        }
        let instr = self.text[index];
        self.instret += 1;
        let pc = self.pc;
        let mut next = pc.wrapping_add(4);
        let mut taken = false;
        let mut shift_amount = 0u32;

        use Instr::*;
        match instr {
            Lui { rd, imm20 } => self.set_reg(rd, (imm20 as u32) << 12),
            Auipc { rd, imm20 } => self.set_reg(rd, pc.wrapping_add((imm20 as u32) << 12)),
            Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next = pc.wrapping_add(offset as u32);
                taken = true;
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next = target;
                taken = true;
            }
            Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next = pc.wrapping_add(offset as u32);
                }
            }
            Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let value = match op {
                    LoadOp::Lw => self.load_word(addr)?,
                    LoadOp::Lb | LoadOp::Lbu => {
                        self.check(addr, 1, "load")?;
                        let b = self.mem[addr as usize];
                        if matches!(op, LoadOp::Lb) {
                            b as i8 as i32 as u32
                        } else {
                            b as u32
                        }
                    }
                    LoadOp::Lh | LoadOp::Lhu => {
                        self.check(addr, 2, "load")?;
                        let h = u16::from_le_bytes(
                            self.mem[addr as usize..addr as usize + 2]
                                .try_into()
                                .expect("2 bytes"),
                        );
                        if matches!(op, LoadOp::Lh) {
                            h as i16 as i32 as u32
                        } else {
                            h as u32
                        }
                    }
                };
                self.set_reg(rd, value);
            }
            Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = self.reg(rs2);
                match op {
                    StoreOp::Sw => self.store_word(addr, v)?,
                    StoreOp::Sb => {
                        self.check(addr, 1, "store")?;
                        self.mem[addr as usize] = v as u8;
                    }
                    StoreOp::Sh => {
                        self.check(addr, 2, "store")?;
                        self.mem[addr as usize..addr as usize + 2]
                            .copy_from_slice(&(v as u16).to_le_bytes());
                    }
                }
            }
            AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let b = imm as u32;
                if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    shift_amount = b & 0x1f;
                }
                self.set_reg(rd, alu(op, a, b));
            }
            Alu { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    shift_amount = b & 0x1f;
                }
                self.set_reg(rd, alu(op, a, b));
            }
            MulDiv { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                self.set_reg(rd, muldiv(op, a, b));
            }
            Fence => {}
            Ecall | Ebreak => {
                self.halted = Some(HaltReason::Break);
                return Ok(Err(HaltReason::Break));
            }
        }

        if next == pc {
            self.halted = Some(HaltReason::JumpToSelf);
            return Ok(Err(HaltReason::JumpToSelf));
        }
        self.pc = next;
        if next as usize == self.text.len() * 4 {
            self.halted = Some(HaltReason::FellOffEnd);
        }
        Ok(Ok(Retire {
            instr,
            taken,
            shift_amount,
        }))
    }

    /// Runs until halt, up to `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// [`Rv32Error::Timeout`] when the budget is exhausted, plus any
    /// fault from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<HaltReason, Rv32Error> {
        for _ in 0..max_steps {
            if let Err(reason) = self.step()? {
                return Ok(reason);
            }
        }
        Err(Rv32Error::Timeout { limit: max_steps })
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow case per spec
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn run_src(src: &str) -> Machine {
        let p = parse_program(src).unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        m
    }

    #[test]
    fn arithmetic_loop() {
        let m = run_src(
            "li a0, 10\nli a1, 0\nloop:\nadd a1, a1, a0\naddi a0, a0, -1\nbnez a0, loop\nebreak\n",
        );
        assert_eq!(m.reg(Reg::A1), 55);
        assert_eq!(m.halted(), Some(HaltReason::Break));
    }

    #[test]
    fn memory_bytes_halves_words() {
        let m = run_src(
            "
            .data
            buf: .zero 16
            .text
            la   a0, buf
            li   a1, -2
            sw   a1, 0(a0)
            lb   a2, 0(a0)      # 0xfe sign-extended
            lbu  a3, 0(a0)
            lh   a4, 0(a0)
            lhu  a5, 0(a0)
            ebreak
            ",
        );
        assert_eq!(m.reg(Reg::A2), (-2i32) as u32);
        assert_eq!(m.reg(Reg::A3), 0xfe);
        assert_eq!(m.reg(Reg::A4), (-2i32) as u32);
        assert_eq!(m.reg(Reg::A5), 0xfffe);
    }

    #[test]
    fn signed_unsigned_compares() {
        let m = run_src(
            "
            li a0, -1
            li a1, 1
            slt  a2, a0, a1     # signed: -1 < 1 -> 1
            sltu a3, a0, a1     # unsigned: 0xffffffff < 1 -> 0
            ebreak
            ",
        );
        assert_eq!(m.reg(Reg::A2), 1);
        assert_eq!(m.reg(Reg::A3), 0);
    }

    #[test]
    fn shifts_match_spec() {
        let m = run_src(
            "
            li a0, -16
            srai a1, a0, 2      # -4
            srli a2, a0, 28     # high bits
            slli a3, a0, 1      # -32
            ebreak
            ",
        );
        assert_eq!(m.reg(Reg::A1) as i32, -4);
        assert_eq!(m.reg(Reg::A2), 0xf);
        assert_eq!(m.reg(Reg::A3) as i32, -32);
    }

    #[test]
    fn muldiv_semantics() {
        let m = run_src(
            "
            li a0, -7
            li a1, 2
            mul  a2, a0, a1
            div  a3, a0, a1
            rem  a4, a0, a1
            li   a5, 0
            div  a6, a0, a5     # div by zero -> -1
            ebreak
            ",
        );
        assert_eq!(m.reg(Reg::A2) as i32, -14);
        assert_eq!(m.reg(Reg::A3) as i32, -3);
        assert_eq!(m.reg(Reg::A4) as i32, -1);
        assert_eq!(m.reg(Reg::A6), u32::MAX);
    }

    #[test]
    fn call_ret_stack() {
        let m = run_src(
            "
            li   a0, 5
            call double
            ebreak
            double:
            addi sp, sp, -4
            sw   ra, 0(sp)
            add  a0, a0, a0
            lw   ra, 0(sp)
            addi sp, sp, 4
            ret
            ",
        );
        assert_eq!(m.reg(Reg::A0), 10);
    }

    #[test]
    fn x0_is_immutable() {
        let m = run_src("li zero, 42\naddi zero, zero, 7\nebreak\n");
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn jump_to_self_halts() {
        let m = run_src("nop\nx: j x\n");
        assert_eq!(m.halted(), Some(HaltReason::JumpToSelf));
    }

    #[test]
    fn misaligned_and_oob_fault() {
        let p = parse_program("li a0, 3\nlw a1, 0(a0)\n").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.run(10), Err(Rv32Error::MemoryFault { .. })));
        let p2 = parse_program("li a0, -8\nlw a1, 0(a0)\n").unwrap();
        let mut m2 = Machine::new(&p2);
        assert!(matches!(m2.run(10), Err(Rv32Error::MemoryFault { .. })));
    }

    #[test]
    fn state_helpers_and_first_difference() {
        let p = parse_program("li a0, 5\nebreak\n").unwrap();
        let mut a = Machine::new(&p);
        let mut b = Machine::new(&p);
        assert_eq!(a.mem_size(), DEFAULT_MEM_BYTES);
        assert_eq!(a.regs()[Reg::SP.index()], DEFAULT_MEM_BYTES as u32);
        a.run(10).unwrap();
        b.run(10).unwrap();
        assert_eq!(a.first_difference(&b), None);

        b.set_reg(Reg::A1, 9);
        let d = a.first_difference(&b).expect("register diff");
        assert!(d.contains("a1") && d.contains('9'), "{d}");

        b.set_reg(Reg::A1, 0);
        b.store_word(0x2000, 7).unwrap();
        let d = a.first_difference(&b).expect("memory diff");
        assert!(d.contains("mem[0x2000]"), "{d}");
    }

    #[test]
    fn timeout() {
        let p = parse_program("a: nop\nj a\n").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.run(10), Err(Rv32Error::Timeout { .. })));
    }
}
