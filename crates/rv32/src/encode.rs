//! Standard RV32I/M 32-bit instruction encodings.
//!
//! Used for the memory-cell accounting of Fig. 5 (32 bits per
//! instruction) and round-trip tested against [`decode`] for fidelity.

use crate::error::Rv32Error;
use crate::instr::{AluOp, BranchOp, Instr, LoadOp, MulOp, StoreOp};
use crate::reg::Reg;

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_ALU_IMM: u32 = 0b0010011;
const OP_ALU: u32 = 0b0110011;
const OP_MISC_MEM: u32 = 0b0001111;
const OP_SYSTEM: u32 = 0b1110011;

fn rd(r: Reg) -> u32 {
    (r.index() as u32) << 7
}
fn rs1(r: Reg) -> u32 {
    (r.index() as u32) << 15
}
fn rs2(r: Reg) -> u32 {
    (r.index() as u32) << 20
}
fn funct3(v: u32) -> u32 {
    v << 12
}

fn check_imm(mnemonic: &'static str, value: i64, bits: u32) -> Result<(), Rv32Error> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(Rv32Error::ImmediateRange {
            mnemonic,
            value,
            bits,
        });
    }
    Ok(())
}

/// Encodes an instruction to its 32-bit word.
///
/// # Errors
///
/// Returns [`Rv32Error::ImmediateRange`] when an offset or immediate
/// does not fit its field (e.g. a branch target beyond ±4 KiB).
///
/// # Examples
///
/// ```
/// use rv32::{encode, decode, Instr, AluOp, Reg};
///
/// let i = Instr::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 };
/// let w = encode(&i)?;
/// assert_eq!(decode(w)?, i);
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
pub fn encode(instr: &Instr) -> Result<u32, Rv32Error> {
    use Instr::*;
    Ok(match *instr {
        Lui { rd: d, imm20 } => {
            check_imm("lui", imm20 as i64, 20)?; // signed 20-bit field
            OP_LUI | rd(d) | (((imm20 as u32) & 0xfffff) << 12)
        }
        Auipc { rd: d, imm20 } => {
            check_imm("auipc", imm20 as i64, 20)?;
            OP_AUIPC | rd(d) | (((imm20 as u32) & 0xfffff) << 12)
        }
        Jal { rd: d, offset } => {
            check_imm("jal", offset as i64, 21)?;
            let o = offset as u32;
            let imm = ((o >> 20) & 1) << 31
                | ((o >> 1) & 0x3ff) << 21
                | ((o >> 11) & 1) << 20
                | ((o >> 12) & 0xff) << 12;
            OP_JAL | rd(d) | imm
        }
        Jalr {
            rd: d,
            rs1: s1,
            offset,
        } => {
            check_imm("jalr", offset as i64, 12)?;
            OP_JALR | rd(d) | funct3(0) | rs1(s1) | (((offset as u32) & 0xfff) << 20)
        }
        Branch {
            op,
            rs1: s1,
            rs2: s2,
            offset,
        } => {
            check_imm(instr.mnemonic_static(), offset as i64, 13)?;
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            let o = offset as u32;
            let imm = ((o >> 12) & 1) << 31
                | ((o >> 5) & 0x3f) << 25
                | ((o >> 1) & 0xf) << 8
                | ((o >> 11) & 1) << 7;
            OP_BRANCH | funct3(f3) | rs1(s1) | rs2(s2) | imm
        }
        Load {
            op,
            rd: d,
            rs1: s1,
            offset,
        } => {
            check_imm(instr.mnemonic_static(), offset as i64, 12)?;
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            OP_LOAD | rd(d) | funct3(f3) | rs1(s1) | (((offset as u32) & 0xfff) << 20)
        }
        Store {
            op,
            rs2: s2,
            rs1: s1,
            offset,
        } => {
            check_imm(instr.mnemonic_static(), offset as i64, 12)?;
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
            };
            let o = offset as u32;
            let imm = ((o >> 5) & 0x7f) << 25 | (o & 0x1f) << 7;
            OP_STORE | funct3(f3) | rs1(s1) | rs2(s2) | imm
        }
        AluImm {
            op,
            rd: d,
            rs1: s1,
            imm,
        } => {
            let (f3, special) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, 0x4000_0000u32),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
                AluOp::Sub => {
                    return Err(Rv32Error::ImmediateRange {
                        mnemonic: "subi",
                        value: imm as i64,
                        bits: 0,
                    })
                }
            };
            if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                check_imm("shift-imm", imm as i64, 6)?; // shamt 0..31
                if imm < 0 {
                    return Err(Rv32Error::ImmediateRange {
                        mnemonic: "shift-imm",
                        value: imm as i64,
                        bits: 5,
                    });
                }
            } else {
                check_imm(instr.mnemonic_static(), imm as i64, 12)?;
            }
            OP_ALU_IMM | rd(d) | funct3(f3) | rs1(s1) | (((imm as u32) & 0xfff) << 20) | special
        }
        Alu {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let (f3, f7) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sub => (0b000, 0b0100000),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, 0b0100000),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
            };
            OP_ALU | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | (f7 << 25)
        }
        MulDiv {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let f3 = match op {
                MulOp::Mul => 0b000,
                MulOp::Mulh => 0b001,
                MulOp::Mulhsu => 0b010,
                MulOp::Mulhu => 0b011,
                MulOp::Div => 0b100,
                MulOp::Divu => 0b101,
                MulOp::Rem => 0b110,
                MulOp::Remu => 0b111,
            };
            OP_ALU | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | (1 << 25)
        }
        Fence => OP_MISC_MEM,
        Ecall => OP_SYSTEM,
        Ebreak => OP_SYSTEM | (1 << 20),
    })
}

impl Instr {
    /// `mnemonic()` with a `'static` lifetime for error reporting.
    fn mnemonic_static(&self) -> &'static str {
        self.mnemonic()
    }
}

fn bit(w: u32, i: u32) -> u32 {
    (w >> i) & 1
}

fn sign_extend(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn reg_at(w: u32, lo: u32) -> Reg {
    Reg::from_index(((w >> lo) & 0x1f) as usize).expect("5-bit field")
}

/// Decodes a 32-bit word back to an instruction.
///
/// # Errors
///
/// Returns [`Rv32Error::IllegalInstruction`] for unsupported encodings.
pub fn decode(word: u32) -> Result<Instr, Rv32Error> {
    use Instr::*;
    let opcode = word & 0x7f;
    let f3 = (word >> 12) & 0x7;
    let f7 = word >> 25;
    let d = reg_at(word, 7);
    let s1 = reg_at(word, 15);
    let s2 = reg_at(word, 20);
    let illegal = Err(Rv32Error::IllegalInstruction { word });

    Ok(match opcode {
        OP_LUI => Lui {
            rd: d,
            imm20: sign_extend(word >> 12, 20),
        },
        OP_AUIPC => Auipc {
            rd: d,
            imm20: sign_extend(word >> 12, 20),
        },
        OP_JAL => {
            let imm = (bit(word, 31) << 20)
                | (((word >> 21) & 0x3ff) << 1)
                | (bit(word, 20) << 11)
                | (((word >> 12) & 0xff) << 12);
            Jal {
                rd: d,
                offset: sign_extend(imm, 21),
            }
        }
        OP_JALR => Jalr {
            rd: d,
            rs1: s1,
            offset: sign_extend(word >> 20, 12),
        },
        OP_BRANCH => {
            let op = match f3 {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return illegal,
            };
            let imm = (bit(word, 31) << 12)
                | (((word >> 25) & 0x3f) << 5)
                | (((word >> 8) & 0xf) << 1)
                | (bit(word, 7) << 11);
            Branch {
                op,
                rs1: s1,
                rs2: s2,
                offset: sign_extend(imm, 13),
            }
        }
        OP_LOAD => {
            let op = match f3 {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return illegal,
            };
            Load {
                op,
                rd: d,
                rs1: s1,
                offset: sign_extend(word >> 20, 12),
            }
        }
        OP_STORE => {
            let op = match f3 {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return illegal,
            };
            let imm = (((word >> 25) & 0x7f) << 5) | ((word >> 7) & 0x1f);
            Store {
                op,
                rs2: s2,
                rs1: s1,
                offset: sign_extend(imm, 12),
            }
        }
        OP_ALU_IMM => {
            let imm = sign_extend(word >> 20, 12);
            let op = match f3 {
                0b000 => AluOp::Add,
                0b001 => AluOp::Sll,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b101 => {
                    if f7 == 0b0100000 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                _ => return illegal,
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                ((word >> 20) & 0x1f) as i32
            } else {
                imm
            };
            AluImm {
                op,
                rd: d,
                rs1: s1,
                imm,
            }
        }
        OP_ALU => {
            if f7 == 1 {
                let op = match f3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    _ => MulOp::Remu,
                };
                MulDiv {
                    op,
                    rd: d,
                    rs1: s1,
                    rs2: s2,
                }
            } else {
                let op = match (f3, f7) {
                    (0b000, 0) => AluOp::Add,
                    (0b000, 0b0100000) => AluOp::Sub,
                    (0b001, 0) => AluOp::Sll,
                    (0b010, 0) => AluOp::Slt,
                    (0b011, 0) => AluOp::Sltu,
                    (0b100, 0) => AluOp::Xor,
                    (0b101, 0) => AluOp::Srl,
                    (0b101, 0b0100000) => AluOp::Sra,
                    (0b110, 0) => AluOp::Or,
                    (0b111, 0) => AluOp::And,
                    _ => return illegal,
                };
                Alu {
                    op,
                    rd: d,
                    rs1: s1,
                    rs2: s2,
                }
            }
        }
        OP_MISC_MEM => Fence,
        OP_SYSTEM => {
            if bit(word, 20) == 1 {
                Ebreak
            } else {
                Ecall
            }
        }
        _ => return illegal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i, "{i}");
    }

    #[test]
    fn encode_decode_representatives() {
        use Instr::*;
        roundtrip(Lui {
            rd: Reg::A0,
            imm20: -1,
        }); // negative imm20 (0xfffff)
        roundtrip(Lui {
            rd: Reg::A0,
            imm20: 0x7ffff,
        }); // max positive
        roundtrip(Auipc {
            rd: Reg::A1,
            imm20: 77,
        });
        roundtrip(Jal {
            rd: Reg::RA,
            offset: -2048,
        });
        roundtrip(Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        });
        roundtrip(Branch {
            op: BranchOp::Ltu,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 4094,
        });
        roundtrip(Load {
            op: LoadOp::Lhu,
            rd: Reg::A2,
            rs1: Reg::SP,
            offset: -4,
        });
        roundtrip(Store {
            op: StoreOp::Sb,
            rs2: Reg::A2,
            rs1: Reg::SP,
            offset: 31,
        });
        roundtrip(AluImm {
            op: AluOp::Sra,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 31,
        });
        roundtrip(AluImm {
            op: AluOp::And,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: -1,
        });
        roundtrip(Alu {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        roundtrip(MulDiv {
            op: MulOp::Remu,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        roundtrip(Fence);
        roundtrip(Ecall);
        roundtrip(Ebreak);
    }

    #[test]
    fn canonical_nop_encoding() {
        // addi x0, x0, 0 == 0x00000013, the canonical RISC-V NOP.
        let nop = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        };
        assert_eq!(encode(&nop).unwrap(), 0x0000_0013);
    }

    #[test]
    fn known_encodings() {
        // addi a0, zero, 42 => 0x02a00513
        let li = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: 42,
        };
        assert_eq!(encode(&li).unwrap(), 0x02a0_0513);
        // add a0, a1, a2 => 0x00c58533
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(encode(&add).unwrap(), 0x00c5_8533);
        // ebreak => 0x00100073
        assert_eq!(encode(&Instr::Ebreak).unwrap(), 0x0010_0073);
    }

    #[test]
    fn range_errors() {
        let b = Instr::Branch {
            op: BranchOp::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 5000,
        };
        assert!(encode(&b).is_err());
        let subi = Instr::AluImm {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        };
        assert!(encode(&subi).is_err());
        let negshift = Instr::AluImm {
            op: AluOp::Sll,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: -1,
        };
        assert!(encode(&negshift).is_err());
    }
}
