//! RV32 assembler: the subset of GNU-as syntax the workloads use, plus
//! the standard pseudo-instructions a C compiler's output leans on.
//!
//! Supported:
//!
//! * labels, `.text` / `.data`, `.word v, …`, `.zero n`
//! * all RV32I/RV32IM instructions with `off(base)` memory syntax
//! * pseudo-instructions: `nop`, `li`, `la`, `mv`, `not`, `neg`, `seqz`,
//!   `snez`, `sltz`, `sgtz`, `beqz`, `bnez`, `blez`, `bgez`, `bltz`,
//!   `bgtz`, `bgt`, `ble`, `bgtu`, `bleu`, `j`, `jr`, `call`, `ret`
//!
//! The memory map is fixed (DESIGN.md §3.3): text at byte 0, data at
//! [`DATA_BASE`]; `la` materializes absolute data addresses.

use std::collections::BTreeMap;

use crate::error::Rv32Error;
use crate::instr::{AluOp, BranchOp, Instr, LoadOp, MulOp, StoreOp};
use crate::reg::Reg;

/// Byte address where the data section starts.
pub const DATA_BASE: u32 = 0x2000;

/// An assembled RV32 program: text, initial data words and symbols.
///
/// # Examples
///
/// ```
/// use rv32::parse_program;
///
/// let p = parse_program("
///     li   a0, 10
///     li   a1, 0
/// loop:
///     add  a1, a1, a0
///     addi a0, a0, -1
///     bnez a0, loop
///     ebreak
/// ")?;
/// assert!(p.text().len() >= 6);
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rv32Program {
    text: Vec<Instr>,
    data: Vec<u32>,
    symbols: BTreeMap<String, u32>,
}

impl Rv32Program {
    /// The instruction sequence.
    pub fn text(&self) -> &[Instr] {
        &self.text
    }

    /// Initial data words (placed from [`DATA_BASE`]).
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Symbol table: text symbols are byte addresses of instructions,
    /// data symbols are absolute byte addresses (≥ [`DATA_BASE`]).
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Text storage in bits (32 per instruction) — Fig. 5's unit for
    /// binary ISAs.
    pub fn instruction_bits(&self) -> usize {
        self.text.len() * 32
    }

    /// Data storage in bits (32 per word).
    pub fn data_bits(&self) -> usize {
        self.data.len() * 32
    }

    /// Total memory bits (Fig. 5's metric for the RV-32I column).
    pub fn memory_bits(&self) -> usize {
        self.instruction_bits() + self.data_bits()
    }
}

struct Line<'a> {
    number: usize,
    mnemonic: String,
    operands: Vec<&'a str>,
    addr: u32,
}

enum Item<'a> {
    Text(Line<'a>),
    DataWords(usize, Vec<&'a str>),
}

fn err(line: usize, message: impl Into<String>) -> Rv32Error {
    Rv32Error::Assembly {
        line,
        message: message.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["#", ";", "//"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

/// How many instructions a (possibly pseudo) mnemonic expands to.
///
/// `li` is 1 when the constant fits 12 bits signed, otherwise 2
/// (`lui`+`addi`); `la` is always 2; `call` is 1 (`jal ra`).
fn expansion_len(mnemonic: &str, operands: &[&str]) -> usize {
    match mnemonic {
        "li" => {
            let v = operands
                .get(1)
                .and_then(|s| parse_int(s))
                .unwrap_or(i64::MAX);
            if (-2048..=2047).contains(&v) {
                1
            } else {
                2
            }
        }
        "la" => 2,
        _ => 1,
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse::<i64>().ok()
}

/// Assembles RV32 source text.
///
/// # Errors
///
/// Returns [`Rv32Error::Assembly`] with a line number for any syntax,
/// label or range problem.
pub fn parse_program(source: &str) -> Result<Rv32Program, Rv32Error> {
    // Pass 1: collect items, assign addresses, build symbol table.
    let mut symbols = BTreeMap::new();
    let mut items: Vec<Item<'_>> = Vec::new();
    let mut in_data = false;
    let mut text_addr = 0u32;
    let mut data_addr = 0u32; // byte offset within the data section

    for (lineno, raw) in source.lines().enumerate() {
        let number = lineno + 1;
        let mut rest = strip_comment(raw).trim();

        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let value = if in_data {
                DATA_BASE + data_addr
            } else {
                text_addr
            };
            if symbols.insert(label.to_string(), value).is_some() {
                return Err(err(number, format!("label {label:?} defined twice")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = match directive.find(char::is_whitespace) {
                Some(p) => (&directive[..p], directive[p..].trim()),
                None => (directive, ""),
            };
            match name {
                "text" => in_data = false,
                "data" => in_data = true,
                "word" => {
                    let vals: Vec<&str> = args.split(',').map(str::trim).collect();
                    if vals.iter().any(|v| v.is_empty()) {
                        return Err(err(number, "malformed .word"));
                    }
                    data_addr += 4 * vals.len() as u32;
                    items.push(Item::DataWords(number, vals));
                }
                "zero" | "space" => {
                    let n: u32 = args.parse().map_err(|_| err(number, "malformed .zero"))?;
                    // .zero counts bytes in GNU as; round up to words.
                    let words = n.div_ceil(4);
                    data_addr += 4 * words;
                    items.push(Item::DataWords(
                        number,
                        std::iter::repeat_n("0", words as usize).collect(),
                    ));
                }
                other => return Err(err(number, format!("unsupported directive .{other}"))),
            }
            continue;
        }

        let (mnemonic, ops_str) = match rest.find(char::is_whitespace) {
            Some(p) => (&rest[..p], rest[p..].trim()),
            None => (rest, ""),
        };
        let operands: Vec<&str> = if ops_str.is_empty() {
            Vec::new()
        } else {
            ops_str.split(',').map(str::trim).collect()
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let len = expansion_len(&mnemonic, &operands) as u32;
        items.push(Item::Text(Line {
            number,
            mnemonic,
            operands,
            addr: text_addr,
        }));
        text_addr += 4 * len;
    }

    // Pass 2: lower.
    let mut text = Vec::new();
    let mut data = Vec::new();
    for item in items {
        match item {
            Item::DataWords(line, vals) => {
                for v in vals {
                    let value = parse_int(v)
                        .or_else(|| symbols.get(v).map(|a| *a as i64))
                        .ok_or_else(|| err(line, format!("bad data value {v:?}")))?;
                    data.push(value as u32);
                }
            }
            Item::Text(l) => lower(&l, &symbols, &mut text)?,
        }
    }

    Ok(Rv32Program {
        text,
        data,
        symbols,
    })
}

struct Ctx<'a> {
    line: usize,
    symbols: &'a BTreeMap<String, u32>,
    addr: u32,
}

impl Ctx<'_> {
    fn reg(&self, s: &str) -> Result<Reg, Rv32Error> {
        s.parse::<Reg>()
            .map_err(|_| err(self.line, format!("unknown register {s:?}")))
    }

    fn value(&self, s: &str) -> Result<i64, Rv32Error> {
        if let Some(inner) = s.strip_prefix("%hi(").and_then(|r| r.strip_suffix(')')) {
            let v = self.value(inner)?;
            return Ok(((v + 0x800) >> 12) & 0xfffff);
        }
        if let Some(inner) = s.strip_prefix("%lo(").and_then(|r| r.strip_suffix(')')) {
            let v = self.value(inner)?;
            return Ok(((v & 0xfff) ^ 0x800) - 0x800); // sign-extended low 12
        }
        parse_int(s)
            .or_else(|| self.symbols.get(s).map(|a| *a as i64))
            .ok_or_else(|| err(self.line, format!("bad operand {s:?}")))
    }

    /// Branch/jump target: label or absolute byte address → relative offset.
    fn target(&self, s: &str) -> Result<i32, Rv32Error> {
        let abs = self.value(s)?;
        Ok((abs - self.addr as i64) as i32)
    }

    /// Parses `offset(base)` memory operands.
    fn mem_operand(&self, s: &str) -> Result<(i32, Reg), Rv32Error> {
        let open = s
            .find('(')
            .ok_or_else(|| err(self.line, format!("expected off(base), got {s:?}")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| err(self.line, format!("expected off(base), got {s:?}")))?;
        let off_str = s[..open].trim();
        let off = if off_str.is_empty() {
            0
        } else {
            self.value(off_str)? as i32
        };
        let base = self.reg(s[open + 1..close].trim())?;
        Ok((off, base))
    }
}

fn lower(
    l: &Line<'_>,
    symbols: &BTreeMap<String, u32>,
    out: &mut Vec<Instr>,
) -> Result<(), Rv32Error> {
    use Instr::*;
    let ctx = Ctx {
        line: l.number,
        symbols,
        addr: l.addr,
    };
    let ops = &l.operands;
    let n = ops.len();
    let need = |k: usize| -> Result<(), Rv32Error> {
        if n != k {
            return Err(err(
                l.number,
                format!("{} expects {k} operand(s), found {n}", l.mnemonic),
            ));
        }
        Ok(())
    };

    let alu3 = |op: AluOp| -> Result<Instr, Rv32Error> {
        need(3)?;
        Ok(Alu {
            op,
            rd: ctx.reg(ops[0])?,
            rs1: ctx.reg(ops[1])?,
            rs2: ctx.reg(ops[2])?,
        })
    };
    let alui = |op: AluOp| -> Result<Instr, Rv32Error> {
        need(3)?;
        Ok(AluImm {
            op,
            rd: ctx.reg(ops[0])?,
            rs1: ctx.reg(ops[1])?,
            imm: ctx.value(ops[2])? as i32,
        })
    };
    let muldiv = |op: MulOp| -> Result<Instr, Rv32Error> {
        need(3)?;
        Ok(MulDiv {
            op,
            rd: ctx.reg(ops[0])?,
            rs1: ctx.reg(ops[1])?,
            rs2: ctx.reg(ops[2])?,
        })
    };
    let branch = |op: BranchOp, swap: bool| -> Result<Instr, Rv32Error> {
        need(3)?;
        let (i, j) = if swap { (1, 0) } else { (0, 1) };
        Ok(Branch {
            op,
            rs1: ctx.reg(ops[i])?,
            rs2: ctx.reg(ops[j])?,
            offset: ctx.target(ops[2])?,
        })
    };
    let branch_zero = |op: BranchOp, swap: bool| -> Result<Instr, Rv32Error> {
        need(2)?;
        let r = ctx.reg(ops[0])?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        Ok(Branch {
            op,
            rs1,
            rs2,
            offset: ctx.target(ops[1])?,
        })
    };
    let load = |op: LoadOp| -> Result<Instr, Rv32Error> {
        need(2)?;
        let (offset, rs1) = ctx.mem_operand(ops[1])?;
        Ok(Load {
            op,
            rd: ctx.reg(ops[0])?,
            rs1,
            offset,
        })
    };
    let store = |op: StoreOp| -> Result<Instr, Rv32Error> {
        need(2)?;
        let (offset, rs1) = ctx.mem_operand(ops[1])?;
        Ok(Store {
            op,
            rs2: ctx.reg(ops[0])?,
            rs1,
            offset,
        })
    };

    let instr = match l.mnemonic.as_str() {
        // --- real instructions ---------------------------------------
        "lui" => {
            need(2)?;
            Lui {
                rd: ctx.reg(ops[0])?,
                imm20: ctx.value(ops[1])? as i32,
            }
        }
        "auipc" => {
            need(2)?;
            Auipc {
                rd: ctx.reg(ops[0])?,
                imm20: ctx.value(ops[1])? as i32,
            }
        }
        "jal" => match n {
            1 => Jal {
                rd: Reg::RA,
                offset: ctx.target(ops[0])?,
            },
            2 => Jal {
                rd: ctx.reg(ops[0])?,
                offset: ctx.target(ops[1])?,
            },
            _ => return Err(err(l.number, "jal expects 1 or 2 operands")),
        },
        "jalr" => match n {
            1 => Jalr {
                rd: Reg::RA,
                rs1: ctx.reg(ops[0])?,
                offset: 0,
            },
            3 => Jalr {
                rd: ctx.reg(ops[0])?,
                rs1: ctx.reg(ops[1])?,
                offset: ctx.value(ops[2])? as i32,
            },
            2 => {
                let (offset, rs1) = ctx.mem_operand(ops[1])?;
                Jalr {
                    rd: ctx.reg(ops[0])?,
                    rs1,
                    offset,
                }
            }
            _ => return Err(err(l.number, "jalr operand count")),
        },
        "beq" => branch(BranchOp::Eq, false)?,
        "bne" => branch(BranchOp::Ne, false)?,
        "blt" => branch(BranchOp::Lt, false)?,
        "bge" => branch(BranchOp::Ge, false)?,
        "bltu" => branch(BranchOp::Ltu, false)?,
        "bgeu" => branch(BranchOp::Geu, false)?,
        "bgt" => branch(BranchOp::Lt, true)?,
        "ble" => branch(BranchOp::Ge, true)?,
        "bgtu" => branch(BranchOp::Ltu, true)?,
        "bleu" => branch(BranchOp::Geu, true)?,
        "lb" => load(LoadOp::Lb)?,
        "lh" => load(LoadOp::Lh)?,
        "lw" => load(LoadOp::Lw)?,
        "lbu" => load(LoadOp::Lbu)?,
        "lhu" => load(LoadOp::Lhu)?,
        "sb" => store(StoreOp::Sb)?,
        "sh" => store(StoreOp::Sh)?,
        "sw" => store(StoreOp::Sw)?,
        "addi" => alui(AluOp::Add)?,
        "slti" => alui(AluOp::Slt)?,
        "sltiu" => alui(AluOp::Sltu)?,
        "xori" => alui(AluOp::Xor)?,
        "ori" => alui(AluOp::Or)?,
        "andi" => alui(AluOp::And)?,
        "slli" => alui(AluOp::Sll)?,
        "srli" => alui(AluOp::Srl)?,
        "srai" => alui(AluOp::Sra)?,
        "add" => alu3(AluOp::Add)?,
        "sub" => alu3(AluOp::Sub)?,
        "sll" => alu3(AluOp::Sll)?,
        "slt" => alu3(AluOp::Slt)?,
        "sltu" => alu3(AluOp::Sltu)?,
        "xor" => alu3(AluOp::Xor)?,
        "srl" => alu3(AluOp::Srl)?,
        "sra" => alu3(AluOp::Sra)?,
        "or" => alu3(AluOp::Or)?,
        "and" => alu3(AluOp::And)?,
        "mul" => muldiv(MulOp::Mul)?,
        "mulh" => muldiv(MulOp::Mulh)?,
        "mulhsu" => muldiv(MulOp::Mulhsu)?,
        "mulhu" => muldiv(MulOp::Mulhu)?,
        "div" => muldiv(MulOp::Div)?,
        "divu" => muldiv(MulOp::Divu)?,
        "rem" => muldiv(MulOp::Rem)?,
        "remu" => muldiv(MulOp::Remu)?,
        "fence" => Fence,
        "ecall" => Ecall,
        "ebreak" => Ebreak,

        // --- pseudo-instructions --------------------------------------
        "nop" => {
            need(0)?;
            AluImm {
                op: AluOp::Add,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            }
        }
        "li" => {
            need(2)?;
            let rd = ctx.reg(ops[0])?;
            let v = ctx.value(ops[1])?;
            if (-2048..=2047).contains(&v) {
                AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v as i32,
                }
            } else {
                let v32 = v as i32;
                let lo = ((v32 & 0xfff) ^ 0x800) - 0x800;
                let hi = (v32.wrapping_sub(lo)) >> 12;
                out.push(Lui { rd, imm20: hi });
                AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                }
            }
        }
        "la" => {
            need(2)?;
            let rd = ctx.reg(ops[0])?;
            let v = ctx.value(ops[1])? as i32;
            let lo = ((v & 0xfff) ^ 0x800) - 0x800;
            let hi = (v.wrapping_sub(lo)) >> 12;
            out.push(Lui { rd, imm20: hi });
            AluImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm: lo,
            }
        }
        "mv" => {
            need(2)?;
            AluImm {
                op: AluOp::Add,
                rd: ctx.reg(ops[0])?,
                rs1: ctx.reg(ops[1])?,
                imm: 0,
            }
        }
        "not" => {
            need(2)?;
            AluImm {
                op: AluOp::Xor,
                rd: ctx.reg(ops[0])?,
                rs1: ctx.reg(ops[1])?,
                imm: -1,
            }
        }
        "neg" => {
            need(2)?;
            Alu {
                op: AluOp::Sub,
                rd: ctx.reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(ops[1])?,
            }
        }
        "seqz" => {
            need(2)?;
            AluImm {
                op: AluOp::Sltu,
                rd: ctx.reg(ops[0])?,
                rs1: ctx.reg(ops[1])?,
                imm: 1,
            }
        }
        "snez" => {
            need(2)?;
            Alu {
                op: AluOp::Sltu,
                rd: ctx.reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(ops[1])?,
            }
        }
        "sltz" => {
            need(2)?;
            Alu {
                op: AluOp::Slt,
                rd: ctx.reg(ops[0])?,
                rs1: ctx.reg(ops[1])?,
                rs2: Reg::ZERO,
            }
        }
        "sgtz" => {
            need(2)?;
            Alu {
                op: AluOp::Slt,
                rd: ctx.reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(ops[1])?,
            }
        }
        "beqz" => branch_zero(BranchOp::Eq, false)?,
        "bnez" => branch_zero(BranchOp::Ne, false)?,
        "bltz" => branch_zero(BranchOp::Lt, false)?,
        "bgez" => branch_zero(BranchOp::Ge, false)?,
        "bgtz" => branch_zero(BranchOp::Lt, true)?,
        "blez" => branch_zero(BranchOp::Ge, true)?,
        "j" => {
            need(1)?;
            Jal {
                rd: Reg::ZERO,
                offset: ctx.target(ops[0])?,
            }
        }
        "jr" => {
            need(1)?;
            Jalr {
                rd: Reg::ZERO,
                rs1: ctx.reg(ops[0])?,
                offset: 0,
            }
        }
        "call" => {
            need(1)?;
            Jal {
                rd: Reg::RA,
                offset: ctx.target(ops[0])?,
            }
        }
        "ret" => {
            need(0)?;
            Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }
        }
        other => return Err(err(l.number, format!("unknown mnemonic {other:?}"))),
    };
    out.push(instr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program_with_labels() {
        let p = parse_program(
            "
            li a0, 5
            li a1, 0
            loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ebreak
            ",
        )
        .unwrap();
        assert_eq!(p.text().len(), 6);
        match p.text()[4] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -8),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn li_expansion_width() {
        let p = parse_program("li a0, 100\nli a1, 100000\n").unwrap();
        // small li = 1 instr; big li = lui+addi.
        assert_eq!(p.text().len(), 3);
        // Verify the lui+addi reconstruct 100000.
        match (p.text()[1], p.text()[2]) {
            (Instr::Lui { imm20, .. }, Instr::AluImm { imm, .. }) => {
                assert_eq!((imm20 << 12) + imm, 100_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn label_addresses_account_for_pseudo_expansion() {
        let p = parse_program(
            "
            li a0, 100000   # 2 instructions
            target:
            nop
            j target
            ",
        )
        .unwrap();
        assert_eq!(p.symbols()["target"], 8);
        match p.text()[3] {
            Instr::Jal { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn data_section_and_la() {
        let p = parse_program(
            "
            .data
            arr: .word 1, 2, 3
            buf: .zero 8
            .text
            la a0, arr
            lw a1, 0(a0)
            ",
        )
        .unwrap();
        assert_eq!(p.data().len(), 5);
        assert_eq!(p.symbols()["arr"], DATA_BASE);
        assert_eq!(p.symbols()["buf"], DATA_BASE + 12);
        // la(2) + lw(1) = 3 instructions, plus 5 data words.
        assert_eq!(p.memory_bits(), 3 * 32 + 5 * 32);
    }

    #[test]
    fn mem_operand_forms() {
        let p = parse_program("lw a0, 8(sp)\nsw a0, (sp)\nlw a1, -4(s0)\n").unwrap();
        match p.text()[1] {
            Instr::Store { offset, .. } => assert_eq!(offset, 0),
            ref other => panic!("{other}"),
        }
        match p.text()[2] {
            Instr::Load { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn pseudo_branches_swap_operands() {
        let p = parse_program("x: bgt a0, a1, x\nble a0, a1, x\n").unwrap();
        match p.text()[0] {
            Instr::Branch {
                op: BranchOp::Lt,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1, rs2), (Reg::A1, Reg::A0));
            }
            ref other => panic!("{other}"),
        }
        match p.text()[1] {
            Instr::Branch {
                op: BranchOp::Ge,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1, rs2), (Reg::A1, Reg::A0));
            }
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn hi_lo_relocations() {
        let p = parse_program(
            ".data\nv: .word 7\n.text\nlui a0, %hi(v)\naddi a0, a0, %lo(v)\nlw a1, 0(a0)\n",
        )
        .unwrap();
        match (p.text()[0], p.text()[1]) {
            (Instr::Lui { imm20, .. }, Instr::AluImm { imm, .. }) => {
                assert_eq!(((imm20 << 12) + imm) as u32, DATA_BASE);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse_program("nop\nfrobnicate a0\n").unwrap_err();
        match e {
            Rv32Error::Assembly { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        assert!(parse_program("x: nop\nx: nop\n").is_err());
        assert!(parse_program("lw a0, nope\n").is_err());
    }
}
