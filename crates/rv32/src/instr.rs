//! The RV32I base instruction set plus the M extension.
//!
//! Instructions are grouped by format (ALU, ALU-immediate, load, store,
//! branch, …) so the simulator, the encoder and the ART-9 compiling
//! framework can match on operation classes instead of 48 flat variants.

use std::fmt;

use crate::reg::Reg;

/// Integer ALU operations (shared by register and immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; no immediate form in RV32I).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set-less-than, signed.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
}

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`.
    Eq,
    /// `bne`.
    Ne,
    /// `blt` (signed).
    Lt,
    /// `bge` (signed).
    Ge,
    /// `bltu`.
    Ltu,
    /// `bgeu`.
    Geu,
}

/// Load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb` — sign-extended byte.
    Lb,
    /// `lh` — sign-extended halfword.
    Lh,
    /// `lw` — word.
    Lw,
    /// `lbu` — zero-extended byte.
    Lbu,
    /// `lhu` — zero-extended halfword.
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`.
    Sb,
    /// `sh`.
    Sh,
    /// `sw`.
    Sw,
}

/// M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// `mul` — low 32 bits of the product.
    Mul,
    /// `mulh` — high 32 bits, signed×signed.
    Mulh,
    /// `mulhsu` — high 32 bits, signed×unsigned.
    Mulhsu,
    /// `mulhu` — high 32 bits, unsigned×unsigned.
    Mulhu,
    /// `div` — signed division.
    Div,
    /// `divu` — unsigned division.
    Divu,
    /// `rem` — signed remainder.
    Rem,
    /// `remu` — unsigned remainder.
    Remu,
}

/// One RV32I/RV32IM instruction.
///
/// Offsets and immediates are stored as sign-extended `i32` values;
/// branch/jump offsets are in **bytes** relative to the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm20` — `rd = imm20 << 12`.
    Lui {
        /// Destination.
        rd: Reg,
        /// The 20-bit immediate (not yet shifted).
        imm20: i32,
    },
    /// `auipc rd, imm20` — `rd = pc + (imm20 << 12)`.
    Auipc {
        /// Destination.
        rd: Reg,
        /// The 20-bit immediate (not yet shifted).
        imm20: i32,
    },
    /// `jal rd, offset`.
    Jal {
        /// Link register.
        rd: Reg,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, rs1, offset`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Source of the datum.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Register-immediate ALU operation (`addi`, `andi`, `slli`, …).
    AluImm {
        /// Operation ([`AluOp::Sub`] is invalid here).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (5-bit shamt for shifts).
        imm: i32,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// `fence` (no-op in this single-hart model).
    Fence,
    /// `ecall` (halts the simulator — used as the exit convention).
    Ecall,
    /// `ebreak` (halts the simulator).
    Ebreak,
}

impl Instr {
    /// The canonical mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        use Instr::*;
        match self {
            Lui { .. } => "lui",
            Auipc { .. } => "auipc",
            Jal { .. } => "jal",
            Jalr { .. } => "jalr",
            Branch { op, .. } => match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            },
            Load { op, .. } => match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
            },
            Store { op, .. } => match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
            },
            AluImm { op, .. } => match op {
                AluOp::Add => "addi",
                AluOp::Sll => "slli",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                AluOp::Sub => "subi?", // rejected at construction
            },
            Alu { op, .. } => match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Sll => "sll",
                AluOp::Slt => "slt",
                AluOp::Sltu => "sltu",
                AluOp::Xor => "xor",
                AluOp::Srl => "srl",
                AluOp::Sra => "sra",
                AluOp::Or => "or",
                AluOp::And => "and",
            },
            MulDiv { op, .. } => match op {
                MulOp::Mul => "mul",
                MulOp::Mulh => "mulh",
                MulOp::Mulhsu => "mulhsu",
                MulOp::Mulhu => "mulhu",
                MulOp::Div => "div",
                MulOp::Divu => "divu",
                MulOp::Rem => "rem",
                MulOp::Remu => "remu",
            },
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
        }
    }

    /// The destination register, if the instruction writes one
    /// (writes to `x0` are reported as `None`).
    pub fn writes(&self) -> Option<Reg> {
        use Instr::*;
        let rd = match self {
            Lui { rd, .. }
            | Auipc { rd, .. }
            | Jal { rd, .. }
            | Jalr { rd, .. }
            | Load { rd, .. }
            | AluImm { rd, .. }
            | Alu { rd, .. }
            | MulDiv { rd, .. } => *rd,
            Branch { .. } | Store { .. } | Fence | Ecall | Ebreak => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The registers the instruction reads.
    pub fn reads(&self) -> Vec<Reg> {
        use Instr::*;
        match self {
            Lui { .. } | Auipc { .. } | Jal { .. } | Fence | Ecall | Ebreak => vec![],
            Jalr { rs1, .. } | Load { rs1, .. } | AluImm { rs1, .. } => vec![*rs1],
            Branch { rs1, rs2, .. } | Store { rs2, rs1, .. } => vec![*rs1, *rs2],
            Alu { rs1, rs2, .. } | MulDiv { rs1, rs2, .. } => vec![*rs1, *rs2],
        }
    }

    /// `true` for conditional branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// `true` for any control-flow instruction.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        let m = self.mnemonic();
        match self {
            Lui { rd, imm20 } | Auipc { rd, imm20 } => write!(f, "{m} {rd}, {imm20}"),
            Jal { rd, offset } => write!(f, "{m} {rd}, {offset}"),
            Jalr { rd, rs1, offset } => write!(f, "{m} {rd}, {offset}({rs1})"),
            Branch {
                rs1, rs2, offset, ..
            } => write!(f, "{m} {rs1}, {rs2}, {offset}"),
            Load {
                rd, rs1, offset, ..
            } => write!(f, "{m} {rd}, {offset}({rs1})"),
            Store {
                rs2, rs1, offset, ..
            } => write!(f, "{m} {rs2}, {offset}({rs1})"),
            AluImm { rd, rs1, imm, .. } => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Alu { rd, rs1, rs2, .. } | MulDiv { rd, rs1, rs2, .. } => {
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Fence | Ecall | Ebreak => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_to_x0_are_hidden() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        };
        assert_eq!(i.writes(), None); // canonical RISC-V nop
        let j = Instr::Jal {
            rd: Reg::ZERO,
            offset: 8,
        };
        assert_eq!(j.writes(), None);
    }

    #[test]
    fn reads_by_format() {
        let s = Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::A0,
            rs1: Reg::SP,
            offset: 4,
        };
        assert_eq!(s.reads(), vec![Reg::SP, Reg::A0]);
        let b = Instr::Branch {
            op: BranchOp::Lt,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -8,
        };
        assert_eq!(b.reads(), vec![Reg::A0, Reg::A1]);
        assert!(b.is_branch() && b.is_control_flow());
    }

    #[test]
    fn display_forms() {
        let lw = Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 8,
        };
        assert_eq!(lw.to_string(), "lw a0, 8(sp)");
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(add.to_string(), "add a0, a1, a2");
        let mul = Instr::MulDiv {
            op: MulOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(mul.to_string(), "mul a0, a1, a2");
    }
}
