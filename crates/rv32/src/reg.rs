//! RV32 integer registers `x0..x31` with ABI names.

use std::fmt;
use std::str::FromStr;

use crate::error::Rv32Error;

/// One of the 32 RV32I integer registers. `x0` reads as zero and ignores
/// writes.
///
/// # Examples
///
/// ```
/// use rv32::Reg;
///
/// let a0: Reg = "a0".parse()?;
/// assert_eq!(a0.index(), 10);
/// assert_eq!(a0.abi_name(), "a0");
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI register names indexed by register number.
const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl Reg {
    /// `x0` / `zero`.
    pub const ZERO: Reg = Reg(0);
    /// `x1` / `ra` — return address.
    pub const RA: Reg = Reg(1);
    /// `x2` / `sp` — stack pointer.
    pub const SP: Reg = Reg(2);
    /// `x10` / `a0` — first argument / return value.
    pub const A0: Reg = Reg(10);
    /// `x11` / `a1`.
    pub const A1: Reg = Reg(11);
    /// `x12` / `a2`.
    pub const A2: Reg = Reg(12);
    /// `x13` / `a3`.
    pub const A3: Reg = Reg(13);
    /// `x14` / `a4`.
    pub const A4: Reg = Reg(14);
    /// `x15` / `a5`.
    pub const A5: Reg = Reg(15);
    /// `x16` / `a6`.
    pub const A6: Reg = Reg(16);
    /// `x5` / `t0`.
    pub const T0: Reg = Reg(5);

    /// Builds a register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`Rv32Error::RegisterIndex`] when `index > 31`.
    pub fn from_index(index: usize) -> Result<Self, Rv32Error> {
        if index > 31 {
            return Err(Rv32Error::RegisterIndex { index });
        }
        Ok(Reg(index as u8))
    }

    /// The register number (0..=31).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The ABI name (`zero`, `ra`, `sp`, `a0`, …).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// `true` for `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl FromStr for Reg {
    type Err = Rv32Error;

    /// Accepts `x<N>` numeric names and all ABI names (plus `fp` for
    /// `s0`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if lower == "fp" {
            return Ok(Reg(8));
        }
        if let Some(rest) = lower.strip_prefix('x') {
            if let Ok(i) = rest.parse::<usize>() {
                return Reg::from_index(i);
            }
        }
        ABI_NAMES
            .iter()
            .position(|n| *n == lower)
            .map(|i| Reg(i as u8))
            .ok_or_else(|| Rv32Error::UnknownRegister {
                name: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_numeric_and_abi() {
        assert_eq!("x0".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("x31".parse::<Reg>().unwrap().abi_name(), "t6");
        assert_eq!("fp".parse::<Reg>().unwrap().index(), 8);
        assert_eq!("s0".parse::<Reg>().unwrap().index(), 8);
        assert!("x32".parse::<Reg>().is_err());
        assert!("q1".parse::<Reg>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for i in 0..32 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn zero_is_special() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
