//! ARMv6-M (Thumb-1) code-size estimator.
//!
//! Fig. 5 of the paper compares memory cells across three ISAs; the
//! ARMv6-M column exists purely for its 16-bit instruction density. We
//! estimate the Thumb-1 footprint of a program by mapping each RV32
//! instruction to the number of 16-bit halfwords its closest ARMv6-M
//! equivalent needs (DESIGN.md §3.3). The mapping encodes the familiar
//! Thumb-1 pain points:
//!
//! * two-address ALU ops: an extra `MOV` when `rd != rs1`,
//! * 8-bit immediates: wide constants need `MOVS`+shifts or a literal
//!   pool (counted as 2 halfwords),
//! * compare-and-branch: RISC-V fused branches become `CMP` + `Bcc`,
//! * `BL` is a 32-bit (2-halfword) encoding,
//! * hardware divide does not exist — `div` maps to a runtime-library
//!   call (approximated at 10 halfwords, documented here).

use crate::instr::{AluOp, Instr, MulOp};
use crate::parse::Rv32Program;

/// Halfwords (16-bit units) the closest ARMv6-M sequence needs for one
/// RV32 instruction.
///
/// # Examples
///
/// ```
/// use rv32::{thumb_halfwords, Instr, AluOp, Reg};
///
/// // add rd, rd, imm8 -> single ADDS
/// let i = Instr::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 4 };
/// assert_eq!(thumb_halfwords(&i), 1);
/// // compare-and-branch -> CMP + Bcc
/// let b = Instr::Branch { op: rv32::BranchOp::Lt, rs1: Reg::A0, rs2: Reg::A1, offset: -8 };
/// assert_eq!(thumb_halfwords(&b), 2);
/// ```
pub fn thumb_halfwords(instr: &Instr) -> usize {
    use Instr::*;
    match instr {
        // Wide constant construction: MOVS + LSLS + ADDS or literal pool.
        Lui { .. } | Auipc { .. } => 2,
        // BL is a 32-bit encoding.
        Jal { .. } => 2,
        // BX/BLX register.
        Jalr { .. } => 1,
        // CMP + conditional branch (no CBZ/CBNZ in ARMv6-M).
        Branch { .. } => 2,
        Load { offset, .. } => {
            // LDR rt, [rn, #imm5*4]: offsets 0..=124 encode directly.
            if (0..=124).contains(offset) {
                1
            } else {
                2
            }
        }
        Store { offset, .. } => {
            if (0..=124).contains(offset) {
                1
            } else {
                2
            }
        }
        AluImm { op, rd, rs1, imm } => match op {
            // ADDS/SUBS Rd, #imm8 when in-place and small; MOVS when
            // rs1 is x0 (an RV32 `li`).
            AluOp::Add => {
                if rs1.is_zero() {
                    if (0..=255).contains(imm) {
                        1
                    } else {
                        2
                    }
                } else if rd == rs1 && (-255..=255).contains(imm) {
                    1
                } else {
                    2
                }
            }
            // Shifts have 3-address immediate forms in Thumb-1.
            AluOp::Sll | AluOp::Srl | AluOp::Sra => 1,
            // Logical ops are 2-address: extra MOV when rd != rs1.
            AluOp::And | AluOp::Or | AluOp::Xor => {
                if rd == rs1 {
                    2 // MOVS #imm into a scratch + op
                } else {
                    3
                }
            }
            AluOp::Slt | AluOp::Sltu => 3, // CMP + conditional move dance
            AluOp::Sub => 2,               // not constructible; counted like generic
        },
        Alu { op, rd, rs1, .. } => match op {
            // ADD/SUB have 3-address lo-register forms.
            AluOp::Add | AluOp::Sub => 1,
            AluOp::Slt | AluOp::Sltu => 3,
            // 2-address: MOV + op when rd != rs1.
            _ => {
                if rd == rs1 {
                    1
                } else {
                    2
                }
            }
        },
        MulDiv { op, .. } => match op {
            MulOp::Mul => 1, // MULS
            MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => 4,
            // __aeabi_idiv runtime call: BL + glue, amortized.
            MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu => 10,
        },
        Fence | Ecall | Ebreak => 1,
    }
}

/// Estimated ARMv6-M memory footprint of a whole program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThumbEstimate {
    /// Instruction halfwords (16-bit units).
    pub halfwords: usize,
    /// Data words (32-bit, same data layout as the RV32 program).
    pub data_words: usize,
}

impl ThumbEstimate {
    /// Instruction storage in bits.
    pub fn instruction_bits(&self) -> usize {
        self.halfwords * 16
    }

    /// Total memory bits (instructions + data) — Fig. 5's ARMv6-M column.
    pub fn memory_bits(&self) -> usize {
        self.instruction_bits() + self.data_words * 32
    }
}

/// Estimates the ARMv6-M footprint of an RV32 program.
///
/// # Examples
///
/// ```
/// use rv32::{estimate_thumb, parse_program};
///
/// let p = parse_program("li a0, 1\nadd a0, a0, a0\nebreak\n")?;
/// let t = estimate_thumb(&p);
/// assert!(t.instruction_bits() < p.instruction_bits());
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
pub fn estimate_thumb(program: &Rv32Program) -> ThumbEstimate {
    ThumbEstimate {
        halfwords: program.text().iter().map(thumb_halfwords).sum(),
        data_words: program.data().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::reg::Reg;

    #[test]
    fn per_instruction_mappings() {
        use Instr::*;
        // li small -> MOVS (1 halfword)
        let li = AluImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: 100,
        };
        assert_eq!(thumb_halfwords(&li), 1);
        // li negative -> 2 (no negative MOVS immediate)
        let lin = AluImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: -5,
        };
        assert_eq!(thumb_halfwords(&lin), 2);
        // 3-address xor -> MOV + EORS
        let x3 = Alu {
            op: AluOp::Xor,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(thumb_halfwords(&x3), 2);
        // in-place xor -> EORS
        let x2 = Alu {
            op: AluOp::Xor,
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::A2,
        };
        assert_eq!(thumb_halfwords(&x2), 1);
        // division -> library call
        let d = MulDiv {
            op: MulOp::Div,
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert_eq!(thumb_halfwords(&d), 10);
    }

    #[test]
    fn typical_code_is_denser_than_rv32_but_more_instructions() {
        // A representative mix: loads, ALU, branches, calls.
        let p = parse_program(
            "
            .data
            arr: .word 1, 2, 3, 4
            .text
            la   a0, arr
            li   a1, 4
            li   a2, 0
            loop:
            lw   a3, 0(a0)
            add  a2, a2, a3
            addi a0, a0, 4
            addi a1, a1, -1
            bnez a1, loop
            ebreak
            ",
        )
        .unwrap();
        let t = estimate_thumb(&p);
        // Denser in bits…
        assert!(t.instruction_bits() < p.instruction_bits());
        // …but more than half the RV32 bit count (halfword count exceeds
        // the RV32 instruction count).
        assert!(t.halfwords >= p.text().len());
    }

    #[test]
    fn totals_include_data() {
        let p = parse_program(".data\n.word 1, 2\n.text\nnop\nebreak\n").unwrap();
        let t = estimate_thumb(&p);
        assert_eq!(t.data_words, 2);
        assert_eq!(t.memory_bits(), t.instruction_bits() + 64);
    }
}
