//! Error types of the RV32 substrate.

use std::error::Error;
use std::fmt;

/// Errors from RV32 assembly, encoding and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rv32Error {
    /// A register index was outside 0..=31.
    RegisterIndex {
        /// The offending index.
        index: usize,
    },
    /// A register name was not recognized.
    UnknownRegister {
        /// The name as written.
        name: String,
    },
    /// An assembly-source problem, tagged with its 1-based line.
    Assembly {
        /// Line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An immediate did not fit its encoding field.
    ImmediateRange {
        /// Mnemonic whose field overflowed.
        mnemonic: &'static str,
        /// The value.
        value: i64,
        /// Bits available (including sign).
        bits: u32,
    },
    /// A memory access faulted (out of range or misaligned).
    MemoryFault {
        /// PC (byte address) of the faulting instruction.
        pc: u32,
        /// The data address that faulted.
        address: u32,
        /// Human-readable cause ("out of range", "misaligned load", …).
        cause: &'static str,
    },
    /// The PC left the text section.
    PcOutOfRange {
        /// The PC value.
        pc: u32,
        /// Text size in bytes.
        text_bytes: usize,
    },
    /// The step/cycle budget was exhausted before the program halted.
    Timeout {
        /// The exhausted budget.
        limit: u64,
    },
    /// A word did not decode to a supported instruction.
    IllegalInstruction {
        /// The raw 32-bit word.
        word: u32,
    },
}

impl fmt::Display for Rv32Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rv32Error::RegisterIndex { index } => {
                write!(f, "register index {index} outside x0..x31")
            }
            Rv32Error::UnknownRegister { name } => write!(f, "unknown register {name:?}"),
            Rv32Error::Assembly { line, message } => write!(f, "line {line}: {message}"),
            Rv32Error::ImmediateRange {
                mnemonic,
                value,
                bits,
            } => {
                write!(f, "{mnemonic} immediate {value} does not fit {bits} bits")
            }
            Rv32Error::MemoryFault { pc, address, cause } => {
                write!(
                    f,
                    "memory fault at pc={pc:#x}, address {address:#x}: {cause}"
                )
            }
            Rv32Error::PcOutOfRange { pc, text_bytes } => {
                write!(f, "pc {pc:#x} outside text of {text_bytes} bytes")
            }
            Rv32Error::Timeout { limit } => write!(f, "no halt within {limit} steps"),
            Rv32Error::IllegalInstruction { word } => {
                write!(f, "illegal instruction word {word:#010x}")
            }
        }
    }
}

impl Error for Rv32Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Rv32Error::Timeout { limit: 5 }.to_string().contains('5'));
        assert!(Rv32Error::IllegalInstruction { word: 0xdead_beef }
            .to_string()
            .contains("0xdeadbeef"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Rv32Error>();
    }
}
