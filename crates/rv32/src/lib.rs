//! # `rv32` — the binary-ISA substrate of the ART-9 evaluation
//!
//! Everything the paper's comparisons need from the RISC-V world, built
//! from scratch:
//!
//! * [`Instr`] / [`Reg`] — the RV32I base ISA plus the M extension.
//! * [`parse_program`] — an assembler for the GNU-as subset the
//!   workloads use, with the standard pseudo-instructions.
//! * [`encode`] / [`decode`] — the real 32-bit encodings (Fig. 5 counts
//!   32 bits per instruction).
//! * [`Machine`] — a functional RV32IM simulator.
//! * [`PicoRv32Model`] / [`VexRiscvModel`] + [`simulate_cycles`] — the
//!   cycle models behind Tables II and III.
//! * [`estimate_thumb`] — the ARMv6-M code-size estimator behind
//!   Fig. 5's third column.
//!
//! ## Quick start
//!
//! ```
//! use rv32::{parse_program, simulate_cycles, Machine, PicoRv32Model, Reg};
//!
//! let p = parse_program("
//!     li   a0, 10
//!     li   a1, 1
//! fact:
//!     mul  a1, a1, a0
//!     addi a0, a0, -1
//!     bgtz a0, fact
//!     ebreak
//! ")?;
//!
//! let mut m = Machine::new(&p);
//! m.run(100_000)?;
//! assert_eq!(m.reg(Reg::A1), 3_628_800); // 10!
//!
//! let timing = simulate_cycles(&p, &mut PicoRv32Model::new(), 100_000)?;
//! println!("PicoRV32 CPI: {:.2}", timing.cpi());
//! # Ok::<(), rv32::Rv32Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod encode;
mod error;
mod exec;
mod instr;
mod parse;
mod reg;
mod thumb;

pub use cycle::{simulate_cycles, CycleModel, CycleReport, PicoRv32Model, VexRiscvModel};
pub use encode::{decode, encode};
pub use error::Rv32Error;
pub use exec::{HaltReason, Machine, Retire, DEFAULT_MEM_BYTES};
pub use instr::{AluOp, BranchOp, Instr, LoadOp, MulOp, StoreOp};
pub use parse::{parse_program, Rv32Program, DATA_BASE};
pub use reg::Reg;
pub use thumb::{estimate_thumb, thumb_halfwords, ThumbEstimate};
