//! Baseline processor cycle models: PicoRV32 and VexRiscv.
//!
//! The paper's Tables II and III compare the pipelined ART-9 core
//! against two open-source RISC-V cores. We model their *timing*, not
//! their RTL (DESIGN.md §3.3): a cycle model assigns a cost to every
//! retired instruction given its dynamic context (taken?, shift amount,
//! previous instruction), and a runner drives the functional
//! [`Machine`](crate::Machine) while accumulating the costs.
//!
//! * [`PicoRv32Model`] — the non-pipelined, size-optimized core
//!   (Table II: 1 "pipeline stage"). Costs follow the cycles-per-
//!   instruction table in the PicoRV32 README (regular ALU 3, memory 5,
//!   taken branch 5, indirect jump 6, serial shifts), which lands its
//!   Dhrystone figure near the 0.31 DMIPS/MHz the paper reports.
//! * [`VexRiscvModel`] — a 5-stage in-order pipeline: CPI 1 plus a
//!   1-cycle load-use interlock and a flush penalty for taken control
//!   flow (branches resolve in EX, two fetched-wrong instructions die).
//!
//! Both models halt on the same conventions as [`Machine`].

use crate::error::Rv32Error;
use crate::exec::{HaltReason, Machine, Retire};
use crate::instr::{AluOp, Instr, MulOp};
use crate::parse::Rv32Program;

/// Assigns a cycle cost to each retired instruction.
pub trait CycleModel {
    /// Short human-readable name ("PicoRV32", "VexRiscv").
    fn name(&self) -> &'static str;

    /// Cost in cycles of retiring `current`, given the previously
    /// retired instruction (for interlock modelling).
    fn cost(&mut self, current: &Retire, prev: Option<&Retire>) -> u64;
}

/// Timing summary of a modelled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleReport {
    /// Total cycles under the model.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Why the program stopped.
    pub halt: HaltReason,
}

impl CycleReport {
    /// Cycles per instruction under the model.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions as f64
    }
}

/// Runs `program` to completion under `model`.
///
/// # Errors
///
/// Propagates simulator faults and [`Rv32Error::Timeout`].
///
/// # Examples
///
/// ```
/// use rv32::{parse_program, simulate_cycles, PicoRv32Model, VexRiscvModel};
///
/// let p = parse_program("
///     li a0, 100
///     li a1, 0
/// loop:
///     add a1, a1, a0
///     addi a0, a0, -1
///     bnez a0, loop
///     ebreak
/// ")?;
/// let pico = simulate_cycles(&p, &mut PicoRv32Model::new(), 1_000_000)?;
/// let vex = simulate_cycles(&p, &mut VexRiscvModel::new(), 1_000_000)?;
/// // The non-pipelined core needs several cycles per instruction…
/// assert!(pico.cpi() > 3.0);
/// // …the pipelined one stays close to 1.
/// assert!(vex.cpi() < 2.5);
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
pub fn simulate_cycles(
    program: &Rv32Program,
    model: &mut dyn CycleModel,
    max_steps: u64,
) -> Result<CycleReport, Rv32Error> {
    let mut machine = Machine::new(program);
    let mut cycles = 0u64;
    let mut prev: Option<Retire> = None;
    for _ in 0..max_steps {
        match machine.step()? {
            Ok(retire) => {
                cycles += model.cost(&retire, prev.as_ref());
                prev = Some(retire);
            }
            Err(halt) => {
                return Ok(CycleReport {
                    cycles,
                    instructions: machine.instret(),
                    halt,
                });
            }
        }
    }
    Err(Rv32Error::Timeout { limit: max_steps })
}

/// Cycle model of the PicoRV32 (non-pipelined, "small" configuration
/// with the default serial shifter and fast multiplier).
#[derive(Debug, Clone, Default)]
pub struct PicoRv32Model {
    _private: (),
}

impl PicoRv32Model {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CycleModel for PicoRv32Model {
    fn name(&self) -> &'static str {
        "PicoRV32"
    }

    fn cost(&mut self, current: &Retire, _prev: Option<&Retire>) -> u64 {
        use Instr::*;
        match &current.instr {
            // Serial shifter: base + one cycle per 4 positions.
            Alu {
                op: AluOp::Sll | AluOp::Srl | AluOp::Sra,
                ..
            }
            | AluImm {
                op: AluOp::Sll | AluOp::Srl | AluOp::Sra,
                ..
            } => 4 + (current.shift_amount as u64).div_ceil(4),
            Alu { .. } | AluImm { .. } | Lui { .. } | Auipc { .. } => 3,
            Load { .. } => 5,
            Store { .. } => 5,
            Branch { .. } => {
                if current.taken {
                    5
                } else {
                    3
                }
            }
            Jal { .. } => 3,
            Jalr { .. } => 6,
            // Stock PicoRV32 ships a sequential shift-and-add MUL/DIV
            // unit (~40 cycles; the FAST_MUL DSP path is off in the
            // size-optimized configuration the paper compares against).
            MulDiv { op, .. } => match op {
                MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => 40,
                MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu => 40,
            },
            Fence | Ecall | Ebreak => 3,
        }
    }
}

/// Cycle model of a VexRiscv-style 5-stage in-order pipeline
/// (no branch predictor; single-cycle pipelined multiplier; iterative
/// divider).
#[derive(Debug, Clone, Default)]
pub struct VexRiscvModel {
    _private: (),
}

impl VexRiscvModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CycleModel for VexRiscvModel {
    fn name(&self) -> &'static str {
        "VexRiscv"
    }

    fn cost(&mut self, current: &Retire, prev: Option<&Retire>) -> u64 {
        use Instr::*;
        let mut cycles = 1u64;

        // Load-use interlock: previous instruction was a load whose
        // destination this instruction reads.
        if let Some(p) = prev {
            if let Load { rd, .. } = p.instr {
                if current.instr.reads().contains(&rd) {
                    cycles += 1;
                }
            }
        }

        match &current.instr {
            Branch { .. } if current.taken => cycles += 2,
            Jal { .. } | Jalr { .. } => cycles += 2,
            MulDiv {
                op: MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu,
                ..
            } => cycles += 32,
            _ => {}
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn both(src: &str) -> (CycleReport, CycleReport) {
        let p = parse_program(src).unwrap();
        let pico = simulate_cycles(&p, &mut PicoRv32Model::new(), 10_000_000).unwrap();
        let vex = simulate_cycles(&p, &mut VexRiscvModel::new(), 10_000_000).unwrap();
        (pico, vex)
    }

    #[test]
    fn pico_alu_is_3_cycles() {
        let (pico, _) = both("add a0, a1, a2\nadd a0, a1, a2\nebreak\n");
        // 2 ALU instructions at 3 cycles; the halting ebreak never
        // retires, so it is not charged.
        assert_eq!(pico.cycles, 6);
        assert_eq!(pico.instructions, 3);
    }

    #[test]
    fn pico_shift_cost_grows_with_amount() {
        let p1 = parse_program("li a0, 1\nslli a1, a0, 1\nebreak\n").unwrap();
        let p31 = parse_program("li a0, 1\nslli a1, a0, 31\nebreak\n").unwrap();
        let c1 = simulate_cycles(&p1, &mut PicoRv32Model::new(), 100).unwrap();
        let c31 = simulate_cycles(&p31, &mut PicoRv32Model::new(), 100).unwrap();
        assert!(c31.cycles > c1.cycles);
    }

    #[test]
    fn vex_load_use_interlock() {
        let with_hazard = parse_program(
            ".data\nv: .word 7\n.text\nla a0, v\nlw a1, 0(a0)\naddi a1, a1, 1\nebreak\n",
        )
        .unwrap();
        let without = parse_program(
            ".data\nv: .word 7\n.text\nla a0, v\nlw a1, 0(a0)\nnop\naddi a1, a1, 1\nebreak\n",
        )
        .unwrap();
        let h = simulate_cycles(&with_hazard, &mut VexRiscvModel::new(), 100).unwrap();
        let n = simulate_cycles(&without, &mut VexRiscvModel::new(), 100).unwrap();
        // The nop version executes one more instruction but loses the
        // interlock, so both take the same number of cycles.
        assert_eq!(h.cycles, n.cycles);
        assert_eq!(h.instructions + 1, n.instructions);
    }

    #[test]
    fn pipelined_beats_nonpipelined_on_loops() {
        let src = "
            li a0, 200
            li a1, 0
        loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ebreak
        ";
        let (pico, vex) = both(src);
        assert_eq!(pico.instructions, vex.instructions);
        assert!(
            pico.cycles > 2 * vex.cycles,
            "pico {} vex {}",
            pico.cycles,
            vex.cycles
        );
        // Sanity: PicoRV32 CPI sits in its documented ~3..6 band.
        assert!(pico.cpi() > 3.0 && pico.cpi() < 6.0, "cpi {}", pico.cpi());
        // VexRiscv CPI close to 1 with branchy code < 2.5.
        assert!(vex.cpi() >= 1.0 && vex.cpi() < 2.5, "cpi {}", vex.cpi());
    }

    #[test]
    fn divider_dominates() {
        let (pico, vex) = both("li a0, 100\nli a1, 7\ndiv a2, a0, a1\nebreak\n");
        assert!(pico.cycles >= 40);
        assert!(vex.cycles >= 33);
    }
}
