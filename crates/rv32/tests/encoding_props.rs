//! Property tests: RV32 encode/decode is a bijection over the
//! supported instruction set, and the assembler round-trips through
//! `Display` for register/immediate forms.

use proptest::prelude::*;
use rv32::{decode, encode, AluOp, BranchOp, Instr, LoadOp, MulOp, Reg, StoreOp};

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).expect("index < 32"))
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn shamt() -> impl Strategy<Value = i32> {
    0i32..=31
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    use Instr::*;
    prop_oneof![
        (reg(), -524288i32..=524287).prop_map(|(rd, imm20)| Lui { rd, imm20 }),
        (reg(), -524288i32..=524287).prop_map(|(rd, imm20)| Auipc { rd, imm20 }),
        (reg(), (-524288i32..=524287).prop_map(|o| o * 2)).prop_map(|(rd, offset)| Jal {
            rd,
            offset: offset.clamp(-1048576, 1048574) & !1
        }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, offset)| Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            reg(),
            reg(),
            (-2048i32..=2047).prop_map(|o| o * 2)
        )
            .prop_map(|(op, rs1, rs2, offset)| Branch {
                op,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            reg(),
            reg(),
            imm12()
        )
            .prop_map(|(op, rd, rs1, offset)| Load {
                op,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            reg(),
            reg(),
            imm12()
        )
            .prop_map(|(op, rs2, rs1, offset)| Store {
                op,
                rs2,
                rs1,
                offset
            }),
        (alu_op(), reg(), reg(), imm12(), shamt()).prop_map(|(op, rd, rs1, imm, sh)| {
            match op {
                AluOp::Sub => AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    imm,
                },
                AluOp::Sll | AluOp::Srl | AluOp::Sra => AluImm {
                    op,
                    rd,
                    rs1,
                    imm: sh,
                },
                _ => AluImm { op, rd, rs1, imm },
            }
        }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Alu { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Mulh),
                Just(MulOp::Mulhsu),
                Just(MulOp::Mulhu),
                Just(MulOp::Div),
                Just(MulOp::Divu),
                Just(MulOp::Rem),
                Just(MulOp::Remu)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| MulDiv { op, rd, rs1, rs2 }),
        Just(Fence),
        Just(Ecall),
        Just(Ebreak),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let word = encode(&i).expect("generated instruction encodes");
        prop_assert_eq!(decode(word).expect("decodes"), i);
    }

    #[test]
    fn encoding_is_injective(a in instr(), b in instr()) {
        if a != b {
            let wa = encode(&a).expect("encodes");
            let wb = encode(&b).expect("encodes");
            prop_assert_ne!(wa, wb, "{} vs {}", a, b);
        }
    }

    #[test]
    fn decode_never_panics(word in proptest::num::u32::ANY) {
        let _ = decode(word);
    }
}
