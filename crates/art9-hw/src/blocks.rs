//! Structural generators for the ART-9 datapath building blocks
//! (paper Fig. 4). Each function emits a gate-level [`Netlist`] from
//! ternary standard cells; the decompositions follow the standard
//! structures of the ternary-logic literature (ripple adders from
//! sum/carry cells, 2:1 mux trees, trit-serial comparison) with sizes
//! calibrated against Table IV's 652-gate datapath.

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistBuilder, NodeId};

/// Machine word width in trits.
pub const WIDTH: usize = 9;

/// One balanced ternary full adder: `(sum, carry)` of `a + b + cin`.
///
/// Decomposition (5 cells): two TNAND consensus terms feeding the
/// dedicated TSUM and TCARRY cells, plus an STI level shifter — the
/// canonical low-power decomposition of [8].
fn full_adder(b: &mut NetlistBuilder, a: NodeId, bb: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let t1 = b.gate(GateKind::Tnand, &[a, bb]);
    let t2 = b.gate(GateKind::Tnand, &[t1, cin]);
    let sum = b.gate(GateKind::Tsum, &[a, bb, cin]);
    let inv = b.gate(GateKind::Sti, &[t2]);
    let carry = b.gate(GateKind::Tcarry, &[t1, inv]);
    (sum, carry)
}

/// 9-trit adder/subtractor: operand B passes through an STI row and a
/// select mux (subtract = add negated B — the balanced system's free
/// negation), then a ripple of full adders.
pub fn adder_subtractor(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("adder-subtractor");
    let a = b.inputs(width);
    let bus_b = b.inputs(width);
    let sub_sel = b.input();
    let mut carry = b.input(); // carry-in (zero in the TALU)
    for i in 0..width {
        let neg = b.gate(GateKind::Sti, &[bus_b[i]]);
        let sel = b.gate(GateKind::Tmux, &[bus_b[i], neg, sub_sel]);
        let (s, c) = full_adder(&mut b, a[i], sel, carry);
        b.output(s);
        carry = c;
    }
    b.output(carry);
    b.build()
}

/// Trit-wise AND/OR/XOR rows of the TALU.
pub fn logic_unit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("logic-unit");
    let a = b.inputs(width);
    let bus_b = b.inputs(width);
    for i in 0..width {
        let and = b.gate(GateKind::Tand, &[a[i], bus_b[i]]);
        let or = b.gate(GateKind::Tor, &[a[i], bus_b[i]]);
        let xor = b.gate(GateKind::Txor, &[a[i], bus_b[i]]);
        b.output(and);
        b.output(or);
        b.output(xor);
    }
    b.build()
}

/// STI/NTI/PTI inverter rows (the MV path reuses the operand bus).
pub fn inverter_unit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("inverter-unit");
    let src = b.inputs(width);
    for wire in src.iter().take(width) {
        let s = b.gate(GateKind::Sti, &[*wire]);
        let n = b.gate(GateKind::Nti, &[*wire]);
        let p = b.gate(GateKind::Pti, &[*wire]);
        b.output(s);
        b.output(n);
        b.output(p);
    }
    b.build()
}

/// Barrel shifter for balanced amounts −4..+4: cascaded ±1 and ±3
/// stages selected per trit, plus a direction row.
pub fn shifter(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("shifter");
    let src = b.inputs(width);
    let amt_low = b.input(); // amount trit 0
    let amt_high = b.input(); // amount trit 1
    let dir = b.gate(GateKind::Tcmp, &[amt_low, amt_high]); // sign of amount
                                                            // Stage 1: shift by one position (mux between src[i] and neighbour).
    let mut stage1 = Vec::new();
    for i in 0..width {
        let neigh = src[(i + 1) % width];
        let m = b.gate(GateKind::Tmux, &[src[i], neigh, amt_low]);
        stage1.push(m);
    }
    // Stage 2: shift by three positions.
    for i in 0..width {
        let neigh = stage1[(i + 3) % width];
        let m = b.gate(GateKind::Tmux, &[stage1[i], neigh, amt_high]);
        let d = b.gate(GateKind::Tmux, &[m, stage1[i], dir]);
        b.output(d);
    }
    b.build()
}

/// Trit-serial comparator: a verdict chain from the most significant
/// trit down (the COMP instruction's datapath).
pub fn comparator(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("comparator");
    let a = b.inputs(width);
    let bus_b = b.inputs(width);
    let mut verdict = b.input(); // starts "equal"
    for i in (0..width).rev() {
        let diff = b.gate(GateKind::Tcmp, &[a[i], bus_b[i]]);
        verdict = b.gate(GateKind::Tmux, &[diff, verdict, verdict]);
    }
    b.output(verdict);
    b.build()
}

/// The TALU result selector: a per-trit mux tree choosing among the
/// eight function groups (add/sub, and, or, xor, inverters, shift,
/// compare, splice).
pub fn result_mux(width: usize, sources: usize) -> Netlist {
    let mut b = NetlistBuilder::new("result-mux");
    let select = b.inputs(2); // encoded select trits
    for _ in 0..width {
        // A balanced tree of 2:1 muxes over `sources` inputs.
        let mut layer: Vec<NodeId> = (0..sources).map(|_| b.input()).collect();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(b.gate(GateKind::Tmux, &[pair[0], pair[1], select[0]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let out = b.gate(GateKind::Tbuf, &[layer[0], select[1]]);
        b.output(out);
    }
    b.build()
}

/// The forwarding multiplexers in front of both TALU operand ports
/// (EX/MEM and MEM/WB paths — paper §IV-B).
pub fn forwarding_muxes(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("forwarding-muxes");
    for _ in 0..2 {
        // two operand ports
        let rf = b.inputs(width);
        let exmem = b.inputs(width);
        let memwb = b.inputs(width);
        let sel = b.inputs(2);
        for i in 0..width {
            let m1 = b.gate(GateKind::Tmux, &[rf[i], exmem[i], sel[0]]);
            let m2 = b.gate(GateKind::Tmux, &[m1, memwb[i], sel[1]]);
            b.output(m2);
        }
    }
    b.build()
}

/// PC incrementer: +1 needs only a half-adder chain (sum + carry cell
/// per trit).
pub fn pc_incrementer(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("pc-incrementer");
    let pc = b.inputs(width);
    let mut carry = b.input(); // the +1
    for t in pc.iter().take(width) {
        let s = b.gate(GateKind::Tsum, &[*t, carry]);
        carry = b.gate(GateKind::Tcarry, &[*t, carry]);
        b.output(s);
    }
    b.build()
}

/// The ID-stage branch unit: dedicated target adder (PC + offset) and
/// the 1-trit condition checker with its forwarding mux (paper §IV-B).
pub fn branch_unit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("branch-unit");
    let pc = b.inputs(width);
    let off = b.inputs(width);
    let mut carry = b.input();
    for i in 0..width {
        let (s, c) = full_adder(&mut b, pc[i], off[i], carry);
        b.output(s);
        carry = c;
    }
    // Condition checker: forwarded LST vs the 1-trit constant B.
    let lst_rf = b.input();
    let lst_ex = b.input();
    let lst_mem = b.input();
    let fwd_sel = b.inputs(2);
    let m1 = b.gate(GateKind::Tmux, &[lst_rf, lst_ex, fwd_sel[0]]);
    let m2 = b.gate(GateKind::Tmux, &[m1, lst_mem, fwd_sel[1]]);
    let cond_const = b.input();
    let diff = b.gate(GateKind::Tcmp, &[m2, cond_const]);
    let eq_mode = b.input();
    let taken = b.gate(GateKind::Txor, &[diff, eq_mode]);
    b.output(taken);
    b.build()
}

/// The main decoder: matches the ternary prefix code (DESIGN.md §3.1)
/// and drives ~a dozen control signals. Sized per prefix level: three
/// detector gates per opcode trit level plus control buffers.
pub fn main_decoder() -> Netlist {
    let mut b = NetlistBuilder::new("main-decoder");
    let instr = b.inputs(WIDTH);
    // Level detectors for t8, t7, t6, t5, t4: each trit feeds NTI/PTI
    // pairs producing is-neg / is-pos / is-zero rails.
    let mut rails = Vec::new();
    for t in instr.iter().take(5) {
        let n = b.gate(GateKind::Nti, &[*t]);
        let p = b.gate(GateKind::Pti, &[*t]);
        let z = b.gate(GateKind::Tnor, &[n, p]);
        rails.push((n, p, z));
    }
    // Opcode group matches: 7 two-trit codes + I-type ladder + R-type
    // sub-opcode decode (12 matches over the 3-trit field).
    let mut matches = Vec::new();
    for i in 0..7 {
        let (a, _, _) = rails[i % 5];
        let (_, p, _) = rails[(i + 1) % 5];
        matches.push(b.gate(GateKind::Tand, &[a, p]));
    }
    for i in 0..12 {
        let (a, _, _) = rails[i % 5];
        let (_, _, z) = rails[(i + 2) % 5];
        let m = b.gate(GateKind::Tand, &[a, z]);
        matches.push(b.gate(GateKind::Tand, &[m, instr[5 + (i % 3)]]));
    }
    // Control outputs: ALU op (3 trits), mem read/write, reg write,
    // branch kind, imm select — each an OR over its match set + buffer.
    for chunk in matches.chunks(3) {
        let mut acc = chunk[0];
        for m in &chunk[1..] {
            acc = b.gate(GateKind::Tor, &[acc, *m]);
        }
        let out = b.gate(GateKind::Tbuf, &[acc]);
        b.output(out);
    }
    b.build()
}

/// Immediate extraction and sign handling: field steering muxes for
/// the five immediate shapes plus the LUI/LI splice row.
pub fn immediate_unit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("immediate-unit");
    let instr = b.inputs(width);
    let shape = b.inputs(2);
    for i in 0..width {
        // Each output trit selects among {imm3, imm4, imm5 fields, zero}.
        let m1 = b.gate(
            GateKind::Tmux,
            &[instr[i % 5 % width], instr[(i % 4 + 3) % width], shape[0]],
        );
        let m2 = b.gate(GateKind::Tmux, &[m1, instr[i % 3 % width], shape[1]]);
        b.output(m2);
    }
    // Splice row for LI (upper-trit keep) — one mux per trit.
    let old = b.inputs(width);
    let keep = b.input();
    for i in 0..width {
        let m = b.gate(GateKind::Tmux, &[instr[i], old[i], keep]);
        b.output(m);
    }
    b.build()
}

/// Hazard detection unit: register-index equality comparators between
/// adjacent pipeline stages (2-trit indices, three compare pairs) plus
/// the stall/flush priority gates.
pub fn hazard_unit() -> Netlist {
    let mut b = NetlistBuilder::new("hazard-unit");
    let mut alarms = Vec::new();
    for _ in 0..3 {
        // index pair (2 trits each)
        let x = b.inputs(2);
        let y = b.inputs(2);
        let e0 = b.gate(GateKind::Tcmp, &[x[0], y[0]]);
        let e1 = b.gate(GateKind::Tcmp, &[x[1], y[1]]);
        let both = b.gate(GateKind::Tnor, &[e0, e1]);
        alarms.push(both);
    }
    let load_flag = b.input();
    let branch_flag = b.input();
    let a = b.gate(GateKind::Tor, &[alarms[0], alarms[1]]);
    let any = b.gate(GateKind::Tor, &[a, alarms[2]]);
    let load_use = b.gate(GateKind::Tand, &[any, load_flag]);
    let stall = b.gate(GateKind::Tor, &[load_use, branch_flag]);
    let flush = b.gate(GateKind::Tbuf, &[stall]);
    b.output(stall);
    b.output(flush);
    b.build()
}

/// The write-back selector (memory data vs TALU result).
pub fn writeback_mux(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("writeback-mux");
    let alu = b.inputs(width);
    let mem = b.inputs(width);
    let sel = b.input();
    for i in 0..width {
        let m = b.gate(GateKind::Tmux, &[alu[i], mem[i], sel]);
        b.output(m);
    }
    b.build()
}

/// A combinational ternary array multiplier (N×N trits, low half of
/// the product) — **not** part of the ART-9 (Table II: "Multiplier ✗").
/// Built for the ablation study: it quantifies what the paper saved by
/// leaving multiplication to software. Structure: one single-trit
/// product cell per partial-product position (a balanced trit product
/// is a single TXOR-class cell — `a·b = −xor(a,b)` — plus an STI), and
/// a full-adder reduction row per multiplier trit.
pub fn array_multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("array-multiplier");
    let a = b.inputs(width);
    let m = b.inputs(width);
    // Accumulator rows: start from zero-driver buffers.
    let mut acc: Vec<NodeId> = (0..width)
        .map(|_| {
            let z = b.input();
            b.gate(GateKind::Tbuf, &[z])
        })
        .collect();
    for (row, m_t) in m.iter().enumerate() {
        // Partial products for positions row..width.
        let mut carry = b.input(); // zero carry-in per row
        for col in 0..width - row {
            let x = b.gate(GateKind::Txor, &[a[col], *m_t]);
            let pp = b.gate(GateKind::Sti, &[x]); // a·b = -xor(a,b)
            let (s, c) = {
                let t1 = b.gate(GateKind::Tnand, &[acc[row + col], pp]);
                let t2 = b.gate(GateKind::Tnand, &[t1, carry]);
                let sum = b.gate(GateKind::Tsum, &[acc[row + col], pp, carry]);
                let inv = b.gate(GateKind::Sti, &[t2]);
                let cr = b.gate(GateKind::Tcarry, &[t1, inv]);
                (sum, cr)
            };
            acc[row + col] = s;
            carry = c;
        }
    }
    for out in acc {
        b.output(out);
    }
    b.build()
}

/// The TRF's two asynchronous read ports: per port and per trit, a
/// 9:1 selection tree of 2:1 muxes over the nine register outputs
/// (paper §IV-B: "two asynchronous read ports"). The flip-flops
/// themselves live in [`storage`]; these trees are combinational
/// datapath and a major share of Table IV's gate population.
pub fn trf_read_ports(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("trf-read-ports");
    for _port in 0..2 {
        let sel = b.inputs(2);
        for _trit in 0..width {
            let mut layer: Vec<NodeId> = (0..9).map(|_| b.input()).collect();
            let mut level = 0;
            while layer.len() > 1 {
                let s = sel[level % 2];
                let mut next = Vec::new();
                for pair in layer.chunks(2) {
                    if pair.len() == 2 {
                        next.push(b.gate(GateKind::Tmux, &[pair[0], pair[1], s]));
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
                level += 1;
            }
            b.output(layer[0]);
        }
    }
    b.build()
}

/// TRF write-port decoder: the 2-trit `Ta` index becomes nine one-hot
/// write enables (NTI/PTI rail pair + a match gate per register).
pub fn regindex_decoder() -> Netlist {
    let mut b = NetlistBuilder::new("regindex-decoder");
    let idx = b.inputs(2);
    let n0 = b.gate(GateKind::Nti, &[idx[0]]);
    let p0 = b.gate(GateKind::Pti, &[idx[0]]);
    let n1 = b.gate(GateKind::Nti, &[idx[1]]);
    let p1 = b.gate(GateKind::Pti, &[idx[1]]);
    let rails = [n0, p0, n1, p1];
    let we = b.input(); // write enable
    for r in 0..9 {
        let a = rails[r % 4];
        let c = rails[(r + 1) % 4];
        let m = b.gate(GateKind::Tand, &[a, c]);
        let gated = b.gate(GateKind::Tand, &[m, we]);
        b.output(gated);
    }
    b.build()
}

/// PC source selection: sequential (PC+1), branch target, or JALR
/// target — two mux levels per trit.
pub fn pc_source_mux(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("pc-source-mux");
    let seq = b.inputs(width);
    let branch = b.inputs(width);
    let jalr = b.inputs(width);
    let sel = b.inputs(2);
    for i in 0..width {
        let m1 = b.gate(GateKind::Tmux, &[seq[i], branch[i], sel[0]]);
        let m2 = b.gate(GateKind::Tmux, &[m1, jalr[i], sel[1]]);
        b.output(m2);
    }
    b.build()
}

/// TDM interface: address drivers and the store-data path buffers
/// (synchronous single-port memory, §IV-B).
pub fn memory_interface(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("memory-interface");
    let addr = b.inputs(width);
    let data = b.inputs(width);
    let wen = b.input();
    for i in 0..width {
        let a = b.gate(GateKind::Tbuf, &[addr[i]]);
        let d = b.gate(GateKind::Tand, &[data[i], wen]);
        b.output(a);
        b.output(d);
    }
    b.build()
}

/// Sequential state of the core: PC, the TRF (9×9 trits) and the four
/// pipeline registers — as TDFF cells. Kept separate from the
/// combinational datapath because Table IV counts datapath gates only,
/// while the FPGA model (Table V) counts these as registers.
pub fn storage() -> Netlist {
    let mut b = NetlistBuilder::new("storage");
    let mut dffs = |n: usize| {
        for _ in 0..n {
            let d = b.input();
            let q = b.gate(GateKind::Tdff, &[d]);
            b.output(q);
        }
    };
    dffs(WIDTH); // PC
    dffs(9 * WIDTH); // TRF
    dffs(18); // IF/ID: instruction + PC
    dffs(32); // ID/EX: two operands + PC + controls
    dffs(21); // EX/MEM: result + store data + controls
    dffs(11); // MEM/WB: value + controls
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::CellParams;

    fn unit(_: GateKind) -> CellParams {
        CellParams {
            delay_ps: 10.0,
            static_nw: 1.0,
            switch_energy_fj: 0.1,
        }
    }

    #[test]
    fn adder_gate_count_scales_with_width() {
        let a9 = adder_subtractor(9);
        let a3 = adder_subtractor(3);
        // Per trit: STI + TMUX + 5-cell TFA = 7.
        assert_eq!(a9.gate_count(), 9 * 7);
        assert_eq!(a3.gate_count(), 3 * 7);
    }

    #[test]
    fn adder_critical_path_grows_with_width() {
        let a9 = adder_subtractor(9);
        let a3 = adder_subtractor(3);
        assert!(a9.critical_path_ps(&unit) > a3.critical_path_ps(&unit));
    }

    #[test]
    fn logic_and_inverters_are_one_level() {
        let l = logic_unit(9);
        assert_eq!(l.gate_count(), 27);
        assert!((l.critical_path_ps(&unit) - 10.0).abs() < 1e-9);
        let i = inverter_unit(9);
        assert_eq!(i.gate_count(), 27);
    }

    #[test]
    fn storage_is_all_dffs() {
        let s = storage();
        let h = s.histogram();
        assert_eq!(h.len(), 1);
        // 9 PC + 81 TRF + 82 pipeline trits.
        assert_eq!(h[&GateKind::Tdff], 9 + 81 + 82);
    }

    #[test]
    fn blocks_have_nonzero_counts() {
        for n in [
            shifter(9),
            comparator(9),
            result_mux(9, 8),
            forwarding_muxes(9),
            pc_incrementer(9),
            branch_unit(9),
            main_decoder(),
            immediate_unit(9),
            hazard_unit(),
            writeback_mux(9),
        ] {
            assert!(n.gate_count() > 0, "{} is empty", n.name());
            assert!(n.critical_path_ps(&unit) > 0.0, "{} has no path", n.name());
        }
    }
}
