//! # `art9-hw` — the hardware-level evaluation framework
//!
//! The gate-level half of the paper's §III-B framework (Fig. 3):
//!
//! * [`gate`] / [`netlist`] — ternary standard cells and netlist DAGs
//!   with longest-path timing and leakage/switching power roll-ups;
//! * [`blocks`] / [`datapath`] — structural generators for every block
//!   of the 5-stage ART-9 (Fig. 4), totalling ≈ 650 combinational
//!   gates like Table IV's 652;
//! * [`tech`] — technology libraries ("property descriptions"):
//!   the 32 nm CNTFET ternary cells of \[7\]/\[8\] and a generic CMOS
//!   ternary foil;
//! * [`analyzer`] — the gate-level analyzer (delay + power);
//! * [`fpga`] — the binary-encoded-ternary FPGA mapping behind
//!   Table V (ALMs / registers / RAM bits / power);
//! * [`estimator`] — the performance estimator combining cycle-
//!   accurate simulation results into DMIPS and DMIPS/W;
//! * [`activity`] — the dynamic-activity path: measured trit flips
//!   (from the simulator's `EnergyAccounting` observer) → nanojoules,
//!   average power, and measured DMIPS/W (`docs/ENERGY.md`).
//!
//! ## Quick start
//!
//! ```
//! use art9_hw::analyzer::analyze;
//! use art9_hw::datapath::Datapath;
//! use art9_hw::estimator::{estimate_cntfet, DhrystoneResult};
//! use art9_hw::tech::cntfet32;
//!
//! let core = Datapath::art9();
//! let analysis = analyze(&core, &cntfet32());
//! let table4 = estimate_cntfet(
//!     &analysis,
//!     DhrystoneResult { cycles_per_iteration: 1355.0 },
//! );
//! println!(
//!     "{} gates, {:.1} µW, {:.2e} DMIPS/W",
//!     table4.total_gates, table4.power_uw, table4.dmips_per_watt
//! );
//! assert!(table4.total_gates > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod analyzer;
pub mod blocks;
pub mod datapath;
pub mod estimator;
pub mod fpga;
pub mod gate;
pub mod netlist;
pub mod tech;
