//! Dynamic-activity energy estimation: from measured trit flips to
//! nanojoules.
//!
//! The static Table IV path ([`crate::analyzer`] + [`crate::estimator`])
//! assumes one *average* switching activity for every gate. This module
//! is the measured counterpart: the simulator side (the
//! `EnergyAccounting` observer in `art9-sim`) counts the trit flips an
//! execution actually causes in each datapath structure, and
//! [`dynamic_energy`] converts those flips into energy through the same
//! technology library — no new calibration, just the per-cell switching
//! energies the static path already uses:
//!
//! * **regfile**, **tdm**, **fetch** flips land in sequential cells, so
//!   they cost one [`GateKind::Tdff`] transition each;
//! * **alu** (result-bus) flips drive the arithmetic network, costed as
//!   one [`GateKind::Tsum`] transition each — the dominant combinational
//!   cell of the TALU.
//!
//! [`measured_power`] then combines the energy with the cycle count and
//! the analyzer's clock to yield average dynamic power, and
//! [`measured_dmips_per_watt`] produces the measured, power-aware
//! DMIPS/W of the "Measured vs paper Table IV" comparison (see
//! `docs/ENERGY.md`).
//!
//! This crate has no dependency on the simulator; activity arrives as a
//! plain [`ActivityCounts`] and instruction classes are derived from
//! mnemonic strings ([`InstrClass::classify`]).

use crate::analyzer::GateAnalysis;
use crate::gate::GateKind;
use crate::tech::TechLibrary;

/// VAX 11/780 Dhrystones per second — the DMIPS normalization constant.
const VAX_DHRYSTONES_PER_S: f64 = 1757.0;

/// Femtojoules per nanojoule.
const FJ_PER_NJ: f64 = 1.0e6;

/// The instruction classes Table IV's per-class energy breakdown uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Arithmetic: ADD, SUB, SR, SL, COMP, ADDI, SRI, SLI.
    Alu,
    /// Trit-logical: PTI, NTI, STI, AND, OR, XOR, ANDI.
    Logic,
    /// Register moves and immediates: MV, LI, LUI.
    Move,
    /// TDM access: LOAD, STORE.
    Memory,
    /// Branches and jumps: BEQ, BNE, JAL, JALR.
    Control,
}

/// All classes, in report order.
pub const ALL_CLASSES: [InstrClass; 5] = [
    InstrClass::Alu,
    InstrClass::Logic,
    InstrClass::Move,
    InstrClass::Memory,
    InstrClass::Control,
];

impl InstrClass {
    /// Lower-case class name for reports and the bench schema.
    pub const fn name(self) -> &'static str {
        match self {
            InstrClass::Alu => "alu",
            InstrClass::Logic => "logic",
            InstrClass::Move => "move",
            InstrClass::Memory => "memory",
            InstrClass::Control => "control",
        }
    }

    /// Classifies an ART-9 mnemonic; `None` for unknown strings.
    pub fn classify(mnemonic: &str) -> Option<Self> {
        Some(match mnemonic {
            "ADD" | "SUB" | "SR" | "SL" | "COMP" | "ADDI" | "SRI" | "SLI" => InstrClass::Alu,
            "PTI" | "NTI" | "STI" | "AND" | "OR" | "XOR" | "ANDI" => InstrClass::Logic,
            "MV" | "LI" | "LUI" => InstrClass::Move,
            "LOAD" | "STORE" => InstrClass::Memory,
            "BEQ" | "BNE" | "JAL" | "JALR" => InstrClass::Control,
            _ => return None,
        })
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Measured switching activity: trit flips per datapath structure, as
/// counted by the simulator's write-back stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Instructions retired.
    pub retired: u64,
    /// Register-file write-port flips.
    pub regfile: u64,
    /// TDM cell flips.
    pub tdm: u64,
    /// Fetch-path (instruction-register + PC) flips.
    pub fetch: u64,
    /// Result-bus flips.
    pub alu: u64,
}

impl ActivityCounts {
    /// Sum over all structures.
    pub fn total_flips(&self) -> u64 {
        self.regfile + self.tdm + self.fetch + self.alu
    }

    /// Accumulates another count set (e.g. per-class → whole run).
    pub fn add(&mut self, other: &ActivityCounts) {
        self.retired += other.retired;
        self.regfile += other.regfile;
        self.tdm += other.tdm;
        self.fetch += other.fetch;
        self.alu += other.alu;
    }
}

/// Dynamic switching energy of a run, per structure, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicEnergy {
    /// Register-file write energy.
    pub regfile_nj: f64,
    /// TDM write energy.
    pub tdm_nj: f64,
    /// Fetch-path energy.
    pub fetch_nj: f64,
    /// Result-bus / arithmetic-network energy.
    pub alu_nj: f64,
}

impl DynamicEnergy {
    /// Total dynamic energy, nJ.
    pub fn total_nj(&self) -> f64 {
        self.regfile_nj + self.tdm_nj + self.fetch_nj + self.alu_nj
    }

    /// Energy per instruction, picojoules (`NaN`-free: 0 when nothing
    /// retired).
    pub fn per_instruction_pj(&self, retired: u64) -> f64 {
        if retired == 0 {
            return 0.0;
        }
        self.total_nj() * 1.0e3 / retired as f64
    }
}

/// Converts measured flips into energy via the technology library.
///
/// Sequential-structure flips (regfile, TDM, fetch) cost one
/// [`GateKind::Tdff`] transition; result-bus flips one
/// [`GateKind::Tsum`] transition. The arithmetic is exact — golden
/// tests pin hand-computed flip counts to the nJ this returns.
pub fn dynamic_energy(counts: &ActivityCounts, lib: &TechLibrary) -> DynamicEnergy {
    let seq_fj = lib.cell(GateKind::Tdff).switch_energy_fj;
    let bus_fj = lib.cell(GateKind::Tsum).switch_energy_fj;
    DynamicEnergy {
        regfile_nj: counts.regfile as f64 * seq_fj / FJ_PER_NJ,
        tdm_nj: counts.tdm as f64 * seq_fj / FJ_PER_NJ,
        fetch_nj: counts.fetch as f64 * seq_fj / FJ_PER_NJ,
        alu_nj: counts.alu as f64 * bus_fj / FJ_PER_NJ,
    }
}

/// Average power of a measured run at the analyzer's clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPower {
    /// Wall-clock time of the run at `fmax`, microseconds.
    pub time_us: f64,
    /// Average dynamic power over the run, µW.
    pub dynamic_uw: f64,
    /// Dynamic plus the analyzer's static leakage, µW.
    pub total_uw: f64,
}

/// Spreads a run's measured dynamic energy over its cycle count at the
/// clock implied by the gate analysis, and adds the static leakage.
///
/// # Panics
///
/// Panics if `cycles` is zero — a run that never cycled has no power.
pub fn measured_power(
    analysis: &GateAnalysis,
    energy: &DynamicEnergy,
    cycles: u64,
) -> MeasuredPower {
    assert!(cycles > 0, "measured run must have cycles");
    let time_s = cycles as f64 / (analysis.fmax_mhz() * 1.0e6);
    let dynamic_uw = energy.total_nj() * 1.0e-9 / time_s * 1.0e6;
    MeasuredPower {
        time_us: time_s * 1.0e6,
        dynamic_uw,
        total_uw: dynamic_uw + analysis.static_uw,
    }
}

/// The measured Table IV efficiency row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredDhrystone {
    /// Dhrystone DMIPS at the analyzer's clock.
    pub dmips: f64,
    /// Average total power over the measured run, µW.
    pub total_uw: f64,
    /// Efficiency: DMIPS per watt, from measured switching activity.
    pub dmips_per_watt: f64,
}

/// DMIPS/W from a measured Dhrystone run: `iterations` completed in
/// `cycles`, with the dynamic energy actually switched.
///
/// # Panics
///
/// Panics if `cycles` or `iterations` is zero.
pub fn measured_dmips_per_watt(
    analysis: &GateAnalysis,
    energy: &DynamicEnergy,
    cycles: u64,
    iterations: u64,
) -> MeasuredDhrystone {
    assert!(iterations > 0, "measured Dhrystone needs iterations");
    let power = measured_power(analysis, energy, cycles);
    let time_s = power.time_us * 1.0e-6;
    let dmips = iterations as f64 / time_s / VAX_DHRYSTONES_PER_S;
    MeasuredDhrystone {
        dmips,
        total_uw: power.total_uw,
        dmips_per_watt: dmips / (power.total_uw * 1.0e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::datapath::Datapath;
    use crate::estimator::{estimate_cntfet, DhrystoneResult};
    use crate::tech::{cntfet32, generic_cmos_ternary};

    #[test]
    fn every_mnemonic_classifies_exactly_once() {
        // The 24 ART-9 mnemonics, spelled out so this crate needs no
        // ISA dependency; a new opcode must be added here and in
        // classify() together.
        let mnemonics = [
            "MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP",
            "ANDI", "ADDI", "SRI", "SLI", "LUI", "LI", "BEQ", "BNE", "JAL", "JALR", "LOAD",
            "STORE",
        ];
        let mut per_class = [0usize; 5];
        for m in mnemonics {
            let class = InstrClass::classify(m).unwrap_or_else(|| panic!("{m} unclassified"));
            per_class[ALL_CLASSES.iter().position(|c| *c == class).unwrap()] += 1;
        }
        assert_eq!(per_class, [8, 7, 3, 2, 4], "class sizes drifted");
        assert_eq!(InstrClass::classify("NOPE"), None);
        assert_eq!(InstrClass::classify("mv"), None, "classes are upper-case");
    }

    /// Golden numbers: a hand-written micro-sequence with known flips.
    ///
    /// `LI t2, 121` into a zero register flips 5 regfile trits
    /// (121 = +++++), `ADDI t2, 1` flips 6 (121 → 122 = +-----), and a
    /// halting `JAL t0, 0` links 3 = 00000000+0 for 1 more — the
    /// worked example of the `EnergyAccounting` docs. With 4 TDM flips
    /// and 20 fetch + 7 bus flips thrown in, the cntfet-32nm table
    /// (TDFF 0.90 fJ, TSUM 0.66 fJ) gives exactly:
    ///
    /// ```text
    /// (12 + 4 + 20) · 0.90 fJ + 7 · 0.66 fJ = 32.4 + 4.62 = 37.02 fJ
    /// ```
    #[test]
    fn golden_micro_sequence_energy_is_exact() {
        let counts = ActivityCounts {
            retired: 3,
            regfile: 5 + 6 + 1,
            tdm: 4,
            fetch: 20,
            alu: 7,
        };
        let e = dynamic_energy(&counts, &cntfet32());
        assert!((e.regfile_nj - 12.0 * 0.90e-6).abs() < 1e-15);
        assert!((e.tdm_nj - 4.0 * 0.90e-6).abs() < 1e-15);
        assert!((e.fetch_nj - 20.0 * 0.90e-6).abs() < 1e-15);
        assert!((e.alu_nj - 7.0 * 0.66e-6).abs() < 1e-15);
        assert!((e.total_nj() - 37.02e-6).abs() < 1e-15);
        // EPI: 37.02 fJ over 3 instructions = 12.34 fJ = 0.01234 pJ.
        assert!((e.per_instruction_pj(3) - 0.01234).abs() < 1e-12);
    }

    #[test]
    fn zero_activity_means_zero_energy() {
        let e = dynamic_energy(&ActivityCounts::default(), &cntfet32());
        assert_eq!(e.total_nj(), 0.0);
        assert_eq!(e.per_instruction_pj(0), 0.0);
    }

    #[test]
    fn energy_scales_with_technology() {
        let counts = ActivityCounts {
            retired: 100,
            regfile: 500,
            tdm: 80,
            fetch: 900,
            alu: 400,
        };
        let fast = dynamic_energy(&counts, &cntfet32());
        let slow = dynamic_energy(&counts, &generic_cmos_ternary());
        // generic CMOS multiplies every switching energy by 5.
        assert!((slow.total_nj() / fast.total_nj() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn measured_power_arithmetic_is_exact() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        // 1000 flips of TDFF = 900 fJ = 9e-4 nJ over 1000 cycles.
        let counts = ActivityCounts {
            retired: 800,
            regfile: 1000,
            ..ActivityCounts::default()
        };
        let e = dynamic_energy(&counts, &cntfet32());
        let p = measured_power(&a, &e, 1000);
        let time_s = 1000.0 / (a.fmax_mhz() * 1.0e6);
        let expect_uw = 9.0e-4 * 1.0e-9 / time_s * 1.0e6;
        assert!((p.dynamic_uw - expect_uw).abs() < 1e-9);
        assert!((p.total_uw - (expect_uw + a.static_uw)).abs() < 1e-9);
    }

    #[test]
    fn measured_dhrystone_matches_hand_arithmetic() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        let counts = ActivityCounts {
            retired: 135_500,
            regfile: 300_000,
            tdm: 40_000,
            fetch: 500_000,
            alu: 250_000,
        };
        let e = dynamic_energy(&counts, &cntfet32());
        let m = measured_dmips_per_watt(&a, &e, 135_500, 100);
        // DMIPS = iters / time / 1757 with time = cycles / fmax.
        let time_s = 135_500.0 / (a.fmax_mhz() * 1.0e6);
        let dmips = 100.0 / time_s / 1757.0;
        assert!((m.dmips - dmips).abs() < 1e-9);
        assert!(m.dmips_per_watt > 0.0);
        // Measured dynamic power uses the real activity, which for this
        // modest flip density sits below the static path's pessimistic
        // every-gate-at-12% assumption.
        let static_path = estimate_cntfet(
            &a,
            DhrystoneResult {
                cycles_per_iteration: 1355.0,
            },
        );
        assert!(m.total_uw < static_path.power_uw * 2.0, "sanity bound");
    }

    /// The static Table IV path must be byte-for-byte unaffected by the
    /// dynamic-activity machinery: same gates, same µW, same DMIPS/W as
    /// the values the analyzer produced before this module existed.
    #[test]
    fn static_table4_path_is_unchanged() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        let est = estimate_cntfet(
            &a,
            DhrystoneResult {
                cycles_per_iteration: 1355.0,
            },
        );
        // Frozen reference values of the committed datapath + library.
        assert_eq!(a.gates, d.datapath_gates(), "gate count drifted");
        let frozen_power = a.static_uw + a.dynamic_uw;
        assert!((est.power_uw - frozen_power).abs() < 1e-12);
        let frozen_dmips = (1.0e6 / (1355.0 * 1757.0)) * a.fmax_mhz();
        assert!((est.dmips - frozen_dmips).abs() < 1e-9);
        assert!((est.dmips_per_watt - frozen_dmips / (frozen_power * 1e-6)).abs() < 1e-3);
    }
}
