//! Gate netlists and their structural/timing analysis.
//!
//! A [`Netlist`] is a DAG of [`GateKind`] instances built through
//! [`NetlistBuilder`]; fan-ins always reference already-created nodes,
//! so the storage order is a topological order and longest-path timing
//! is a single sweep.

use std::collections::BTreeMap;

use crate::gate::{CellParams, GateKind};

/// Handle to a node (gate, primary input or register output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

#[derive(Debug, Clone)]
struct Node {
    kind: Option<GateKind>, // None = primary input / register output
    fanins: Vec<NodeId>,
}

/// A named gate-level netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

/// Incremental netlist construction.
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
}

impl NetlistBuilder {
    /// Starts a netlist with the given block name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            netlist: Netlist {
                name: name.into(),
                nodes: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// Adds a primary input (or pipeline-register output) node.
    pub fn input(&mut self) -> NodeId {
        self.netlist.nodes.push(Node {
            kind: None,
            fanins: Vec::new(),
        });
        NodeId(self.netlist.nodes.len() as u32 - 1)
    }

    /// Adds a vector of `n` inputs (a trit bus).
    pub fn inputs(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Instantiates a gate.
    ///
    /// # Panics
    ///
    /// Panics if a fan-in refers to a node that does not exist yet
    /// (construction must be topological).
    pub fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        for f in fanins {
            assert!(
                (f.0 as usize) < self.netlist.nodes.len(),
                "fan-in {f:?} does not exist"
            );
        }
        self.netlist.nodes.push(Node {
            kind: Some(kind),
            fanins: fanins.to_vec(),
        });
        NodeId(self.netlist.nodes.len() as u32 - 1)
    }

    /// Marks a node as a block output (timing endpoint).
    pub fn output(&mut self, id: NodeId) {
        self.netlist.outputs.push(id);
    }

    /// Finishes construction.
    pub fn build(self) -> Netlist {
        self.netlist
    }
}

impl Netlist {
    /// The block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gate instances (inputs are free).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_some()).count()
    }

    /// Gate-count histogram by cell kind.
    pub fn histogram(&self) -> BTreeMap<GateKind, usize> {
        let mut h = BTreeMap::new();
        for n in &self.nodes {
            if let Some(k) = n.kind {
                *h.entry(k).or_insert(0) += 1;
            }
        }
        h
    }

    /// Longest combinational path in picoseconds under `params`
    /// (sequential cells contribute their clk→Q delay at path starts
    /// and end paths at their D input).
    pub fn critical_path_ps(&self, params: &dyn Fn(GateKind) -> CellParams) -> f64 {
        let mut arrival = vec![0.0f64; self.nodes.len()];
        let mut worst: f64 = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(kind) = node.kind else {
                arrival[i] = 0.0;
                continue;
            };
            let input_arrival = node
                .fanins
                .iter()
                .map(|f| arrival[f.0 as usize])
                .fold(0.0f64, f64::max);
            let p = params(kind);
            if kind.is_sequential() {
                // Timing endpoint: path ends at D; Q launches fresh.
                worst = worst.max(input_arrival);
                arrival[i] = p.delay_ps; // clk -> Q
            } else {
                arrival[i] = input_arrival + p.delay_ps;
                worst = worst.max(arrival[i]);
            }
        }
        worst
    }

    /// Static (leakage) power in nanowatts.
    pub fn static_power_nw(&self, params: &dyn Fn(GateKind) -> CellParams) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| n.kind)
            .map(|k| params(k).static_nw)
            .sum()
    }

    /// Dynamic power in nanowatts at `freq_mhz` with the given average
    /// switching activity (transitions per cell per cycle).
    pub fn dynamic_power_nw(
        &self,
        params: &dyn Fn(GateKind) -> CellParams,
        freq_mhz: f64,
        activity: f64,
    ) -> f64 {
        // nW = fJ * MHz * activity  (1e-15 J * 1e6 1/s = 1e-9 W).
        self.nodes
            .iter()
            .filter_map(|n| n.kind)
            .map(|k| params(k).switch_energy_fj * freq_mhz * activity)
            .sum()
    }

    /// Renders the netlist as structural HDL-like text — the
    /// "synthesizable RTL description" artifact of the paper's Fig. 3
    /// flow. One line per gate: `n<id> = KIND(n<fanin>, …);` with
    /// primary inputs declared first and outputs marked at the end.
    ///
    /// # Examples
    ///
    /// ```
    /// use art9_hw::netlist::NetlistBuilder;
    /// use art9_hw::gate::GateKind;
    ///
    /// let mut b = NetlistBuilder::new("demo");
    /// let a = b.input();
    /// let x = b.gate(GateKind::Sti, &[a]);
    /// b.output(x);
    /// let text = b.build().to_structural_text();
    /// assert!(text.contains("module demo"));
    /// assert!(text.contains("STI"));
    /// ```
    pub fn to_structural_text(&self) -> String {
        let mut out = format!("module {} ;\n", self.name);
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                None => out.push_str(&format!("  input  n{i} ;\n")),
                Some(kind) => {
                    let fanins: Vec<String> =
                        node.fanins.iter().map(|f| format!("n{}", f.0)).collect();
                    out.push_str(&format!(
                        "  n{i} = {}({}) ;\n",
                        kind.name(),
                        fanins.join(", ")
                    ));
                }
            }
        }
        for o in &self.outputs {
            out.push_str(&format!("  output n{} ;\n", o.0));
        }
        out.push_str("endmodule\n");
        out
    }

    /// Merges several netlists into one (for whole-datapath totals).
    pub fn merged(name: impl Into<String>, parts: &[&Netlist]) -> Netlist {
        let mut merged = Netlist {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        };
        for part in parts {
            let base = merged.nodes.len() as u32;
            for node in &part.nodes {
                merged.nodes.push(Node {
                    kind: node.kind,
                    fanins: node.fanins.iter().map(|f| NodeId(f.0 + base)).collect(),
                });
            }
            merged
                .outputs
                .extend(part.outputs.iter().map(|f| NodeId(f.0 + base)));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_params(_: GateKind) -> CellParams {
        CellParams {
            delay_ps: 10.0,
            static_nw: 2.0,
            switch_energy_fj: 0.5,
        }
    }

    #[test]
    fn counts_and_histogram() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input();
        let c = b.input();
        let x = b.gate(GateKind::Tand, &[a, c]);
        let y = b.gate(GateKind::Sti, &[x]);
        b.output(y);
        let n = b.build();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.histogram()[&GateKind::Tand], 1);
        assert_eq!(n.histogram()[&GateKind::Sti], 1);
    }

    #[test]
    fn critical_path_is_longest_chain() {
        let mut b = NetlistBuilder::new("chain");
        let mut x = b.input();
        for _ in 0..5 {
            x = b.gate(GateKind::Sti, &[x]);
        }
        // A short parallel branch.
        let y = b.input();
        let _short = b.gate(GateKind::Tand, &[y, y]);
        b.output(x);
        let n = b.build();
        assert!((n.critical_path_ps(&unit_params) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn dff_cuts_paths() {
        let mut b = NetlistBuilder::new("pipe");
        let mut x = b.input();
        for _ in 0..3 {
            x = b.gate(GateKind::Sti, &[x]);
        }
        let q = b.gate(GateKind::Tdff, &[x]);
        let mut y = q;
        for _ in 0..2 {
            y = b.gate(GateKind::Sti, &[y]);
        }
        b.output(y);
        let n = b.build();
        // Longest stage: 3 gates before the register = 30 ps
        // (after the register: clk->Q 10 + 2 gates = 30 too).
        assert!((n.critical_path_ps(&unit_params) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_gates_and_frequency() {
        let mut b = NetlistBuilder::new("p");
        let a = b.input();
        let mut x = a;
        for _ in 0..10 {
            x = b.gate(GateKind::Tnand, &[x, a]);
        }
        let n = b.build();
        assert!((n.static_power_nw(&unit_params) - 20.0).abs() < 1e-9);
        let d1 = n.dynamic_power_nw(&unit_params, 100.0, 0.2);
        let d2 = n.dynamic_power_nw(&unit_params, 200.0, 0.2);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn merged_preserves_totals() {
        let mk = |n: usize| {
            let mut b = NetlistBuilder::new("part");
            let a = b.input();
            for _ in 0..n {
                b.gate(GateKind::Sti, &[a]);
            }
            b.build()
        };
        let x = mk(3);
        let y = mk(4);
        let m = Netlist::merged("whole", &[&x, &y]);
        assert_eq!(m.gate_count(), 7);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_references_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let ghost = NodeId(99);
        b.gate(GateKind::Sti, &[ghost]);
    }

    #[test]
    fn structural_text_lists_every_gate_once() {
        let mut b = NetlistBuilder::new("adder_bit");
        let a = b.input();
        let c = b.input();
        let s = b.gate(GateKind::Tsum, &[a, c]);
        let k = b.gate(GateKind::Tcarry, &[a, c]);
        b.output(s);
        b.output(k);
        let n = b.build();
        let text = n.to_structural_text();
        assert!(text.starts_with("module adder_bit"));
        assert!(text.ends_with("endmodule\n"));
        assert_eq!(text.matches("TSUM").count(), 1);
        assert_eq!(text.matches("TCARRY").count(), 1);
        assert_eq!(text.matches("input").count(), 2);
        assert_eq!(text.matches("output").count(), 2);
        // Gate lines equal the gate count.
        let gate_lines = text.lines().filter(|l| l.contains(" = ")).count();
        assert_eq!(gate_lines, n.gate_count());
    }

    #[test]
    fn whole_datapath_dumps() {
        use crate::datapath::Datapath;
        let merged = Datapath::art9().merged();
        let text = merged.to_structural_text();
        let gate_lines = text.lines().filter(|l| l.contains(" = ")).count();
        assert_eq!(gate_lines, merged.gate_count());
    }
}
