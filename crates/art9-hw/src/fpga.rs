//! FPGA implementation model (paper Table V): the ART-9 with every
//! ternary block emulated by binary modules in the binary-encoded
//! ternary representation (2 bits/trit, \[27\]), mapped to a
//! Stratix-V-class device.
//!
//! Resources are estimated structurally: each combinational ternary
//! gate becomes a small two-output binary function (≈ 1 ALM for simple
//! cells, more for arithmetic cells), each stored trit two registers,
//! and the two 256-word memories land in block RAM at 18 bits per
//! word. Power is a static + dynamic roll-up calibrated to Stratix-V
//! magnitudes. DESIGN.md §3.3 records the substitution for Quartus.

use std::collections::BTreeMap;

use crate::datapath::Datapath;
use crate::gate::GateKind;

/// ALM cost of emulating one ternary cell in binary-encoded form.
fn alms_per_gate(kind: GateKind) -> f64 {
    match kind {
        // Inverters/buffers: one 4-input LUT pair fits an ALM half.
        GateKind::Sti | GateKind::Nti | GateKind::Pti | GateKind::Tbuf => 0.5,
        // Two-input min/max/nand/nor on 2-bit pairs.
        GateKind::Tand | GateKind::Tor | GateKind::Tnand | GateKind::Tnor => 1.0,
        // XOR/compare/mux need both ALM outputs plus shared logic.
        GateKind::Txor | GateKind::Tcmp | GateKind::Tmux => 1.25,
        // Arithmetic cells: 4-bit in, 2-bit out with carries.
        GateKind::Tsum => 2.5,
        GateKind::Tcarry => 2.0,
        // Flip-flops are counted as registers, not ALMs.
        GateKind::Tdff => 0.0,
    }
}

/// Estimated FPGA implementation of the ART-9 core.
#[derive(Debug, Clone)]
pub struct FpgaReport {
    /// Operating voltage (core rail).
    pub voltage: f64,
    /// Clock frequency used for the power roll-up (MHz).
    pub frequency_mhz: f64,
    /// Adaptive logic modules.
    pub alms: usize,
    /// Dedicated registers (2 per stored trit).
    pub registers: usize,
    /// Block-RAM bits for the two binary-encoded ternary memories.
    pub ram_bits: usize,
    /// Total power (W).
    pub power_w: f64,
}

/// Memory configuration: two single-port memories (TIM + TDM).
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// Words per memory.
    pub words: usize,
    /// Trits per word.
    pub trits_per_word: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // Table V's 9216 bits = 2 × 256 words × 18 bits.
        Self {
            words: 256,
            trits_per_word: 9,
        }
    }
}

/// Static power of the device fraction the core occupies (W) — the
/// Stratix-V idle floor dominates small designs.
const STATIC_W: f64 = 0.82;
/// Dynamic power per ALM at 1 MHz with the design's average toggle
/// rate (W/ALM/MHz) — calibrated to land Table V's 1.09 W at 150 MHz.
const DYNAMIC_W_PER_ALM_MHZ: f64 = 2.1e-6;
/// Dynamic power per RAM bit per MHz (port activity included).
const DYNAMIC_W_PER_RAMBIT_MHZ: f64 = 2.2e-8;

/// Maps the core to the FPGA model at `frequency_mhz`.
pub fn map_to_fpga(datapath: &Datapath, mem: MemoryConfig, frequency_mhz: f64) -> FpgaReport {
    // ALMs: combinational gates by kind + control overhead share.
    let hist: BTreeMap<GateKind, usize> = datapath.merged().histogram();
    let mut alms = 0.0;
    for (kind, count) in &hist {
        alms += alms_per_gate(*kind) * *count as f64;
    }
    // Glue logic the gate model does not capture (reset, memory
    // handshake, stall distribution): ~15 % adder, observed on small
    // soft cores.
    let alms = (alms * 1.15).round() as usize;

    // Registers: 2 bits per stored trit.
    let registers = datapath.state_trits() * 2;

    // RAM: two memories, 2 bits per trit.
    let ram_bits = 2 * mem.words * mem.trits_per_word * 2;

    let dynamic = frequency_mhz
        * (alms as f64 * DYNAMIC_W_PER_ALM_MHZ + ram_bits as f64 * DYNAMIC_W_PER_RAMBIT_MHZ);
    FpgaReport {
        voltage: 0.9,
        frequency_mhz,
        alms,
        registers,
        ram_bits,
        power_w: STATIC_W + dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lands_near_table5() {
        let d = Datapath::art9();
        let r = map_to_fpga(&d, MemoryConfig::default(), 150.0);
        // Table V: 803 ALMs, 339 registers, 9216 RAM bits, 1.09 W.
        assert!((600..=1000).contains(&r.alms), "ALMs {}", r.alms);
        assert!((300..=400).contains(&r.registers), "regs {}", r.registers);
        assert_eq!(r.ram_bits, 9216);
        assert!((0.9..=1.3).contains(&r.power_w), "power {}", r.power_w);
    }

    #[test]
    fn power_scales_with_frequency() {
        let d = Datapath::art9();
        let slow = map_to_fpga(&d, MemoryConfig::default(), 50.0);
        let fast = map_to_fpga(&d, MemoryConfig::default(), 150.0);
        assert!(fast.power_w > slow.power_w);
        assert!(slow.power_w > STATIC_W);
    }

    #[test]
    fn ram_accounting_follows_config() {
        let d = Datapath::art9();
        let r = map_to_fpga(
            &d,
            MemoryConfig {
                words: 128,
                trits_per_word: 9,
            },
            150.0,
        );
        assert_eq!(r.ram_bits, 2 * 128 * 18);
    }
}
