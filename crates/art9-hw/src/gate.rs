//! Ternary standard cells.
//!
//! The gate-level analyzer works on netlists of the ternary standard
//! cells established by the CNTFET/ternary-synthesis literature the
//! paper builds on (\[4\], \[7\], \[8\]): the three inverters, two-input
//! min/max/XOR gates and their inverting forms, a 1-trit 2:1
//! multiplexer, the decomposed full-adder cells and a ternary
//! flip-flop. A technology library assigns each kind its delay, leakage
//! and switching energy.

use std::fmt;

/// The ternary standard-cell kinds known to the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Standard ternary inverter (full negation).
    Sti,
    /// Negative ternary inverter.
    Nti,
    /// Positive ternary inverter.
    Pti,
    /// Two-input minimum (ternary AND).
    Tand,
    /// Two-input maximum (ternary OR).
    Tor,
    /// Two-input ternary XOR.
    Txor,
    /// Inverting minimum (TNAND) — the natural CMOS-style primitive.
    Tnand,
    /// Inverting maximum (TNOR).
    Tnor,
    /// 1-trit 2:1 multiplexer.
    Tmux,
    /// Decomposed full-adder sum cell (a ⊞ b ⊞ cin).
    Tsum,
    /// Decomposed full-adder carry cell.
    Tcarry,
    /// 1-trit comparator slice (propagates a 3-state verdict).
    Tcmp,
    /// Buffer/driver.
    Tbuf,
    /// Ternary D flip-flop (one trit of sequential state).
    Tdff,
}

/// All cell kinds, for library iteration and reports.
pub const ALL_KINDS: [GateKind; 14] = [
    GateKind::Sti,
    GateKind::Nti,
    GateKind::Pti,
    GateKind::Tand,
    GateKind::Tor,
    GateKind::Txor,
    GateKind::Tnand,
    GateKind::Tnor,
    GateKind::Tmux,
    GateKind::Tsum,
    GateKind::Tcarry,
    GateKind::Tcmp,
    GateKind::Tbuf,
    GateKind::Tdff,
];

impl GateKind {
    /// Canonical cell name.
    pub const fn name(self) -> &'static str {
        match self {
            GateKind::Sti => "STI",
            GateKind::Nti => "NTI",
            GateKind::Pti => "PTI",
            GateKind::Tand => "TAND",
            GateKind::Tor => "TOR",
            GateKind::Txor => "TXOR",
            GateKind::Tnand => "TNAND",
            GateKind::Tnor => "TNOR",
            GateKind::Tmux => "TMUX",
            GateKind::Tsum => "TSUM",
            GateKind::Tcarry => "TCARRY",
            GateKind::Tcmp => "TCMP",
            GateKind::Tbuf => "TBUF",
            GateKind::Tdff => "TDFF",
        }
    }

    /// `true` for sequential cells (excluded from combinational paths'
    /// interior, endpoints of timing arcs).
    pub const fn is_sequential(self) -> bool {
        matches!(self, GateKind::Tdff)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cell characterization from a technology's property description
/// (the paper's "delay and power characteristics of primitive building
/// blocks", §III-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Propagation delay, picoseconds.
    pub delay_ps: f64,
    /// Static (leakage) power, nanowatts.
    pub static_nw: f64,
    /// Energy per output transition, femtojoules.
    pub switch_energy_fj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        use std::collections::BTreeSet;
        let names: BTreeSet<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ALL_KINDS.len());
    }

    #[test]
    fn only_dff_is_sequential() {
        for k in ALL_KINDS {
            assert_eq!(k.is_sequential(), k == GateKind::Tdff);
        }
    }
}
