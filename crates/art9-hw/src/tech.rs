//! Technology libraries — the "property description of the design
//! technology" input of the gate-level analyzer (paper §III-B, Fig. 3).
//!
//! A library characterizes each ternary standard cell with delay,
//! leakage and switching energy. The 32 nm CNTFET library reproduces
//! the simplified model of references \[7\]/\[8\] (no parasitic wire
//! capacitance, as the paper states for Table IV); absolute values are
//! calibrated so the 652-gate datapath lands at Table IV's magnitude
//! (≈ 43 µW at 0.9 V, several-hundred-MHz critical path) — DESIGN.md
//! §3.3 records the substitution.

use std::collections::BTreeMap;

use crate::gate::{CellParams, GateKind, ALL_KINDS};

/// A named cell library at a fixed operating voltage.
#[derive(Debug, Clone)]
pub struct TechLibrary {
    name: String,
    voltage: f64,
    cells: BTreeMap<GateKind, CellParams>,
    /// Average switching activity assumed by the power roll-up.
    activity: f64,
}

impl TechLibrary {
    /// Builds a library from explicit cell parameters.
    ///
    /// # Panics
    ///
    /// Panics if any [`GateKind`] is missing — a library must
    /// characterize every cell the netlists can instantiate.
    pub fn new(
        name: impl Into<String>,
        voltage: f64,
        cells: BTreeMap<GateKind, CellParams>,
        activity: f64,
    ) -> Self {
        for k in ALL_KINDS {
            assert!(cells.contains_key(&k), "library misses cell {k}");
        }
        Self {
            name: name.into(),
            voltage,
            cells,
            activity,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operating voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Assumed average switching activity.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Parameters of one cell kind.
    ///
    /// # Panics
    ///
    /// Never — construction guarantees completeness.
    pub fn cell(&self, kind: GateKind) -> CellParams {
        self.cells[&kind]
    }

    /// A closure view for the netlist analysis functions.
    pub fn params(&self) -> impl Fn(GateKind) -> CellParams + '_ {
        move |k| self.cell(k)
    }
}

/// The 32 nm CNTFET ternary library at 0.9 V (Table IV's technology).
///
/// Relative cell costs follow the synthesis results of \[8\]: inverters
/// are the cheapest, min/max gates moderate, the XOR/sum/carry cells
/// the largest; flip-flops cost roughly four inverter equivalents.
pub fn cntfet32() -> TechLibrary {
    let mut cells = BTreeMap::new();
    let mut put = |k: GateKind, d: f64, s: f64, e: f64| {
        cells.insert(
            k,
            CellParams {
                delay_ps: d,
                static_nw: s,
                switch_energy_fj: e,
            },
        );
    };
    // kind, delay ps, leakage nW, switch energy fJ.
    put(GateKind::Sti, 95.0, 28.0, 0.28);
    put(GateKind::Nti, 85.0, 24.0, 0.24);
    put(GateKind::Pti, 85.0, 24.0, 0.24);
    put(GateKind::Tand, 130.0, 42.0, 0.42);
    put(GateKind::Tor, 130.0, 42.0, 0.42);
    put(GateKind::Txor, 180.0, 58.0, 0.60);
    put(GateKind::Tnand, 120.0, 38.0, 0.38);
    put(GateKind::Tnor, 120.0, 38.0, 0.38);
    put(GateKind::Tmux, 140.0, 44.0, 0.45);
    put(GateKind::Tsum, 200.0, 62.0, 0.66);
    put(GateKind::Tcarry, 170.0, 52.0, 0.55);
    put(GateKind::Tcmp, 150.0, 46.0, 0.48);
    put(GateKind::Tbuf, 70.0, 20.0, 0.20);
    put(GateKind::Tdff, 220.0, 80.0, 0.90);
    TechLibrary::new("cntfet-32nm", 0.9, cells, 0.12)
}

/// A deliberately slow/leaky "generic ternary CMOS" library, used by
/// the ablation benches to show the analyzer separating technologies.
pub fn generic_cmos_ternary() -> TechLibrary {
    let base = cntfet32();
    let mut cells = BTreeMap::new();
    for k in ALL_KINDS {
        let c = base.cell(k);
        cells.insert(
            k,
            CellParams {
                delay_ps: c.delay_ps * 3.0,
                static_nw: c.static_nw * 8.0,
                switch_energy_fj: c.switch_energy_fj * 5.0,
            },
        );
    }
    TechLibrary::new("generic-cmos-ternary", 0.9, cells, 0.12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cntfet_is_complete_and_ordered() {
        let lib = cntfet32();
        assert_eq!(lib.voltage(), 0.9);
        // Inverters are cheaper than arithmetic cells.
        assert!(lib.cell(GateKind::Sti).delay_ps < lib.cell(GateKind::Tsum).delay_ps);
        assert!(lib.cell(GateKind::Nti).static_nw < lib.cell(GateKind::Tdff).static_nw);
    }

    #[test]
    fn generic_cmos_is_strictly_worse() {
        let fast = cntfet32();
        let slow = generic_cmos_ternary();
        for k in ALL_KINDS {
            assert!(slow.cell(k).delay_ps > fast.cell(k).delay_ps);
            assert!(slow.cell(k).static_nw > fast.cell(k).static_nw);
        }
    }

    #[test]
    #[should_panic(expected = "misses cell")]
    fn incomplete_library_rejected() {
        let _ = TechLibrary::new("bad", 0.9, BTreeMap::new(), 0.1);
    }
}
