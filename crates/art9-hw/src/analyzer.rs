//! The gate-level analyzer (paper Fig. 3): estimates critical delay
//! and power of a datapath under a technology library.

use crate::datapath::Datapath;
use crate::netlist::Netlist;
use crate::tech::TechLibrary;

/// Analysis results for one design/technology pairing.
#[derive(Debug, Clone)]
pub struct GateAnalysis {
    /// Technology name.
    pub technology: String,
    /// Operating voltage (V).
    pub voltage: f64,
    /// Total combinational gates.
    pub gates: usize,
    /// Sequential trits (flip-flops).
    pub state_trits: usize,
    /// Critical path delay (ps) over all blocks.
    pub critical_path_ps: f64,
    /// Static power of the datapath (µW).
    pub static_uw: f64,
    /// Dynamic power of the datapath at `fmax` (µW).
    pub dynamic_uw: f64,
}

impl GateAnalysis {
    /// Maximum clock frequency implied by the critical path, MHz.
    pub fn fmax_mhz(&self) -> f64 {
        1.0e6 / self.critical_path_ps
    }

    /// Total datapath power at `fmax`, µW.
    pub fn total_power_uw(&self) -> f64 {
        self.static_uw + self.dynamic_uw
    }
}

/// Runs the analyzer over a datapath.
///
/// The critical path is the worst stage delay across blocks (stages
/// are register-bounded, so blocks time independently); power sums
/// leakage over all gates plus switching power at the implied `fmax`.
pub fn analyze(datapath: &Datapath, lib: &TechLibrary) -> GateAnalysis {
    let params = lib.params();

    let critical_path_ps = datapath
        .blocks()
        .iter()
        .map(|b| b.critical_path_ps(&params))
        .fold(0.0f64, f64::max);

    let static_nw: f64 = datapath
        .blocks()
        .iter()
        .map(|b| b.static_power_nw(&params))
        .sum();

    let fmax_mhz = 1.0e6 / critical_path_ps;
    let dynamic_nw: f64 = datapath
        .blocks()
        .iter()
        .map(|b| b.dynamic_power_nw(&params, fmax_mhz, lib.activity()))
        .sum();

    GateAnalysis {
        technology: lib.name().to_string(),
        voltage: lib.voltage(),
        gates: datapath.datapath_gates(),
        state_trits: datapath.state_trits(),
        critical_path_ps,
        static_uw: static_nw / 1000.0,
        dynamic_uw: dynamic_nw / 1000.0,
    }
}

/// Analyzes a single block (for per-block reports and ablations).
pub fn analyze_block(block: &Netlist, lib: &TechLibrary) -> (usize, f64) {
    let params = lib.params();
    (block.gate_count(), block.critical_path_ps(&params))
}

/// The block that limits the clock: name and its path delay. This is
/// the first thing a designer asks the analyzer ("what do I pipeline
/// next?").
pub fn critical_block<'a>(datapath: &'a Datapath, lib: &TechLibrary) -> (&'a str, f64) {
    let params = lib.params();
    datapath
        .blocks()
        .iter()
        .map(|b| (b.name(), b.critical_path_ps(&params)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("datapath has blocks")
}

/// Per-block timing report, slowest first.
pub fn timing_report(datapath: &Datapath, lib: &TechLibrary) -> Vec<(String, f64)> {
    let params = lib.params();
    let mut rows: Vec<(String, f64)> = datapath
        .blocks()
        .iter()
        .map(|b| (b.name().to_string(), b.critical_path_ps(&params)))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{cntfet32, generic_cmos_ternary};

    #[test]
    fn cntfet_datapath_lands_near_table4() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        // Table IV: 652 gates, 42.7 µW, with DMIPS/W implying ~300 MHz.
        assert!((550..=750).contains(&a.gates), "gates {}", a.gates);
        let p = a.total_power_uw();
        assert!((20.0..=80.0).contains(&p), "power {p} µW");
        let f = a.fmax_mhz();
        assert!((150.0..=600.0).contains(&f), "fmax {f} MHz");
    }

    #[test]
    fn slower_library_means_lower_fmax_higher_power() {
        let d = Datapath::art9();
        let fast = analyze(&d, &cntfet32());
        let slow = analyze(&d, &generic_cmos_ternary());
        assert!(slow.fmax_mhz() < fast.fmax_mhz());
        assert!(slow.static_uw > fast.static_uw);
    }

    #[test]
    fn block_analysis_is_consistent() {
        let d = Datapath::art9();
        let lib = cntfet32();
        let total: usize = d.blocks().iter().map(|b| analyze_block(b, &lib).0).sum();
        assert_eq!(total, d.datapath_gates());
    }

    #[test]
    fn critical_block_is_the_slowest_and_matches_overall() {
        let d = Datapath::art9();
        let lib = cntfet32();
        let (name, delay) = critical_block(&d, &lib);
        let a = analyze(&d, &lib);
        assert!((delay - a.critical_path_ps).abs() < 1e-9);
        // The ripple carry chain dominates a 9-trit in-order core.
        assert!(
            name == "adder-subtractor" || name == "branch-unit" || name == "array-multiplier",
            "unexpected critical block {name}"
        );
        // The report is sorted and complete.
        let report = timing_report(&d, &lib);
        assert_eq!(report.len(), d.blocks().len());
        assert!(report.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(report[0].0, name);
    }
}
