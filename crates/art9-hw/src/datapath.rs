//! Assembly of the full ART-9 datapath netlist (paper Fig. 4) from the
//! structural blocks — the "synthesizable RTL description" input of the
//! gate-level analyzer, §III-B.

use crate::blocks::{
    adder_subtractor, array_multiplier, branch_unit, comparator, forwarding_muxes, hazard_unit,
    immediate_unit, inverter_unit, logic_unit, main_decoder, memory_interface, pc_incrementer,
    pc_source_mux, regindex_decoder, result_mux, shifter, storage, trf_read_ports, writeback_mux,
    WIDTH,
};
use crate::netlist::Netlist;

/// The ART-9 core as a set of named gate-level blocks.
#[derive(Debug, Clone)]
pub struct Datapath {
    blocks: Vec<Netlist>,
    storage: Netlist,
}

impl Datapath {
    /// Builds the 5-stage ART-9 datapath.
    pub fn art9() -> Self {
        let blocks = vec![
            // EX: the ternary ALU.
            adder_subtractor(WIDTH),
            logic_unit(WIDTH),
            inverter_unit(WIDTH),
            shifter(WIDTH),
            comparator(WIDTH),
            result_mux(WIDTH, 8),
            forwarding_muxes(WIDTH),
            // IF/ID: fetch and decode.
            pc_incrementer(WIDTH),
            pc_source_mux(WIDTH),
            branch_unit(WIDTH),
            main_decoder(),
            immediate_unit(WIDTH),
            hazard_unit(),
            trf_read_ports(WIDTH),
            regindex_decoder(),
            // MEM/WB.
            memory_interface(WIDTH),
            writeback_mux(WIDTH),
        ];
        Self {
            blocks,
            storage: storage(),
        }
    }

    /// The ART-9 extended with a hardware array multiplier — the design
    /// point the paper deliberately rejected (Table II: "Multiplier ✗").
    /// Used by the ablation bench to quantify what software
    /// multiplication saves in gates, power and cycle time.
    pub fn art9_with_multiplier() -> Self {
        let mut dp = Self::art9();
        dp.blocks.push(array_multiplier(WIDTH));
        dp
    }

    /// A hypothetical ART-core with a different word width — the
    /// design-space-exploration axis the parametric block generators
    /// enable ("why 9 trits?"). Control blocks (decoder, hazard unit)
    /// keep their ART-9 shape; all word-width datapath scales.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 19 (3^20 overflows the
    /// substrate's `i64` value domain during analysis).
    pub fn art_with_width(width: usize) -> Self {
        assert!((1..=19).contains(&width), "width must be 1..=19 trits");
        let blocks = vec![
            adder_subtractor(width),
            logic_unit(width),
            inverter_unit(width),
            shifter(width),
            comparator(width),
            result_mux(width, 8),
            forwarding_muxes(width),
            pc_incrementer(width),
            pc_source_mux(width),
            branch_unit(width),
            main_decoder(),
            immediate_unit(width),
            hazard_unit(),
            trf_read_ports(width),
            regindex_decoder(),
            memory_interface(width),
            writeback_mux(width),
        ];
        Self {
            blocks,
            storage: storage(),
        }
    }

    /// The combinational blocks (Table IV's gate population).
    pub fn blocks(&self) -> &[Netlist] {
        &self.blocks
    }

    /// The sequential state (PC, TRF, pipeline registers).
    pub fn storage(&self) -> &Netlist {
        &self.storage
    }

    /// Total combinational (datapath) gates — the paper's 652-gate
    /// metric.
    pub fn datapath_gates(&self) -> usize {
        self.blocks.iter().map(Netlist::gate_count).sum()
    }

    /// Sequential trits (TDFF count).
    pub fn state_trits(&self) -> usize {
        self.storage.gate_count()
    }

    /// One merged netlist over all combinational blocks.
    pub fn merged(&self) -> Netlist {
        let refs: Vec<&Netlist> = self.blocks.iter().collect();
        Netlist::merged("art9-datapath", &refs)
    }

    /// Per-block gate counts for reports.
    pub fn block_summary(&self) -> Vec<(String, usize)> {
        self.blocks
            .iter()
            .map(|n| (n.name().to_string(), n.gate_count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_gate_count_near_paper() {
        let d = Datapath::art9();
        let total = d.datapath_gates();
        // Table IV reports 652 standard ternary gates; the structural
        // decomposition here must land in the same region.
        assert!(
            (500..=850).contains(&total),
            "datapath gates {total} should be near the paper's 652"
        );
    }

    #[test]
    fn state_matches_storage_plan() {
        let d = Datapath::art9();
        assert_eq!(d.state_trits(), 9 + 81 + 82);
    }

    #[test]
    fn summary_covers_all_blocks() {
        let d = Datapath::art9();
        let summary = d.block_summary();
        assert_eq!(summary.len(), 17);
        assert_eq!(
            summary.iter().map(|(_, c)| *c).sum::<usize>(),
            d.datapath_gates()
        );
    }

    #[test]
    fn merged_preserves_count() {
        let d = Datapath::art9();
        assert_eq!(d.merged().gate_count(), d.datapath_gates());
    }

    #[test]
    fn width_sweep_is_monotone() {
        let g6 = Datapath::art_with_width(6).datapath_gates();
        let g9 = Datapath::art_with_width(9).datapath_gates();
        let g12 = Datapath::art_with_width(12).datapath_gates();
        assert!(g6 < g9 && g9 < g12, "{g6} < {g9} < {g12}");
        // The 9-trit point matches the flagship constructor.
        assert_eq!(g9, Datapath::art9().datapath_gates());
    }

    #[test]
    fn multiplier_variant_is_substantially_larger() {
        let base = Datapath::art9();
        let with_mul = Datapath::art9_with_multiplier();
        let delta = with_mul.datapath_gates() - base.datapath_gates();
        // A 9x9 array multiplier dwarfs most single blocks — the
        // quantified reason Table II ships without one.
        assert!(
            delta > 250,
            "multiplier adds {delta} gates; expected a large block"
        );
        assert!(with_mul
            .block_summary()
            .iter()
            .any(|(n, _)| n == "array-multiplier"));
    }
}
