//! The performance estimator (paper Fig. 3, final stage): merges the
//! cycle-accurate simulation results with the gate-level / FPGA
//! analyses into the implementation-level metrics of Tables IV and V.

use crate::analyzer::GateAnalysis;
use crate::fpga::FpgaReport;

/// Dhrystone performance input from the cycle-accurate simulator.
#[derive(Debug, Clone, Copy)]
pub struct DhrystoneResult {
    /// Cycles per Dhrystone iteration on the pipelined core.
    pub cycles_per_iteration: f64,
}

impl DhrystoneResult {
    /// DMIPS per MHz: one iteration per `cycles_per_iteration` cycles,
    /// normalized by the VAX 11/780's 1757 Dhrystones/s.
    pub fn dmips_per_mhz(&self) -> f64 {
        1.0e6 / (self.cycles_per_iteration * 1757.0)
    }
}

/// Table IV row: the CNTFET implementation.
#[derive(Debug, Clone)]
pub struct CntfetEstimate {
    /// Operating voltage (V).
    pub voltage: f64,
    /// Total ternary gates in the datapath.
    pub total_gates: usize,
    /// Datapath power at `fmax` (µW).
    pub power_uw: f64,
    /// Implied clock (MHz).
    pub fmax_mhz: f64,
    /// Dhrystone DMIPS at `fmax`.
    pub dmips: f64,
    /// Efficiency: DMIPS per watt.
    pub dmips_per_watt: f64,
}

/// Combines gate analysis and Dhrystone throughput into Table IV.
pub fn estimate_cntfet(analysis: &GateAnalysis, dhrystone: DhrystoneResult) -> CntfetEstimate {
    let fmax = analysis.fmax_mhz();
    let dmips = dhrystone.dmips_per_mhz() * fmax;
    let power_w = analysis.total_power_uw() * 1e-6;
    CntfetEstimate {
        voltage: analysis.voltage,
        total_gates: analysis.gates,
        power_uw: analysis.total_power_uw(),
        fmax_mhz: fmax,
        dmips,
        dmips_per_watt: dmips / power_w,
    }
}

/// Table V row: the FPGA implementation.
#[derive(Debug, Clone)]
pub struct FpgaEstimate {
    /// The mapped resources and power.
    pub report: FpgaReport,
    /// Dhrystone DMIPS at the FPGA clock.
    pub dmips: f64,
    /// Efficiency: DMIPS per watt.
    pub dmips_per_watt: f64,
}

/// Combines the FPGA mapping and Dhrystone throughput into Table V.
pub fn estimate_fpga(report: &FpgaReport, dhrystone: DhrystoneResult) -> FpgaEstimate {
    let dmips = dhrystone.dmips_per_mhz() * report.frequency_mhz;
    FpgaEstimate {
        report: report.clone(),
        dmips,
        dmips_per_watt: dmips / report.power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::datapath::Datapath;
    use crate::fpga::{map_to_fpga, MemoryConfig};
    use crate::tech::cntfet32;

    /// The paper's 0.42 DMIPS/MHz corresponds to ~1355 cycles/iteration.
    const PAPER_LIKE: DhrystoneResult = DhrystoneResult {
        cycles_per_iteration: 1355.0,
    };

    #[test]
    fn dmips_per_mhz_matches_paper_arithmetic() {
        // 1e6 / (1355 * 1757) = 0.42 (paper Table II).
        assert!((PAPER_LIKE.dmips_per_mhz() - 0.42).abs() < 0.01);
    }

    #[test]
    fn cntfet_estimate_magnitude() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        let e = estimate_cntfet(&a, PAPER_LIKE);
        // Table IV: 3.06e6 DMIPS/W. The reproduction must land within
        // the same order of magnitude.
        assert!(
            (5e5..=2e7).contains(&e.dmips_per_watt),
            "DMIPS/W {:.3e}",
            e.dmips_per_watt
        );
        assert!(e.dmips > 10.0);
    }

    #[test]
    fn fpga_estimate_magnitude() {
        let d = Datapath::art9();
        let r = map_to_fpga(&d, MemoryConfig::default(), 150.0);
        let e = estimate_fpga(&r, PAPER_LIKE);
        // Table V: 57.8 DMIPS/W at 150 MHz / 1.09 W.
        assert!(
            (20.0..=120.0).contains(&e.dmips_per_watt),
            "{}",
            e.dmips_per_watt
        );
    }

    #[test]
    fn cntfet_dwarfs_fpga_efficiency() {
        let d = Datapath::art9();
        let a = analyze(&d, &cntfet32());
        let c = estimate_cntfet(&a, PAPER_LIKE);
        let r = map_to_fpga(&d, MemoryConfig::default(), 150.0);
        let f = estimate_fpga(&r, PAPER_LIKE);
        // The paper's headline: emerging ternary devices are ~5 orders
        // of magnitude more efficient than FPGA emulation.
        assert!(c.dmips_per_watt / f.dmips_per_watt > 1e3);
    }
}
