use art9_hw::datapath::Datapath;
#[test]
fn print_block_sizes() {
    let d = Datapath::art9();
    for (name, count) in d.block_summary() {
        println!("{name:<20} {count}");
    }
    println!("TOTAL {}", d.datapath_gates());
}
