//! The 24 ART-9 ternary instructions (paper Table I).
//!
//! Instructions are modeled as a plain enum carrying decoded operands;
//! the trit-level layout lives in [`crate::encode`]/[`crate::decode`].
//! Immediates are stored as the exact field width the encoding gives
//! them ([`Trits<2>`](ternary::Trits) through [`Trits<5>`](ternary::Trits)),
//! so an `Instruction` value is *always* encodable — out-of-range
//! immediates are rejected at construction.

use std::fmt;

use ternary::{Trit, Trits};

use crate::error::IsaError;
use crate::reg::TReg;

/// 2-trit immediate (shift amounts): −4..=4.
pub type Imm2 = Trits<2>;
/// 3-trit immediate (ADDI/ANDI/JALR/LOAD/STORE): −13..=13.
pub type Imm3 = Trits<3>;
/// 4-trit immediate (LUI, branch offsets): −40..=40.
pub type Imm4 = Trits<4>;
/// 5-trit immediate (LI, JAL offset): −121..=121.
pub type Imm5 = Trits<5>;

/// The four instruction categories of the ART-9 ISA (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Register-register logical/arithmetic operations.
    R,
    /// Immediate operations.
    I,
    /// Branches and jump-and-link.
    B,
    /// Memory access (load/store).
    M,
}

/// One decoded ART-9 instruction.
///
/// Field names follow the paper: `a` is the `Ta` register field
/// (destination and, for most R-type, first source), `b` the `Tb` field.
///
/// # Examples
///
/// ```
/// use art9_isa::{Instruction, TReg};
/// use ternary::Trits;
///
/// let add = Instruction::Add { a: TReg::T3, b: TReg::T4 };
/// assert_eq!(add.to_string(), "ADD t3, t4");
/// assert_eq!(add.writes(), Some(TReg::T3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // --- R-type -----------------------------------------------------
    /// `MV Ta, Tb` — `TRF[Ta] = TRF[Tb]`.
    Mv {
        /// Destination.
        a: TReg,
        /// Source.
        b: TReg,
    },
    /// `PTI Ta, Tb` — positive ternary inversion of `Tb`.
    Pti {
        /// Destination.
        a: TReg,
        /// Source.
        b: TReg,
    },
    /// `NTI Ta, Tb` — negative ternary inversion of `Tb`.
    Nti {
        /// Destination.
        a: TReg,
        /// Source.
        b: TReg,
    },
    /// `STI Ta, Tb` — standard ternary inversion (negation) of `Tb`.
    Sti {
        /// Destination.
        a: TReg,
        /// Source.
        b: TReg,
    },
    /// `AND Ta, Tb` — trit-wise minimum.
    And {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },
    /// `OR Ta, Tb` — trit-wise maximum.
    Or {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },
    /// `XOR Ta, Tb` — trit-wise ternary XOR.
    Xor {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },
    /// `ADD Ta, Tb` — wrapping ternary addition.
    Add {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },
    /// `SUB Ta, Tb` — wrapping ternary subtraction.
    Sub {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },
    /// `SR Ta, Tb` — shift right by `TRF[Tb][1:0]` trits.
    Sr {
        /// Destination and first source.
        a: TReg,
        /// Shift-amount source.
        b: TReg,
    },
    /// `SL Ta, Tb` — shift left by `TRF[Tb][1:0]` trits.
    Sl {
        /// Destination and first source.
        a: TReg,
        /// Shift-amount source.
        b: TReg,
    },
    /// `COMP Ta, Tb` — three-way compare; LST of the result is −/0/+.
    Comp {
        /// Destination and first source.
        a: TReg,
        /// Second source.
        b: TReg,
    },

    // --- I-type -----------------------------------------------------
    /// `ANDI Ta, imm` — trit-wise minimum with a sign-extended 3-trit
    /// immediate.
    Andi {
        /// Destination and source.
        a: TReg,
        /// 3-trit immediate.
        imm: Imm3,
    },
    /// `ADDI Ta, imm` — add a sign-extended 3-trit immediate. With a zero
    /// immediate this is the ISA's NOP (paper §IV-B).
    Addi {
        /// Destination and source.
        a: TReg,
        /// 3-trit immediate.
        imm: Imm3,
    },
    /// `SRI Ta, imm` — shift right by a 2-trit immediate amount.
    Sri {
        /// Destination and source.
        a: TReg,
        /// 2-trit shift amount.
        imm: Imm2,
    },
    /// `SLI Ta, imm` — shift left by a 2-trit immediate amount.
    Sli {
        /// Destination and source.
        a: TReg,
        /// 2-trit shift amount.
        imm: Imm2,
    },
    /// `LUI Ta, imm` — load upper immediate:
    /// `TRF[Ta] = {imm[3:0], 00000}` (imm into trits 5..9, low trits 0).
    Lui {
        /// Destination.
        a: TReg,
        /// 4-trit upper immediate.
        imm: Imm4,
    },
    /// `LI Ta, imm` — load (lower) immediate:
    /// `TRF[Ta] = {TRF[Ta][8:5], imm[4:0]}` (splices the low 5 trits).
    Li {
        /// Destination (upper trits preserved).
        a: TReg,
        /// 5-trit lower immediate.
        imm: Imm5,
    },

    // --- B-type -----------------------------------------------------
    /// `BEQ Tb, B, imm` — branch to `PC + imm` when `TRF[Tb][0] == B`.
    Beq {
        /// Condition register (its LST is tested).
        b: TReg,
        /// The 1-trit constant to compare against.
        cond: Trit,
        /// PC-relative offset in instructions.
        offset: Imm4,
    },
    /// `BNE Tb, B, imm` — branch to `PC + imm` when `TRF[Tb][0] != B`.
    Bne {
        /// Condition register (its LST is tested).
        b: TReg,
        /// The 1-trit constant to compare against.
        cond: Trit,
        /// PC-relative offset in instructions.
        offset: Imm4,
    },
    /// `JAL Ta, imm` — `TRF[Ta] = PC + 1; PC = PC + imm`.
    Jal {
        /// Link register.
        a: TReg,
        /// PC-relative offset in instructions.
        offset: Imm5,
    },
    /// `JALR Ta, Tb, imm` — `TRF[Ta] = PC + 1; PC = TRF[Tb] + imm`.
    Jalr {
        /// Link register.
        a: TReg,
        /// Base-address register.
        b: TReg,
        /// 3-trit displacement.
        offset: Imm3,
    },

    // --- M-type -----------------------------------------------------
    /// `LOAD Ta, Tb, imm` — `TRF[Ta] = TDM[TRF[Tb] + imm]`.
    Load {
        /// Destination.
        a: TReg,
        /// Base-address register.
        b: TReg,
        /// 3-trit displacement.
        offset: Imm3,
    },
    /// `STORE Ta, Tb, imm` — `TDM[TRF[Tb] + imm] = TRF[Ta]`.
    Store {
        /// Source (value to store).
        a: TReg,
        /// Base-address register.
        b: TReg,
        /// 3-trit displacement.
        offset: Imm3,
    },
}

/// The canonical NOP: `ADDI t0, 0` (paper §IV-B — no dedicated encoding).
pub const NOP: Instruction = Instruction::Addi {
    a: TReg::T0,
    imm: Imm3::ZERO,
};

impl Instruction {
    /// Number of distinct opcodes in the ISA — the length of
    /// [`Instruction::MNEMONICS`] and the size of dense per-opcode
    /// tables such as the simulators' instruction-mix counters.
    pub const OPCODE_COUNT: usize = 24;

    /// Every mnemonic, indexed by [`Instruction::opcode`] (Table I order).
    pub const MNEMONICS: [&'static str; Self::OPCODE_COUNT] = [
        "MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP", "ANDI",
        "ADDI", "SRI", "SLI", "LUI", "LI", "BEQ", "BNE", "JAL", "JALR", "LOAD", "STORE",
    ];

    /// A dense opcode index in `0..OPCODE_COUNT`, stable across runs.
    ///
    /// Lets hot loops count or dispatch per opcode through a flat array
    /// instead of hashing the mnemonic string.
    ///
    /// # Examples
    ///
    /// ```
    /// use art9_isa::{Instruction, TReg};
    ///
    /// let add = Instruction::Add { a: TReg::T3, b: TReg::T4 };
    /// assert_eq!(Instruction::MNEMONICS[add.opcode()], add.mnemonic());
    /// ```
    pub const fn opcode(&self) -> usize {
        use Instruction::*;
        match self {
            Mv { .. } => 0,
            Pti { .. } => 1,
            Nti { .. } => 2,
            Sti { .. } => 3,
            And { .. } => 4,
            Or { .. } => 5,
            Xor { .. } => 6,
            Add { .. } => 7,
            Sub { .. } => 8,
            Sr { .. } => 9,
            Sl { .. } => 10,
            Comp { .. } => 11,
            Andi { .. } => 12,
            Addi { .. } => 13,
            Sri { .. } => 14,
            Sli { .. } => 15,
            Lui { .. } => 16,
            Li { .. } => 17,
            Beq { .. } => 18,
            Bne { .. } => 19,
            Jal { .. } => 20,
            Jalr { .. } => 21,
            Load { .. } => 22,
            Store { .. } => 23,
        }
    }

    /// The instruction's mnemonic, upper-case as in Table I.
    ///
    /// Defined through [`Instruction::opcode`] so the mnemonic table and
    /// the opcode index cannot drift apart.
    pub const fn mnemonic(&self) -> &'static str {
        Self::MNEMONICS[self.opcode()]
    }

    /// The instruction's category (Table I's Type column).
    pub const fn format(&self) -> Format {
        use Instruction::*;
        match self {
            Mv { .. }
            | Pti { .. }
            | Nti { .. }
            | Sti { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Add { .. }
            | Sub { .. }
            | Sr { .. }
            | Sl { .. }
            | Comp { .. } => Format::R,
            Andi { .. } | Addi { .. } | Sri { .. } | Sli { .. } | Lui { .. } | Li { .. } => {
                Format::I
            }
            Beq { .. } | Bne { .. } | Jal { .. } | Jalr { .. } => Format::B,
            Load { .. } | Store { .. } => Format::M,
        }
    }

    /// `true` for control-flow instructions (B-type).
    pub const fn is_control_flow(&self) -> bool {
        matches!(self.format(), Format::B)
    }

    /// `true` for the two conditional branches.
    pub const fn is_conditional_branch(&self) -> bool {
        matches!(self, Instruction::Beq { .. } | Instruction::Bne { .. })
    }

    /// `true` when this is a NOP encoding (`ADDI` with zero immediate).
    pub fn is_nop(&self) -> bool {
        matches!(self, Instruction::Addi { imm, .. } if imm.is_zero())
    }

    /// The register this instruction writes, if any. (Used by the hazard
    /// detection unit and the compiler's liveness analysis.)
    pub const fn writes(&self) -> Option<TReg> {
        use Instruction::*;
        match self {
            Mv { a, .. }
            | Pti { a, .. }
            | Nti { a, .. }
            | Sti { a, .. }
            | And { a, .. }
            | Or { a, .. }
            | Xor { a, .. }
            | Add { a, .. }
            | Sub { a, .. }
            | Sr { a, .. }
            | Sl { a, .. }
            | Comp { a, .. }
            | Andi { a, .. }
            | Addi { a, .. }
            | Sri { a, .. }
            | Sli { a, .. }
            | Lui { a, .. }
            | Li { a, .. }
            | Jal { a, .. }
            | Jalr { a, .. }
            | Load { a, .. } => Some(*a),
            Beq { .. } | Bne { .. } | Store { .. } => None,
        }
    }

    /// The registers this instruction reads, in operand order.
    ///
    /// Note the paper's asymmetries: `LI` *reads* its destination (the
    /// upper trits survive), `STORE` reads both `Ta` (data) and `Tb`
    /// (address), and the branches read only `Tb`.
    pub fn reads(&self) -> Vec<TReg> {
        use Instruction::*;
        match self {
            Mv { b, .. } | Pti { b, .. } | Nti { b, .. } | Sti { b, .. } => vec![*b],
            And { a, b }
            | Or { a, b }
            | Xor { a, b }
            | Add { a, b }
            | Sub { a, b }
            | Sr { a, b }
            | Sl { a, b }
            | Comp { a, b } => vec![*a, *b],
            Andi { a, .. } | Addi { a, .. } | Sri { a, .. } | Sli { a, .. } | Li { a, .. } => {
                vec![*a]
            }
            Lui { .. } | Jal { .. } => vec![],
            Beq { b, .. } | Bne { b, .. } => vec![*b],
            Jalr { b, .. } | Load { b, .. } => vec![*b],
            Store { a, b, .. } => vec![*a, *b],
        }
    }
}

impl fmt::Display for Instruction {
    /// Canonical assembly syntax, accepted back by the assembler.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Mv { a, b }
            | Pti { a, b }
            | Nti { a, b }
            | Sti { a, b }
            | And { a, b }
            | Or { a, b }
            | Xor { a, b }
            | Add { a, b }
            | Sub { a, b }
            | Sr { a, b }
            | Sl { a, b }
            | Comp { a, b } => {
                write!(f, "{} {a}, {b}", self.mnemonic())
            }
            Andi { a, imm } | Addi { a, imm } => {
                write!(f, "{} {a}, {}", self.mnemonic(), imm.to_i64())
            }
            Sri { a, imm } | Sli { a, imm } => {
                write!(f, "{} {a}, {}", self.mnemonic(), imm.to_i64())
            }
            Lui { a, imm } => write!(f, "LUI {a}, {}", imm.to_i64()),
            Li { a, imm } => write!(f, "LI {a}, {}", imm.to_i64()),
            Beq { b, cond, offset } => write!(f, "BEQ {b}, {cond}, {}", offset.to_i64()),
            Bne { b, cond, offset } => write!(f, "BNE {b}, {cond}, {}", offset.to_i64()),
            Jal { a, offset } => write!(f, "JAL {a}, {}", offset.to_i64()),
            Jalr { a, b, offset } => write!(f, "JALR {a}, {b}, {}", offset.to_i64()),
            Load { a, b, offset } => write!(f, "LOAD {a}, {b}, {}", offset.to_i64()),
            Store { a, b, offset } => write!(f, "STORE {a}, {b}, {}", offset.to_i64()),
        }
    }
}

/// Builds an immediate of width `N`, reporting a named range error.
///
/// # Errors
///
/// Returns [`IsaError::ImmediateRange`] when `value` exceeds the
/// symmetric range of `N` trits.
pub fn imm<const N: usize>(mnemonic: &'static str, value: i64) -> Result<Trits<N>, IsaError> {
    Trits::<N>::from_i64(value).map_err(|_| IsaError::ImmediateRange {
        mnemonic,
        value,
        width: N,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            Mv {
                a: TReg::T3,
                b: TReg::T4,
            },
            Add {
                a: TReg::T5,
                b: TReg::T6,
            },
            Comp {
                a: TReg::T3,
                b: TReg::T4,
            },
            Addi {
                a: TReg::T3,
                imm: Imm3::from_i64(7).unwrap(),
            },
            Lui {
                a: TReg::T4,
                imm: Imm4::from_i64(-40).unwrap(),
            },
            Li {
                a: TReg::T4,
                imm: Imm5::from_i64(121).unwrap(),
            },
            Beq {
                b: TReg::T3,
                cond: Trit::P,
                offset: Imm4::from_i64(-5).unwrap(),
            },
            Jal {
                a: TReg::T1,
                offset: Imm5::from_i64(20).unwrap(),
            },
            Jalr {
                a: TReg::T1,
                b: TReg::T2,
                offset: Imm3::from_i64(0).unwrap(),
            },
            Load {
                a: TReg::T5,
                b: TReg::T2,
                offset: Imm3::from_i64(3).unwrap(),
            },
            Store {
                a: TReg::T5,
                b: TReg::T2,
                offset: Imm3::from_i64(-3).unwrap(),
            },
        ]
    }

    #[test]
    fn twenty_four_mnemonics_exist() {
        // One variant per Table I row.
        let all = [
            "MV", "PTI", "NTI", "STI", "AND", "OR", "XOR", "ADD", "SUB", "SR", "SL", "COMP",
            "ANDI", "ADDI", "SRI", "SLI", "LUI", "LI", "BEQ", "BNE", "JAL", "JALR", "LOAD",
            "STORE",
        ];
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn opcode_index_is_dense_and_matches_mnemonic() {
        for i in sample() {
            assert!(i.opcode() < Instruction::OPCODE_COUNT);
            assert_eq!(Instruction::MNEMONICS[i.opcode()], i.mnemonic());
        }
        // Table order: MV is 0, STORE is last.
        assert_eq!(Instruction::MNEMONICS[0], "MV");
        assert_eq!(
            Instruction::MNEMONICS[Instruction::OPCODE_COUNT - 1],
            "STORE"
        );
    }

    #[test]
    fn formats_match_table1() {
        use Instruction::*;
        assert_eq!(
            Mv {
                a: TReg::T0,
                b: TReg::T0
            }
            .format(),
            Format::R
        );
        assert_eq!(NOP.format(), Format::I);
        assert_eq!(
            Jal {
                a: TReg::T1,
                offset: Imm5::ZERO
            }
            .format(),
            Format::B
        );
        assert_eq!(
            Load {
                a: TReg::T0,
                b: TReg::T0,
                offset: Imm3::ZERO
            }
            .format(),
            Format::M
        );
    }

    #[test]
    fn nop_is_addi_zero() {
        assert!(NOP.is_nop());
        assert_eq!(NOP.to_string(), "ADDI t0, 0");
        let not_nop = Instruction::Addi {
            a: TReg::T0,
            imm: Imm3::from_i64(1).unwrap(),
        };
        assert!(!not_nop.is_nop());
    }

    #[test]
    fn reads_writes_asymmetries() {
        use Instruction::*;
        // LI reads its destination (upper trits preserved).
        let li = Li {
            a: TReg::T4,
            imm: Imm5::ZERO,
        };
        assert_eq!(li.reads(), vec![TReg::T4]);
        // LUI does not.
        let lui = Lui {
            a: TReg::T4,
            imm: Imm4::ZERO,
        };
        assert!(lui.reads().is_empty());
        // STORE reads both and writes nothing.
        let st = Store {
            a: TReg::T5,
            b: TReg::T2,
            offset: Imm3::ZERO,
        };
        assert_eq!(st.reads(), vec![TReg::T5, TReg::T2]);
        assert_eq!(st.writes(), None);
        // Branches read only the condition register.
        let beq = Beq {
            b: TReg::T3,
            cond: Trit::Z,
            offset: Imm4::ZERO,
        };
        assert_eq!(beq.reads(), vec![TReg::T3]);
        assert_eq!(beq.writes(), None);
    }

    #[test]
    fn display_smoke() {
        for i in sample() {
            let s = i.to_string();
            assert!(s.starts_with(i.mnemonic()), "{s}");
        }
    }

    #[test]
    fn imm_helper_reports_range() {
        assert!(imm::<3>("ADDI", 13).is_ok());
        let e = imm::<3>("ADDI", 14).unwrap_err();
        match e {
            IsaError::ImmediateRange {
                mnemonic,
                value,
                width,
            } => {
                assert_eq!(mnemonic, "ADDI");
                assert_eq!(value, 14);
                assert_eq!(width, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
