//! The ternary register file's register names.
//!
//! The ART-9 TRF holds nine general-purpose 9-trit registers (paper
//! §IV-A), addressed by a 2-trit balanced index: the index value
//! `v ∈ [−4, +4]` names register `T(v+4)`, so the whole 2-trit space is
//! used with no gaps — nine registers is exactly why the paper picked
//! nine.
//!
//! The paper's ISA has no architectural zero register; the software ABI
//! used by the compiling framework *conventionally* pins `T0` to zero,
//! `T1` to the link register and `T2` to the stack pointer (DESIGN.md
//! §3.1). Hardware treats all nine identically.

use std::fmt;
use std::str::FromStr;

use ternary::Trits;

use crate::error::{AsmErrorKind, IsaError};

/// One of the nine general-purpose ternary registers `T0..T8`.
///
/// # Examples
///
/// ```
/// use art9_isa::TReg;
///
/// let r: TReg = "t5".parse()?;
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.encode().to_i64(), 1); // 2-trit index = 5 - 4
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TReg(u8);

/// All nine registers in index order, for iteration.
pub const ALL_REGS: [TReg; 9] = [
    TReg(0),
    TReg(1),
    TReg(2),
    TReg(3),
    TReg(4),
    TReg(5),
    TReg(6),
    TReg(7),
    TReg(8),
];

impl TReg {
    /// `T0` — ABI zero register (software convention only).
    pub const T0: TReg = TReg(0);
    /// `T1` — ABI link register.
    pub const T1: TReg = TReg(1);
    /// `T2` — ABI stack pointer.
    pub const T2: TReg = TReg(2);
    /// `T3` — caller-saved scratch.
    pub const T3: TReg = TReg(3);
    /// `T4` — caller-saved scratch.
    pub const T4: TReg = TReg(4);
    /// `T5` — caller-saved scratch.
    pub const T5: TReg = TReg(5);
    /// `T6` — caller-saved scratch.
    pub const T6: TReg = TReg(6);
    /// `T7` — caller-saved scratch.
    pub const T7: TReg = TReg(7);
    /// `T8` — caller-saved scratch.
    pub const T8: TReg = TReg(8);

    /// Builds a register from its 0-based index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterIndex`] if `index > 8`.
    pub fn from_index(index: usize) -> Result<Self, IsaError> {
        if index > 8 {
            return Err(IsaError::RegisterIndex {
                index: index as i64,
            });
        }
        Ok(TReg(index as u8))
    }

    /// The register's 0-based index (0..=8).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Encodes the register as its 2-trit balanced index (value − 4).
    #[inline]
    pub fn encode(self) -> Trits<2> {
        Trits::<2>::from_i64(self.0 as i64 - 4).expect("index 0..=8 maps into [-4,4]")
    }

    /// Decodes a 2-trit balanced index back to a register.
    ///
    /// Every 2-trit pattern names a register, so this cannot fail.
    #[inline]
    pub fn decode(field: Trits<2>) -> Self {
        TReg((field.to_i64() + 4) as u8)
    }
}

impl fmt::Display for TReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl FromStr for TReg {
    type Err = IsaError;

    /// Parses `t0`..`t8` / `T0`..`T8` and the ABI aliases `zero` (t0),
    /// `ra` (t1) and `sp` (t2).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "zero" => return Ok(TReg::T0),
            "ra" => return Ok(TReg::T1),
            "sp" => return Ok(TReg::T2),
            _ => {}
        }
        let err = || IsaError::Assembly {
            line: 0,
            kind: AsmErrorKind::UnknownRegister(s.to_string()),
        };
        let digits = lower.strip_prefix('t').ok_or_else(err)?;
        let idx: usize = digits.parse().map_err(|_| err())?;
        TReg::from_index(idx).map_err(|_| err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_all() {
        for r in ALL_REGS {
            assert_eq!(TReg::decode(r.encode()), r);
        }
    }

    #[test]
    fn every_two_trit_pattern_names_a_register() {
        for v in -4i64..=4 {
            let field = Trits::<2>::from_i64(v).unwrap();
            let r = TReg::decode(field);
            assert_eq!(r.index() as i64, v + 4);
        }
    }

    #[test]
    fn from_index_bounds() {
        assert!(TReg::from_index(8).is_ok());
        assert!(TReg::from_index(9).is_err());
    }

    #[test]
    fn parse_names_and_aliases() {
        assert_eq!("t0".parse::<TReg>().unwrap(), TReg::T0);
        assert_eq!("T7".parse::<TReg>().unwrap(), TReg::T7);
        assert_eq!("zero".parse::<TReg>().unwrap(), TReg::T0);
        assert_eq!("ra".parse::<TReg>().unwrap(), TReg::T1);
        assert_eq!("sp".parse::<TReg>().unwrap(), TReg::T2);
        assert!("t9".parse::<TReg>().is_err());
        assert!("x3".parse::<TReg>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for r in ALL_REGS {
            assert_eq!(r.to_string().parse::<TReg>().unwrap(), r);
        }
    }
}
