//! Memory-initialization export for the FPGA verification platform.
//!
//! The paper's Table V flow loads the binary-encoded ternary TIM/TDM
//! into block RAM; this module renders a [`Program`]'s images in the
//! two formats that flow needs:
//!
//! * **trit text** (`.trit`) — one word per line, most significant trit
//!   first (`+0-…`), human-auditable and re-parseable;
//! * **BCT hex** (`.mif`-style) — one 18-bit binary-coded-ternary word
//!   per line as five hex digits, ready for `$readmemh`-style loading
//!   into the emulation RAMs.

use ternary::{encoding, Word9};

use crate::error::IsaError;
use crate::program::Program;

/// Renders an image as trit text, one word per line.
///
/// # Examples
///
/// ```
/// use art9_isa::{assemble, mif};
///
/// let p = assemble("ADDI t0, 0\n")?; // canonical NOP
/// let text = mif::to_trit_text(&p.tim_image());
/// assert_eq!(text.lines().next(), Some("0-0+--000"));
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn to_trit_text(image: &[Word9]) -> String {
    let mut out = String::with_capacity(image.len() * 10);
    for w in image {
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// Parses trit text back into an image (inverse of [`to_trit_text`]).
///
/// Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// Returns [`IsaError::Ternary`] for malformed trit lines.
pub fn from_trit_text(text: &str) -> Result<Vec<Word9>, IsaError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push(line.parse::<Word9>().map_err(IsaError::Ternary)?);
    }
    Ok(out)
}

/// Renders an image as binary-coded-ternary hex, one 18-bit word per
/// line (five hex digits), the FPGA RAM initialization format.
///
/// # Examples
///
/// ```
/// use art9_isa::{assemble, mif};
/// use ternary::Word9;
///
/// let zeros = vec![Word9::ZERO];
/// assert_eq!(mif::to_bct_hex(&zeros), "00000\n");
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn to_bct_hex(image: &[Word9]) -> String {
    let mut out = String::with_capacity(image.len() * 6);
    for w in image {
        out.push_str(&format!("{:05x}\n", encoding::pack(w)));
    }
    out
}

/// Parses BCT hex back into an image (inverse of [`to_bct_hex`]).
///
/// # Errors
///
/// Returns [`IsaError::Ternary`] for lines that are not valid 18-bit
/// BCT words (including the forbidden `11` trit pairs).
pub fn from_bct_hex(text: &str) -> Result<Vec<Word9>, IsaError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bits = u64::from_str_radix(line, 16)
            .map_err(|_| IsaError::Ternary(ternary::TernaryError::InvalidBctPair { index: 0 }))?;
        out.push(encoding::unpack::<9>(bits).map_err(IsaError::Ternary)?);
    }
    Ok(out)
}

/// The complete FPGA initialization set for one program: TIM and TDM
/// images in BCT hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaInit {
    /// Instruction-memory initialization (BCT hex).
    pub tim_hex: String,
    /// Data-memory initialization (BCT hex).
    pub tdm_hex: String,
}

/// Exports a program's memory initialization files.
pub fn export(program: &Program) -> FpgaInit {
    FpgaInit {
        tim_hex: to_bct_hex(&program.tim_image()),
        tdm_hex: to_bct_hex(&program.tdm_image()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            ".data\nv: .word 42, -17\n.text\nLI t3, 7\nADD t3, t4\nSTORE t3, t2, 1\nJAL t0, 0\n",
        )
        .unwrap()
    }

    #[test]
    fn trit_text_roundtrip() {
        let p = sample();
        let img = p.tim_image();
        let text = to_trit_text(&img);
        assert_eq!(from_trit_text(&text).unwrap(), img);
        assert_eq!(text.lines().count(), img.len());
    }

    #[test]
    fn trit_text_ignores_comments_and_blanks() {
        let parsed = from_trit_text("# header\n\n000000000   # nop-ish\n").unwrap();
        assert_eq!(parsed, vec![Word9::ZERO]);
    }

    #[test]
    fn bct_hex_roundtrip() {
        let p = sample();
        for img in [p.tim_image(), p.tdm_image()] {
            let hex = to_bct_hex(&img);
            assert_eq!(from_bct_hex(&hex).unwrap(), img);
            // Every line is 5 hex digits (18 bits).
            for l in hex.lines() {
                assert_eq!(l.len(), 5);
            }
        }
    }

    #[test]
    fn bct_hex_rejects_invalid_pairs() {
        // 0x00003 = trit pair 11 at position 0.
        assert!(from_bct_hex("00003\n").is_err());
        assert!(from_bct_hex("zzzzz\n").is_err());
    }

    #[test]
    fn export_covers_both_memories() {
        let p = sample();
        let init = export(&p);
        assert_eq!(init.tim_hex.lines().count(), p.text().len());
        assert_eq!(init.tdm_hex.lines().count(), p.data().len());
        // Executable content survives the export: decode the first word.
        let img = from_bct_hex(&init.tim_hex).unwrap();
        assert_eq!(crate::decode::decode(img[0]).unwrap(), p.text()[0]);
    }
}
