//! Trit-level instruction encoding.
//!
//! The paper fixes the *word length* (9 trits) and the operand field
//! widths (Table I) but does not publish the opcode layout; DESIGN.md
//! §3.1 defines the ternary prefix code used here. In brief, trits
//! `t8 t7 …` (most significant first) form a prefix-free opcode so that
//! the seven instructions needing seven operand trits get 2-trit
//! opcodes, LUI gets 3, ADDI/ANDI get 4, SRI/SLI get 5, and the twelve
//! R-type operations share the `0 0 s s s` space with a 3-trit
//! sub-opcode `s`.
//!
//! [`encode`] and [`crate::decode::decode`] are exact inverses over the
//! legal instruction set; this is property-tested in the crate tests.

use ternary::{Trit, Trits, Word9};

use crate::instr::Instruction;

/// R-type sub-opcode values (balanced value of the 3-trit `s` field).
pub(crate) const R_MV: i64 = 0;
pub(crate) const R_PTI: i64 = 1;
pub(crate) const R_NTI: i64 = 2;
pub(crate) const R_STI: i64 = 3;
pub(crate) const R_AND: i64 = 4;
pub(crate) const R_OR: i64 = 5;
pub(crate) const R_XOR: i64 = 6;
pub(crate) const R_ADD: i64 = 7;
pub(crate) const R_SUB: i64 = 8;
pub(crate) const R_SR: i64 = 9;
pub(crate) const R_SL: i64 = 10;
pub(crate) const R_COMP: i64 = 11;

fn with_prefix2(a: Trit, b: Trit) -> Word9 {
    Word9::ZERO.with_trit(8, a).with_trit(7, b)
}

/// Encodes an instruction into its 9-trit word.
///
/// Every [`Instruction`] value encodes successfully: operand ranges are
/// enforced at construction (the enum stores exact-width immediates).
///
/// # Examples
///
/// ```
/// use art9_isa::{encode, decode, Instruction, TReg};
///
/// let i = Instruction::Add { a: TReg::T3, b: TReg::T4 };
/// let word = encode(&i);
/// assert_eq!(decode(word)?, i);
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn encode(instr: &Instruction) -> Word9 {
    use Instruction::*;
    use Trit::{N, P, Z};
    match instr {
        // --- two-trit opcodes (7 operand trits) ----------------------
        Beq { b, cond, offset } => with_prefix2(P, P)
            .with_field::<2>(5, b.encode())
            .with_trit(4, *cond)
            .with_field::<4>(0, *offset),
        Bne { b, cond, offset } => with_prefix2(P, N)
            .with_field::<2>(5, b.encode())
            .with_trit(4, *cond)
            .with_field::<4>(0, *offset),
        Jal { a, offset } => with_prefix2(P, Z)
            .with_field::<2>(5, a.encode())
            .with_field::<5>(0, *offset),
        Li { a, imm } => with_prefix2(N, P)
            .with_field::<2>(5, a.encode())
            .with_field::<5>(0, *imm),
        Load { a, b, offset } => with_prefix2(N, N)
            .with_field::<2>(5, a.encode())
            .with_field::<2>(3, b.encode())
            .with_field::<3>(0, *offset),
        Store { a, b, offset } => with_prefix2(N, Z)
            .with_field::<2>(5, a.encode())
            .with_field::<2>(3, b.encode())
            .with_field::<3>(0, *offset),
        Jalr { a, b, offset } => with_prefix2(Z, P)
            .with_field::<2>(5, a.encode())
            .with_field::<2>(3, b.encode())
            .with_field::<3>(0, *offset),

        // --- longer I-type opcodes -----------------------------------
        Lui { a, imm } => with_prefix2(Z, N)
            .with_trit(6, P)
            .with_field::<2>(4, a.encode())
            .with_field::<4>(0, *imm),
        Addi { a, imm } => with_prefix2(Z, N)
            .with_trit(6, Z)
            .with_trit(5, P)
            .with_field::<2>(3, a.encode())
            .with_field::<3>(0, *imm),
        Andi { a, imm } => with_prefix2(Z, N)
            .with_trit(6, Z)
            .with_trit(5, N)
            .with_field::<2>(3, a.encode())
            .with_field::<3>(0, *imm),
        Sri { a, imm } => with_prefix2(Z, N)
            .with_trit(6, Z)
            .with_trit(5, Z)
            .with_trit(4, P)
            .with_field::<2>(2, a.encode())
            .with_field::<2>(0, *imm),
        Sli { a, imm } => with_prefix2(Z, N)
            .with_trit(6, Z)
            .with_trit(5, Z)
            .with_trit(4, N)
            .with_field::<2>(2, a.encode())
            .with_field::<2>(0, *imm),

        // --- R-type: 0 0 s s s | Ta | Tb ------------------------------
        Mv { a, b } => encode_r(R_MV, *a, *b),
        Pti { a, b } => encode_r(R_PTI, *a, *b),
        Nti { a, b } => encode_r(R_NTI, *a, *b),
        Sti { a, b } => encode_r(R_STI, *a, *b),
        And { a, b } => encode_r(R_AND, *a, *b),
        Or { a, b } => encode_r(R_OR, *a, *b),
        Xor { a, b } => encode_r(R_XOR, *a, *b),
        Add { a, b } => encode_r(R_ADD, *a, *b),
        Sub { a, b } => encode_r(R_SUB, *a, *b),
        Sr { a, b } => encode_r(R_SR, *a, *b),
        Sl { a, b } => encode_r(R_SL, *a, *b),
        Comp { a, b } => encode_r(R_COMP, *a, *b),
    }
}

fn encode_r(sub: i64, a: crate::reg::TReg, b: crate::reg::TReg) -> Word9 {
    Word9::ZERO
        .with_field::<3>(
            4,
            Trits::<3>::from_i64(sub).expect("sub-opcode fits 3 trits"),
        )
        .with_field::<2>(2, a.encode())
        .with_field::<2>(0, b.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::TReg;
    use ternary::Trits;

    #[test]
    fn opcode_prefixes_are_distinct() {
        use Instruction::*;
        let samples = vec![
            Beq {
                b: TReg::T3,
                cond: Trit::P,
                offset: Trits::ZERO,
            },
            Bne {
                b: TReg::T3,
                cond: Trit::P,
                offset: Trits::ZERO,
            },
            Jal {
                a: TReg::T1,
                offset: Trits::ZERO,
            },
            Li {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Load {
                a: TReg::T4,
                b: TReg::T2,
                offset: Trits::ZERO,
            },
            Store {
                a: TReg::T4,
                b: TReg::T2,
                offset: Trits::ZERO,
            },
            Jalr {
                a: TReg::T1,
                b: TReg::T2,
                offset: Trits::ZERO,
            },
            Lui {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Addi {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Andi {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Sri {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Sli {
                a: TReg::T4,
                imm: Trits::ZERO,
            },
            Mv {
                a: TReg::T4,
                b: TReg::T2,
            },
            Add {
                a: TReg::T4,
                b: TReg::T2,
            },
        ];
        let words: Vec<Word9> = samples.iter().map(encode).collect();
        for (i, w) in words.iter().enumerate() {
            for (j, v) in words.iter().enumerate() {
                if i != j {
                    assert_ne!(w, v, "{:?} vs {:?}", samples[i], samples[j]);
                }
            }
        }
    }

    #[test]
    fn nop_encoding_is_stable() {
        // NOP = ADDI t0, 0. t0 encodes as -4 = (N,N); prefix 0 N 0 P.
        let w = encode(&crate::instr::NOP);
        assert_eq!(w.to_string(), "0-0+--000");
    }

    #[test]
    fn rtype_operand_fields() {
        let w = encode(&Instruction::Add {
            a: TReg::T8,
            b: TReg::T0,
        });
        // Ta at t3..t2 = +4 -> (+,+) ; Tb at t1..t0 = -4 -> (-,-)
        assert_eq!(TReg::decode(w.field::<2>(2)), TReg::T8);
        assert_eq!(TReg::decode(w.field::<2>(0)), TReg::T0);
        assert_eq!(w.field::<3>(4).to_i64(), R_ADD);
    }
}
