//! Two-pass assembler for ART-9 assembly source.
//!
//! The syntax mirrors Table I of the paper with conventional extensions
//! (labels, sections, data directives) so that the software-level
//! compiling framework can emit readable intermediate text:
//!
//! ```text
//! ; bubble-sort inner loop (comments with ';', '#' or '//')
//!         .text
//! loop:   LOAD  t5, t2, 0        ; t5 = TDM[t2 + 0]
//!         LOAD  t6, t2, 1
//!         COMP  t7, t5           ; t7 already holds t5's neighbour
//!         BEQ   t7, +, swap      ; branch when LST(t7) == +1
//!         ADDI  t2, 1
//!         BNE   t3, 0, loop
//!         JAL   t1, done
//! swap:   STORE t5, t2, 1
//!         STORE t6, t2, 0
//! done:   JALR  t0, t1, 0
//!
//!         .data
//! nums:   .word 5, -3, 121, 0
//!         .zero 4
//! ```
//!
//! * Labels in `.text` name instruction addresses; in `.data` they name
//!   TDM word addresses.
//! * Branch (`BEQ`/`BNE`) and `JAL` targets may be labels (the assembler
//!   computes the PC-relative offset and range-checks it) or explicit
//!   numeric offsets.
//! * `hi(sym)`/`lo(sym)` split an address or constant into the LUI/LI
//!   pair: `value = hi·3⁵ + lo` with `lo` the balanced low 5 trits.
//! * Immediates are decimal, or balanced-ternary literals prefixed with
//!   `0t` (e.g. `0t+-0` = 6).

use std::collections::BTreeMap;

use ternary::{Trit, Word9};

use crate::error::{AsmErrorKind, IsaError};
use crate::instr::Instruction;
use crate::program::{Program, Section, Symbol};
use crate::reg::TReg;

/// Splits `value` into the `(hi, lo)` pair used by a LUI/LI sequence:
/// `value = hi·243 + lo`, with `lo ∈ [−121, 121]` the balanced low five
/// trits and `hi ∈ [−40, 40]`.
///
/// # Panics
///
/// Panics if `value` is outside the 9-trit range (−9841..=9841) — split
/// your constants before calling.
///
/// # Examples
///
/// ```
/// use art9_isa::asm::split_hi_lo;
/// let (hi, lo) = split_hi_lo(1000);
/// assert_eq!(hi * 243 + lo, 1000);
/// assert!((-121..=121).contains(&lo));
/// ```
pub fn split_hi_lo(value: i64) -> (i64, i64) {
    assert!(
        (-9841..=9841).contains(&value),
        "value {value} outside 9-trit range"
    );
    let w = Word9::from_i64(value).expect("checked above");
    let lo = w.field::<5>(0).to_i64();
    let hi = w.field::<4>(5).to_i64();
    debug_assert_eq!(hi * 243 + lo, value);
    (hi, lo)
}

/// Assembles ART-9 source text into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Assembly`] with the offending line number for
/// syntax errors, unknown mnemonics/registers, duplicate or undefined
/// labels, and out-of-range immediates or branch targets.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
///
/// let program = assemble("
///     LI   t3, 5
/// loop:
///     ADDI t3, -1
///     BNE  t3, 0, loop
/// ")?;
/// assert_eq!(program.text().len(), 3);
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    let items = parse_items(source)?;
    let symbols = collect_symbols(&items)?;
    lower(&items, &symbols)
}

// --- pass 0: line parsing ---------------------------------------------

#[derive(Debug, Clone)]
struct RawItem {
    line: usize,
    section: Section,
    /// Address within its section (instruction index or data word index).
    addr: usize,
    body: RawBody,
}

#[derive(Debug, Clone)]
enum RawBody {
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
    Words(Vec<String>),
    Zeros(usize),
    Label(String),
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "#", "//"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

fn parse_items(source: &str) -> Result<Vec<RawItem>, IsaError> {
    let mut items = Vec::new();
    let mut section = Section::Text;
    let mut text_addr = 0usize;
    let mut data_addr = 0usize;

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut rest = strip_comment(raw_line).trim();

        // Peel leading labels (there may be several on one line).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if label.is_empty() || !is_ident(label) {
                break;
            }
            let addr = if section == Section::Text {
                text_addr
            } else {
                data_addr
            };
            items.push(RawItem {
                line,
                section,
                addr,
                body: RawBody::Label(label.to_string()),
            });
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = match directive.find(char::is_whitespace) {
                Some(pos) => (&directive[..pos], directive[pos..].trim()),
                None => (directive, ""),
            };
            match name.to_ascii_lowercase().as_str() {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "word" => {
                    let vals: Vec<String> = args.split(',').map(|s| s.trim().to_string()).collect();
                    if vals.iter().any(String::is_empty) {
                        return Err(asm_err(line, AsmErrorKind::BadDirective(rest.into())));
                    }
                    let n = vals.len();
                    items.push(RawItem {
                        line,
                        section: Section::Data,
                        addr: data_addr,
                        body: RawBody::Words(vals),
                    });
                    data_addr += n;
                }
                "zero" | "space" => {
                    let n: usize = args
                        .parse()
                        .map_err(|_| asm_err(line, AsmErrorKind::BadDirective(rest.into())))?;
                    items.push(RawItem {
                        line,
                        section: Section::Data,
                        addr: data_addr,
                        body: RawBody::Zeros(n),
                    });
                    data_addr += n;
                }
                _ => return Err(asm_err(line, AsmErrorKind::BadDirective(rest.into()))),
            }
            continue;
        }

        // Instruction line: mnemonic then comma-separated operands.
        let (mnemonic, ops) = match rest.find(char::is_whitespace) {
            Some(pos) => (&rest[..pos], rest[pos..].trim()),
            None => (rest, ""),
        };
        let operands: Vec<String> = if ops.is_empty() {
            Vec::new()
        } else {
            ops.split(',').map(|s| s.trim().to_string()).collect()
        };
        if operands.iter().any(String::is_empty) {
            return Err(asm_err(line, AsmErrorKind::BadOperand(ops.into())));
        }
        items.push(RawItem {
            line,
            section: Section::Text,
            addr: text_addr,
            body: RawBody::Instr {
                mnemonic: mnemonic.to_ascii_uppercase(),
                operands,
            },
        });
        text_addr += 1;
    }
    Ok(items)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn asm_err(line: usize, kind: AsmErrorKind) -> IsaError {
    IsaError::Assembly { line, kind }
}

// --- pass 1: symbol collection ----------------------------------------

fn collect_symbols(items: &[RawItem]) -> Result<BTreeMap<String, Symbol>, IsaError> {
    let mut symbols = BTreeMap::new();
    for item in items {
        if let RawBody::Label(name) = &item.body {
            let sym = Symbol {
                section: item.section,
                address: item.addr,
            };
            if symbols.insert(name.clone(), sym).is_some() {
                return Err(asm_err(
                    item.line,
                    AsmErrorKind::DuplicateLabel(name.clone()),
                ));
            }
        }
    }
    Ok(symbols)
}

// --- pass 2: lowering ---------------------------------------------------

struct Ctx<'a> {
    symbols: &'a BTreeMap<String, Symbol>,
    line: usize,
    pc: usize,
}

impl Ctx<'_> {
    fn err(&self, kind: AsmErrorKind) -> IsaError {
        asm_err(self.line, kind)
    }

    fn reg(&self, s: &str) -> Result<TReg, IsaError> {
        s.parse::<TReg>()
            .map_err(|_| self.err(AsmErrorKind::UnknownRegister(s.into())))
    }

    /// Parses a numeric operand: decimal, `0t` ternary literal, or
    /// `hi(sym)` / `lo(sym)` of a symbol or constant.
    fn value(&self, s: &str) -> Result<i64, IsaError> {
        if let Some(inner) = call_arg(s, "hi") {
            return Ok(split_hi_lo(self.value(inner)?).0);
        }
        if let Some(inner) = call_arg(s, "lo") {
            return Ok(split_hi_lo(self.value(inner)?).1);
        }
        if let Some(lit) = s.strip_prefix("0t") {
            return parse_ternary_literal(lit)
                .ok_or_else(|| self.err(AsmErrorKind::BadOperand(s.into())));
        }
        if let Ok(v) = s.parse::<i64>() {
            return Ok(v);
        }
        if let Some(sym) = self.symbols.get(s) {
            return Ok(sym.address as i64);
        }
        if is_ident(s) {
            Err(self.err(AsmErrorKind::UndefinedLabel(s.into())))
        } else {
            Err(self.err(AsmErrorKind::BadOperand(s.into())))
        }
    }

    /// Parses an immediate that must fit `N` trits.
    fn imm<const N: usize>(&self, s: &str) -> Result<ternary::Trits<N>, IsaError> {
        let v = self.value(s)?;
        ternary::Trits::<N>::from_i64(v)
            .map_err(|_| self.err(AsmErrorKind::ImmediateRange { value: v, width: N }))
    }

    /// Parses a control-flow target: a label (PC-relative delta) or an
    /// explicit numeric offset.
    fn target<const N: usize>(&self, s: &str) -> Result<ternary::Trits<N>, IsaError> {
        let offset = if let Some(sym) = self.symbols.get(s) {
            if sym.section != Section::Text {
                return Err(self.err(AsmErrorKind::BadOperand(format!(
                    "{s} is a data label, not a branch target"
                ))));
            }
            sym.address as i64 - self.pc as i64
        } else if let Ok(v) = s.parse::<i64>() {
            v
        } else {
            return Err(self.err(AsmErrorKind::UndefinedLabel(s.into())));
        };
        ternary::Trits::<N>::from_i64(offset).map_err(|_| {
            self.err(AsmErrorKind::TargetOutOfRange {
                target: s.into(),
                offset,
                width: N,
            })
        })
    }

    /// Parses the 1-trit branch constant: `-`, `0` or `+` (or n/z/p).
    fn branch_trit(&self, s: &str) -> Result<Trit, IsaError> {
        if s.len() == 1 {
            if let Ok(t) = Trit::try_from_char(s.chars().next().expect("len 1")) {
                return Ok(t);
            }
        }
        Err(self.err(AsmErrorKind::BadBranchTrit(s.into())))
    }
}

fn call_arg<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    s.strip_prefix(name)?
        .trim_start()
        .strip_prefix('(')?
        .trim_end()
        .strip_suffix(')')
        .map(str::trim)
}

fn parse_ternary_literal(s: &str) -> Option<i64> {
    if s.is_empty() {
        return None;
    }
    let mut acc = 0i64;
    for c in s.chars() {
        if c == '_' {
            continue;
        }
        acc = acc * 3 + Trit::try_from_char(c).ok()?.value() as i64;
    }
    Some(acc)
}

fn expect_operands(
    line: usize,
    mnemonic: &str,
    operands: &[String],
    expected: usize,
) -> Result<(), IsaError> {
    if operands.len() != expected {
        return Err(asm_err(
            line,
            AsmErrorKind::OperandCount {
                mnemonic: mnemonic.into(),
                expected,
                found: operands.len(),
            },
        ));
    }
    Ok(())
}

fn lower(items: &[RawItem], symbols: &BTreeMap<String, Symbol>) -> Result<Program, IsaError> {
    let mut text = Vec::new();
    let mut lines = Vec::new();
    let mut data = Vec::new();

    for item in items {
        match &item.body {
            RawBody::Label(_) => {}
            RawBody::Zeros(n) => data.extend(std::iter::repeat_n(Word9::ZERO, *n)),
            RawBody::Words(vals) => {
                let ctx = Ctx {
                    symbols,
                    line: item.line,
                    pc: 0,
                };
                for v in vals {
                    let value = ctx.value(v)?;
                    let w = Word9::from_i64(value)
                        .map_err(|_| ctx.err(AsmErrorKind::ImmediateRange { value, width: 9 }))?;
                    data.push(w);
                }
            }
            RawBody::Instr { mnemonic, operands } => {
                let ctx = Ctx {
                    symbols,
                    line: item.line,
                    pc: item.addr,
                };
                let instr = lower_instr(&ctx, mnemonic, operands)?;
                text.push(instr);
                lines.push(item.line);
            }
        }
    }

    Ok(Program::new(text, data, symbols.clone(), lines))
}

fn lower_instr(ctx: &Ctx<'_>, mnemonic: &str, ops: &[String]) -> Result<Instruction, IsaError> {
    use Instruction::*;
    let n = ops.len();
    let need = |expected| expect_operands(ctx.line, mnemonic, ops, expected);

    Ok(match mnemonic {
        "MV" => {
            need(2)?;
            Mv {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "PTI" => {
            need(2)?;
            Pti {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "NTI" => {
            need(2)?;
            Nti {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "STI" => {
            need(2)?;
            Sti {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "AND" => {
            need(2)?;
            And {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "OR" => {
            need(2)?;
            Or {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "XOR" => {
            need(2)?;
            Xor {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "ADD" => {
            need(2)?;
            Add {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "SUB" => {
            need(2)?;
            Sub {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "SR" => {
            need(2)?;
            Sr {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "SL" => {
            need(2)?;
            Sl {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "COMP" => {
            need(2)?;
            Comp {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
            }
        }
        "ANDI" => {
            need(2)?;
            Andi {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<3>(&ops[1])?,
            }
        }
        "ADDI" => {
            need(2)?;
            Addi {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<3>(&ops[1])?,
            }
        }
        "SRI" => {
            need(2)?;
            Sri {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<2>(&ops[1])?,
            }
        }
        "SLI" => {
            need(2)?;
            Sli {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<2>(&ops[1])?,
            }
        }
        "LUI" => {
            need(2)?;
            Lui {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<4>(&ops[1])?,
            }
        }
        "LI" => {
            need(2)?;
            Li {
                a: ctx.reg(&ops[0])?,
                imm: ctx.imm::<5>(&ops[1])?,
            }
        }
        "BEQ" => {
            need(3)?;
            Beq {
                b: ctx.reg(&ops[0])?,
                cond: ctx.branch_trit(&ops[1])?,
                offset: ctx.target::<4>(&ops[2])?,
            }
        }
        "BNE" => {
            need(3)?;
            Bne {
                b: ctx.reg(&ops[0])?,
                cond: ctx.branch_trit(&ops[1])?,
                offset: ctx.target::<4>(&ops[2])?,
            }
        }
        "JAL" => {
            need(2)?;
            Jal {
                a: ctx.reg(&ops[0])?,
                offset: ctx.target::<5>(&ops[1])?,
            }
        }
        "JALR" => {
            need(3)?;
            Jalr {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
                offset: ctx.imm::<3>(&ops[2])?,
            }
        }
        "LOAD" => {
            need(3)?;
            Load {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
                offset: ctx.imm::<3>(&ops[2])?,
            }
        }
        "STORE" => {
            need(3)?;
            Store {
                a: ctx.reg(&ops[0])?,
                b: ctx.reg(&ops[1])?,
                offset: ctx.imm::<3>(&ops[2])?,
            }
        }
        "NOP" => {
            need(0)?;
            let _ = n;
            crate::instr::NOP
        }
        other => {
            return Err(ctx.err(AsmErrorKind::UnknownMnemonic(other.into())));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_each_mnemonic() {
        let src = "
            MV t3, t4
            PTI t3, t4
            NTI t3, t4
            STI t3, t4
            AND t3, t4
            OR t3, t4
            XOR t3, t4
            ADD t3, t4
            SUB t3, t4
            SR t3, t4
            SL t3, t4
            COMP t3, t4
            ANDI t3, -13
            ADDI t3, 13
            SRI t3, 2
            SLI t3, -2
            LUI t3, 40
            LI t3, -121
            BEQ t3, +, 1
            BNE t3, -, -1
            JAL t1, 2
            JALR t1, t2, 0
            LOAD t5, t2, 3
            STORE t5, t2, -3
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.text().len(), 24);
    }

    #[test]
    fn label_branch_offsets() {
        let src = "
            LI t3, 3
        loop:
            ADDI t3, -1
            BNE t3, 0, loop
            NOP
        ";
        let p = assemble(src).unwrap();
        // BNE at pc=2, loop at pc=1 => offset -1.
        match p.text()[2] {
            Instruction::Bne { offset, .. } => assert_eq!(offset.to_i64(), -1),
            ref other => panic!("expected BNE, got {other}"),
        }
    }

    #[test]
    fn forward_jump_and_multiple_labels() {
        let src = "
        start: first: JAL t1, end
            NOP
        end:
            NOP
        ";
        let p = assemble(src).unwrap();
        match p.text()[0] {
            Instruction::Jal { offset, .. } => assert_eq!(offset.to_i64(), 2),
            ref other => panic!("expected JAL, got {other}"),
        }
        assert_eq!(p.symbol("start").unwrap().address, 0);
        assert_eq!(p.symbol("first").unwrap().address, 0);
        assert_eq!(p.symbol("end").unwrap().address, 2);
    }

    #[test]
    fn data_section_words_and_labels() {
        let src = "
            .data
        nums: .word 5, -3, 0t+-0
            .zero 2
        more: .word 9841
            .text
            LI t3, lo(nums)
            LI t4, lo(more)
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.data().len(), 6);
        assert_eq!(p.data()[0].to_i64(), 5);
        assert_eq!(p.data()[1].to_i64(), -3);
        assert_eq!(p.data()[2].to_i64(), 6); // 0t+-0
        assert_eq!(p.data()[5].to_i64(), 9841);
        assert_eq!(p.symbol("more").unwrap().address, 5);
        match p.text()[1] {
            Instruction::Li { imm, .. } => assert_eq!(imm.to_i64(), 5),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn hi_lo_reconstruct() {
        for v in [-9841i64, -1000, -122, -121, 0, 121, 122, 1000, 9841] {
            let (hi, lo) = split_hi_lo(v);
            assert_eq!(hi * 243 + lo, v, "value {v}");
            assert!((-121..=121).contains(&lo));
            assert!((-40..=40).contains(&hi));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("NOP\nFROB t1, t2\n").unwrap_err();
        match e {
            IsaError::Assembly {
                line,
                kind: AsmErrorKind::UnknownMnemonic(m),
            } => {
                assert_eq!(line, 2);
                assert_eq!(m, "FROB");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_register_operand_count_and_range() {
        assert!(matches!(
            assemble("MV t3, x9").unwrap_err(),
            IsaError::Assembly {
                kind: AsmErrorKind::UnknownRegister(_),
                ..
            }
        ));
        assert!(matches!(
            assemble("MV t3").unwrap_err(),
            IsaError::Assembly {
                kind: AsmErrorKind::OperandCount { .. },
                ..
            }
        ));
        assert!(matches!(
            assemble("ADDI t3, 14").unwrap_err(),
            IsaError::Assembly {
                kind: AsmErrorKind::ImmediateRange { .. },
                ..
            }
        ));
    }

    #[test]
    fn rejects_duplicate_and_undefined_labels() {
        assert!(matches!(
            assemble("x: NOP\nx: NOP").unwrap_err(),
            IsaError::Assembly {
                kind: AsmErrorKind::DuplicateLabel(_),
                ..
            }
        ));
        assert!(matches!(
            assemble("JAL t1, nowhere").unwrap_err(),
            IsaError::Assembly {
                kind: AsmErrorKind::UndefinedLabel(_),
                ..
            }
        ));
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        // Branch target 50 instructions away: outside imm4 (±40).
        let mut src = String::from("BEQ t3, 0, far\n");
        for _ in 0..60 {
            src.push_str("NOP\n");
        }
        src.push_str("far: NOP\n");
        let e = assemble(&src).unwrap_err();
        assert!(matches!(
            e,
            IsaError::Assembly {
                kind: AsmErrorKind::TargetOutOfRange { .. },
                ..
            }
        ));
    }

    #[test]
    fn branch_condition_spellings() {
        let p = assemble("BEQ t3, +, 0\nBEQ t3, -, 0\nBEQ t3, 0, 0").unwrap();
        let conds: Vec<Trit> = p
            .text()
            .iter()
            .map(|i| match i {
                Instruction::Beq { cond, .. } => *cond,
                other => panic!("{other}"),
            })
            .collect();
        assert_eq!(conds, vec![Trit::P, Trit::N, Trit::Z]);
    }

    #[test]
    fn comments_everywhere() {
        let p = assemble("NOP ; tail\n# full line\n// also full\nNOP # tail 2\n").unwrap();
        assert_eq!(p.text().len(), 2);
    }
}
