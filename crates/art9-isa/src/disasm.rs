//! Disassembler: 9-trit words back to assembly text.

use ternary::Word9;

use crate::decode::decode;
use crate::error::IsaError;

/// Disassembles a single word to its canonical assembly line.
///
/// # Errors
///
/// Returns [`IsaError::IllegalInstruction`] for reserved encodings.
///
/// # Examples
///
/// ```
/// use art9_isa::{disassemble_word, encode, Instruction, TReg};
///
/// let w = encode(&Instruction::Add { a: TReg::T3, b: TReg::T4 });
/// assert_eq!(disassemble_word(w)?, "ADD t3, t4");
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn disassemble_word(word: Word9) -> Result<String, IsaError> {
    Ok(decode(word)?.to_string())
}

/// Disassembles a TIM image into one line per instruction, annotated
/// with the word address and the raw trits.
///
/// Illegal words are rendered as `.illegal <trits>` rather than failing,
/// so a partially-corrupt image can still be inspected.
///
/// # Examples
///
/// ```
/// use art9_isa::{assemble, disassemble_image, disassemble_word};
///
/// let p = assemble("LI t3, 7\nADDI t3, -1\n")?;
/// let listing = disassemble_image(&p.tim_image());
/// assert!(listing.lines().count() == 2);
/// assert!(listing.contains("LI t3, 7"));
///
/// // The un-annotated lines are valid assembly: asm → disasm → asm
/// // round-trips.
/// let source: String = p
///     .tim_image()
///     .iter()
///     .map(|w| disassemble_word(*w).expect("legal") + "\n")
///     .collect();
/// let p2 = assemble(&source)?;
/// assert_eq!(p.text(), p2.text());
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn disassemble_image(image: &[Word9]) -> String {
    let mut out = String::new();
    for (addr, word) in image.iter().enumerate() {
        let body = match decode(*word) {
            Ok(i) => i.to_string(),
            Err(_) => format!(".illegal {word}"),
        };
        out.push_str(&format!("{addr:4}: {word}  {body}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_covers_all_instructions() {
        let p = assemble("LI t3, 7\nADD t3, t4\nBEQ t3, +, 1\nNOP\n").unwrap();
        let listing = disassemble_image(&p.tim_image());
        assert_eq!(listing.lines().count(), 4);
        assert!(listing.contains("BEQ t3, +, 1"));
        assert!(listing.contains("ADDI t0, 0")); // NOP's canonical form
    }

    #[test]
    fn illegal_words_render_inline() {
        use ternary::Trit;
        // 0 - - ... is reserved.
        let w = Word9::ZERO.with_trit(7, Trit::N).with_trit(6, Trit::N);
        let listing = disassemble_image(&[w]);
        assert!(listing.contains(".illegal"));
        assert!(disassemble_word(w).is_err());
    }
}
