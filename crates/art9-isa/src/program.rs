//! Assembled ART-9 programs: instruction/data images plus symbols.

use std::collections::BTreeMap;
use std::fmt;

use ternary::Word9;

use crate::encode::encode;
use crate::instr::Instruction;

/// Which memory a symbol or item lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Ternary instruction memory (TIM).
    Text,
    /// Ternary data memory (TDM).
    Data,
}

/// A named address produced by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symbol {
    /// The section the symbol points into.
    pub section: Section,
    /// Word address within that section.
    pub address: usize,
}

/// An assembled ART-9 program: the TIM instruction list, the initial TDM
/// image, and the symbol table.
///
/// Memory-cell accounting (the unit of the paper's Fig. 5) counts *trits*:
/// each instruction is 9 trits of TIM, each data word 9 trits of TDM.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
///
/// let p = assemble("LI t3, 42\nADDI t3, 1\n")?;
/// assert_eq!(p.instruction_cells(), 18); // 2 instructions x 9 trits
/// assert_eq!(p.tim_image().len(), 2);
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    text: Vec<Instruction>,
    data: Vec<Word9>,
    symbols: BTreeMap<String, Symbol>,
    /// Source line of each instruction (empty when built programmatically).
    lines: Vec<usize>,
}

impl Program {
    /// Builds a program from its parts (used by the assembler and by the
    /// compiling framework).
    pub fn new(
        text: Vec<Instruction>,
        data: Vec<Word9>,
        symbols: BTreeMap<String, Symbol>,
        lines: Vec<usize>,
    ) -> Self {
        Self {
            text,
            data,
            symbols,
            lines,
        }
    }

    /// Builds a program from a bare instruction list with no data or
    /// symbols.
    pub fn from_instructions(text: Vec<Instruction>) -> Self {
        Self {
            text,
            data: Vec::new(),
            symbols: BTreeMap::new(),
            lines: Vec::new(),
        }
    }

    /// The instruction sequence (TIM contents, in order).
    pub fn text(&self) -> &[Instruction] {
        &self.text
    }

    /// The initial data image (TDM contents, in order).
    pub fn data(&self) -> &[Word9] {
        &self.data
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, Symbol> {
        &self.symbols
    }

    /// Source line of instruction `index`, when known.
    pub fn line_of(&self, index: usize) -> Option<usize> {
        self.lines.get(index).copied()
    }

    /// Encodes the text section into 9-trit TIM words.
    pub fn tim_image(&self) -> Vec<Word9> {
        self.text.iter().map(encode).collect()
    }

    /// The initial TDM image (alias of [`Program::data`], cloned).
    pub fn tdm_image(&self) -> Vec<Word9> {
        self.data.clone()
    }

    /// TIM storage in ternary memory cells (trits): 9 per instruction.
    pub fn instruction_cells(&self) -> usize {
        self.text.len() * 9
    }

    /// TDM storage in ternary memory cells (trits): 9 per data word.
    pub fn data_cells(&self) -> usize {
        self.data.len() * 9
    }

    /// Total program storage in ternary memory cells — Fig. 5's metric.
    pub fn memory_cells(&self) -> usize {
        self.instruction_cells() + self.data_cells()
    }
}

impl fmt::Display for Program {
    /// Renders the program as assembly text (labels are re-attached at
    /// their addresses).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut text_labels: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        let mut data_labels: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, sym) in &self.symbols {
            match sym.section {
                Section::Text => text_labels.entry(sym.address).or_default().push(name),
                Section::Data => data_labels.entry(sym.address).or_default().push(name),
            }
        }
        for (pc, instr) in self.text.iter().enumerate() {
            if let Some(names) = text_labels.get(&pc) {
                for n in names {
                    writeln!(f, "{n}:")?;
                }
            }
            writeln!(f, "    {instr}")?;
        }
        if !self.data.is_empty() {
            writeln!(f, "    .data")?;
            for (addr, w) in self.data.iter().enumerate() {
                if let Some(names) = data_labels.get(&addr) {
                    for n in names {
                        writeln!(f, "{n}:")?;
                    }
                }
                writeln!(f, "    .word {}", w.to_i64())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::reg::TReg;

    #[test]
    fn cell_accounting() {
        let p = assemble(".data\n.word 1, 2, 3\n.text\nNOP\nNOP\n").unwrap();
        assert_eq!(p.instruction_cells(), 18);
        assert_eq!(p.data_cells(), 27);
        assert_eq!(p.memory_cells(), 45);
    }

    #[test]
    fn tim_image_round_trips_through_decode() {
        let p = assemble("LI t3, 7\nADD t3, t4\nSTORE t3, t2, 1\n").unwrap();
        let img = p.tim_image();
        assert_eq!(img.len(), 3);
        for (w, i) in img.iter().zip(p.text()) {
            assert_eq!(crate::decode::decode(*w).unwrap(), *i);
        }
    }

    #[test]
    fn display_reassembles() {
        let src = "
        start:
            LI t3, 5
        loop:
            ADDI t3, -1
            BNE t3, 0, loop
            .data
        v:  .word 9, -9
        ";
        let p = assemble(src).unwrap();
        let rendered = p.to_string();
        let p2 = assemble(&rendered).unwrap();
        assert_eq!(p.text(), p2.text());
        assert_eq!(p.data(), p2.data());
    }

    #[test]
    fn from_instructions_is_bare() {
        let p = Program::from_instructions(vec![Instruction::Mv {
            a: TReg::T3,
            b: TReg::T4,
        }]);
        assert_eq!(p.text().len(), 1);
        assert!(p.data().is_empty());
        assert_eq!(p.memory_cells(), 9);
    }
}
