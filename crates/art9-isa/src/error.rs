//! Error types of the ART-9 ISA crate.

use std::error::Error;
use std::fmt;

use ternary::{TernaryError, Word9};

/// Errors from instruction decoding and assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A 9-trit word did not decode to any ART-9 instruction (reserved
    /// opcode space, §3.1 of DESIGN.md).
    IllegalInstruction {
        /// The word that failed to decode.
        word: Word9,
    },
    /// A register index was outside T0..T8.
    RegisterIndex {
        /// The offending index.
        index: i64,
    },
    /// An immediate did not fit its field.
    ImmediateRange {
        /// The mnemonic whose field overflowed.
        mnemonic: &'static str,
        /// The offending value.
        value: i64,
        /// Field width in trits.
        width: usize,
    },
    /// An assembly-source error, tagged with its 1-based line number.
    Assembly {
        /// Line where the problem was found.
        line: usize,
        /// What went wrong.
        kind: AsmErrorKind,
    },
    /// A ternary-domain error surfaced through the ISA layer.
    Ternary(TernaryError),
}

/// The specific assembly-source problems [`IsaError::Assembly`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// Unknown register name.
    UnknownRegister(String),
    /// Malformed operand.
    BadOperand(String),
    /// Wrong number of operands for the mnemonic.
    OperandCount {
        /// The mnemonic being assembled.
        mnemonic: String,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A branch/jump target was out of the immediate's reach.
    TargetOutOfRange {
        /// The label or offset that is unreachable.
        target: String,
        /// The required offset in instructions.
        offset: i64,
        /// The immediate width available.
        width: usize,
    },
    /// An immediate literal was out of range for its field.
    ImmediateRange {
        /// The offending value.
        value: i64,
        /// Field width in trits.
        width: usize,
    },
    /// A 1-trit branch constant was not `-`, `0` or `+`.
    BadBranchTrit(String),
    /// A directive was malformed.
    BadDirective(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::UnknownRegister(r) => write!(f, "unknown register {r:?}"),
            AsmErrorKind::BadOperand(o) => write!(f, "malformed operand {o:?}"),
            AsmErrorKind::OperandCount {
                mnemonic,
                expected,
                found,
            } => write!(f, "{mnemonic} expects {expected} operand(s), found {found}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "label {l:?} is not defined"),
            AsmErrorKind::TargetOutOfRange {
                target,
                offset,
                width,
            } => write!(
                f,
                "target {target:?} needs offset {offset}, outside a {width}-trit immediate"
            ),
            AsmErrorKind::ImmediateRange { value, width } => {
                write!(f, "immediate {value} does not fit {width} trits")
            }
            AsmErrorKind::BadBranchTrit(s) => {
                write!(f, "branch constant must be '-', '0' or '+', found {s:?}")
            }
            AsmErrorKind::BadDirective(d) => write!(f, "malformed directive {d:?}"),
        }
    }
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::IllegalInstruction { word } => {
                write!(f, "illegal instruction word {word}")
            }
            IsaError::RegisterIndex { index } => {
                write!(f, "register index {index} is outside T0..T8")
            }
            IsaError::ImmediateRange {
                mnemonic,
                value,
                width,
            } => write!(f, "{mnemonic} immediate {value} does not fit {width} trits"),
            IsaError::Assembly { line, kind } => write!(f, "line {line}: {kind}"),
            IsaError::Ternary(e) => write!(f, "{e}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Ternary(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TernaryError> for IsaError {
    fn from(e: TernaryError) -> Self {
        IsaError::Ternary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = IsaError::Assembly {
            line: 7,
            kind: AsmErrorKind::UnknownMnemonic("FOO".into()),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("FOO"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }

    #[test]
    fn source_chains_to_ternary() {
        let e = IsaError::from(TernaryError::DivisionByZero);
        assert!(Error::source(&e).is_some());
    }
}
