//! # `art9-isa` — the ART-9 instruction set architecture
//!
//! The 9-trit, 24-instruction ternary ISA of the paper's Table I:
//!
//! * [`TReg`] — the nine general-purpose ternary registers with their
//!   2-trit balanced index encoding.
//! * [`Instruction`] — the 24 instructions (R/I/B/M formats) with
//!   operand-exact immediate widths.
//! * [`encode`] / [`decode`] — the trit-level prefix-code layout
//!   (DESIGN.md §3.1); exact inverses, property-tested.
//! * [`assemble`] — a two-pass assembler with labels, sections, data
//!   directives and `hi()`/`lo()` immediate splitting.
//! * [`Program`] — assembled TIM/TDM images with the memory-cell (trit)
//!   accounting used by the paper's Fig. 5.
//!
//! A narrative reference for the whole instruction set — machine
//! model, per-instruction semantics, encoding scheme and assembler
//! syntax — lives in `docs/ISA.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use art9_isa::{assemble, disassemble_image};
//!
//! let program = assemble("
//!     LI   t3, 10          ; counter
//! loop:
//!     ADDI t3, -1
//!     BNE  t3, 0, loop     ; spin down to zero
//! ")?;
//!
//! assert_eq!(program.text().len(), 3);
//! assert_eq!(program.instruction_cells(), 27); // 3 x 9 trits
//! println!("{}", disassemble_image(&program.tim_image()));
//! # Ok::<(), art9_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod decode;
mod disasm;
mod encode;
mod error;
mod instr;
pub mod mif;
mod program;
mod reg;

pub use asm::assemble;
pub use decode::decode;
pub use disasm::{disassemble_image, disassemble_word};
pub use encode::encode;
pub use error::{AsmErrorKind, IsaError};
pub use instr::{imm, Format, Imm2, Imm3, Imm4, Imm5, Instruction, NOP};
pub use program::{Program, Section, Symbol};
pub use reg::{TReg, ALL_REGS};
