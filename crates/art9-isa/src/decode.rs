//! Trit-level instruction decoding — the exact inverse of
//! [`crate::encode::encode`] over the legal opcode space.
//!
//! Reserved encodings (DESIGN.md §3.1) decode to
//! [`IsaError::IllegalInstruction`]; the main decoder in the ID stage
//! turns that into a processor fault.

use ternary::{Trit, Word9};

use crate::encode::{
    R_ADD, R_AND, R_COMP, R_MV, R_NTI, R_OR, R_PTI, R_SL, R_SR, R_STI, R_SUB, R_XOR,
};
use crate::error::IsaError;
use crate::instr::Instruction;
use crate::reg::TReg;

/// Decodes a 9-trit word into an instruction.
///
/// # Errors
///
/// Returns [`IsaError::IllegalInstruction`] for any word in the reserved
/// opcode space.
///
/// # Examples
///
/// ```
/// use art9_isa::{decode, encode, Instruction, TReg};
///
/// let i = Instruction::Comp { a: TReg::T3, b: TReg::T4 };
/// assert_eq!(decode(encode(&i))?, i);
/// # Ok::<(), art9_isa::IsaError>(())
/// ```
pub fn decode(word: Word9) -> Result<Instruction, IsaError> {
    use Trit::{N, P, Z};
    let illegal = || IsaError::IllegalInstruction { word };

    let t8 = word.trit(8);
    let t7 = word.trit(7);

    match (t8, t7) {
        (P, P) => Ok(Instruction::Beq {
            b: TReg::decode(word.field::<2>(5)),
            cond: word.trit(4),
            offset: word.field::<4>(0),
        }),
        (P, N) => Ok(Instruction::Bne {
            b: TReg::decode(word.field::<2>(5)),
            cond: word.trit(4),
            offset: word.field::<4>(0),
        }),
        (P, Z) => Ok(Instruction::Jal {
            a: TReg::decode(word.field::<2>(5)),
            offset: word.field::<5>(0),
        }),
        (N, P) => Ok(Instruction::Li {
            a: TReg::decode(word.field::<2>(5)),
            imm: word.field::<5>(0),
        }),
        (N, N) => Ok(Instruction::Load {
            a: TReg::decode(word.field::<2>(5)),
            b: TReg::decode(word.field::<2>(3)),
            offset: word.field::<3>(0),
        }),
        (N, Z) => Ok(Instruction::Store {
            a: TReg::decode(word.field::<2>(5)),
            b: TReg::decode(word.field::<2>(3)),
            offset: word.field::<3>(0),
        }),
        (Z, P) => Ok(Instruction::Jalr {
            a: TReg::decode(word.field::<2>(5)),
            b: TReg::decode(word.field::<2>(3)),
            offset: word.field::<3>(0),
        }),
        (Z, N) => decode_itype(word).ok_or_else(illegal),
        (Z, Z) => decode_rtype(word).ok_or_else(illegal),
    }
}

fn decode_itype(word: Word9) -> Option<Instruction> {
    use Trit::{N, P, Z};
    match word.trit(6) {
        P => Some(Instruction::Lui {
            a: TReg::decode(word.field::<2>(4)),
            imm: word.field::<4>(0),
        }),
        Z => match word.trit(5) {
            P => Some(Instruction::Addi {
                a: TReg::decode(word.field::<2>(3)),
                imm: word.field::<3>(0),
            }),
            N => Some(Instruction::Andi {
                a: TReg::decode(word.field::<2>(3)),
                imm: word.field::<3>(0),
            }),
            Z => match word.trit(4) {
                P => Some(Instruction::Sri {
                    a: TReg::decode(word.field::<2>(2)),
                    imm: word.field::<2>(0),
                }),
                N => Some(Instruction::Sli {
                    a: TReg::decode(word.field::<2>(2)),
                    imm: word.field::<2>(0),
                }),
                Z => None, // reserved: 0 - 0 0 0
            },
        },
        N => None, // reserved: 0 - -
    }
}

fn decode_rtype(word: Word9) -> Option<Instruction> {
    let sub = word.field::<3>(4).to_i64();
    let a = TReg::decode(word.field::<2>(2));
    let b = TReg::decode(word.field::<2>(0));
    use Instruction::*;
    Some(match sub {
        R_MV => Mv { a, b },
        R_PTI => Pti { a, b },
        R_NTI => Nti { a, b },
        R_STI => Sti { a, b },
        R_AND => And { a, b },
        R_OR => Or { a, b },
        R_XOR => Xor { a, b },
        R_ADD => Add { a, b },
        R_SUB => Sub { a, b },
        R_SR => Sr { a, b },
        R_SL => Sl { a, b },
        R_COMP => Comp { a, b },
        _ => return None, // reserved sub-opcodes
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use ternary::Trits;

    #[test]
    fn reserved_space_is_illegal() {
        use Trit::{N, Z};
        // 0 - - …: reserved I-type region.
        let w = Word9::ZERO.with_trit(7, N).with_trit(6, N);
        assert!(matches!(
            decode(w),
            Err(IsaError::IllegalInstruction { .. })
        ));
        // 0 - 0 0 0: reserved shift region.
        let w = Word9::ZERO.with_trit(7, N);
        assert!(decode(w).is_err());
        // R-type reserved sub-opcode (12).
        let w = Word9::ZERO
            .with_trit(8, Z)
            .with_trit(7, Z)
            .with_field::<3>(4, Trits::<3>::from_i64(12).unwrap());
        assert!(decode(w).is_err());
        // R-type negative sub-opcode (-1).
        let w = Word9::ZERO.with_field::<3>(4, Trits::<3>::from_i64(-1).unwrap());
        assert!(decode(w).is_err());
    }

    #[test]
    fn all_zero_word_is_illegal_not_nop() {
        // The all-zero word falls in the reserved R-type…? No: sub-opcode
        // 0 = MV t4, t4 — a harmless register self-move. Pin that down.
        let w = Word9::ZERO;
        assert_eq!(
            decode(w).unwrap(),
            Instruction::Mv {
                a: TReg::T4,
                b: TReg::T4
            }
        );
    }

    #[test]
    fn branch_condition_trit_roundtrip() {
        for cond in ternary::ALL_TRITS {
            let i = Instruction::Beq {
                b: TReg::T6,
                cond,
                offset: Trits::<4>::from_i64(-40).unwrap(),
            };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn extreme_immediates_roundtrip() {
        let cases = vec![
            Instruction::Li {
                a: TReg::T8,
                imm: Trits::<5>::from_i64(121).unwrap(),
            },
            Instruction::Li {
                a: TReg::T0,
                imm: Trits::<5>::from_i64(-121).unwrap(),
            },
            Instruction::Lui {
                a: TReg::T8,
                imm: Trits::<4>::from_i64(40).unwrap(),
            },
            Instruction::Jal {
                a: TReg::T1,
                offset: Trits::<5>::from_i64(-121).unwrap(),
            },
            Instruction::Sri {
                a: TReg::T3,
                imm: Trits::<2>::from_i64(4).unwrap(),
            },
            Instruction::Sli {
                a: TReg::T3,
                imm: Trits::<2>::from_i64(-4).unwrap(),
            },
        ];
        for i in cases {
            assert_eq!(decode(encode(&i)).unwrap(), i, "{i}");
        }
    }
}
