//! Exhaustive coverage of the entire 9-trit instruction space: all
//! 3⁹ = 19 683 words. Small enough to enumerate completely, which
//! pins down the decoder's totality, the re-encode fixpoint, and the
//! exact sizes of the legal and reserved regions of the prefix code.

use art9_isa::{decode, encode, Format};
use ternary::Word9;

fn all_words() -> impl Iterator<Item = Word9> {
    (-9841i64..=9841).map(|v| Word9::from_i64(v).expect("in range"))
}

#[test]
fn decode_is_total_and_reencode_is_fixpoint() {
    for w in all_words() {
        if let Ok(i) = decode(w) {
            // Decoding a legal word and re-encoding must reproduce the
            // *instruction*; re-decoding the canonical encoding must be
            // stable (encode may canonicalize don't-care trits).
            let canonical = encode(&i);
            assert_eq!(decode(canonical).expect("canonical is legal"), i, "{w}");
            assert_eq!(encode(&decode(canonical).unwrap()), canonical, "{w}");
        }
        // Err is fine: the reserved space. The decoder must simply
        // never panic, which this loop proves by running.
    }
}

#[test]
fn opcode_space_census() {
    let mut legal = 0usize;
    let mut reserved = 0usize;
    let mut by_format = [0usize; 4];
    for w in all_words() {
        match decode(w) {
            Ok(i) => {
                legal += 1;
                by_format[match i.format() {
                    Format::R => 0,
                    Format::I => 1,
                    Format::B => 2,
                    Format::M => 3,
                }] += 1;
            }
            Err(_) => reserved += 1,
        }
    }
    assert_eq!(legal + reserved, 19683);

    // Derived from the prefix code (DESIGN.md §3.1):
    // R-type: 12 sub-opcodes x 81 operand patterns = 972.
    assert_eq!(by_format[0], 972);
    // I-type: ANDI/ADDI 2x243, SRI/SLI 2x81, LUI 729, LI 2187 = 3564.
    assert_eq!(by_format[1], 3564);
    // B-type: BEQ/BNE 2x2187, JAL 2187, JALR 2187 = 8748.
    assert_eq!(by_format[2], 8748);
    // M-type: LOAD/STORE 2x2187 = 4374.
    assert_eq!(by_format[3], 4374);
    assert_eq!(legal, 972 + 3564 + 8748 + 4374);

    // Reserved: 15 spare R-type sub-opcodes (15x81 = 1215), the
    // `0 - -` region (729), and `0 - 0 0 0` (81) = 2025.
    assert_eq!(reserved, 2025);
}

#[test]
fn every_legal_word_renders_and_reassembles() {
    // Display -> assemble round-trips for each distinct instruction
    // found in the space (operand canonicalization included).
    let mut checked = 0usize;
    for w in all_words() {
        if let Ok(i) = decode(w) {
            // Skip control flow whose printed offsets reference
            // out-of-program addresses — they still assemble, since
            // the assembler accepts raw numeric offsets.
            let text = i.to_string();
            let p = art9_isa::assemble(&text).unwrap_or_else(|e| {
                panic!("{text:?} failed to reassemble: {e}");
            });
            assert_eq!(p.text(), &[i], "{text}");
            checked += 1;
        }
    }
    assert_eq!(checked, 972 + 3564 + 8748 + 4374);
}
