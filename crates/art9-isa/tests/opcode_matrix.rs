//! Exhaustive encode → decode → disassemble → parse roundtrip over
//! every *constructible* instruction: all 24 opcodes × every operand
//! pattern (registers, condition trits and full immediate ranges).
//!
//! This is the constructor-driven dual of `tests/exhaustive.rs` (which
//! enumerates the 3⁹ word space): together they pin the toolchain from
//! both directions, and they are the deterministic floor under the
//! `art9-fuzz` toolchain-roundtrip oracle — any encoding bug a fuzzed
//! program could trip is already caught here for single instructions.

use art9_isa::{assemble, decode, disassemble_word, encode, Instruction, TReg, ALL_REGS};
use ternary::{Trit, Trits};

/// All values of an `N`-trit immediate.
fn imm_range<const N: usize>() -> impl Iterator<Item = Trits<N>> {
    let max = Trits::<N>::MAX_VALUE;
    (-max..=max).map(|v| Trits::from_i64(v).expect("in range"))
}

const TRITS: [Trit; 3] = [Trit::N, Trit::Z, Trit::P];

/// Every constructible instruction, opcode by opcode.
fn all_instructions() -> Vec<Instruction> {
    use Instruction::*;
    let mut out = Vec::new();

    // R-type: 12 sub-opcodes x 81 register pairs.
    type RCtor = fn(TReg, TReg) -> Instruction;
    let r_ctors: [RCtor; 12] = [
        |a, b| Mv { a, b },
        |a, b| Pti { a, b },
        |a, b| Nti { a, b },
        |a, b| Sti { a, b },
        |a, b| And { a, b },
        |a, b| Or { a, b },
        |a, b| Xor { a, b },
        |a, b| Add { a, b },
        |a, b| Sub { a, b },
        |a, b| Sr { a, b },
        |a, b| Sl { a, b },
        |a, b| Comp { a, b },
    ];
    for ctor in r_ctors {
        for a in ALL_REGS {
            for b in ALL_REGS {
                out.push(ctor(a, b));
            }
        }
    }

    // I-type: full immediate ranges for every register.
    for a in ALL_REGS {
        for imm in imm_range::<3>() {
            out.push(Andi { a, imm });
            out.push(Addi { a, imm });
        }
        for imm in imm_range::<2>() {
            out.push(Sri { a, imm });
            out.push(Sli { a, imm });
        }
        for imm in imm_range::<4>() {
            out.push(Lui { a, imm });
        }
        for imm in imm_range::<5>() {
            out.push(Li { a, imm });
        }
    }

    // B-type: branches over every register x condition trit x offset;
    // jumps over every register x offset.
    for b in ALL_REGS {
        for cond in TRITS {
            for offset in imm_range::<4>() {
                out.push(Beq { b, cond, offset });
                out.push(Bne { b, cond, offset });
            }
        }
    }
    for a in ALL_REGS {
        for offset in imm_range::<5>() {
            out.push(Jal { a, offset });
        }
    }
    for a in ALL_REGS {
        for b in ALL_REGS {
            for offset in imm_range::<3>() {
                out.push(Jalr { a, b, offset });
            }
        }
    }

    // M-type: every register pair x displacement.
    for a in ALL_REGS {
        for b in ALL_REGS {
            for offset in imm_range::<3>() {
                out.push(Load { a, b, offset });
                out.push(Store { a, b, offset });
            }
        }
    }

    out
}

#[test]
fn matrix_covers_every_opcode_and_the_whole_legal_space() {
    let all = all_instructions();
    // One count per opcode index; every opcode must appear.
    let mut per_opcode = [0usize; Instruction::OPCODE_COUNT];
    for i in &all {
        per_opcode[i.opcode()] += 1;
    }
    for (op, count) in per_opcode.iter().enumerate() {
        assert!(
            *count > 0,
            "opcode {} never constructed",
            Instruction::MNEMONICS[op]
        );
    }
    // The constructor space is exactly the legal word space of
    // `tests/exhaustive.rs`: 19683 − 2025 reserved = 17658.
    assert_eq!(all.len(), 17_658);
}

#[test]
fn full_toolchain_roundtrip_for_every_constructible_instruction() {
    for instr in all_instructions() {
        // encode → decode is the identity on instructions.
        let word = encode(&instr);
        let decoded = decode(word)
            .unwrap_or_else(|e| panic!("{instr} encoded to {word}, which failed to decode: {e}"));
        assert_eq!(
            decoded, instr,
            "encode/decode mismatch for {instr} ({word})"
        );

        // disassemble → assemble reproduces the same single instruction.
        let listing =
            disassemble_word(word).unwrap_or_else(|e| panic!("{instr} failed to disassemble: {e}"));
        let program = assemble(&listing)
            .unwrap_or_else(|e| panic!("{listing:?} (from {instr}) failed to assemble: {e}"));
        assert_eq!(
            program.text(),
            &[instr],
            "assembler did not reproduce {instr} from {listing:?}"
        );

        // And the reassembled instruction re-encodes to the same word
        // (canonical encodings are stable).
        assert_eq!(
            encode(&program.text()[0]),
            word,
            "non-canonical re-encode of {listing:?}"
        );
    }
}

#[test]
fn distinct_instructions_encode_to_distinct_words() {
    use std::collections::HashMap;
    let mut seen: HashMap<i64, Instruction> = HashMap::new();
    for instr in all_instructions() {
        let word = encode(&instr).to_i64();
        if let Some(prev) = seen.insert(word, instr) {
            panic!("{prev} and {instr} share encoding {word}");
        }
    }
}
