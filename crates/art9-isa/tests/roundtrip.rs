//! Property tests: the trit-level encoding is a bijection between the
//! legal instruction set and its image, and assembly text round-trips.

use proptest::prelude::*;

use art9_isa::{assemble, decode, encode, Instruction, Program, TReg};
use ternary::{Trit, Trits, Word9};

fn treg() -> impl Strategy<Value = TReg> {
    (0usize..9).prop_map(|i| TReg::from_index(i).expect("index < 9"))
}

fn trit() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::N), Just(Trit::Z), Just(Trit::P)]
}

fn imm<const N: usize>() -> impl Strategy<Value = Trits<N>> {
    let max = (ternary::pow3(N) - 1) / 2;
    (-max..=max).prop_map(|v| Trits::<N>::from_i64(v).expect("in range"))
}

fn instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    prop_oneof![
        (treg(), treg()).prop_map(|(a, b)| Mv { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Pti { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Nti { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Sti { a, b }),
        (treg(), treg()).prop_map(|(a, b)| And { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Or { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Xor { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Add { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Sub { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Sr { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Sl { a, b }),
        (treg(), treg()).prop_map(|(a, b)| Comp { a, b }),
        (treg(), imm::<3>()).prop_map(|(a, imm)| Andi { a, imm }),
        (treg(), imm::<3>()).prop_map(|(a, imm)| Addi { a, imm }),
        (treg(), imm::<2>()).prop_map(|(a, imm)| Sri { a, imm }),
        (treg(), imm::<2>()).prop_map(|(a, imm)| Sli { a, imm }),
        (treg(), imm::<4>()).prop_map(|(a, imm)| Lui { a, imm }),
        (treg(), imm::<5>()).prop_map(|(a, imm)| Li { a, imm }),
        (treg(), trit(), imm::<4>()).prop_map(|(b, cond, offset)| Beq { b, cond, offset }),
        (treg(), trit(), imm::<4>()).prop_map(|(b, cond, offset)| Bne { b, cond, offset }),
        (treg(), imm::<5>()).prop_map(|(a, offset)| Jal { a, offset }),
        (treg(), treg(), imm::<3>()).prop_map(|(a, b, offset)| Jalr { a, b, offset }),
        (treg(), treg(), imm::<3>()).prop_map(|(a, b, offset)| Load { a, b, offset }),
        (treg(), treg(), imm::<3>()).prop_map(|(a, b, offset)| Store { a, b, offset }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in instruction()) {
        let word = encode(&i);
        prop_assert_eq!(decode(word).expect("legal instruction decodes"), i);
    }

    #[test]
    fn encoding_is_injective(a in instruction(), b in instruction()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }

    #[test]
    fn decode_any_word_never_panics(v in -9841i64..=9841) {
        // Every word either decodes or reports IllegalInstruction.
        let _ = decode(Word9::from_i64(v).expect("in range"));
    }

    #[test]
    fn decoded_words_reencode_identically(v in -9841i64..=9841) {
        let word = Word9::from_i64(v).expect("in range");
        if let Ok(i) = decode(word) {
            // Encoding may canonicalize unused trits, but decoding the
            // re-encoded word must give the same instruction.
            let reencoded = encode(&i);
            prop_assert_eq!(decode(reencoded).expect("legal"), i);
        }
    }

    #[test]
    fn display_reassembles_single_instruction(i in instruction()) {
        let text = i.to_string();
        let p = assemble(&text).expect("canonical text assembles");
        prop_assert_eq!(p.text(), &[i]);
    }

    #[test]
    fn program_display_reassembles(instrs in proptest::collection::vec(instruction(), 1..40)) {
        // Skip control flow whose literal offsets may leave the program —
        // Display prints raw offsets which remain valid text either way.
        let p = Program::from_instructions(instrs);
        let text = p.to_string();
        let p2 = assemble(&text).expect("rendered program reassembles");
        prop_assert_eq!(p.text(), p2.text());
    }
}
