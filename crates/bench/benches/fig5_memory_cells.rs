//! Fig. 5 — memory cells for storing the benchmark programs on the
//! three ISAs, plus a benchmark of the compiling framework itself.

use art9_core::SoftwareFramework;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::paper_suite;

fn print_fig5() {
    println!("\n=== Fig. 5: memory cells for storing benchmark programs ===");
    println!(
        "{:<14} {:>14} {:>14} {:>15} {:>9} {:>9}",
        "benchmark", "ART-9 (trits)", "RV-32I (bits)", "ARMv6-M (bits)", "vs RV32", "vs ARM"
    );
    let fw = SoftwareFramework::new();
    for w in paper_suite() {
        let rv = w.rv32_program().expect("parses");
        let row = fw.memory_comparison(w.name, &rv).expect("translates");
        println!(
            "{:<14} {:>14} {:>14} {:>15} {:>8.0}% {:>8.0}%",
            row.name,
            row.art9_cells,
            row.rv32_bits,
            row.thumb_bits,
            100.0 * row.saving_vs_rv32(),
            100.0 * row.saving_vs_thumb(),
        );
    }
    println!(
        "(paper, dhrystone: 11.6K trits vs 25.4K bits vs 23.7K bits; -54% vs RV32, -17% vs ARM)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_fig5();
    let fw = SoftwareFramework::new();
    let mut g = c.benchmark_group("fig5");
    for w in paper_suite() {
        let rv = w.rv32_program().expect("parses");
        g.bench_function(format!("translate/{}", w.name), |b| {
            b.iter(|| fw.compile(&rv).expect("translates"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
