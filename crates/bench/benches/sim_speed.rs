//! Simulator throughput: how many simulated cycles/instructions per
//! host second each engine sustains. This is the framework's own
//! usability metric (a slow simulator caps design-space exploration).

use art9_bench::translate;
use art9_sim::{FunctionalSim, PipelinedSim, PredecodedProgram, DEFAULT_TDM_WORDS};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rv32::{simulate_cycles, PicoRv32Model};
use workloads::dhrystone;

fn bench(c: &mut Criterion) {
    let w = dhrystone(10);
    let t = translate(&w);
    let rv = w.rv32_program().expect("parses");
    let image = PredecodedProgram::new(&t.program);

    // Establish per-run work for throughput accounting.
    let mut probe = PipelinedSim::new(&t.program);
    let stats = probe.run(100_000_000).expect("completes");

    let mut g = c.benchmark_group("sim_speed");
    g.throughput(Throughput::Elements(stats.cycles));
    g.bench_function("art9_pipelined_cycles", |b| {
        b.iter(|| {
            let mut core = PipelinedSim::new(&t.program);
            core.run(100_000_000).expect("completes")
        })
    });
    g.bench_function("art9_pipelined_predecoded", |b| {
        // Shared decode-once image, as the batch driver runs it.
        b.iter(|| {
            let mut core = PipelinedSim::from_predecoded(&image, DEFAULT_TDM_WORDS);
            core.run(100_000_000).expect("completes")
        })
    });
    g.throughput(Throughput::Elements(stats.instructions));
    g.bench_function("art9_functional_instructions", |b| {
        b.iter(|| {
            let mut sim = FunctionalSim::new(&t.program);
            sim.run(100_000_000).expect("completes")
        })
    });
    g.bench_function("art9_functional_predecoded", |b| {
        b.iter(|| {
            let mut sim = FunctionalSim::from_predecoded(&image, DEFAULT_TDM_WORDS);
            sim.run(100_000_000).expect("completes")
        })
    });
    g.bench_function("rv32_picorv32_model", |b| {
        b.iter(|| simulate_cycles(&rv, &mut PicoRv32Model::new(), 100_000_000).expect("completes"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
