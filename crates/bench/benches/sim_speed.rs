//! Simulator throughput: how many simulated cycles/instructions per
//! host second each engine sustains. This is the framework's own
//! usability metric (a slow simulator caps design-space exploration).
//!
//! Every ART-9 engine is measured through **one code path**: a
//! [`SimBuilder`] + [`Core::run_for`] closure parameterized only by
//! [`Backend`] and by whether the program image is re-decoded per run
//! or `Arc`-shared (the batch driver's predecoded fast path).

use art9_bench::translate;
use art9_sim::{Backend, Budget, PredecodedProgram, SimBuilder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rv32::{simulate_cycles, PicoRv32Model};
use workloads::dhrystone;

const RUN_BUDGET: u64 = 100_000_000;

fn bench(c: &mut Criterion) {
    let w = dhrystone(10);
    let t = translate(&w);
    let rv = w.rv32_program().expect("parses");
    let image = PredecodedProgram::new(&t.program);
    let shared = SimBuilder::new(&image);

    // Establish per-run work for throughput accounting.
    let mut probe = shared.clone().backend(Backend::Pipelined).build();
    let summary = probe.run_for(Budget::Steps(RUN_BUDGET)).expect("completes");
    assert!(summary.halt.is_some(), "probe run halts");
    let stats = probe.pipeline_stats().expect("pipelined probe");

    // One measurement closure for every ART-9 case; the builder is the
    // only thing that varies.
    let run_case = |builder: &SimBuilder| {
        let mut core = builder.build();
        let summary = core.run_for(Budget::Steps(RUN_BUDGET)).expect("completes");
        assert!(summary.halt.is_some());
        summary
    };

    let cases: [(&str, Backend, bool, u64); 6] = [
        (
            "art9_pipelined_cycles",
            Backend::Pipelined,
            false,
            stats.cycles,
        ),
        (
            "art9_pipelined_predecoded",
            Backend::Pipelined,
            true,
            stats.cycles,
        ),
        (
            "art9_functional_instructions",
            Backend::Functional,
            false,
            stats.instructions,
        ),
        (
            "art9_functional_predecoded",
            Backend::Functional,
            true,
            stats.instructions,
        ),
        // The cold threaded case pays decode + superblock compilation
        // inside the loop; the predecoded case shares one compilation
        // across every build (the compiled code is cached on the
        // image).
        (
            "art9_threaded_instructions",
            Backend::Threaded,
            false,
            stats.instructions,
        ),
        (
            "art9_threaded_predecoded",
            Backend::Threaded,
            true,
            stats.instructions,
        ),
    ];

    let mut g = c.benchmark_group("sim_speed");
    for (name, backend, share_image, per_run) in cases {
        g.throughput(Throughput::Elements(per_run));
        g.bench_function(name, |b| {
            if share_image {
                // Shared decode-once image, as the batch driver runs it.
                let builder = shared.clone().backend(backend);
                b.iter(|| run_case(&builder));
            } else {
                // Image re-decoded per construction, as a cold start.
                b.iter(|| run_case(&SimBuilder::new(&t.program).backend(backend)));
            }
        });
    }
    g.throughput(Throughput::Elements(stats.instructions));
    g.bench_function("rv32_picorv32_model", |b| {
        b.iter(|| simulate_cycles(&rv, &mut PicoRv32Model::new(), RUN_BUDGET).expect("completes"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
