//! Table II — Dhrystone on the three cores: DMIPS/MHz and memory
//! cells, plus a benchmark of the cycle-accurate simulator itself.

use art9_bench::{dmips_per_mhz, run_picorv32, run_vexriscv, translate};
use art9_sim::SimBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::dhrystone;

const ITERATIONS: usize = 100;

fn print_table2() {
    let w = dhrystone(ITERATIONS);
    let t = translate(&w);
    let stats = art9_bench::run_art9(&w, &t);
    let vex = run_vexriscv(&w);
    let pico = run_picorv32(&w);
    let rv = w.rv32_program().expect("parses");

    println!("\n=== Table II: simulation results of dhrystone benchmark ===");
    println!(
        "{:<22} {:>12} {:>11} {:>12} {:>16}",
        "core", "ISA", "pipeline", "DMIPS/MHz", "memory cells"
    );
    println!(
        "{:<22} {:>12} {:>11} {:>12.2} {:>11} trits",
        "ART-9 (this work)",
        "ART-9 (24)",
        "5-stage",
        dmips_per_mhz(stats.cycles, ITERATIONS),
        t.program.instruction_cells() + rv.data().len() * 9,
    );
    println!(
        "{:<22} {:>12} {:>11} {:>12.2} {:>12} bits",
        "VexRiscv",
        "RV32I (40)",
        "5-stage",
        dmips_per_mhz(vex.cycles, ITERATIONS),
        rv.memory_bits(),
    );
    println!(
        "{:<22} {:>12} {:>11} {:>12.2} {:>12} bits",
        "PicoRV32",
        "RV32IM (48)",
        "non-pipe",
        dmips_per_mhz(pico.cycles, ITERATIONS),
        rv.memory_bits(),
    );
    println!("(paper: ART-9 0.42, VexRiscv 0.65, PicoRV32 0.31 DMIPS/MHz;");
    println!(" 11.6K trits vs 25.4K/23.7K bits — same ordering reproduced)\n");
}

fn bench(c: &mut Criterion) {
    print_table2();
    let w = dhrystone(10);
    let t = translate(&w);
    c.bench_function("table2/art9_pipelined_dhrystone_x10", |b| {
        b.iter(|| {
            let mut core = SimBuilder::new(&t.program).build_pipelined();
            core.run(100_000_000).expect("completes")
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
