//! Micro-benchmarks of the balanced ternary substrate: the arithmetic
//! every simulated cycle leans on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ternary::{arith, encoding, TernaryReal, Word27, Word81, Word9};

fn bench(c: &mut Criterion) {
    let a = Word9::from_i64(4821).expect("in range");
    let b = Word9::from_i64(-3977).expect("in range");

    let mut g = c.benchmark_group("word9");
    g.bench_function("add", |bn| {
        bn.iter(|| black_box(a).wrapping_add(black_box(b)))
    });
    g.bench_function("add_tritwise_ref", |bn| {
        // The retained per-trit ripple adder the packed kernel is
        // property-tested against: the before/after of the refactor.
        bn.iter(|| arith::add_tritwise(black_box(a), black_box(b)))
    });
    g.bench_function("sub", |bn| {
        bn.iter(|| black_box(a).wrapping_sub(black_box(b)))
    });
    g.bench_function("mul", |bn| {
        bn.iter(|| black_box(a).wrapping_mul(black_box(b)))
    });
    g.bench_function("mul_tritwise_ref", |bn| {
        bn.iter(|| arith::mul_tritwise(black_box(a), black_box(b)))
    });
    g.bench_function("negate", |bn| bn.iter(|| black_box(a).negate()));
    g.bench_function("compare", |bn| {
        bn.iter(|| black_box(a).compare(black_box(b)))
    });
    g.bench_function("shl2", |bn| bn.iter(|| black_box(a).shl(2)));
    g.bench_function("shr2", |bn| bn.iter(|| black_box(a).shr(2)));
    g.bench_function("logic_and_or_xor", |bn| {
        bn.iter(|| black_box(a).and(b).or(b.xor(a)))
    });
    g.bench_function("to_i64", |bn| bn.iter(|| black_box(a).to_i64()));
    g.bench_function("from_i64_wrapping", |bn| {
        bn.iter(|| Word9::from_i64_wrapping(black_box(123456)))
    });
    g.bench_function("bitplanes_roundtrip", |bn| {
        bn.iter(|| {
            let (pos, neg) = black_box(a).bitplanes();
            Word9::from_bitplanes(pos, neg).expect("valid")
        })
    });
    g.bench_function("bct_pack_unpack", |bn| {
        bn.iter(|| {
            let p = encoding::pack(&black_box(a));
            encoding::unpack::<9>(p).expect("valid")
        })
    });
    g.bench_function("bct_packed_negate", |bn| {
        bn.iter(|| encoding::packed_negate::<9>(black_box(0b01_00_10)))
    });
    g.finish();

    // The multi-plane words and the tapered reals: the before/after of
    // the single-u64-plane ceiling.
    let w27a = Word27::from_i128_wrapping(0x1234_5678_9ABC);
    let w27b = Word27::from_i128_wrapping(-0x0FED_CBA9_8765);
    let w81a = Word81::from_i128_wrapping(0x1234_5678_9ABC_DEF0_1234_5678_9ABC_DEF0);
    let w81b = Word81::from_i128_wrapping(-0x0FED_CBA9_8765_4321_0FED_CBA9_8765_4321);
    let ra = TernaryReal::from_scaled(7_450_580_596_923, -20);
    let rb = TernaryReal::from_scaled(-1_220_703_125, 5);

    let mut g = c.benchmark_group("wide");
    g.bench_function("word27_add", |bn| {
        bn.iter(|| black_box(w27a).wrapping_add(black_box(w27b)))
    });
    g.bench_function("word27_mul", |bn| {
        bn.iter(|| black_box(w27a).wrapping_mul(black_box(w27b)))
    });
    g.bench_function("word81_add", |bn| {
        bn.iter(|| black_box(w81a).wrapping_add(black_box(w81b)))
    });
    g.bench_function("word81_add_tritwise_ref", |bn| {
        // The per-trit ripple reference the multi-plane carry loop is
        // property-tested against.
        bn.iter(|| arith::wide_add_tritwise(black_box(w81a), black_box(w81b)))
    });
    g.bench_function("word81_mul", |bn| {
        bn.iter(|| black_box(w81a).wrapping_mul(black_box(w81b)))
    });
    g.bench_function("word81_negate", |bn| bn.iter(|| black_box(w81a).negate()));
    g.bench_function("word81_compare", |bn| {
        bn.iter(|| black_box(w81a).cmp(&black_box(w81b)))
    });
    g.bench_function("word81_compress3", |bn| {
        bn.iter(|| Word81::compress3(black_box(w81a), black_box(w81b), black_box(w81a.negate())))
    });
    g.bench_function("word81_to_i128", |bn| {
        bn.iter(|| black_box(w81a).try_to_i128())
    });
    g.bench_function("word81_from_i128_wrapping", |bn| {
        bn.iter(|| Word81::from_i128_wrapping(black_box(0x0123_4567_89AB_CDEF_0123)))
    });
    g.bench_function("real_add", |bn| {
        bn.iter(|| black_box(ra).add(&black_box(rb)))
    });
    g.bench_function("real_mul", |bn| {
        bn.iter(|| black_box(ra).mul(&black_box(rb)))
    });
    g.bench_function("real_tapered_roundtrip", |bn| {
        bn.iter(|| TernaryReal::from_tapered(black_box(ra).to_tapered()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
