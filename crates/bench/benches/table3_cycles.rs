//! Table III — processing cycles for the four test programs, ART-9 vs
//! PicoRV32, plus per-workload simulator benchmarks.

use art9_bench::{run_art9, run_picorv32, translate};
use art9_sim::SimBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::paper_suite;

fn print_table3() {
    println!("\n=== Table III: processing cycles for different test programs ===");
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "benchmark", "ART-9", "PicoRV32", "ratio"
    );
    for w in paper_suite() {
        let t = translate(&w);
        let stats = run_art9(&w, &t);
        let pico = run_picorv32(&w);
        println!(
            "{:<14} {:>12} {:>12} {:>8.2}",
            w.name,
            stats.cycles,
            pico.cycles,
            pico.cycles as f64 / stats.cycles as f64
        );
    }
    println!("(paper: 2,432/9,227  10,748/11,290  7,822/18,250  134,200/186,607");
    println!(" — ART-9 wins everywhere, narrowest on GEMM; ordering reproduced)\n");
}

fn bench(c: &mut Criterion) {
    print_table3();
    let mut g = c.benchmark_group("table3");
    for w in paper_suite() {
        // Dhrystone at 100 iterations is heavy; bench a smaller instance.
        let wl = if w.name == "dhrystone" {
            workloads::dhrystone(5)
        } else {
            w
        };
        let t = translate(&wl);
        g.bench_function(format!("art9/{}", wl.name), |b| {
            b.iter(|| {
                let mut core = SimBuilder::new(&t.program).build_pipelined();
                core.run(500_000_000).expect("completes")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
