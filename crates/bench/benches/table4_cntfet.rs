//! Table IV — CNTFET implementation results, plus a benchmark of the
//! gate-level analyzer.

use art9_bench::{run_art9, translate};
use art9_core::{report, HardwareFramework};
use art9_hw::analyzer::analyze;
use art9_hw::datapath::Datapath;
use art9_hw::tech::cntfet32;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::dhrystone;

const ITERATIONS: usize = 50;

fn print_table4() {
    let w = dhrystone(ITERATIONS);
    let t = translate(&w);
    let stats = run_art9(&w, &t);
    let cpi = stats.cycles as f64 / ITERATIONS as f64;

    let hw = HardwareFramework::new();
    let e = hw.evaluate(cpi);
    println!("\n=== Table IV: implementation results using CNTFET ternary gates ===");
    print!("{}", report::table4(&e));
    println!("(paper: 0.9V, 652 gates, 42.7 µW, 3.06e6 DMIPS/W — same magnitudes)");
    println!("\nper-block gate counts:");
    for (name, gates) in hw.datapath().block_summary() {
        println!("  {name:<20} {gates}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table4();
    let d = Datapath::art9();
    let lib = cntfet32();
    c.bench_function("table4/gate_level_analysis", |b| {
        b.iter(|| analyze(&d, &lib))
    });
    c.bench_function("table4/datapath_construction", |b| b.iter(Datapath::art9));
}

criterion_group!(benches, bench);
criterion_main!(benches);
