//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **forwarding multiplexers** (paper §IV-B) — pipeline cycles with
//!    and without forwarding;
//! 2. **redundancy checking** (paper §III-A) — code size with and
//!    without the peephole pass;
//! 3. **technology library** — CNTFET vs a generic ternary CMOS foil
//!    through the same analyzer.

use art9_compiler::{translate_with_options, TranslateOptions};
use art9_hw::analyzer::analyze;
use art9_hw::datapath::Datapath;
use art9_hw::tech::{cntfet32, generic_cmos_ternary};
use art9_sim::SimBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::{bubble_sort, dhrystone};

fn print_ablations() {
    println!("\n=== Ablations ===");

    // 1. Forwarding.
    let w = bubble_sort(20);
    let t = art9_bench::translate(&w);
    let mut with_fwd = SimBuilder::new(&t.program).build_pipelined();
    let s1 = with_fwd.run(100_000_000).expect("completes");
    let mut without = SimBuilder::new(&t.program)
        .forwarding(false)
        .build_pipelined();
    let s2 = without.run(100_000_000).expect("completes");
    println!(
        "forwarding (bubble-sort): {} cycles with vs {} without ({:+.0}% cycles, CPI {:.2} -> {:.2})",
        s1.cycles,
        s2.cycles,
        100.0 * (s2.cycles as f64 / s1.cycles as f64 - 1.0),
        s1.cpi(),
        s2.cpi()
    );

    // 2. Redundancy checking.
    let rv = dhrystone(1).rv32_program().expect("parses");
    let on = translate_with_options(&rv, TranslateOptions::default()).expect("translates");
    let off = translate_with_options(
        &rv,
        TranslateOptions {
            redundancy: false,
            ..Default::default()
        },
    )
    .expect("translates");
    println!(
        "redundancy checking (dhrystone): {} instrs with vs {} without ({} removed, {:.1}% smaller)",
        on.program.text().len(),
        off.program.text().len(),
        on.report.redundant_removed,
        100.0 * (1.0 - on.program.text().len() as f64 / off.program.text().len() as f64)
    );

    // 3. Technology library.
    let d = Datapath::art9();
    let fast = analyze(&d, &cntfet32());
    let slow = analyze(&d, &generic_cmos_ternary());
    println!(
        "technology: CNTFET {:.0} MHz / {:.1} µW  vs  generic CMOS ternary {:.0} MHz / {:.1} µW",
        fast.fmax_mhz(),
        fast.total_power_uw(),
        slow.fmax_mhz(),
        slow.total_power_uw()
    );

    // 4. Hardware multiplier (the design point Table II rejects).
    let with_mul = Datapath::art9_with_multiplier();
    let m = analyze(&with_mul, &cntfet32());
    println!(
        "hardware multiplier: {} -> {} gates ({:+.0}%), {:.1} -> {:.1} µW, fmax {:.0} -> {:.0} MHz",
        fast.gates,
        m.gates,
        100.0 * (m.gates as f64 / fast.gates as f64 - 1.0),
        fast.total_power_uw(),
        m.total_power_uw(),
        fast.fmax_mhz(),
        m.fmax_mhz()
    );

    // 5. Word-width design-space sweep ("why 9 trits?").
    print!("width sweep (gates @ width): ");
    for width in [3usize, 6, 9, 12, 15] {
        let dp = Datapath::art_with_width(width);
        print!("{width}t={}  ", dp.datapath_gates());
    }
    println!();

    // 6. Memory sizing (Table V's RAM column scales with TIM/TDM size).
    use art9_hw::fpga::{map_to_fpga, MemoryConfig};
    print!("memory sweep (RAM bits / power @ words): ");
    for words in [128usize, 256, 512] {
        let r = map_to_fpga(
            &Datapath::art9(),
            MemoryConfig {
                words,
                trits_per_word: 9,
            },
            150.0,
        );
        print!("{words}w={}b/{:.2}W  ", r.ram_bits, r.power_w);
    }
    println!("\n");
}

fn bench(c: &mut Criterion) {
    print_ablations();
    let w = bubble_sort(20);
    let t = art9_bench::translate(&w);
    let mut g = c.benchmark_group("ablations");
    g.bench_function("pipeline_with_forwarding", |b| {
        b.iter(|| {
            let mut core = SimBuilder::new(&t.program).build_pipelined();
            core.run(100_000_000).expect("completes")
        })
    });
    g.bench_function("pipeline_without_forwarding", |b| {
        b.iter(|| {
            let mut core = SimBuilder::new(&t.program)
                .forwarding(false)
                .build_pipelined();
            core.run(100_000_000).expect("completes")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
