//! Fig. 1 — truth tables of the ternary logic operations, plus a
//! throughput benchmark of the trit-level kernels they define.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ternary::{Trit, ALL_TRITS};

/// A named binary trit operation.
type BinOp = (&'static str, fn(Trit, Trit) -> Trit);
/// A named unary trit operation.
type UnOp = (&'static str, fn(Trit) -> Trit);

fn print_fig1() {
    println!("\n=== Fig. 1: truth tables of ternary logic operations ===");
    let ops: [BinOp; 3] = [("AND", Trit::and), ("OR", Trit::or), ("XOR", Trit::xor)];
    for (name, f) in ops {
        println!("{name}: rows a = -,0,+ / cols b = -,0,+");
        for a in ALL_TRITS {
            let row: Vec<String> = ALL_TRITS.iter().map(|b| f(a, *b).to_string()).collect();
            println!("   {}", row.join(" "));
        }
    }
    let invs: [UnOp; 3] = [("STI", Trit::sti), ("NTI", Trit::nti), ("PTI", Trit::pti)];
    for (name, f) in invs {
        let row: Vec<String> = ALL_TRITS
            .iter()
            .map(|t| format!("{t}->{}", f(*t)))
            .collect();
        println!("{name}: {}", row.join("  "));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig1();
    let mut g = c.benchmark_group("fig1");
    g.bench_function("trit_logic_all_pairs", |b| {
        b.iter(|| {
            let mut acc = Trit::Z;
            for a in ALL_TRITS {
                for t in ALL_TRITS {
                    acc = acc.or(black_box(a).and(black_box(t)).xor(a.sti()));
                }
            }
            acc
        })
    });
    g.bench_function("trit_full_add_all", |b| {
        b.iter(|| {
            let mut acc = 0i8;
            for a in ALL_TRITS {
                for x in ALL_TRITS {
                    for cin in ALL_TRITS {
                        let (s, k) = black_box(a).full_add(x, cin);
                        acc ^= s.value() ^ k.value();
                    }
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
