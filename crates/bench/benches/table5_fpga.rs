//! Table V — FPGA implementation results (binary-encoded ternary),
//! plus a benchmark of the resource mapper.

use art9_bench::{run_art9, translate};
use art9_core::{report, HardwareFramework};
use art9_hw::datapath::Datapath;
use art9_hw::fpga::{map_to_fpga, MemoryConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::dhrystone;

const ITERATIONS: usize = 50;

fn print_table5() {
    let w = dhrystone(ITERATIONS);
    let t = translate(&w);
    let stats = run_art9(&w, &t);
    let cpi = stats.cycles as f64 / ITERATIONS as f64;

    let hw = HardwareFramework::new();
    let e = hw.evaluate(cpi);
    println!("\n=== Table V: implementation results using FPGA-based ternary logics ===");
    print!("{}", report::table5(&e));
    println!(
        "(paper: 0.9V, 150MHz, 803 ALMs, 339 registers, 9216 RAM bits, 1.09W, 57.8 DMIPS/W)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table5();
    let d = Datapath::art9();
    c.bench_function("table5/fpga_mapping", |b| {
        b.iter(|| map_to_fpga(&d, MemoryConfig::default(), 150.0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
