//! Quick superblock statistics + threaded-vs-functional timing probe
//! for the paper suite (a profiling aid; the canonical numbers come
//! from `--bin report`).
//!
//! ```sh
//! cargo run --release -p art9-bench --example blockstats
//! ```

use std::time::Instant;

use art9_bench::translate;
use art9_sim::{Backend, Budget, Core, PredecodedProgram, SimBuilder};
use workloads::paper_suite;

fn time_ns_per_instr(b: &SimBuilder, backend: Backend, instrs: u64) -> f64 {
    let run = || {
        let mut sim = b.clone().backend(backend).build();
        sim.run_for(Budget::Steps(100_000_000)).unwrap();
        assert!(sim.halted().is_some());
    };
    // Warm up, then take the best of 7 batches to suppress host noise.
    run();
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let reps = 3;
        let t0 = Instant::now();
        for _ in 0..reps {
            run();
        }
        let ns = t0.elapsed().as_nanos() as f64 / (reps as f64 * instrs as f64);
        best = best.min(ns);
    }
    best
}

/// Mirrors the compiler's fusion predicate by mnemonic, to report
/// which adjacent pairs stay unfused.
fn fusible(a: &str, b: &str) -> bool {
    matches!(
        (a, b),
        ("AND" | "OR" | "XOR" | "MV" | "ADD" | "SUB", "COMP")
            | ("MV", "MV" | "ADDI")
            | ("ADDI", "MV" | "ADDI")
            | ("ADD", "ADD")
            | ("SUB", "LI")
            | ("LI", "SUB")
            | ("ADD" | "ADDI" | "MV", "STORE" | "LOAD")
            | ("LOAD", "LOAD" | "STORE" | "MV" | "COMP" | "ADD" | "ADDI")
            | ("STORE", "LOAD" | "STORE" | "MV")
            | ("COMP", "BEQ" | "BNE")
    )
}

fn main() {
    for w in paper_suite() {
        let t = translate(&w);
        let image = PredecodedProgram::new(&t.program);
        let b = SimBuilder::new(&image);
        let mut sim = b.build_threaded();
        sim.run_for(Budget::Steps(100_000_000)).unwrap();
        let blocks = sim.superblocks();
        let static_instrs: usize = blocks.iter().map(|(_, l)| *l).sum();

        // Greedy-fuse each block by mnemonic and count the leftover
        // adjacent pairs — fusion candidates the compiler passes on.
        let mn: Vec<&str> = t.program.text().iter().map(|i| i.mnemonic()).collect();
        let mut leftovers: std::collections::BTreeMap<(String, String), usize> =
            std::collections::BTreeMap::new();
        for &(start, len) in &blocks {
            let mut i = start;
            let end = start + len;
            while i < end {
                if i + 1 < end && fusible(mn[i], mn[i + 1]) {
                    i += 2;
                    continue;
                }
                if i + 1 < end {
                    *leftovers
                        .entry((mn[i].to_string(), mn[i + 1].to_string()))
                        .or_default() += 1;
                }
                i += 1;
            }
        }
        let mut lv: Vec<_> = leftovers.into_iter().collect();
        lv.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        print!("{:<12} unfused:", w.name);
        for ((a, b), c) in lv.iter().take(8) {
            print!(" {a}+{b}x{c}");
        }
        println!();
        let f_ns = time_ns_per_instr(&b, Backend::Functional, sim.retired());
        let t_ns = time_ns_per_instr(&b, Backend::Threaded, sim.retired());
        println!(
            "{:<12} blocks {:>3} avg len {:>5.2} fused {:>3} retired {:>6} | fun {:>6.2} ns/i  thr {:>6.2} ns/i  ratio {:.2}x",
            w.name,
            blocks.len(),
            static_instrs as f64 / blocks.len() as f64,
            sim.fused_pairs(),
            sim.retired(),
            f_ns,
            t_ns,
            f_ns / t_ns,
        );
    }
}
