//! The bench regression gate behind `cargo run -p art9-bench --bin gate`.
//!
//! Compares two `BENCH_ternary.json` documents (the committed baseline
//! and a freshly regenerated one) and fails when any simulator
//! throughput metric (`functional_ips`, `threaded_ips`,
//! `pipelined_cps`) regressed by more than the allowed fraction.
//! `threaded_ips` is optional so baselines committed before the
//! direct-threaded backend existed still parse; once a baseline
//! carries it, dropping it from the current document fails the gate.
//! The measured-energy section (`energy_nj` up, `dmips_per_watt`
//! down = regression) is pinned the same way: absent from older
//! baselines, gated once committed. So is the `service` section
//! (scheduler throughput from an in-process multi-tenant load run),
//! except its `per_worker_ips` is gated at *twice* the allowed
//! fraction — a threaded scheduler under a full worker fleet is far
//! noisier on shared runners than a single-threaded simulator loop.
//! The `nn` section (ternary-NN golden-path SIMD speedup and simulator
//! throughput) is pinned the same way; its `simd_speedup` is a ratio
//! of two timings from the same run, so host speed cancels and the
//! plain threshold applies.
//! The `wide` section (multi-plane 27/81-trit word and tapered-real
//! operation timings) is pinned the same way; its rows gate at the
//! service section's doubled threshold because per-op timings, even
//! the wide ones, are noisier on shared runners than whole-simulator
//! rates (`ns_per_op` up = regression).
//! `Word9`-operation timings are reported
//! but not gated — they are nanosecond-scale and too noisy on shared
//! CI runners; the whole-simulator rates integrate over millions of
//! operations and are the metrics PR 2's history is recorded in.
//!
//! The parser below handles exactly the schema `perf::bench_json`
//! emits (documented in `docs/PERFORMANCE.md`) — a deliberate
//! non-goal: it is not a general JSON parser, and unknown fields are
//! simply ignored.
//!
//! **Cross-host caveat:** the committed baseline carries the numbers
//! of whatever machine regenerated it last. Comparing against a
//! different host (as CI does) makes the gate a coarse tripwire —
//! that is why the default threshold is a generous 25% — while
//! same-host comparisons are exact. PRs that intentionally change
//! performance should regenerate and commit `BENCH_ternary.json`.

/// One simulator row from a bench document.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRow {
    /// Workload name.
    pub workload: String,
    /// Functional-simulator instructions per second.
    pub functional_ips: f64,
    /// Direct-threaded-simulator instructions per second (`None` in
    /// documents that predate the threaded backend).
    pub threaded_ips: Option<f64>,
    /// Pipelined-simulator cycles per second.
    pub pipelined_cps: f64,
}

/// One energy row from a bench document's `energy` section.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyGateRow {
    /// Workload name.
    pub workload: String,
    /// Total dynamic switching energy of the measured run, nJ.
    pub energy_nj: f64,
    /// Measured DMIPS/W (present on Dhrystone rows only).
    pub dmips_per_watt: Option<f64>,
}

/// The service-scheduler row from a bench document's `service`
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceGateRow {
    /// Aggregate retired instructions per second per worker.
    pub per_worker_ips: f64,
}

/// The ternary-NN row from a bench document's `nn` section.
#[derive(Debug, Clone, PartialEq)]
pub struct NnGateRow {
    /// Host golden-path speedup of the bitplane-SIMD matvec over the
    /// scalar word-at-a-time loop.
    pub simd_speedup: f64,
    /// Functional-simulator instructions per second of the `nn-mlp`
    /// workload.
    pub functional_ips: f64,
}

/// One wide-word operation row from a bench document's `wide` section.
#[derive(Debug, Clone, PartialEq)]
pub struct WideGateRow {
    /// Operation name (`word27_add`, `word81_mul`, `real_add`, …).
    pub name: String,
    /// Mean nanoseconds per operation.
    pub ns_per_op: f64,
}

/// The gated contents of one `BENCH_ternary.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// One row per workload.
    pub simulators: Vec<SimRow>,
    /// Measured-energy rows (empty for baselines committed before the
    /// energy section existed; once a baseline carries it, the section
    /// is pinned).
    pub energy: Vec<EnergyGateRow>,
    /// Scheduler throughput (`None` for baselines committed before the
    /// service existed; pinned once present).
    pub service: Option<ServiceGateRow>,
    /// Ternary-NN golden-path and simulator rates (`None` for baselines
    /// committed before the SIMD subsystem; pinned once present).
    pub nn: Option<NnGateRow>,
    /// Wide-word operation timings (empty for baselines committed
    /// before the multi-plane subsystem; pinned once present).
    pub wide: Vec<WideGateRow>,
}

/// One metric comparison.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// `"<workload>/<metric>"`.
    pub name: String,
    /// The committed value.
    pub baseline: f64,
    /// The regenerated value.
    pub current: f64,
}

impl MetricDelta {
    /// Relative change: positive = the value went up, negative = it
    /// went down. Whether up is good depends on the metric (throughput:
    /// up is good; `energy_nj`: down is good).
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline - 1.0
    }
}

/// The gate's verdict.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Every throughput comparison made.
    pub deltas: Vec<MetricDelta>,
    /// The comparisons that regressed beyond the threshold.
    pub regressions: Vec<MetricDelta>,
    /// Workloads (or per-workload metrics) present in the baseline but
    /// missing from the current document (a silent drop must fail the
    /// gate too).
    pub missing: Vec<String>,
}

impl GateResult {
    /// `true` when the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Renders the comparison table.
    pub fn render(&self, max_regress: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>8}",
            "metric", "baseline", "current", "change"
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{:<28} {:>12.3e} {:>12.3e} {:>+7.1}%",
                d.name,
                d.baseline,
                d.current,
                d.ratio() * 100.0
            );
        }
        for w in &self.missing {
            let _ = writeln!(out, "MISSING: {w} dropped from the current document");
        }
        if self.regressions.is_empty() {
            let _ = writeln!(
                out,
                "gate: OK (no gated metric regressed more than {:.0}%)",
                max_regress * 100.0
            );
        } else {
            for d in &self.regressions {
                let _ = writeln!(
                    out,
                    "gate: REGRESSION {} moved {:+.1}% (limit {:.0}%)",
                    d.name,
                    d.ratio() * 100.0,
                    max_regress * 100.0
                );
            }
        }
        out
    }
}

/// Compares `current` against `baseline` with the given allowed
/// regression fraction (e.g. `0.25` for 25%).
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, max_regress: f64) -> GateResult {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.simulators {
        let Some(cur) = current
            .simulators
            .iter()
            .find(|r| r.workload == base.workload)
        else {
            missing.push(base.workload.clone());
            continue;
        };
        let mut metrics = vec![
            ("functional_ips", base.functional_ips, cur.functional_ips),
            ("pipelined_cps", base.pipelined_cps, cur.pipelined_cps),
        ];
        match (base.threaded_ips, cur.threaded_ips) {
            (Some(b), Some(c)) => metrics.push(("threaded_ips", b, c)),
            // A baseline that carries the metric pins it: silently
            // dropping it from the regenerated document fails the gate
            // just like dropping a whole workload would.
            (Some(_), None) => missing.push(format!("{}/threaded_ips", base.workload)),
            // A baseline without it (pre-threaded-backend) gates only
            // the two legacy metrics.
            (None, _) => {}
        }
        for (metric, b, c) in metrics {
            let delta = MetricDelta {
                name: format!("{}/{metric}", base.workload),
                baseline: b,
                current: c,
            };
            if c < b * (1.0 - max_regress) {
                regressions.push(delta.clone());
            }
            deltas.push(delta);
        }
    }
    // Pin-once, like threaded_ips: a baseline without the energy
    // section gates nothing here; one that carries it fails the gate
    // when a row (or the whole section) silently disappears.
    for base in &baseline.energy {
        let Some(cur) = current.energy.iter().find(|r| r.workload == base.workload) else {
            missing.push(format!("{}/energy", base.workload));
            continue;
        };
        // The simulation is deterministic, so measured energy should be
        // bit-stable; the threshold only tolerates intentional model
        // retunes inside the allowed band. More energy = regression.
        let delta = MetricDelta {
            name: format!("{}/energy_nj", base.workload),
            baseline: base.energy_nj,
            current: cur.energy_nj,
        };
        if cur.energy_nj > base.energy_nj * (1.0 + max_regress) {
            regressions.push(delta.clone());
        }
        deltas.push(delta);
        match (base.dmips_per_watt, cur.dmips_per_watt) {
            (Some(b), Some(c)) => {
                let delta = MetricDelta {
                    name: format!("{}/dmips_per_watt", base.workload),
                    baseline: b,
                    current: c,
                };
                if c < b * (1.0 - max_regress) {
                    regressions.push(delta.clone());
                }
                deltas.push(delta);
            }
            (Some(_), None) => missing.push(format!("{}/dmips_per_watt", base.workload)),
            (None, _) => {}
        }
    }
    // Scheduler throughput, pin-once like the other late sections. The
    // allowed regression is doubled: the multi-threaded scheduler's
    // rate depends on how many of the fleet's workers the host actually
    // ran concurrently, which shared CI runners vary far more than a
    // single simulator loop.
    match (&baseline.service, &current.service) {
        (Some(base), Some(cur)) => {
            let delta = MetricDelta {
                name: "service/per_worker_ips".into(),
                baseline: base.per_worker_ips,
                current: cur.per_worker_ips,
            };
            if cur.per_worker_ips < base.per_worker_ips * (1.0 - (2.0 * max_regress).min(0.95)) {
                regressions.push(delta.clone());
            }
            deltas.push(delta);
        }
        (Some(_), None) => missing.push("service/per_worker_ips".into()),
        (None, _) => {}
    }
    // Ternary-NN, pin-once. Both gated metrics go down = regression.
    match (&baseline.nn, &current.nn) {
        (Some(base), Some(cur)) => {
            for (metric, b, c) in [
                ("simd_speedup", base.simd_speedup, cur.simd_speedup),
                ("functional_ips", base.functional_ips, cur.functional_ips),
            ] {
                let delta = MetricDelta {
                    name: format!("nn/{metric}"),
                    baseline: b,
                    current: c,
                };
                if c < b * (1.0 - max_regress) {
                    regressions.push(delta.clone());
                }
                deltas.push(delta);
            }
        }
        (Some(_), None) => missing.push("nn/simd_speedup".into()),
        (None, _) => {}
    }
    // Wide-word operation timings, pin-once per row. Unlike the Word9
    // suite these rows integrate enough work per call (multi-word carry
    // ripples, shift-and-add multiplies) to be gateable, but per-op
    // timings are still noisier than whole-simulator rates, so the
    // allowed increase is doubled like the service threshold. More
    // nanoseconds = regression.
    for base in &baseline.wide {
        let Some(cur) = current.wide.iter().find(|r| r.name == base.name) else {
            missing.push(format!("wide/{}", base.name));
            continue;
        };
        let delta = MetricDelta {
            name: format!("wide/{}/ns_per_op", base.name),
            baseline: base.ns_per_op,
            current: cur.ns_per_op,
        };
        if cur.ns_per_op > base.ns_per_op * (1.0 + 2.0 * max_regress) {
            regressions.push(delta.clone());
        }
        deltas.push(delta);
    }
    GateResult {
        deltas,
        regressions,
        missing,
    }
}

/// Parses the `simulators` array of a `BENCH_ternary.json` document.
///
/// # Errors
///
/// Returns a description when the document lacks the array or a row
/// lacks one of the gated fields.
pub fn parse_bench_json(text: &str) -> Result<BenchDoc, String> {
    let array = section(text, "\"simulators\"").ok_or("no \"simulators\" array")?;
    let mut simulators = Vec::new();
    for obj in objects(array) {
        simulators.push(SimRow {
            workload: string_field(obj, "workload")
                .ok_or_else(|| format!("row without \"workload\": {obj}"))?,
            functional_ips: number_field(obj, "functional_ips")
                .ok_or_else(|| format!("row without \"functional_ips\": {obj}"))?,
            threaded_ips: number_field(obj, "threaded_ips"),
            pipelined_cps: number_field(obj, "pipelined_cps")
                .ok_or_else(|| format!("row without \"pipelined_cps\": {obj}"))?,
        });
    }
    if simulators.is_empty() {
        return Err("empty \"simulators\" array".into());
    }
    // The energy section postdates the simulators section: absent in
    // older documents, required-well-formed when present. The key
    // search cannot false-positive on row fields like "energy_nj"
    // because the pattern includes the closing quote.
    let mut energy = Vec::new();
    if let Some(array) = section(text, "\"energy\"") {
        for obj in objects(array) {
            energy.push(EnergyGateRow {
                workload: string_field(obj, "workload")
                    .ok_or_else(|| format!("energy row without \"workload\": {obj}"))?,
                energy_nj: number_field(obj, "energy_nj")
                    .ok_or_else(|| format!("energy row without \"energy_nj\": {obj}"))?,
                dmips_per_watt: number_field(obj, "dmips_per_watt"),
            });
        }
        if energy.is_empty() {
            return Err("empty \"energy\" array".into());
        }
    }
    // The service section postdates both: same pin-once contract.
    let mut service = None;
    if let Some(array) = section(text, "\"service\"") {
        let obj = objects(array).next().ok_or("empty \"service\" array")?;
        service = Some(ServiceGateRow {
            per_worker_ips: number_field(obj, "per_worker_ips")
                .ok_or_else(|| format!("service row without \"per_worker_ips\": {obj}"))?,
        });
    }
    // The nn section postdates all of the above: same pin-once
    // contract. The key search cannot false-positive on the row's
    // "workload": "nn-mlp" value because the pattern includes the
    // closing quote.
    let mut nn = None;
    if let Some(array) = section(text, "\"nn\"") {
        let obj = objects(array).next().ok_or("empty \"nn\" array")?;
        nn = Some(NnGateRow {
            simd_speedup: number_field(obj, "simd_speedup")
                .ok_or_else(|| format!("nn row without \"simd_speedup\": {obj}"))?,
            functional_ips: number_field(obj, "functional_ips")
                .ok_or_else(|| format!("nn row without \"functional_ips\": {obj}"))?,
        });
    }
    // The wide section postdates everything above: same pin-once
    // contract, one row per wide operation.
    let mut wide = Vec::new();
    if let Some(array) = section(text, "\"wide\"") {
        for obj in objects(array) {
            wide.push(WideGateRow {
                name: string_field(obj, "name")
                    .ok_or_else(|| format!("wide row without \"name\": {obj}"))?,
                ns_per_op: number_field(obj, "ns_per_op")
                    .ok_or_else(|| format!("wide row without \"ns_per_op\": {obj}"))?,
            });
        }
        if wide.is_empty() {
            return Err("empty \"wide\" array".into());
        }
    }
    Ok(BenchDoc {
        simulators,
        energy,
        service,
        nn,
        wide,
    })
}

/// The bracketed `[...]` contents following `key`.
fn section<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let at = text.find(key)?;
    let open = at + text[at..].find('[')?;
    let close = open + text[open..].find(']')?;
    Some(&text[open + 1..close])
}

/// Splits an array body into `{...}` object bodies (the schema nests
/// no objects, so plain brace matching suffices).
fn objects(array: &str) -> impl Iterator<Item = &str> {
    array.split('{').skip(1).filter_map(|chunk| {
        let end = chunk.find('}')?;
        Some(&chunk[..end])
    })
}

/// Value of `"key": "string"` within an object body.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let rest = field_value(obj, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Value of `"key": number` within an object body.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let rest = field_value(obj, key)?;
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The text right after `"key":`, trimmed.
fn field_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let rest = &obj[at + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?;
    Some(rest.trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "art9-bench-ternary/v1",
  "word_ops": [
    {"name": "add", "ns_per_op": 4.30}
  ],
  "simulators": [
    {"workload": "bubble-sort", "instructions": 3177, "functional_ips": 6.75e7, "pipelined_cps": 2.31e7},
    {"workload": "gemm", "instructions": 14084, "functional_ips": 6.19e7, "pipelined_cps": 2.12e7}
  ]
}"#;

    fn doc(f_scale: f64, p_scale: f64) -> BenchDoc {
        let base = parse_bench_json(SAMPLE).unwrap();
        BenchDoc {
            simulators: base
                .simulators
                .into_iter()
                .map(|r| SimRow {
                    workload: r.workload,
                    functional_ips: r.functional_ips * f_scale,
                    threaded_ips: r.threaded_ips.map(|t| t * f_scale),
                    pipelined_cps: r.pipelined_cps * p_scale,
                })
                .collect(),
            energy: Vec::new(),
            service: None,
            nn: None,
            wide: Vec::new(),
        }
    }

    /// `doc()` with a wide section at `w_scale` times nominal per-op
    /// costs (scale *up* = slower = worse).
    fn doc_with_wide(w_scale: f64) -> BenchDoc {
        let mut d = doc(1.0, 1.0);
        d.wide = vec![
            WideGateRow {
                name: "word81_add".into(),
                ns_per_op: 7.0 * w_scale,
            },
            WideGateRow {
                name: "real_mul".into(),
                ns_per_op: 45.0 * w_scale,
            },
        ];
        d
    }

    /// `doc()` with an nn section at `n_scale` times nominal rates.
    fn doc_with_nn(n_scale: f64) -> BenchDoc {
        let mut d = doc(1.0, 1.0);
        d.nn = Some(NnGateRow {
            simd_speedup: 5.0 * n_scale,
            functional_ips: 3.0e7 * n_scale,
        });
        d
    }

    /// `doc()` with a service section at `s_scale` times a nominal
    /// per-worker rate.
    fn doc_with_service(s_scale: f64) -> BenchDoc {
        let mut d = doc(1.0, 1.0);
        d.service = Some(ServiceGateRow {
            per_worker_ips: 4.0e6 * s_scale,
        });
        d
    }

    /// `doc()` with an energy section: one plain row and one Dhrystone
    /// row carrying DMIPS/W, both scaled by `e_scale`.
    fn doc_with_energy(e_scale: f64) -> BenchDoc {
        let mut d = doc(1.0, 1.0);
        d.energy = vec![
            EnergyGateRow {
                workload: "bubble-sort".into(),
                energy_nj: 120.0 * e_scale,
                dmips_per_watt: None,
            },
            EnergyGateRow {
                workload: "dhrystone".into(),
                energy_nj: 540.0 * e_scale,
                // DMIPS/W moves inversely with energy at fixed runtime.
                dmips_per_watt: Some(7.0e6 / e_scale),
            },
        ];
        d
    }

    /// `doc()` with the threaded metric populated at `t_scale` times
    /// 3x the functional rate.
    fn doc_with_threaded(t_scale: f64) -> BenchDoc {
        let mut d = doc(1.0, 1.0);
        for r in &mut d.simulators {
            r.threaded_ips = Some(r.functional_ips * 3.0 * t_scale);
        }
        d
    }

    #[test]
    fn parses_the_emitted_schema() {
        let d = parse_bench_json(SAMPLE).unwrap();
        assert_eq!(d.simulators.len(), 2);
        assert_eq!(d.simulators[0].workload, "bubble-sort");
        assert!((d.simulators[0].functional_ips - 6.75e7).abs() < 1.0);
        assert!((d.simulators[1].pipelined_cps - 2.12e7).abs() < 1.0);
    }

    #[test]
    fn parses_the_committed_baseline() {
        // The real committed file must stay parseable, or the CI gate
        // goes blind silently.
        let committed = include_str!("../../../BENCH_ternary.json");
        let d = parse_bench_json(committed).unwrap();
        assert_eq!(d.simulators.len(), 4);
        assert!(d.simulators.iter().any(|r| r.workload == "dhrystone"));
        // The committed baseline carries the threaded metric, so the
        // gate actually exercises it on every CI run.
        assert!(d.simulators.iter().all(|r| r.threaded_ips.is_some()));
        // Likewise the measured-energy section: all four paper kernels,
        // DMIPS/W pinned on the Dhrystone row.
        assert_eq!(d.energy.len(), 4);
        assert!(d.energy.iter().all(|r| r.energy_nj > 0.0));
        let dhry = d.energy.iter().find(|r| r.workload == "dhrystone").unwrap();
        assert!(dhry.dmips_per_watt.unwrap() > 0.0);
        // And the service section, so scheduler throughput is gated on
        // every CI run from here on.
        assert!(d.service.as_ref().unwrap().per_worker_ips > 0.0);
        // And the nn section: the ISSUE 9 acceptance bar (>= 4x SIMD
        // speedup) is recorded in the committed baseline and gated.
        let nn = d.nn.as_ref().unwrap();
        assert!(nn.simd_speedup >= 4.0);
        assert!(nn.functional_ips > 0.0);
        // And the wide section: the multi-plane 27/81-trit words and
        // the tapered reals are pinned from this PR on.
        assert!(!d.wide.is_empty());
        assert!(d.wide.iter().any(|r| r.name == "word81_add"));
        assert!(d.wide.iter().any(|r| r.name == "real_mul"));
        assert!(d.wide.iter().all(|r| r.ns_per_op > 0.0));
    }

    #[test]
    fn pre_threaded_baselines_still_gate_the_legacy_metrics() {
        // SAMPLE predates the threaded backend: no threaded_ips field,
        // so only functional/pipelined are compared and nothing is
        // reported missing.
        let base = doc(1.0, 1.0);
        assert!(base.simulators.iter().all(|r| r.threaded_ips.is_none()));
        let r = compare(&base, &doc_with_threaded(1.0), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert_eq!(r.deltas.len(), 4);
    }

    #[test]
    fn threaded_regression_fails() {
        let base = doc_with_threaded(1.0);
        let current = doc_with_threaded(0.5); // threaded halved
        let r = compare(&base, &current, 0.25);
        assert!(!r.ok());
        assert_eq!(r.deltas.len(), 6);
        assert_eq!(r.regressions.len(), 2);
        assert!(r
            .regressions
            .iter()
            .all(|d| d.name.ends_with("threaded_ips")));
    }

    #[test]
    fn dropping_the_threaded_metric_fails() {
        let base = doc_with_threaded(1.0);
        let current = doc(1.0, 1.0); // regenerated without threaded_ips
        let r = compare(&base, &current, 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "bubble-sort/threaded_ips"));
        assert!(r.render(0.25).contains("MISSING"));
    }

    #[test]
    fn parses_an_energy_section() {
        let text = r#"{
  "simulators": [
    {"workload": "gemm", "functional_ips": 6.19e7, "pipelined_cps": 2.12e7}
  ],
  "energy": [
    {"workload": "gemm", "cycles": 120, "instructions": 90, "energy_nj": 1.25e2, "epi_pj": 1.4, "dynamic_uw": 3.0, "total_uw": 4.5},
    {"workload": "dhrystone", "energy_nj": 5.4e2, "dmips_per_watt": 7.5e6}
  ]
}"#;
        let d = parse_bench_json(text).unwrap();
        assert_eq!(d.energy.len(), 2);
        assert!((d.energy[0].energy_nj - 125.0).abs() < 1e-9);
        assert_eq!(d.energy[0].dmips_per_watt, None);
        assert!((d.energy[1].dmips_per_watt.unwrap() - 7.5e6).abs() < 1.0);
        // Pre-energy documents parse to an empty (ungated) section.
        assert!(parse_bench_json(SAMPLE).unwrap().energy.is_empty());
        // A present-but-malformed section is rejected, not ignored.
        let bad = text.replace("\"energy_nj\": 1.25e2, ", "");
        assert!(parse_bench_json(&bad).is_err());
    }

    #[test]
    fn energy_increase_fails_and_decrease_passes() {
        let base = doc_with_energy(1.0);
        // 10% more energy (and correspondingly lower DMIPS/W): within
        // the 25% band, passes.
        let r = compare(&base, &doc_with_energy(1.1), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert_eq!(r.deltas.len(), 4 + 3); // sims + 2 energy + 1 dpw
                                           // 50% more energy: both the energy and the DMIPS/W gate trip.
        let r = compare(&base, &doc_with_energy(1.5), 0.25);
        assert!(!r.ok());
        assert!(r
            .regressions
            .iter()
            .any(|d| d.name == "bubble-sort/energy_nj"));
        assert!(r
            .regressions
            .iter()
            .any(|d| d.name == "dhrystone/dmips_per_watt"));
        assert!(r.render(0.25).contains("REGRESSION"));
        // Energy going *down* is an improvement, not a regression.
        let r = compare(&base, &doc_with_energy(0.5), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn dropping_the_energy_section_fails_once_pinned() {
        let base = doc_with_energy(1.0);
        // Current regenerated without the energy section entirely.
        let r = compare(&base, &doc(1.0, 1.0), 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "bubble-sort/energy"));
        assert!(r.missing.iter().any(|m| m == "dhrystone/energy"));
        // Dropping just the DMIPS/W pin fails too.
        let mut current = doc_with_energy(1.0);
        current.energy[1].dmips_per_watt = None;
        let r = compare(&base, &current, 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "dhrystone/dmips_per_watt"));
        // A pre-energy baseline gates nothing against an energy-bearing
        // current document.
        let r = compare(&doc(1.0, 1.0), &doc_with_energy(1.0), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn service_section_parses_and_gates_at_a_doubled_threshold() {
        let text = r#"{
  "simulators": [
    {"workload": "gemm", "functional_ips": 6.19e7, "pipelined_cps": 2.12e7}
  ],
  "service": [
    {"sessions": 512, "workers": 8, "sessions_per_second": 1.3050e2, "per_worker_ips": 4.2000e6, "p99_slice_us": 210.250, "migrations": 97, "steals": 41}
  ]
}"#;
        let d = parse_bench_json(text).unwrap();
        let row = d.service.as_ref().expect("service section parses");
        assert!((row.per_worker_ips - 4.2e6).abs() < 1.0);
        // A present-but-malformed section is rejected, not ignored.
        assert!(parse_bench_json(&text.replace("per_worker_ips", "nope")).is_err());
        // Pre-service documents parse to no section at all.
        assert!(parse_bench_json(SAMPLE).unwrap().service.is_none());

        let base = doc_with_service(1.0);
        // A 40% drop stays inside the doubled 2 * 25% band.
        let r = compare(&base, &doc_with_service(0.6), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert!(r.deltas.iter().any(|d| d.name == "service/per_worker_ips"));
        // A 60% drop trips it.
        let r = compare(&base, &doc_with_service(0.4), 0.25);
        assert!(!r.ok());
        assert!(r
            .regressions
            .iter()
            .any(|d| d.name == "service/per_worker_ips"));
    }

    #[test]
    fn dropping_the_service_section_fails_once_pinned() {
        let r = compare(&doc_with_service(1.0), &doc(1.0, 1.0), 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "service/per_worker_ips"));
        // A pre-service baseline gates nothing against a service-bearing
        // current document.
        let r = compare(&doc(1.0, 1.0), &doc_with_service(1.0), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn nn_section_parses_and_gates() {
        let text = r#"{
  "simulators": [
    {"workload": "gemm", "functional_ips": 6.19e7, "pipelined_cps": 2.12e7}
  ],
  "nn": [
    {"workload": "nn-mlp", "rows": 40, "cols": 40, "scalar_ns_per_matvec": 4200.00, "simd_ns_per_matvec": 860.00, "simd_speedup": 4.88, "instructions": 120000, "cycles": 150000, "functional_ips": 3.1000e7, "threaded_ips": 9.0000e7, "pipelined_cps": 2.0000e7}
  ]
}"#;
        let d = parse_bench_json(text).unwrap();
        let row = d.nn.as_ref().expect("nn section parses");
        assert!((row.simd_speedup - 4.88).abs() < 1e-9);
        assert!((row.functional_ips - 3.1e7).abs() < 1.0);
        // A present-but-malformed section is rejected, not ignored.
        assert!(parse_bench_json(&text.replace("simd_speedup", "nope")).is_err());
        // Pre-nn documents parse to no section at all — and the
        // "nn-mlp" workload name alone must not look like one.
        assert!(parse_bench_json(SAMPLE).unwrap().nn.is_none());

        let base = doc_with_nn(1.0);
        // 10% noise passes; a halved speedup trips the gate.
        let r = compare(&base, &doc_with_nn(0.9), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert!(r.deltas.iter().any(|d| d.name == "nn/simd_speedup"));
        let r = compare(&base, &doc_with_nn(0.5), 0.25);
        assert!(!r.ok());
        assert!(r.regressions.iter().any(|d| d.name == "nn/simd_speedup"));
        assert!(r.regressions.iter().any(|d| d.name == "nn/functional_ips"));
    }

    #[test]
    fn dropping_the_nn_section_fails_once_pinned() {
        let r = compare(&doc_with_nn(1.0), &doc(1.0, 1.0), 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "nn/simd_speedup"));
        // A pre-nn baseline gates nothing against an nn-bearing current
        // document.
        let r = compare(&doc(1.0, 1.0), &doc_with_nn(1.0), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn wide_section_parses_and_gates_slowdowns_only() {
        let text = r#"{
  "simulators": [
    {"workload": "gemm", "functional_ips": 6.19e7, "pipelined_cps": 2.12e7}
  ],
  "wide": [
    {"name": "word81_add", "ns_per_op": 7.25},
    {"name": "real_mul", "ns_per_op": 44.50}
  ]
}"#;
        let d = parse_bench_json(text).unwrap();
        assert_eq!(d.wide.len(), 2);
        assert_eq!(d.wide[0].name, "word81_add");
        assert!((d.wide[1].ns_per_op - 44.5).abs() < 1e-9);
        // A present-but-malformed section is rejected, not ignored.
        assert!(parse_bench_json(&text.replace("ns_per_op", "nope")).is_err());
        // Pre-wide documents parse to an empty (ungated) section.
        assert!(parse_bench_json(SAMPLE).unwrap().wide.is_empty());

        let base = doc_with_wide(1.0);
        // 40% slower stays inside the doubled 2 * 25% band.
        let r = compare(&base, &doc_with_wide(1.4), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert!(r
            .deltas
            .iter()
            .any(|d| d.name == "wide/word81_add/ns_per_op"));
        // 60% slower trips it.
        let r = compare(&base, &doc_with_wide(1.6), 0.25);
        assert!(!r.ok());
        assert!(r
            .regressions
            .iter()
            .any(|d| d.name == "wide/real_mul/ns_per_op"));
        // Getting *faster* is an improvement, never a regression.
        let r = compare(&base, &doc_with_wide(0.3), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn dropping_the_wide_section_fails_once_pinned() {
        let r = compare(&doc_with_wide(1.0), &doc(1.0, 1.0), 0.25);
        assert!(!r.ok());
        assert!(r.missing.iter().any(|m| m == "wide/word81_add"));
        assert!(r.missing.iter().any(|m| m == "wide/real_mul"));
        // A pre-wide baseline gates nothing against a wide-bearing
        // current document.
        let r = compare(&doc(1.0, 1.0), &doc_with_wide(1.0), 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
    }

    #[test]
    fn small_noise_passes() {
        let base = doc(1.0, 1.0);
        let current = doc(0.9, 1.1); // ±10% noise
        let r = compare(&base, &current, 0.25);
        assert!(r.ok(), "{}", r.render(0.25));
        assert_eq!(r.deltas.len(), 4);
    }

    #[test]
    fn big_regression_fails() {
        let base = doc(1.0, 1.0);
        let current = doc(1.0, 0.5); // pipelined halved
        let r = compare(&base, &current, 0.25);
        assert!(!r.ok());
        assert_eq!(r.regressions.len(), 2);
        assert!(r
            .regressions
            .iter()
            .all(|d| d.name.ends_with("pipelined_cps")));
        assert!(r.render(0.25).contains("REGRESSION"));
    }

    #[test]
    fn dropped_workload_fails() {
        let base = doc(1.0, 1.0);
        let mut current = doc(1.0, 1.0);
        current.simulators.pop();
        let r = compare(&base, &current, 0.25);
        assert!(!r.ok());
        assert_eq!(r.missing, vec!["gemm".to_string()]);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json(r#"{"simulators": []}"#).is_err());
        assert!(parse_bench_json(r#"{"simulators": [{"workload": "x"}]}"#).is_err());
    }
}
