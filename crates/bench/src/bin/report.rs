//! Regenerates every table and figure of the paper in one run.
//!
//! The batch driver executes the paper suite under the full simulator
//! matrix exactly once; Tables II and III are derived from its records
//! rather than re-simulating.
//!
//! ```sh
//! cargo run --release -p art9-bench --bin report
//! ```

use std::time::Duration;

use art9_bench::{dmips_per_mhz, energy, perf, translate};
use art9_core::{report, HardwareFramework, SoftwareFramework};
use art9_hw::analyzer::analyze;
use art9_hw::datapath::Datapath;
use art9_hw::tech::cntfet32;
use ternary::{Trit, ALL_TRITS};
use workloads::batch::{BatchRunner, ExecConfig};
use workloads::{dhrystone, paper_suite};

const PIPELINED: ExecConfig = ExecConfig::art9_pipelined(true);

/// A named binary trit operation.
type BinOp = (&'static str, fn(Trit, Trit) -> Trit);
/// A named unary trit operation.
type UnOp = (&'static str, fn(Trit) -> Trit);

fn main() {
    // ---- Fig. 1 -------------------------------------------------------
    println!("=== Fig. 1: truth tables of ternary logic operations ===");
    let ops: [BinOp; 3] = [("AND", Trit::and), ("OR", Trit::or), ("XOR", Trit::xor)];
    for (name, f) in ops {
        println!("{name}: rows a = -,0,+ / cols b = -,0,+");
        for a in ALL_TRITS {
            let row: Vec<String> = ALL_TRITS.iter().map(|b| f(a, *b).to_string()).collect();
            println!("   {}", row.join(" "));
        }
    }
    let invs: [UnOp; 3] = [("STI", Trit::sti), ("NTI", Trit::nti), ("PTI", Trit::pti)];
    for (name, f) in invs {
        let row: Vec<String> = ALL_TRITS
            .iter()
            .map(|t| format!("{t}->{}", f(*t)))
            .collect();
        println!("{name}: {}", row.join("  "));
    }

    // ---- Batch simulation: every (workload, config) cell, once --------
    let batch = BatchRunner::new()
        .workloads(paper_suite())
        .configs(ExecConfig::FULL_MATRIX)
        .measure_energy(true)
        .run();
    assert_eq!(
        batch.failures(),
        0,
        "batch contains failing runs:\n{}",
        batch.render()
    );
    let cell = |w: &str, c: ExecConfig| {
        batch
            .find(w, c)
            .unwrap_or_else(|| panic!("batch is missing {w}/{}", c.name()))
    };

    // ---- Table III + Fig. 5 over the whole suite ----------------------
    println!("\n=== Table III: processing cycles ===");
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "benchmark", "ART-9", "PicoRV32", "ratio"
    );
    let fw = SoftwareFramework::new();
    let mut fig5_rows = Vec::new();
    for w in paper_suite() {
        let art9 = cell(w.name, PIPELINED)
            .cycles
            .expect("pipelined run is timed");
        let pico = cell(w.name, ExecConfig::rv32_picorv32())
            .cycles
            .expect("cycle model is timed");
        println!(
            "{:<14} {:>12} {:>12} {:>8.2}",
            w.name,
            art9,
            pico,
            pico as f64 / art9 as f64
        );
        let rv = w.rv32_program().expect("parses");
        fig5_rows.push(fw.memory_comparison(w.name, &rv).expect("translates"));
    }

    println!("\n=== Fig. 5: memory cells ===");
    print!("{}", report::fig5(&fig5_rows));

    // ---- Table II ------------------------------------------------------
    let iterations = workloads::PAPER_DHRYSTONE_ITERATIONS;
    println!("\n=== Table II: dhrystone ({iterations} iterations) ===");
    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "core", "cycles", "CPI", "DMIPS/MHz"
    );
    let rows = [
        ("ART-9 (5-stage)", cell("dhrystone", PIPELINED)),
        (
            "VexRiscv (5-stage)",
            cell("dhrystone", ExecConfig::rv32_vexriscv()),
        ),
        (
            "PicoRV32 (non-pipe)",
            cell("dhrystone", ExecConfig::rv32_picorv32()),
        ),
    ];
    for (label, r) in rows {
        let cycles = r.cycles.expect("timed");
        println!(
            "{:<22} {:>10} {:>8.2} {:>12.2}",
            label,
            cycles,
            r.cpi().expect("instructions retired"),
            dmips_per_mhz(cycles, iterations)
        );
    }
    let t = translate(&dhrystone(iterations));
    println!(
        "ART-9 memory: {} instruction trits ({} instructions)",
        t.report.art9_instruction_cells(),
        t.report.art9_instructions()
    );

    // ---- Tables IV & V --------------------------------------------------
    let dhrystone_cycles_per_iter =
        cell("dhrystone", PIPELINED).cycles.expect("timed") as f64 / iterations as f64;
    let hw = HardwareFramework::new();
    let e = hw.evaluate(dhrystone_cycles_per_iter);
    println!("\n=== Table IV ===\n{}", report::table4(&e));
    println!("=== Table V ===\n{}", report::table5(&e));

    // ---- Measured Table IV: dynamic energy from execution --------------
    // The batch above ran with energy measurement on, so each pipelined
    // cell already carries its EnergyAccounting snapshot — no
    // re-simulation. The measured trit flips go through the same
    // cntfet-32nm table as the static estimate above (model and schema
    // in docs/ENERGY.md).
    let analysis = analyze(&Datapath::art9(), &cntfet32());
    let lib = cntfet32();
    let energy_rows: Vec<energy::EnergyRow> = paper_suite()
        .iter()
        .map(|w| {
            let r = cell(w.name, PIPELINED);
            let m = workloads::energy::MeasuredActivity {
                workload: w.name,
                cycles: r.cycles.expect("pipelined run is timed"),
                instructions: r.instructions,
                accounting: r.energy.clone().expect("batch ran with energy measurement"),
            };
            let iters = (w.name == "dhrystone").then_some(iterations as u64);
            energy::energy_row(&m, &analysis, &lib, iters)
        })
        .collect();
    println!("\n=== Measured Table IV: dynamic energy from execution ===");
    print!("{}", energy::render(&energy_rows));

    println!("per-block gate counts:");
    for (name, gates) in hw.datapath().block_summary() {
        println!("  {name:<20} {gates}");
    }
    println!("  {:<20} {}", "TOTAL", hw.datapath().datapath_gates());

    // ---- The batch's own aggregate view -------------------------------
    println!("\n=== Batch simulation: paper suite x full simulator matrix ===");
    print!("{}", batch.render());

    // ---- Host performance: word ops + simulator throughput ------------
    // Written to BENCH_ternary.json so the perf trajectory is diffable
    // across PRs (schema documented in docs/PERFORMANCE.md).
    println!("\n=== Host performance (see docs/PERFORMANCE.md) ===");
    let word_ops = perf::measure_word_ops(Duration::from_millis(40));
    for op in &word_ops {
        println!("  word9/{:<18} {:>8.2} ns/op", op.name, op.ns_per_op);
    }
    let sims: Vec<perf::SimThroughput> = paper_suite()
        .iter()
        .map(|w| perf::measure_sim_throughput(w, Duration::from_millis(150)))
        .collect();
    println!(
        "  {:<14} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "workload", "functional", "threaded", "pipelined", "thr/fun", "speedup"
    );
    for s in &sims {
        let speedup = perf::seed_rate(&perf::SEED_FUNCTIONAL_IPS, s.workload).map_or_else(
            || "-".into(),
            |seed| format!("{:.2}x", s.functional_ips / seed),
        );
        println!(
            "  {:<14} {:>10.3e} i/s {:>10.3e} i/s {:>10.3e} c/s {:>9.2}x {:>10}",
            s.workload,
            s.functional_ips,
            s.threaded_ips,
            s.pipelined_cps,
            s.threaded_ips / s.functional_ips,
            speedup
        );
    }
    // ---- Service scheduler throughput ---------------------------------
    // An in-process multi-tenant load run (docs/SERVICE.md): hundreds
    // of budget-sliced sessions over the full worker fleet, every one
    // checked for exact completion.
    println!("\n=== Service scheduler (multi-tenant load, see docs/SERVICE.md) ===");
    let service = perf::measure_service(512);
    println!(
        "  {} sessions on {} workers: {:.1} sessions/s, {:.3e} retired i/s per worker",
        service.sessions, service.workers, service.sessions_per_second, service.per_worker_ips
    );
    println!(
        "  p99 slice {:.1}us, {} migrations, {} steals",
        service.p99_slice_us, service.migrations, service.steals
    );

    // ---- Ternary-NN throughput ----------------------------------------
    // The SIMD-vs-scalar speedup of the host golden path plus simulator
    // throughput of the nn-mlp workload (docs/WORKLOADS.md).
    println!("\n=== Ternary NN (bitplane SIMD, see docs/WORKLOADS.md) ===");
    let nn = perf::measure_nn(Duration::from_millis(300));
    println!(
        "  {}x{} ternary matvec: scalar {:.0} ns, simd {:.0} ns, speedup {:.2}x",
        nn.rows, nn.cols, nn.scalar_ns_per_matvec, nn.simd_ns_per_matvec, nn.simd_speedup
    );
    println!(
        "  {} on art9: {:.3e} i/s functional, {:.3e} i/s threaded",
        nn.sim.workload, nn.sim.functional_ips, nn.sim.threaded_ips
    );

    // ---- Wide words and tapered reals ---------------------------------
    // Etiemble-style per-operation costs of the multi-plane 27/81-trit
    // words and the tapered-precision reals (docs/ARITHMETIC.md).
    println!("\n=== Wide ternary words (multi-plane, see docs/ARITHMETIC.md) ===");
    let wide = perf::measure_wide(Duration::from_millis(40));
    for op in &wide {
        println!("  wide/{:<26} {:>8.2} ns/op", op.name, op.ns_per_op);
    }

    let json = perf::bench_json(
        &word_ops,
        &sims,
        &energy_rows,
        Some(&service),
        Some(&nn),
        &wide,
    );
    std::fs::write("BENCH_ternary.json", &json).expect("write BENCH_ternary.json");
    println!("wrote BENCH_ternary.json");
}
