//! Regenerates every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release -p art9-bench --bin report
//! ```

use art9_bench::{dmips_per_mhz, run_art9, run_picorv32, run_vexriscv, translate};
use art9_core::{report, HardwareFramework, SoftwareFramework};
use ternary::{Trit, ALL_TRITS};
use workloads::{dhrystone, paper_suite};

fn main() {
    // ---- Fig. 1 -------------------------------------------------------
    println!("=== Fig. 1: truth tables of ternary logic operations ===");
    let ops: [(&str, fn(Trit, Trit) -> Trit); 3] =
        [("AND", Trit::and), ("OR", Trit::or), ("XOR", Trit::xor)];
    for (name, f) in ops {
        println!("{name}: rows a = -,0,+ / cols b = -,0,+");
        for a in ALL_TRITS {
            let row: Vec<String> = ALL_TRITS.iter().map(|b| f(a, *b).to_string()).collect();
            println!("   {}", row.join(" "));
        }
    }
    let invs: [(&str, fn(Trit) -> Trit); 3] =
        [("STI", Trit::sti), ("NTI", Trit::nti), ("PTI", Trit::pti)];
    for (name, f) in invs {
        let row: Vec<String> = ALL_TRITS.iter().map(|t| format!("{t}->{}", f(*t))).collect();
        println!("{name}: {}", row.join("  "));
    }

    // ---- Table III + Fig. 5 over the whole suite ----------------------
    println!("\n=== Table III: processing cycles ===");
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "benchmark", "ART-9", "PicoRV32", "ratio"
    );
    let fw = SoftwareFramework::new();
    let mut fig5_rows = Vec::new();
    let mut dhrystone_cycles_per_iter = 0.0;
    for w in paper_suite() {
        let t = translate(&w);
        let stats = run_art9(&w, &t);
        let pico = run_picorv32(&w);
        println!(
            "{:<14} {:>12} {:>12} {:>8.2}",
            w.name,
            stats.cycles,
            pico.cycles,
            pico.cycles as f64 / stats.cycles as f64
        );
        if w.name == "dhrystone" {
            dhrystone_cycles_per_iter = stats.cycles as f64 / 100.0;
        }
        let rv = w.rv32_program().expect("parses");
        fig5_rows.push(fw.memory_comparison(w.name, &rv).expect("translates"));
    }

    println!("\n=== Fig. 5: memory cells ===");
    print!("{}", report::fig5(&fig5_rows));

    // ---- Table II ------------------------------------------------------
    let iterations = 100;
    let w = dhrystone(iterations);
    let t = translate(&w);
    let stats = run_art9(&w, &t);
    let vex = run_vexriscv(&w);
    let pico = run_picorv32(&w);
    println!("\n=== Table II: dhrystone ({iterations} iterations) ===");
    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "core", "cycles", "CPI", "DMIPS/MHz"
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "ART-9 (5-stage)",
        stats.cycles,
        stats.cpi(),
        dmips_per_mhz(stats.cycles, iterations)
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "VexRiscv (5-stage)",
        vex.cycles,
        vex.cpi(),
        dmips_per_mhz(vex.cycles, iterations)
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "PicoRV32 (non-pipe)",
        pico.cycles,
        pico.cpi(),
        dmips_per_mhz(pico.cycles, iterations)
    );
    println!(
        "ART-9 memory: {} instruction trits ({} instructions)",
        t.report.art9_instruction_cells(),
        t.report.art9_instructions()
    );

    // ---- Tables IV & V --------------------------------------------------
    let hw = HardwareFramework::new();
    let e = hw.evaluate(dhrystone_cycles_per_iter);
    println!("\n=== Table IV ===\n{}", report::table4(&e));
    println!("=== Table V ===\n{}", report::table5(&e));

    println!("per-block gate counts:");
    for (name, gates) in hw.datapath().block_summary() {
        println!("  {name:<20} {gates}");
    }
    println!("  {:<20} {}", "TOTAL", hw.datapath().datapath_gates());
}
