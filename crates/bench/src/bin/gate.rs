//! Bench regression gate: compares a regenerated `BENCH_ternary.json`
//! against the committed baseline and fails on >N% throughput loss.
//!
//! ```sh
//! cp BENCH_ternary.json /tmp/bench-baseline.json
//! cargo run --release -p art9-bench --bin report   # rewrites BENCH_ternary.json
//! cargo run --release -p art9-bench --bin gate -- \
//!     --baseline /tmp/bench-baseline.json --current BENCH_ternary.json
//! ```

use std::process::ExitCode;

use art9_bench::gate::{compare, parse_bench_json};

const USAGE: &str = "\
usage: gate --baseline FILE --current FILE [--max-regress FRACTION]

Fails (exit 1) when any simulator throughput metric in CURRENT is more
than FRACTION (default 0.25) below BASELINE, or a workload disappeared.
";

fn main() -> ExitCode {
    let mut baseline = None;
    let mut current = None;
    let mut max_regress = 0.25f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--current" => current = Some(value("--current")),
            "--max-regress" => {
                let v = value("--max-regress");
                max_regress = match v.parse() {
                    Ok(f) if (0.0..1.0).contains(&f) => f,
                    _ => {
                        eprintln!("error: --max-regress must be a fraction in [0, 1): {v:?}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("error: --baseline and --current are both required\n\n{USAGE}");
        return ExitCode::from(2);
    };

    let load = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => match parse_bench_json(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };

    let result = compare(&load(&baseline), &load(&current), max_regress);
    print!("{}", result.render(max_regress));
    if result.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
