//! The measured Table IV: switching activity → energy, per workload
//! and per instruction class.
//!
//! `workloads::energy` measures trit flips and cycles on the pipelined
//! core; this module converts them through `art9_hw::activity` (the
//! same cntfet-32nm technology table the static Table IV uses) into
//! energy-per-workload, per-class EPI, average power and — for the
//! Dhrystone kernel — the measured DMIPS/W. Schema and model are
//! documented in `docs/ENERGY.md`.

use art9_hw::activity::{
    dynamic_energy, measured_dmips_per_watt, measured_power, ActivityCounts, InstrClass,
    ALL_CLASSES,
};
use art9_hw::analyzer::GateAnalysis;
use art9_hw::tech::TechLibrary;
use art9_isa::Instruction;
use workloads::energy::MeasuredActivity;

/// One workload's measured-energy report row.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Workload name.
    pub workload: &'static str,
    /// Pipelined cycles of the measured run.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Total dynamic switching energy, nJ.
    pub energy_nj: f64,
    /// Energy per instruction over the whole run, pJ.
    pub epi_pj: f64,
    /// Per-class EPI, pJ, in [`ALL_CLASSES`] order.
    pub class_epi_pj: [f64; 5],
    /// Average dynamic power over the run at the analyzer's clock, µW.
    pub dynamic_uw: f64,
    /// Dynamic plus static leakage, µW.
    pub total_uw: f64,
    /// Measured Dhrystone DMIPS (Dhrystone rows only).
    pub dmips: Option<f64>,
    /// Measured DMIPS/W (Dhrystone rows only).
    pub dmips_per_watt: Option<f64>,
}

/// Folds the per-opcode flip accumulators into per-class
/// [`ActivityCounts`], in [`ALL_CLASSES`] order.
pub fn class_counts(m: &MeasuredActivity) -> [ActivityCounts; 5] {
    let mut per_class = [ActivityCounts::default(); 5];
    for (opcode, acc) in m.accounting.per_opcode().iter().enumerate() {
        if acc.retired == 0 {
            continue;
        }
        let mnemonic = Instruction::MNEMONICS[opcode];
        let class = InstrClass::classify(mnemonic)
            .unwrap_or_else(|| panic!("unclassified mnemonic {mnemonic}"));
        let slot = ALL_CLASSES
            .iter()
            .position(|c| *c == class)
            .expect("listed");
        per_class[slot].add(&ActivityCounts {
            retired: acc.retired,
            regfile: acc.regfile,
            tdm: acc.tdm,
            fetch: acc.fetch,
            alu: acc.alu,
        });
    }
    per_class
}

/// Builds the energy row for one measured workload. Pass the Dhrystone
/// iteration count to get the measured DMIPS/W on that row.
pub fn energy_row(
    m: &MeasuredActivity,
    analysis: &GateAnalysis,
    lib: &TechLibrary,
    dhrystone_iterations: Option<u64>,
) -> EnergyRow {
    let per_class = class_counts(m);
    let mut total = ActivityCounts::default();
    for c in &per_class {
        total.add(c);
    }
    debug_assert_eq!(total.retired, m.instructions, "classes must partition");

    let e = dynamic_energy(&total, lib);
    let power = measured_power(analysis, &e, m.cycles);
    let mut class_epi_pj = [0.0; 5];
    for (slot, counts) in per_class.iter().enumerate() {
        class_epi_pj[slot] = dynamic_energy(counts, lib).per_instruction_pj(counts.retired);
    }
    let dhrystone =
        dhrystone_iterations.map(|iters| measured_dmips_per_watt(analysis, &e, m.cycles, iters));

    EnergyRow {
        workload: m.workload,
        cycles: m.cycles,
        instructions: m.instructions,
        energy_nj: e.total_nj(),
        epi_pj: e.per_instruction_pj(m.instructions),
        class_epi_pj,
        dynamic_uw: power.dynamic_uw,
        total_uw: power.total_uw,
        dmips: dhrystone.map(|d| d.dmips),
        dmips_per_watt: dhrystone.map(|d| d.dmips_per_watt),
    }
}

/// Renders the measured-energy table for stdout.
pub fn render(rows: &[EnergyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>10} {:>8} {:>10} {:>10}",
        "workload", "energy (nJ)", "EPI (pJ)", "dyn µW", "total µW", "DMIPS/W"
    );
    for r in rows {
        let dpw = r
            .dmips_per_watt
            .map_or_else(|| "-".to_string(), |v| format!("{v:.3e}"));
        let _ = writeln!(
            out,
            "{:<14} {:>12.4} {:>10.4} {:>8.3} {:>10.3} {:>10}",
            r.workload, r.energy_nj, r.epi_pj, r.dynamic_uw, r.total_uw, dpw
        );
    }
    let _ = writeln!(
        out,
        "per-class EPI (pJ): {}",
        ALL_CLASSES
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(" / ")
    );
    for r in rows {
        let cells: Vec<String> = r.class_epi_pj.iter().map(|v| format!("{v:.4}")).collect();
        let _ = writeln!(out, "  {:<14} {}", r.workload, cells.join(" / "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_hw::analyzer::analyze;
    use art9_hw::datapath::Datapath;
    use art9_hw::tech::cntfet32;
    use workloads::energy::measure_activity_with;

    fn measured_dot() -> MeasuredActivity {
        measure_activity_with(&workloads::dot_product(6), 10_000_000).unwrap()
    }

    #[test]
    fn classes_partition_the_retired_instructions() {
        let m = measured_dot();
        let per_class = class_counts(&m);
        let retired: u64 = per_class.iter().map(|c| c.retired).sum();
        assert_eq!(retired, m.instructions);
        let flips: u64 = per_class.iter().map(ActivityCounts::total_flips).sum();
        assert_eq!(flips, {
            let t = m.accounting.totals();
            t.regfile + t.tdm + t.fetch + t.alu
        });
    }

    #[test]
    fn energy_row_is_positive_and_consistent() {
        let m = measured_dot();
        let a = analyze(&Datapath::art9(), &cntfet32());
        let r = energy_row(&m, &a, &cntfet32(), None);
        assert!(r.energy_nj > 0.0);
        assert!(r.epi_pj > 0.0);
        assert!(r.total_uw > r.dynamic_uw, "leakage adds on top");
        assert_eq!(r.dmips, None);
        // The overall EPI is a retirement-weighted mean of the class
        // EPIs, so it lies within their span.
        let populated: Vec<f64> = ALL_CLASSES
            .iter()
            .enumerate()
            .filter(|(i, _)| class_counts(&m)[*i].retired > 0)
            .map(|(i, _)| r.class_epi_pj[i])
            .collect();
        let lo = populated.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = populated.iter().cloned().fold(0.0, f64::max);
        assert!(
            r.epi_pj >= lo && r.epi_pj <= hi,
            "{lo} <= {} <= {hi}",
            r.epi_pj
        );
    }

    #[test]
    fn dhrystone_row_carries_measured_dmips_per_watt() {
        let iters = 5u64;
        let m = measure_activity_with(&workloads::dhrystone(iters as usize), 10_000_000).unwrap();
        let a = analyze(&Datapath::art9(), &cntfet32());
        let r = energy_row(&m, &a, &cntfet32(), Some(iters));
        let dmips = r.dmips.unwrap();
        let dpw = r.dmips_per_watt.unwrap();
        assert!(dmips > 0.0);
        // DMIPS/W must equal DMIPS / total power (W) exactly.
        assert!((dpw - dmips / (r.total_uw * 1e-6)).abs() / dpw < 1e-12);
        assert!(render(&[r]).contains("dhrystone"));
    }
}
