//! Shared helpers for the table/figure regeneration benches.
//!
//! Each bench target regenerates one table or figure of the paper
//! (printed before measurement starts) and then measures the runtime
//! of the underlying machinery with Criterion. `cargo bench` therefore
//! both reproduces the evaluation and tracks the simulator's own
//! performance.

pub mod energy;
pub mod gate;

use art9_compiler::Translation;
use art9_sim::{PipelineStats, SimBuilder};
use rv32::{CycleReport, PicoRv32Model, VexRiscvModel};
use workloads::batch::DEFAULT_MAX_STEPS;
use workloads::Workload;

/// Translates a workload to ART-9 (panicking on failure — workloads
/// are translatable by construction).
pub fn translate(w: &Workload) -> Translation {
    let rv = w.rv32_program().expect("workload parses");
    art9_compiler::translate(&rv).expect("workload translates")
}

/// Runs a translated workload on the pipelined ART-9, verifying the
/// output.
pub fn run_art9(w: &Workload, t: &Translation) -> PipelineStats {
    let mut core = SimBuilder::new(&t.program).build_pipelined();
    let stats = core.run(DEFAULT_MAX_STEPS).expect("ART-9 run completes");
    w.verify_art9(core.state()).expect("ART-9 output verifies");
    stats
}

/// Runs a workload under the PicoRV32 cycle model, verifying the
/// output on the functional machine.
pub fn run_picorv32(w: &Workload) -> CycleReport {
    let rv = w.rv32_program().expect("workload parses");
    let mut machine = rv32::Machine::new(&rv);
    machine.run(DEFAULT_MAX_STEPS).expect("rv32 run completes");
    w.verify_rv32(&machine).expect("rv32 output verifies");
    rv32::simulate_cycles(&rv, &mut PicoRv32Model::new(), DEFAULT_MAX_STEPS)
        .expect("cycle model completes")
}

/// Runs a workload under the VexRiscv cycle model.
pub fn run_vexriscv(w: &Workload) -> CycleReport {
    let rv = w.rv32_program().expect("workload parses");
    rv32::simulate_cycles(&rv, &mut VexRiscvModel::new(), DEFAULT_MAX_STEPS)
        .expect("cycle model completes")
}

/// DMIPS/MHz from total cycles over `iterations` Dhrystone iterations.
pub fn dmips_per_mhz(cycles: u64, iterations: usize) -> f64 {
    1.0e6 / (cycles as f64 / iterations as f64 * workloads::DHRYSTONE_DIVISOR)
}

pub mod perf {
    //! Host-performance measurement behind `BENCH_ternary.json`.
    //!
    //! The report binary regenerates the paper's tables *and* tracks
    //! how fast the framework itself runs; this module measures the
    //! two layers the packed-BCT refactor targets — word-level ternary
    //! operations and whole-simulator throughput — and renders them as
    //! a machine-readable JSON document so the performance trajectory
    //! is diffable across PRs. Methodology and schema are documented
    //! in `docs/PERFORMANCE.md`.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    use art9_sim::{PredecodedProgram, SimBuilder};
    use ternary::{arith, Word9};
    use workloads::batch::DEFAULT_MAX_STEPS;
    use workloads::Workload;

    /// Functional-simulator instructions/second per workload measured at
    /// the PR 1 seed (commit `f51d935`, pre-packed-BCT, same methodology)
    /// — the denominators of the `functional_speedup` fields.
    pub const SEED_FUNCTIONAL_IPS: [(&str, f64); 4] = [
        ("bubble-sort", 1.450e7),
        ("gemm", 1.411e7),
        ("sobel", 1.533e7),
        ("dhrystone", 1.455e7),
    ];

    /// Pipelined-simulator cycles/second per workload at the PR 1 seed.
    pub const SEED_PIPELINED_CPS: [(&str, f64); 4] = [
        ("bubble-sort", 1.134e7),
        ("gemm", 1.108e7),
        ("sobel", 1.220e7),
        ("dhrystone", 1.020e7),
    ];

    /// One measured word-operation cost.
    #[derive(Debug, Clone)]
    pub struct WordOp {
        /// Operation name (matches the `ternary_arith` bench entries).
        pub name: &'static str,
        /// Mean nanoseconds per operation.
        pub ns_per_op: f64,
    }

    /// Measured simulator throughput for one workload.
    #[derive(Debug, Clone)]
    pub struct SimThroughput {
        /// Workload name.
        pub workload: &'static str,
        /// Instructions one functional run retires.
        pub instructions: u64,
        /// Cycles one pipelined run takes.
        pub cycles: u64,
        /// Functional simulator instructions per host second.
        pub functional_ips: f64,
        /// Direct-threaded simulator instructions per host second.
        pub threaded_ips: f64,
        /// Pipelined simulator cycles per host second.
        pub pipelined_cps: f64,
    }

    /// Mean ns per call of `f`, measured over roughly `budget`.
    fn ns_per_call<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
        // Warm-up probe sizes the batch so the clock is read rarely.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1 << 22);
        // The minimum over batch means is the robust throughput
        // estimator: host noise (scheduling, frequency excursions)
        // only ever slows a batch down, so the fastest batch is the
        // closest observation of the undisturbed rate.
        let start = Instant::now();
        let mut best = f64::INFINITY;
        while start.elapsed() < budget {
            let b0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            best = best.min(b0.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        best
    }

    /// A deterministic spread of operands over the full symmetric
    /// `Word9` range, so carry-chain lengths and sign mixes are averaged
    /// rather than fixed by one operand pair.
    fn operand_pool() -> Vec<Word9> {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        (0..64)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Word9::from_i64_wrapping((seed >> 16) as i64 % 19683 - 9841)
            })
            .collect()
    }

    /// Measures the word-operation suite (`budget` per operation).
    pub fn measure_word_ops(budget: Duration) -> Vec<WordOp> {
        let pool = operand_pool();
        let mut k = 0usize;
        let next_pair = move || {
            k = (k + 1) % 63;
            (pool[k], pool[k + 1])
        };
        let mut ops: Vec<WordOp> = Vec::new();
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "add",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_add(b)
                }),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "add_tritwise_ref",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    arith::add_tritwise(a, b)
                }),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "mul",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_mul(b)
                }),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "compare",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.compare(b)
                }),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "logic_and_or_xor",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.and(b).or(b.xor(a))
                }),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "negate",
                ns_per_op: ns_per_call(budget, move || next_tuple_first(&mut p).negate()),
            });
        }
        {
            let mut p = next_pair.clone();
            ops.push(WordOp {
                name: "to_i64",
                ns_per_op: ns_per_call(budget, move || next_tuple_first(&mut p).to_i64()),
            });
        }
        ops.push(WordOp {
            name: "from_i64_wrapping",
            ns_per_op: {
                let mut v = 0i64;
                ns_per_call(budget, move || {
                    v = v.wrapping_add(104729);
                    Word9::from_i64_wrapping(v)
                })
            },
        });
        ops
    }

    fn next_tuple_first(p: &mut impl FnMut() -> (Word9, Word9)) -> Word9 {
        p().0
    }

    /// One measured multi-plane wide-word (or tapered-real) operation
    /// cost — a row of the `wide` section of `BENCH_ternary.json`.
    #[derive(Debug, Clone)]
    pub struct WidePerf {
        /// Operation name, `<type>_<op>` (e.g. `word81_add`).
        pub name: &'static str,
        /// Mean nanoseconds per operation.
        pub ns_per_op: f64,
    }

    /// Rotates through adjacent pairs of a pre-generated operand pool,
    /// so carry-chain lengths and sign mixes are averaged like the
    /// `Word9` suite.
    fn pair_stream<T: Copy>(pool: &[T]) -> impl FnMut() -> (T, T) + '_ {
        let mut k = 0usize;
        move || {
            k = (k + 1) % (pool.len() - 1);
            (pool[k], pool[k + 1])
        }
    }

    /// Measures the wide-word suite (`budget` per operation): the
    /// Etiemble-style adder/multiplier rows at 27 and 81 trits, the
    /// 81-trit support ops, and the tapered-precision real arithmetic.
    pub fn measure_wide(budget: Duration) -> Vec<WidePerf> {
        use ternary::{TernaryReal, Word27, Word81};

        let mut seed = 0x243F_6A88_85A3_08D3u64;
        let mut raw = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        let w27: Vec<Word27> = (0..64)
            .map(|_| Word27::from_i128_wrapping(raw() as i64 as i128))
            .collect();
        let w81: Vec<Word81> = (0..64)
            .map(|_| Word81::from_i128_wrapping((((raw() as u128) << 64) | raw() as u128) as i128))
            .collect();
        let reals: Vec<TernaryReal> = (0..64)
            .map(|_| TernaryReal::from_scaled(raw() as i64 >> 16, (raw() % 121) as i32 - 60))
            .collect();

        let mut ops: Vec<WidePerf> = Vec::new();
        {
            let mut p = pair_stream(&w27);
            ops.push(WidePerf {
                name: "word27_add",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_add(b)
                }),
            });
        }
        {
            let mut p = pair_stream(&w27);
            ops.push(WidePerf {
                name: "word27_mul",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_mul(b)
                }),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_add",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_add(b)
                }),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_mul",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.wrapping_mul(b)
                }),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_negate",
                ns_per_op: ns_per_call(budget, move || p().0.negate()),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_compare",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.cmp(&b)
                }),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_compress3",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    Word81::compress3(a, b, a.negate())
                }),
            });
        }
        {
            let mut p = pair_stream(&w81);
            ops.push(WidePerf {
                name: "word81_to_i128",
                ns_per_op: ns_per_call(budget, move || p().0.try_to_i128()),
            });
        }
        {
            let mut v = 1i128;
            ops.push(WidePerf {
                name: "word81_from_i128_wrapping",
                ns_per_op: ns_per_call(budget, move || {
                    v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    Word81::from_i128_wrapping(v)
                }),
            });
        }
        {
            let mut p = pair_stream(&reals);
            ops.push(WidePerf {
                name: "real_add",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.add(&b)
                }),
            });
        }
        {
            let mut p = pair_stream(&reals);
            ops.push(WidePerf {
                name: "real_mul",
                ns_per_op: ns_per_call(budget, move || {
                    let (a, b) = p();
                    a.mul(&b)
                }),
            });
        }
        {
            let mut p = pair_stream(&reals);
            ops.push(WidePerf {
                name: "real_tapered_roundtrip",
                ns_per_op: ns_per_call(budget, move || {
                    TernaryReal::from_tapered(p().0.to_tapered())
                }),
            });
        }
        ops
    }

    /// Measures functional and pipelined throughput of one workload on
    /// its shared predecoded image (`budget` per simulator).
    ///
    /// # Panics
    ///
    /// Panics when the workload does not translate or a run faults —
    /// the paper workloads are correct by construction.
    pub fn measure_sim_throughput(w: &Workload, budget: Duration) -> SimThroughput {
        let t = crate::translate(w);
        let image = PredecodedProgram::new(&t.program);

        let builder = SimBuilder::new(&image);
        let mut probe = builder.build_functional();
        let instructions = probe
            .run(DEFAULT_MAX_STEPS)
            .expect("completes")
            .instructions;
        // The threaded backend must retire exactly what the functional
        // one does — measured on the same shared image, construction
        // (compilation included) inside the timed call like the others.
        let mut probe = builder.build_threaded();
        let threaded_instructions = probe
            .run(DEFAULT_MAX_STEPS)
            .expect("completes")
            .instructions;
        assert_eq!(
            threaded_instructions, instructions,
            "threaded and functional retirement counts diverged"
        );
        let mut probe = builder.build_pipelined();
        let cycles = probe.run(DEFAULT_MAX_STEPS).expect("completes").cycles;

        // The three backends are measured in interleaved rounds (each
        // keeping its fastest round) rather than one contiguous window
        // apiece: a host-frequency excursion then degrades all three
        // equally instead of silently skewing the cross-backend
        // ratios the report exists to track.
        let rounds = 3u32;
        let slice = budget / (3 * rounds);
        let mut functional_ns = f64::INFINITY;
        let mut threaded_ns = f64::INFINITY;
        let mut pipelined_ns = f64::INFINITY;
        for _ in 0..rounds {
            functional_ns = functional_ns.min(ns_per_call(slice, || {
                let mut sim = builder.build_functional();
                sim.run(DEFAULT_MAX_STEPS).expect("completes")
            }));
            threaded_ns = threaded_ns.min(ns_per_call(slice, || {
                let mut sim = builder.build_threaded();
                sim.run(DEFAULT_MAX_STEPS).expect("completes")
            }));
            pipelined_ns = pipelined_ns.min(ns_per_call(slice, || {
                let mut core = builder.build_pipelined();
                core.run(DEFAULT_MAX_STEPS).expect("completes")
            }));
        }
        let functional_ips = instructions as f64 * 1e9 / functional_ns;
        let threaded_ips = instructions as f64 * 1e9 / threaded_ns;
        let pipelined_cps = cycles as f64 * 1e9 / pipelined_ns;

        SimThroughput {
            workload: w.name,
            instructions,
            cycles,
            functional_ips,
            threaded_ips,
            pipelined_cps,
        }
    }

    /// Scheduler throughput of one in-process service load run — the
    /// `service` section of `BENCH_ternary.json`.
    #[derive(Debug, Clone)]
    pub struct ServicePerf {
        /// Concurrent sessions submitted (all completed exactly).
        pub sessions: u64,
        /// Worker threads the scheduler ran.
        pub workers: u64,
        /// Sessions completed per wall-clock second.
        pub sessions_per_second: f64,
        /// Aggregate retired instructions per second per worker.
        pub per_worker_ips: f64,
        /// p99 slice latency in microseconds.
        pub p99_slice_us: f64,
        /// Cross-worker checkpoint migrations across all sessions.
        pub migrations: u64,
        /// Work-steals across all workers.
        pub steals: u64,
    }

    /// Measures scheduler throughput by flooding an in-process service
    /// with `sessions` budget-sliced spin sessions. The fairness and
    /// latency acceptance bounds are disabled — this is a measurement,
    /// not the load smoke — but the exact-completion check stays on.
    ///
    /// # Panics
    ///
    /// Panics when the service fails to start or any session does not
    /// finish with its exact retirement count.
    pub fn measure_service(sessions: usize) -> ServicePerf {
        use art9_service::loadtest::{run_self_contained, LoadConfig};
        let report = run_self_contained(&LoadConfig {
            sessions,
            target_retired: 50_000,
            quantum: 1_000,
            fairness_ratio: f64::INFINITY,
            p99_slice_ms: f64::INFINITY,
            ..LoadConfig::default()
        })
        .expect("service load runs");
        assert!(
            report.passed(),
            "service load violations: {:?}",
            report.violations
        );
        ServicePerf {
            sessions: report.sessions as u64,
            workers: report.workers,
            sessions_per_second: report.sessions_per_second,
            per_worker_ips: report.per_worker_ips,
            p99_slice_us: report.p99_slice_us,
            migrations: report.migrations,
            steals: report.steals,
        }
    }

    /// SIMD-vs-scalar ternary-NN measurement — the `nn` section of
    /// `BENCH_ternary.json`.
    #[derive(Debug, Clone)]
    pub struct NnPerf {
        /// Ternary weight matrix rows (output neurons).
        pub rows: usize,
        /// Ternary weight matrix columns (input activations).
        pub cols: usize,
        /// Mean ns per scalar (one-`Word9`-at-a-time) matrix–vector
        /// product.
        pub scalar_ns_per_matvec: f64,
        /// Mean ns per bitplane-SIMD matrix–vector product.
        pub simd_ns_per_matvec: f64,
        /// Host speedup of the SIMD golden path over the scalar loop.
        pub simd_speedup: f64,
        /// Per-backend throughput of the `nn-mlp` workload kernel.
        pub sim: SimThroughput,
    }

    /// Measures the ternary-NN layer: the host SIMD matvec against the
    /// scalar one-word-at-a-time loop (the ISSUE's ≥4× golden path),
    /// plus per-backend simulator throughput of the `nn-mlp` workload.
    ///
    /// # Panics
    ///
    /// Panics if the two golden paths disagree (they are cross-checked
    /// before timing) or the workload run faults.
    pub fn measure_nn(budget: Duration) -> NnPerf {
        use workloads::nn::TernaryMatrix;

        // Large enough that lane parallelism dominates loop overhead,
        // deliberately not a multiple of the 6-lane word width.
        let (rows, cols) = (40, 40);
        let m = TernaryMatrix::seeded(rows, cols, 0x05ee_d001);
        let pool = operand_pool();
        let x: Vec<Word9> = (0..cols).map(|i| pool[i % pool.len()]).collect();
        assert_eq!(
            m.matvec_simd(&x),
            m.matvec_scalar(&x),
            "SIMD and scalar golden paths diverged"
        );

        // Interleaved rounds, like the simulator measurement: a host
        // frequency excursion degrades both sides equally instead of
        // skewing the speedup ratio.
        let rounds = 3u32;
        let slice = budget / (2 * rounds);
        let mut scalar_ns = f64::INFINITY;
        let mut simd_ns = f64::INFINITY;
        for _ in 0..rounds {
            scalar_ns = scalar_ns.min(ns_per_call(slice, || m.matvec_scalar(black_box(&x))));
            simd_ns = simd_ns.min(ns_per_call(slice, || m.matvec_simd(black_box(&x))));
        }

        NnPerf {
            rows,
            cols,
            scalar_ns_per_matvec: scalar_ns,
            simd_ns_per_matvec: simd_ns,
            simd_speedup: scalar_ns / simd_ns,
            sim: measure_sim_throughput(&workloads::nn_mlp(8), budget),
        }
    }

    /// Looks up a workload's frozen seed rate in [`SEED_FUNCTIONAL_IPS`]
    /// or [`SEED_PIPELINED_CPS`].
    pub fn seed_rate(table: &[(&str, f64)], workload: &str) -> Option<f64> {
        table.iter().find(|(n, _)| *n == workload).map(|(_, v)| *v)
    }

    /// Renders the measurements as the `BENCH_ternary.json` document
    /// (schema `art9-bench-ternary/v1`, described in
    /// `docs/PERFORMANCE.md`; the `energy` section in `docs/ENERGY.md`;
    /// the `service` section in `docs/SERVICE.md`).
    pub fn bench_json(
        word_ops: &[WordOp],
        sims: &[SimThroughput],
        energy: &[crate::energy::EnergyRow],
        service: Option<&ServicePerf>,
        nn: Option<&NnPerf>,
        wide: &[WidePerf],
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"art9-bench-ternary/v1\",\n");
        out.push_str("  \"generated_by\": \"cargo run --release -p art9-bench --bin report\",\n");
        out.push_str(
            "  \"baseline\": \"PR 1 seed (commit f51d935), same host and methodology\",\n",
        );
        out.push_str("  \"word_ops\": [\n");
        for (i, op) in word_ops.iter().enumerate() {
            let comma = if i + 1 < word_ops.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}}}{comma}",
                op.name, op.ns_per_op
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"simulators\": [\n");
        for (i, s) in sims.iter().enumerate() {
            let comma = if i + 1 < sims.len() { "," } else { "" };
            let func_seed = seed_rate(&SEED_FUNCTIONAL_IPS, s.workload);
            let pipe_seed = seed_rate(&SEED_PIPELINED_CPS, s.workload);
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"instructions\": {}, \"cycles\": {}, \
                 \"functional_ips\": {:.4e}, \"threaded_ips\": {:.4e}, \
                 \"threaded_speedup_vs_functional\": {:.2}, \"pipelined_cps\": {:.4e}",
                s.workload,
                s.instructions,
                s.cycles,
                s.functional_ips,
                s.threaded_ips,
                s.threaded_ips / s.functional_ips,
                s.pipelined_cps
            );
            if let Some(seed) = func_seed {
                let _ = write!(
                    out,
                    ", \"seed_functional_ips\": {seed:.4e}, \"functional_speedup\": {:.2}",
                    s.functional_ips / seed
                );
            }
            if let Some(seed) = pipe_seed {
                let _ = write!(
                    out,
                    ", \"seed_pipelined_cps\": {seed:.4e}, \"pipelined_speedup\": {:.2}",
                    s.pipelined_cps / seed
                );
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ]");
        if !energy.is_empty() {
            out.push_str(",\n  \"energy\": [\n");
            render_energy_rows(&mut out, energy);
            out.push_str("  ]");
        }
        if let Some(s) = service {
            out.push_str(",\n  \"service\": [\n");
            let _ = writeln!(
                out,
                "    {{\"sessions\": {}, \"workers\": {}, \
                 \"sessions_per_second\": {:.4e}, \"per_worker_ips\": {:.4e}, \
                 \"p99_slice_us\": {:.3}, \"migrations\": {}, \"steals\": {}}}",
                s.sessions,
                s.workers,
                s.sessions_per_second,
                s.per_worker_ips,
                s.p99_slice_us,
                s.migrations,
                s.steals
            );
            out.push_str("  ]");
        }
        if let Some(n) = nn {
            out.push_str(",\n  \"nn\": [\n");
            let _ = writeln!(
                out,
                "    {{\"workload\": \"{}\", \"rows\": {}, \"cols\": {}, \
                 \"scalar_ns_per_matvec\": {:.2}, \"simd_ns_per_matvec\": {:.2}, \
                 \"simd_speedup\": {:.2}, \"instructions\": {}, \"cycles\": {}, \
                 \"functional_ips\": {:.4e}, \"threaded_ips\": {:.4e}, \
                 \"pipelined_cps\": {:.4e}}}",
                n.sim.workload,
                n.rows,
                n.cols,
                n.scalar_ns_per_matvec,
                n.simd_ns_per_matvec,
                n.simd_speedup,
                n.sim.instructions,
                n.sim.cycles,
                n.sim.functional_ips,
                n.sim.threaded_ips,
                n.sim.pipelined_cps
            );
            out.push_str("  ]");
        }
        if !wide.is_empty() {
            out.push_str(",\n  \"wide\": [\n");
            for (i, op) in wide.iter().enumerate() {
                let comma = if i + 1 < wide.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}}}{comma}",
                    op.name, op.ns_per_op
                );
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the `energy` array rows of [`bench_json`].
    fn render_energy_rows(out: &mut String, energy: &[crate::energy::EnergyRow]) {
        use std::fmt::Write as _;
        for (i, r) in energy.iter().enumerate() {
            let comma = if i + 1 < energy.len() { "," } else { "" };
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
                 \"energy_nj\": {:.6e}, \"epi_pj\": {:.6e}",
                r.workload, r.cycles, r.instructions, r.energy_nj, r.epi_pj
            );
            for (class, epi) in art9_hw::activity::ALL_CLASSES.iter().zip(r.class_epi_pj) {
                let _ = write!(out, ", \"epi_{}_pj\": {epi:.6e}", class.name());
            }
            let _ = write!(
                out,
                ", \"dynamic_uw\": {:.6e}, \"total_uw\": {:.6e}",
                r.dynamic_uw, r.total_uw
            );
            if let (Some(dmips), Some(dpw)) = (r.dmips, r.dmips_per_watt) {
                let _ = write!(
                    out,
                    ", \"dmips\": {dmips:.4e}, \"dmips_per_watt\": {dpw:.4e}"
                );
            }
            let _ = writeln!(out, "}}{comma}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn word_ops_measure_quickly_and_positively() {
            let ops = measure_word_ops(Duration::from_millis(2));
            assert!(ops.iter().any(|o| o.name == "add"));
            assert!(ops.iter().all(|o| o.ns_per_op > 0.0));
        }

        #[test]
        fn wide_ops_measure_quickly_and_positively() {
            let ops = measure_wide(Duration::from_millis(2));
            assert!(ops.iter().any(|o| o.name == "word27_add"));
            assert!(ops.iter().any(|o| o.name == "word81_mul"));
            assert!(ops.iter().any(|o| o.name == "real_add"));
            assert!(ops.iter().all(|o| o.ns_per_op > 0.0));
        }

        #[test]
        fn sim_throughput_counts_match_direct_run() {
            let w = workloads::dot_product(4);
            let s = measure_sim_throughput(&w, Duration::from_millis(5));
            assert!(s.functional_ips > 0.0 && s.pipelined_cps > 0.0);
            assert!(s.threaded_ips > 0.0);
            assert!(s.instructions > 0 && s.cycles >= s.instructions);
        }

        #[test]
        fn json_has_schema_and_balanced_braces() {
            let ops = vec![WordOp {
                name: "add",
                ns_per_op: 3.25,
            }];
            let sims = vec![SimThroughput {
                workload: "dhrystone",
                instructions: 100,
                cycles: 120,
                functional_ips: 6.6e7,
                threaded_ips: 2.2e8,
                pipelined_cps: 2.1e7,
            }];
            let energy = vec![crate::energy::EnergyRow {
                workload: "dhrystone",
                cycles: 120,
                instructions: 100,
                energy_nj: 1.5e-3,
                epi_pj: 1.5e-2,
                class_epi_pj: [0.016, 0.014, 0.012, 0.02, 0.018],
                dynamic_uw: 3.0,
                total_uw: 20.0,
                dmips: Some(150.0),
                dmips_per_watt: Some(7.5e6),
            }];
            let service = ServicePerf {
                sessions: 512,
                workers: 8,
                sessions_per_second: 130.5,
                per_worker_ips: 4.2e6,
                p99_slice_us: 210.25,
                migrations: 97,
                steals: 41,
            };
            let nn = NnPerf {
                rows: 40,
                cols: 40,
                scalar_ns_per_matvec: 4000.0,
                simd_ns_per_matvec: 500.0,
                simd_speedup: 8.0,
                sim: SimThroughput {
                    workload: "nn-mlp",
                    instructions: 5000,
                    cycles: 7000,
                    functional_ips: 5.5e7,
                    threaded_ips: 1.8e8,
                    pipelined_cps: 1.9e7,
                },
            };
            let wide = vec![
                WidePerf {
                    name: "word81_add",
                    ns_per_op: 6.5,
                },
                WidePerf {
                    name: "real_mul",
                    ns_per_op: 42.75,
                },
            ];
            let json = bench_json(&ops, &sims, &energy, Some(&service), Some(&nn), &wide);
            assert!(json.contains("\"schema\": \"art9-bench-ternary/v1\""));
            assert!(json.contains("\"functional_speedup\""));
            assert!(json.contains("\"threaded_ips\""));
            assert!(json.contains("\"threaded_speedup_vs_functional\": 3.33"));
            assert!(json.contains("\"energy\""));
            assert!(json.contains("\"energy_nj\""));
            assert!(json.contains("\"epi_alu_pj\""));
            assert!(json.contains("\"epi_control_pj\""));
            assert!(json.contains("\"dmips_per_watt\": 7.5000e6"));
            assert!(json.contains("\"service\""));
            assert!(json.contains("\"per_worker_ips\": 4.2000e6"));
            assert!(json.contains("\"p99_slice_us\": 210.250"));
            assert!(json.contains("\"nn\""));
            assert!(json.contains("\"workload\": \"nn-mlp\""));
            assert!(json.contains("\"simd_speedup\": 8.00"));
            assert!(json.contains("\"wide\""));
            assert!(json.contains("\"name\": \"word81_add\", \"ns_per_op\": 6.50"));
            assert!(json.contains("\"name\": \"real_mul\", \"ns_per_op\": 42.75"));
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "unbalanced braces:\n{json}"
            );
            assert_eq!(json.matches('[').count(), json.matches(']').count());

            // Without energy rows, a service run, an NN measurement or
            // wide rows the sections are omitted entirely (the shape
            // older baselines have).
            let bare = bench_json(&ops, &sims, &[], None, None, &[]);
            assert!(!bare.contains("\"energy\""));
            assert!(!bare.contains("\"service\""));
            assert!(!bare.contains("\"nn\""));
            assert!(!bare.contains("\"wide\""));
            assert_eq!(bare.matches('{').count(), bare.matches('}').count());
        }

        #[test]
        fn nn_measurement_agrees_and_shows_simd_speedup() {
            let n = measure_nn(Duration::from_millis(30));
            assert_eq!((n.rows, n.cols), (40, 40));
            assert!(n.scalar_ns_per_matvec > 0.0 && n.simd_ns_per_matvec > 0.0);
            // The acceptance bar is 4x, measured and pinned in release
            // (the report binary and the gate); an unoptimized build
            // distorts the ratio, so debug only sanity-checks that the
            // SIMD path wins at all.
            let bar = if cfg!(debug_assertions) { 2.0 } else { 4.0 };
            assert!(
                n.simd_speedup >= bar,
                "SIMD matvec only {:.1}x faster than scalar (bar {bar}x)",
                n.simd_speedup
            );
            assert!(n.sim.functional_ips > 0.0 && n.sim.threaded_ips > 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::bubble_sort;

    #[test]
    fn helpers_run_and_verify() {
        let w = bubble_sort(8);
        let t = translate(&w);
        let stats = run_art9(&w, &t);
        let pico = run_picorv32(&w);
        assert!(stats.cycles > 0 && pico.cycles > 0);
    }

    #[test]
    fn dmips_arithmetic() {
        // 1355 cycles/iteration -> 0.42 DMIPS/MHz (Table II).
        assert!((dmips_per_mhz(1355 * 10, 10) - 0.42).abs() < 0.01);
    }
}
