//! Shared helpers for the table/figure regeneration benches.
//!
//! Each bench target regenerates one table or figure of the paper
//! (printed before measurement starts) and then measures the runtime
//! of the underlying machinery with Criterion. `cargo bench` therefore
//! both reproduces the evaluation and tracks the simulator's own
//! performance.

use art9_compiler::Translation;
use art9_sim::{PipelineStats, PipelinedSim};
use rv32::{CycleReport, PicoRv32Model, VexRiscvModel};
use workloads::batch::DEFAULT_MAX_STEPS;
use workloads::Workload;

/// Translates a workload to ART-9 (panicking on failure — workloads
/// are translatable by construction).
pub fn translate(w: &Workload) -> Translation {
    let rv = w.rv32_program().expect("workload parses");
    art9_compiler::translate(&rv).expect("workload translates")
}

/// Runs a translated workload on the pipelined ART-9, verifying the
/// output.
pub fn run_art9(w: &Workload, t: &Translation) -> PipelineStats {
    let mut core = PipelinedSim::new(&t.program);
    let stats = core.run(DEFAULT_MAX_STEPS).expect("ART-9 run completes");
    w.verify_art9(core.state()).expect("ART-9 output verifies");
    stats
}

/// Runs a workload under the PicoRV32 cycle model, verifying the
/// output on the functional machine.
pub fn run_picorv32(w: &Workload) -> CycleReport {
    let rv = w.rv32_program().expect("workload parses");
    let mut machine = rv32::Machine::new(&rv);
    machine.run(DEFAULT_MAX_STEPS).expect("rv32 run completes");
    w.verify_rv32(&machine).expect("rv32 output verifies");
    rv32::simulate_cycles(&rv, &mut PicoRv32Model::new(), DEFAULT_MAX_STEPS)
        .expect("cycle model completes")
}

/// Runs a workload under the VexRiscv cycle model.
pub fn run_vexriscv(w: &Workload) -> CycleReport {
    let rv = w.rv32_program().expect("workload parses");
    rv32::simulate_cycles(&rv, &mut VexRiscvModel::new(), DEFAULT_MAX_STEPS)
        .expect("cycle model completes")
}

/// DMIPS/MHz from total cycles over `iterations` Dhrystone iterations.
pub fn dmips_per_mhz(cycles: u64, iterations: usize) -> f64 {
    1.0e6 / (cycles as f64 / iterations as f64 * workloads::DHRYSTONE_DIVISOR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::bubble_sort;

    #[test]
    fn helpers_run_and_verify() {
        let w = bubble_sort(8);
        let t = translate(&w);
        let stats = run_art9(&w, &t);
        let pico = run_picorv32(&w);
        assert!(stats.cycles > 0 && pico.cycles > 0);
    }

    #[test]
    fn dmips_arithmetic() {
        // 1355 cycles/iteration -> 0.42 DMIPS/MHz (Table II).
        assert!((dmips_per_mhz(1355 * 10, 10) - 0.42).abs() < 0.01);
    }
}
