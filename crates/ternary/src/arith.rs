//! Pure trit-domain addition, multiplication and division.
//!
//! The fast kernels on [`Trits`] work on packed binary bitplanes
//! ([`carrying_add`](crate::Trits::carrying_add)) or
//! convert through `i64` ([`Trits::wrapping_mul`](crate::Trits::wrapping_mul),
//! [`Trits::div_rem`](crate::Trits::div_rem)); the algorithms here stay
//! entirely in the trit domain — the same ripple-carry adder, balanced
//! base-3 shift-and-add and restoring long division the hardware (and
//! the compiler's `__mul`/`__div` runtime) would use. They exist both
//! as executable documentation of those circuits and as an independent
//! cross-check: property tests assert they agree with the packed and
//! integer-domain versions everywhere.

use crate::error::TernaryError;
use crate::trit::Trit;
use crate::word::{Trits, Word9};

/// Trit-serial ripple-carry addition: the per-trit reference for the
/// packed word-parallel adder behind
/// [`Trits::carrying_add`](crate::Trits::carrying_add).
///
/// Chains [`Trit::full_add`] from the least significant position up —
/// exactly the ternary ripple adder of the paper's TALU — and returns
/// `(sum, carry_out)` with `a + b = sum + 3^N · carry_out`. Property
/// tests assert it agrees with the bitplane kernel everywhere.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Trit, Word9};
///
/// let a = Word9::from_i64(9000)?;
/// let b = Word9::from_i64(900)?;
/// let (sum, carry) = arith::add_tritwise(a, b);
/// assert_eq!(sum, a.wrapping_add(b));
/// assert_eq!(carry, Trit::P); // 9900 wrapped past +9841
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn add_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> (Trits<N>, Trit) {
    let at = a.trits();
    let bt = b.trits();
    let mut out = [Trit::Z; N];
    let mut carry = Trit::Z;
    for i in 0..N {
        let (s, c) = at[i].full_add(bt[i], carry);
        out[i] = s;
        carry = c;
    }
    (Trits::from_trits(out), carry)
}

/// Trit-serial negation: STI applied to every trit — the per-trit
/// reference for the packed plane-swap behind
/// [`Trits::negate`](crate::Trits::negate).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(-4821)?;
/// assert_eq!(arith::negate_tritwise(a), a.negate());
/// assert_eq!(arith::negate_tritwise(arith::negate_tritwise(a)), a);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn negate_tritwise<const N: usize>(a: Trits<N>) -> Trits<N> {
    let mut out = a.trits();
    for t in &mut out {
        *t = t.sti();
    }
    Trits::from_trits(out)
}

/// Trit-serial subtraction: `a − b = a + STI(b)` chained through the
/// ripple adder — the per-trit reference for
/// [`Trits::wrapping_sub`](crate::Trits::wrapping_sub).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(100)?;
/// let b = Word9::from_i64(-30)?;
/// assert_eq!(arith::sub_tritwise(a, b), a.wrapping_sub(b));
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn sub_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> Trits<N> {
    add_tritwise(a, negate_tritwise(b)).0
}

/// Balanced base-3 shift-and-add multiplication, entirely on trits.
///
/// For each trit of the multiplier (least significant first), the
/// shifted multiplicand is added, subtracted, or skipped. Wraps like
/// the hardware (modulo 3^N).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(123)?;
/// let b = Word9::from_i64(-45)?;
/// assert_eq!(arith::mul_tritwise(a, b).to_i64(), -5535);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn mul_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> Trits<N> {
    let mut acc = Trits::<N>::ZERO;
    let mut shifted = a;
    for i in 0..N {
        match b.trit(i) {
            Trit::P => acc = acc.wrapping_add(shifted),
            Trit::N => acc = acc.wrapping_sub(shifted),
            Trit::Z => {}
        }
        shifted = shifted.shl(1);
    }
    acc
}

/// Trit-serial switching-activity count: compares the words one trit at
/// a time — the per-trit reference for the packed XOR+popcount behind
/// [`Trits::flips_from`](crate::Trits::flips_from), used by the
/// differential energy oracle in `art9-fuzz`.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(8)?;
/// let b = Word9::from_i64(-8)?;
/// assert_eq!(arith::flips_tritwise(a, b), a.flips_from(&b));
/// assert_eq!(arith::flips_tritwise(a, a), 0);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn flips_tritwise<const N: usize>(next: Trits<N>, prev: Trits<N>) -> u32 {
    let nt = next.trits();
    let pt = prev.trits();
    let mut flips = 0u32;
    for i in 0..N {
        if nt[i] != pt[i] {
            flips += 1;
        }
    }
    flips
}

/// Restoring long division in the trit domain, truncating toward zero
/// (matching [`Trits::div_rem`](crate::Trits::div_rem)).
///
/// Sign-normalizes both operands with the balanced system's exact
/// negation, then builds the quotient digit by digit from the most
/// significant position: at each step the scaled divisor is subtracted
/// up to twice (digits 0..2 in the unsigned intermediate form), and
/// the result is converted back to balanced digits at the end via
/// ordinary re-encoding.
///
/// # Errors
///
/// [`TernaryError::DivisionByZero`] when `b` is zero.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let (q, r) = arith::div_rem_tritwise(Word9::from_i64(-7)?, Word9::from_i64(2)?)?;
/// assert_eq!((q.to_i64(), r.to_i64()), (-3, -1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn div_rem_tritwise<const N: usize>(
    a: Trits<N>,
    b: Trits<N>,
) -> Result<(Trits<N>, Trits<N>), TernaryError> {
    if b.is_zero() {
        return Err(TernaryError::DivisionByZero);
    }
    // Sign-normalize (negation is exact in balanced ternary).
    let neg_a = a.sign() == Trit::N;
    let neg_b = b.sign() == Trit::N;
    let mut rem = if neg_a { a.negate() } else { a };
    let divisor = if neg_b { b.negate() } else { b };

    // Build the quotient by trial-subtracting 3^k * divisor from the
    // most significant scale downward; each scale's digit is 0..=2 and
    // is accumulated as repeated addition of 3^k (which re-balances
    // automatically through the ripple adder).
    let mut quotient = Trits::<N>::ZERO;
    for k in (0..N).rev() {
        // scaled = divisor * 3^k; skip scales that overflow into the
        // sign region (their trial subtraction can never succeed for
        // in-range operands).
        if leading_zero_trits(divisor) < k {
            continue;
        }
        let scaled = divisor.shl(k);
        let mut unit = Trits::<N>::ZERO.with_trit(k, Trit::P);
        let mut digit = 0;
        while digit < 2 && ge(rem, scaled) {
            rem = rem.wrapping_sub(scaled);
            quotient = quotient.wrapping_add(unit);
            digit += 1;
            // `unit` is re-used; keep it identical for the second add.
            unit = Trits::<N>::ZERO.with_trit(k, Trit::P);
        }
    }

    let q = if neg_a != neg_b {
        quotient.negate()
    } else {
        quotient
    };
    let r = if neg_a { rem.negate() } else { rem };
    Ok((q, r))
}

// ---- Per-lane references for the bitplane-SIMD subsystem ------------
//
// `crate::simd::Word9xN` computes on many 9-trit lanes at once; these
// references perform the same operations one lane at a time through the
// per-trit algorithms above (and the packed scalar kernels they are
// already pinned to). The `--oracle simd` fuzz campaign and the
// property tests compare the two everywhere.

/// Per-lane reference for [`crate::simd::Word9xN::wrapping_add`]: each
/// lane added independently through the trit-serial ripple adder
/// [`add_tritwise`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use ternary::{arith, simd::Word9xN, Word9};
///
/// let a = [Word9::from_i64(9841)?, Word9::from_i64(-7)?];
/// let b = [Word9::from_i64(1)?, Word9::from_i64(7)?];
/// let reference = arith::add_lanewise(&a, &b);
/// let packed = Word9xN::from_words(&a).wrapping_add(&Word9xN::from_words(&b));
/// assert_eq!(reference, packed.to_words());
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn add_lanewise(a: &[Word9], b: &[Word9]) -> Vec<Word9> {
    assert_eq!(a.len(), b.len(), "lanewise add requires equal lane counts");
    a.iter()
        .zip(b)
        .map(|(x, y)| add_tritwise(*x, *y).0)
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::negate`]: STI applied
/// to every trit of every lane via [`negate_tritwise`].
pub fn negate_lanewise(a: &[Word9]) -> Vec<Word9> {
    a.iter().map(|x| negate_tritwise(*x)).collect()
}

/// Per-lane reference for the [`crate::simd::Word9xN`] logic operations:
/// applies `f` trit by trit to each lane pair. Pass [`Trit::and`],
/// [`Trit::or`] or [`Trit::xor`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn logic_lanewise(a: &[Word9], b: &[Word9], f: fn(Trit, Trit) -> Trit) -> Vec<Word9> {
    assert_eq!(
        a.len(),
        b.len(),
        "lanewise logic requires equal lane counts"
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let xt = x.trits();
            let yt = y.trits();
            let mut out = [Trit::Z; 9];
            for i in 0..9 {
                out[i] = f(xt[i], yt[i]);
            }
            Trits::from_trits(out)
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::compare`]: the
/// trit-serial comparator (most significant trit first, first
/// difference decides) run on each lane pair.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn compare_lanewise(a: &[Word9], b: &[Word9]) -> Vec<Trit> {
    assert_eq!(
        a.len(),
        b.len(),
        "lanewise compare requires equal lane counts"
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            for i in (0..9).rev() {
                let (xt, yt) = (x.trit(i), y.trit(i));
                if xt != yt {
                    return if xt.value() > yt.value() {
                        Trit::P
                    } else {
                        Trit::N
                    };
                }
            }
            Trit::Z
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::mac`]: each lane's
/// ternary weight selects add, subtract or skip through the trit-serial
/// adder — the scalar loop the SIMD plane-masked MAC replaces.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Trit, Word9};
///
/// let acc = [Word9::ZERO, Word9::ZERO];
/// let x = [Word9::from_i64(5)?, Word9::from_i64(5)?];
/// let out = arith::mac_lanewise(&acc, &x, &[Trit::P, Trit::N]);
/// assert_eq!(out[0].to_i64(), 5);
/// assert_eq!(out[1].to_i64(), -5);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn mac_lanewise(acc: &[Word9], x: &[Word9], weights: &[Trit]) -> Vec<Word9> {
    assert_eq!(
        acc.len(),
        x.len(),
        "lanewise mac requires equal lane counts"
    );
    assert_eq!(acc.len(), weights.len(), "one weight per lane");
    acc.iter()
        .zip(x)
        .zip(weights)
        .map(|((a, v), w)| match w {
            Trit::P => add_tritwise(*a, *v).0,
            Trit::N => sub_tritwise(*a, *v),
            Trit::Z => *a,
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::reduce_add`]: folds
/// the lanes through the trit-serial adder in lane order.
pub fn reduce_add_lanewise(lanes: &[Word9]) -> Word9 {
    lanes
        .iter()
        .fold(Word9::ZERO, |acc, w| add_tritwise(acc, *w).0)
}

/// Non-negative comparison helper: `x >= y` for sign-normalized words.
fn ge<const N: usize>(x: Trits<N>, y: Trits<N>) -> bool {
    x.cmp(&y) != std::cmp::Ordering::Less
}

/// Number of leading zero trits (above the most significant non-zero).
fn leading_zero_trits<const N: usize>(x: Trits<N>) -> usize {
    for i in (0..N).rev() {
        if !x.trit(i).is_zero() {
            return N - 1 - i;
        }
    }
    N
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word9;

    #[test]
    fn add_matches_packed_adder() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(add_tritwise(wa, wb), wa.carrying_add(wb), "{a} + {b}");
            }
        }
    }

    #[test]
    fn negate_and_sub_match_packed() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(negate_tritwise(wa), wa.negate(), "-{a}");
                assert_eq!(sub_tritwise(wa, wb), wa.wrapping_sub(wb), "{a} - {b}");
            }
        }
    }

    #[test]
    fn mul_matches_integer_domain() {
        for a in [-9841i64, -123, -1, 0, 1, 81, 4921] {
            for b in [-121i64, -2, 0, 3, 27, 121] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(mul_tritwise(wa, wb), wa.wrapping_mul(wb), "{a} * {b}");
            }
        }
    }

    #[test]
    fn mul_wraps_like_hardware() {
        let a = Word9::from_i64(5000).unwrap();
        let b = Word9::from_i64(5000).unwrap();
        assert_eq!(mul_tritwise(a, b), a.wrapping_mul(b));
    }

    #[test]
    fn div_matches_integer_domain() {
        for a in [-9841i64, -100, -7, -1, 0, 1, 7, 100, 9841] {
            for b in [-121i64, -3, -1, 1, 2, 3, 7, 121] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                let (q, r) = div_rem_tritwise(wa, wb).unwrap();
                assert_eq!(q.to_i64(), a / b, "{a} / {b}");
                assert_eq!(r.to_i64(), a % b, "{a} % {b}");
            }
        }
    }

    #[test]
    fn flips_match_packed_count() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(flips_tritwise(wa, wb), wa.flips_from(&wb), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn div_by_zero_rejected() {
        assert!(div_rem_tritwise(Word9::from_i64(5).unwrap(), Word9::ZERO).is_err());
    }

    #[test]
    fn exhaustive_small_width() {
        // Every pair of 3-trit words: the trit-domain algorithms agree
        // with integer arithmetic everywhere.
        for a in -13i64..=13 {
            for b in -13i64..=13 {
                let wa = Trits::<3>::from_i64(a).unwrap();
                let wb = Trits::<3>::from_i64(b).unwrap();
                assert_eq!(mul_tritwise(wa, wb), wa.wrapping_mul(wb), "{a}*{b}");
                if b != 0 {
                    let (q, r) = div_rem_tritwise(wa, wb).unwrap();
                    assert_eq!((q.to_i64(), r.to_i64()), (a / b, a % b), "{a}/{b}");
                }
            }
        }
    }
}
