//! Pure trit-domain addition, multiplication and division.
//!
//! The fast kernels on [`Trits`] work on packed binary bitplanes
//! ([`carrying_add`](crate::Trits::carrying_add)) or
//! convert through `i64` ([`Trits::wrapping_mul`](crate::Trits::wrapping_mul),
//! [`Trits::div_rem`](crate::Trits::div_rem)); the algorithms here stay
//! entirely in the trit domain — the same ripple-carry adder, balanced
//! base-3 shift-and-add and restoring long division the hardware (and
//! the compiler's `__mul`/`__div` runtime) would use. They exist both
//! as executable documentation of those circuits and as an independent
//! cross-check: property tests assert they agree with the packed and
//! integer-domain versions everywhere.

use crate::error::TernaryError;
use crate::trit::Trit;
use crate::wide::WideTrits;
use crate::word::{pow3_i128, Trits, Word9};

/// Trit-serial ripple-carry addition: the per-trit reference for the
/// packed word-parallel adder behind
/// [`Trits::carrying_add`](crate::Trits::carrying_add).
///
/// Chains [`Trit::full_add`] from the least significant position up —
/// exactly the ternary ripple adder of the paper's TALU — and returns
/// `(sum, carry_out)` with `a + b = sum + 3^N · carry_out`. Property
/// tests assert it agrees with the bitplane kernel everywhere.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Trit, Word9};
///
/// let a = Word9::from_i64(9000)?;
/// let b = Word9::from_i64(900)?;
/// let (sum, carry) = arith::add_tritwise(a, b);
/// assert_eq!(sum, a.wrapping_add(b));
/// assert_eq!(carry, Trit::P); // 9900 wrapped past +9841
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn add_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> (Trits<N>, Trit) {
    let at = a.trits();
    let bt = b.trits();
    let mut out = [Trit::Z; N];
    let mut carry = Trit::Z;
    for i in 0..N {
        let (s, c) = at[i].full_add(bt[i], carry);
        out[i] = s;
        carry = c;
    }
    (Trits::from_trits(out), carry)
}

/// Trit-serial negation: STI applied to every trit — the per-trit
/// reference for the packed plane-swap behind
/// [`Trits::negate`](crate::Trits::negate).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(-4821)?;
/// assert_eq!(arith::negate_tritwise(a), a.negate());
/// assert_eq!(arith::negate_tritwise(arith::negate_tritwise(a)), a);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn negate_tritwise<const N: usize>(a: Trits<N>) -> Trits<N> {
    let mut out = a.trits();
    for t in &mut out {
        *t = t.sti();
    }
    Trits::from_trits(out)
}

/// Trit-serial subtraction: `a − b = a + STI(b)` chained through the
/// ripple adder — the per-trit reference for
/// [`Trits::wrapping_sub`](crate::Trits::wrapping_sub).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(100)?;
/// let b = Word9::from_i64(-30)?;
/// assert_eq!(arith::sub_tritwise(a, b), a.wrapping_sub(b));
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn sub_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> Trits<N> {
    add_tritwise(a, negate_tritwise(b)).0
}

/// Balanced base-3 shift-and-add multiplication, entirely on trits.
///
/// For each trit of the multiplier (least significant first), the
/// shifted multiplicand is added, subtracted, or skipped. Wraps like
/// the hardware (modulo 3^N).
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(123)?;
/// let b = Word9::from_i64(-45)?;
/// assert_eq!(arith::mul_tritwise(a, b).to_i64(), -5535);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn mul_tritwise<const N: usize>(a: Trits<N>, b: Trits<N>) -> Trits<N> {
    let mut acc = Trits::<N>::ZERO;
    let mut shifted = a;
    for i in 0..N {
        match b.trit(i) {
            Trit::P => acc = acc.wrapping_add(shifted),
            Trit::N => acc = acc.wrapping_sub(shifted),
            Trit::Z => {}
        }
        shifted = shifted.shl(1);
    }
    acc
}

/// Trit-serial switching-activity count: compares the words one trit at
/// a time — the per-trit reference for the packed XOR+popcount behind
/// [`Trits::flips_from`](crate::Trits::flips_from), used by the
/// differential energy oracle in `art9-fuzz`.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let a = Word9::from_i64(8)?;
/// let b = Word9::from_i64(-8)?;
/// assert_eq!(arith::flips_tritwise(a, b), a.flips_from(&b));
/// assert_eq!(arith::flips_tritwise(a, a), 0);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn flips_tritwise<const N: usize>(next: Trits<N>, prev: Trits<N>) -> u32 {
    let nt = next.trits();
    let pt = prev.trits();
    let mut flips = 0u32;
    for i in 0..N {
        if nt[i] != pt[i] {
            flips += 1;
        }
    }
    flips
}

/// Restoring long division in the trit domain, truncating toward zero
/// (matching [`Trits::div_rem`](crate::Trits::div_rem)).
///
/// Sign-normalizes both operands with the balanced system's exact
/// negation, then builds the quotient digit by digit from the most
/// significant position: at each step the scaled divisor is subtracted
/// up to twice (digits 0..2 in the unsigned intermediate form), and
/// the result is converted back to balanced digits at the end via
/// ordinary re-encoding.
///
/// # Errors
///
/// [`TernaryError::DivisionByZero`] when `b` is zero.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Word9};
///
/// let (q, r) = arith::div_rem_tritwise(Word9::from_i64(-7)?, Word9::from_i64(2)?)?;
/// assert_eq!((q.to_i64(), r.to_i64()), (-3, -1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn div_rem_tritwise<const N: usize>(
    a: Trits<N>,
    b: Trits<N>,
) -> Result<(Trits<N>, Trits<N>), TernaryError> {
    if b.is_zero() {
        return Err(TernaryError::DivisionByZero);
    }
    // Sign-normalize (negation is exact in balanced ternary).
    let neg_a = a.sign() == Trit::N;
    let neg_b = b.sign() == Trit::N;
    let mut rem = if neg_a { a.negate() } else { a };
    let divisor = if neg_b { b.negate() } else { b };

    // Build the quotient by trial-subtracting 3^k * divisor from the
    // most significant scale downward; each scale's digit is 0..=2 and
    // is accumulated as repeated addition of 3^k (which re-balances
    // automatically through the ripple adder).
    let mut quotient = Trits::<N>::ZERO;
    for k in (0..N).rev() {
        // scaled = divisor * 3^k; skip scales that overflow into the
        // sign region (their trial subtraction can never succeed for
        // in-range operands).
        if leading_zero_trits(divisor) < k {
            continue;
        }
        let scaled = divisor.shl(k);
        let mut unit = Trits::<N>::ZERO.with_trit(k, Trit::P);
        let mut digit = 0;
        while digit < 2 && ge(rem, scaled) {
            rem = rem.wrapping_sub(scaled);
            quotient = quotient.wrapping_add(unit);
            digit += 1;
            // `unit` is re-used; keep it identical for the second add.
            unit = Trits::<N>::ZERO.with_trit(k, Trit::P);
        }
    }

    let q = if neg_a != neg_b {
        quotient.negate()
    } else {
        quotient
    };
    let r = if neg_a { rem.negate() } else { rem };
    Ok((q, r))
}

// ---- Per-lane references for the bitplane-SIMD subsystem ------------
//
// `crate::simd::Word9xN` computes on many 9-trit lanes at once; these
// references perform the same operations one lane at a time through the
// per-trit algorithms above (and the packed scalar kernels they are
// already pinned to). The `--oracle simd` fuzz campaign and the
// property tests compare the two everywhere.

/// Per-lane reference for [`crate::simd::Word9xN::wrapping_add`]: each
/// lane added independently through the trit-serial ripple adder
/// [`add_tritwise`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use ternary::{arith, simd::Word9xN, Word9};
///
/// let a = [Word9::from_i64(9841)?, Word9::from_i64(-7)?];
/// let b = [Word9::from_i64(1)?, Word9::from_i64(7)?];
/// let reference = arith::add_lanewise(&a, &b);
/// let packed = Word9xN::from_words(&a).wrapping_add(&Word9xN::from_words(&b));
/// assert_eq!(reference, packed.to_words());
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn add_lanewise(a: &[Word9], b: &[Word9]) -> Vec<Word9> {
    assert_eq!(a.len(), b.len(), "lanewise add requires equal lane counts");
    a.iter()
        .zip(b)
        .map(|(x, y)| add_tritwise(*x, *y).0)
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::negate`]: STI applied
/// to every trit of every lane via [`negate_tritwise`].
pub fn negate_lanewise(a: &[Word9]) -> Vec<Word9> {
    a.iter().map(|x| negate_tritwise(*x)).collect()
}

/// Per-lane reference for the [`crate::simd::Word9xN`] logic operations:
/// applies `f` trit by trit to each lane pair. Pass [`Trit::and`],
/// [`Trit::or`] or [`Trit::xor`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn logic_lanewise(a: &[Word9], b: &[Word9], f: fn(Trit, Trit) -> Trit) -> Vec<Word9> {
    assert_eq!(
        a.len(),
        b.len(),
        "lanewise logic requires equal lane counts"
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let xt = x.trits();
            let yt = y.trits();
            let mut out = [Trit::Z; 9];
            for i in 0..9 {
                out[i] = f(xt[i], yt[i]);
            }
            Trits::from_trits(out)
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::compare`]: the
/// trit-serial comparator (most significant trit first, first
/// difference decides) run on each lane pair.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn compare_lanewise(a: &[Word9], b: &[Word9]) -> Vec<Trit> {
    assert_eq!(
        a.len(),
        b.len(),
        "lanewise compare requires equal lane counts"
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            for i in (0..9).rev() {
                let (xt, yt) = (x.trit(i), y.trit(i));
                if xt != yt {
                    return if xt.value() > yt.value() {
                        Trit::P
                    } else {
                        Trit::N
                    };
                }
            }
            Trit::Z
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::mac`]: each lane's
/// ternary weight selects add, subtract or skip through the trit-serial
/// adder — the scalar loop the SIMD plane-masked MAC replaces.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Trit, Word9};
///
/// let acc = [Word9::ZERO, Word9::ZERO];
/// let x = [Word9::from_i64(5)?, Word9::from_i64(5)?];
/// let out = arith::mac_lanewise(&acc, &x, &[Trit::P, Trit::N]);
/// assert_eq!(out[0].to_i64(), 5);
/// assert_eq!(out[1].to_i64(), -5);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn mac_lanewise(acc: &[Word9], x: &[Word9], weights: &[Trit]) -> Vec<Word9> {
    assert_eq!(
        acc.len(),
        x.len(),
        "lanewise mac requires equal lane counts"
    );
    assert_eq!(acc.len(), weights.len(), "one weight per lane");
    acc.iter()
        .zip(x)
        .zip(weights)
        .map(|((a, v), w)| match w {
            Trit::P => add_tritwise(*a, *v).0,
            Trit::N => sub_tritwise(*a, *v),
            Trit::Z => *a,
        })
        .collect()
}

/// Per-lane reference for [`crate::simd::Word9xN::reduce_add`]: folds
/// the lanes through the trit-serial adder in lane order.
pub fn reduce_add_lanewise(lanes: &[Word9]) -> Word9 {
    lanes
        .iter()
        .fold(Word9::ZERO, |acc, w| add_tritwise(acc, *w).0)
}

/// Trit-serial ripple-carry addition on multi-plane words: the
/// per-trit reference for
/// [`WideTrits::carrying_add`](crate::WideTrits::carrying_add).
///
/// Identical circuit to [`add_tritwise`], chained across however many
/// plane words the width needs — at 81 trits this is the only oracle
/// that never leaves the trit domain, since `Word81` values exceed
/// `i128`.
///
/// # Examples
///
/// ```
/// use ternary::{arith, Trit, Word81};
///
/// let a = Word81::from_i128(1i128 << 100)?;
/// let b = Word81::from_i128(-(1i128 << 99))?;
/// assert_eq!(arith::wide_add_tritwise(a, b), a.carrying_add(b));
/// let (_, carry) = arith::wide_add_tritwise(Word81::MAX, Word81::MAX);
/// assert_eq!(carry, Trit::P);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn wide_add_tritwise<const N: usize, const W: usize>(
    a: WideTrits<N, W>,
    b: WideTrits<N, W>,
) -> (WideTrits<N, W>, Trit) {
    let mut out = WideTrits::<N, W>::ZERO;
    let mut carry = Trit::Z;
    for i in 0..N {
        let (s, c) = a.trit(i).full_add(b.trit(i), carry);
        out = out.with_trit(i, s);
        carry = c;
    }
    (out, carry)
}

/// Trit-serial negation on multi-plane words: STI per trit, the
/// reference for the plane-array swap behind
/// [`WideTrits::negate`](crate::WideTrits::negate).
pub fn wide_negate_tritwise<const N: usize, const W: usize>(a: WideTrits<N, W>) -> WideTrits<N, W> {
    let mut out = WideTrits::<N, W>::ZERO;
    for i in 0..N {
        out = out.with_trit(i, a.trit(i).sti());
    }
    out
}

/// Trit-serial balanced shift-and-add multiplication on multi-plane
/// words: the reference for
/// [`WideTrits::wrapping_mul`](crate::WideTrits::wrapping_mul), built
/// entirely on [`wide_add_tritwise`] so it shares nothing with the
/// packed carry loop.
pub fn wide_mul_tritwise<const N: usize, const W: usize>(
    a: WideTrits<N, W>,
    b: WideTrits<N, W>,
) -> WideTrits<N, W> {
    let mut acc = WideTrits::<N, W>::ZERO;
    let mut shifted = a;
    for i in 0..N {
        match b.trit(i) {
            Trit::P => acc = wide_add_tritwise(acc, shifted).0,
            Trit::N => acc = wide_add_tritwise(acc, wide_negate_tritwise(shifted)).0,
            Trit::Z => {}
        }
        shifted = shifted.shl(1);
    }
    acc
}

/// Trit-serial logic on multi-plane words: applies a binary trit
/// function at every position, the reference for
/// [`WideTrits::and`](crate::WideTrits::and) /
/// [`or`](crate::WideTrits::or) / [`xor`](crate::WideTrits::xor).
pub fn wide_logic_tritwise<const N: usize, const W: usize>(
    a: WideTrits<N, W>,
    b: WideTrits<N, W>,
    f: fn(Trit, Trit) -> Trit,
) -> WideTrits<N, W> {
    let mut out = WideTrits::<N, W>::ZERO;
    for i in 0..N {
        out = out.with_trit(i, f(a.trit(i), b.trit(i)));
    }
    out
}

/// Trit-serial comparison on multi-plane words: the most significant
/// differing trit decides, the reference for the plane-scanning `Ord`
/// of [`WideTrits`].
pub fn wide_compare_tritwise<const N: usize, const W: usize>(
    a: WideTrits<N, W>,
    b: WideTrits<N, W>,
) -> std::cmp::Ordering {
    for i in (0..N).rev() {
        let (da, db) = (a.trit(i).value(), b.trit(i).value());
        if da != db {
            return da.cmp(&db);
        }
    }
    std::cmp::Ordering::Equal
}

/// Trit-serial flip count on multi-plane words: the reference for
/// [`WideTrits::flips_from`](crate::WideTrits::flips_from).
pub fn wide_flips_tritwise<const N: usize, const W: usize>(
    next: WideTrits<N, W>,
    prev: WideTrits<N, W>,
) -> u32 {
    (0..N).filter(|&i| next.trit(i) != prev.trit(i)).count() as u32
}

/// Reference result of a [`TernaryReal`](crate::TernaryReal) operation:
/// the normalized `(significand, exponent)` pair, with the significand
/// as its integer value (27 balanced trits always fit an `i64`).
pub type RealParts = (i64, i32);

/// The `(significand, exponent)` decomposition of a
/// [`TernaryReal`](crate::TernaryReal), for comparing against the
/// reference results below.
pub fn real_parts(x: &crate::TernaryReal) -> RealParts {
    (x.significand().to_i64(), x.exponent())
}

/// Reference tapered-real addition: exact integer arithmetic with
/// explicit round-to-nearest division, sharing no code with the packed
/// 55-trit intermediate of [`TernaryReal::add`](crate::TernaryReal::add).
///
/// When the exponents differ by 28 or more the smaller operand is below
/// half an ulp of the larger and the correctly rounded sum *is* the
/// larger operand — the reference encodes that bound independently.
///
/// # Examples
///
/// ```
/// use ternary::{arith, TernaryReal};
///
/// let a = TernaryReal::from_int(3i64.pow(26));
/// let b = TernaryReal::from_int(2);
/// assert_eq!(arith::real_parts(&a.add(&b)), arith::real_add_ref(&a, &b));
/// ```
pub fn real_add_ref(a: &crate::TernaryReal, b: &crate::TernaryReal) -> RealParts {
    if a.is_zero() {
        return real_parts(b);
    }
    if b.is_zero() {
        return real_parts(a);
    }
    let (hi, lo) = if a.exponent() >= b.exponent() {
        (a, b)
    } else {
        (b, a)
    };
    let shift = i64::from(hi.exponent()) - i64::from(lo.exponent());
    if shift >= 28 {
        return real_parts(hi);
    }
    let exact = i128::from(hi.significand().to_i64()) * pow3_i128(shift as usize)
        + i128::from(lo.significand().to_i64());
    real_round_ref(exact, lo.exponent() - 26)
}

/// Reference tapered-real multiplication: the exact double-width
/// significand product rounded once (see [`real_add_ref`]).
pub fn real_mul_ref(a: &crate::TernaryReal, b: &crate::TernaryReal) -> RealParts {
    if a.is_zero() || b.is_zero() {
        return (0, 0);
    }
    let exact = i128::from(a.significand().to_i64()) * i128::from(b.significand().to_i64());
    real_round_ref(exact, a.exponent() + b.exponent() - 52)
}

/// Normalizes `m · 3^exp_lsb` to a 27-trit significand by explicit
/// round-to-nearest integer division — the arithmetic definition the
/// packed truncating shift must match. Ties cannot occur: the divisor
/// 3^k is odd, so no remainder equals half of it.
fn real_round_ref(m: i128, exp_lsb: i32) -> RealParts {
    if m == 0 {
        return (0, 0);
    }
    // Top balanced-trit position: smallest p with |m| ≤ (3^(p+1) − 1)/2.
    let mut p = 0usize;
    while m.unsigned_abs() > (pow3_i128(p + 1) as u128 - 1) / 2 {
        p += 1;
    }
    let sig = if p > 26 {
        let d = pow3_i128(p - 26);
        let q = m / d;
        let r = m - q * d;
        if 2 * r > d {
            q + 1
        } else if 2 * r < -d {
            q - 1
        } else {
            q
        }
    } else {
        m * pow3_i128(26 - p)
    };
    (sig as i64, exp_lsb + p as i32)
}

/// Non-negative comparison helper: `x >= y` for sign-normalized words.
fn ge<const N: usize>(x: Trits<N>, y: Trits<N>) -> bool {
    x.cmp(&y) != std::cmp::Ordering::Less
}

/// Number of leading zero trits (above the most significant non-zero).
fn leading_zero_trits<const N: usize>(x: Trits<N>) -> usize {
    for i in (0..N).rev() {
        if !x.trit(i).is_zero() {
            return N - 1 - i;
        }
    }
    N
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word9;

    #[test]
    fn add_matches_packed_adder() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(add_tritwise(wa, wb), wa.carrying_add(wb), "{a} + {b}");
            }
        }
    }

    #[test]
    fn negate_and_sub_match_packed() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(negate_tritwise(wa), wa.negate(), "-{a}");
                assert_eq!(sub_tritwise(wa, wb), wa.wrapping_sub(wb), "{a} - {b}");
            }
        }
    }

    #[test]
    fn mul_matches_integer_domain() {
        for a in [-9841i64, -123, -1, 0, 1, 81, 4921] {
            for b in [-121i64, -2, 0, 3, 27, 121] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(mul_tritwise(wa, wb), wa.wrapping_mul(wb), "{a} * {b}");
            }
        }
    }

    #[test]
    fn mul_wraps_like_hardware() {
        let a = Word9::from_i64(5000).unwrap();
        let b = Word9::from_i64(5000).unwrap();
        assert_eq!(mul_tritwise(a, b), a.wrapping_mul(b));
    }

    #[test]
    fn div_matches_integer_domain() {
        for a in [-9841i64, -100, -7, -1, 0, 1, 7, 100, 9841] {
            for b in [-121i64, -3, -1, 1, 2, 3, 7, 121] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                let (q, r) = div_rem_tritwise(wa, wb).unwrap();
                assert_eq!(q.to_i64(), a / b, "{a} / {b}");
                assert_eq!(r.to_i64(), a % b, "{a} % {b}");
            }
        }
    }

    #[test]
    fn flips_match_packed_count() {
        for a in [-9841i64, -4921, -1, 0, 1, 123, 9841] {
            for b in [-9841i64, -123, 0, 1, 4921, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(flips_tritwise(wa, wb), wa.flips_from(&wb), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn div_by_zero_rejected() {
        assert!(div_rem_tritwise(Word9::from_i64(5).unwrap(), Word9::ZERO).is_err());
    }

    #[test]
    fn wide_references_match_packed_at_81_trits() {
        use crate::wide::Word81;
        let samples: Vec<Word81> = [
            -(1i128 << 120),
            -(3i128.pow(64)),
            -12345,
            -1,
            0,
            1,
            54321,
            3i128.pow(64) + 7,
            1i128 << 120,
        ]
        .iter()
        .map(|&v| Word81::from_i128(v).unwrap())
        .chain([Word81::MAX, Word81::MIN])
        .collect();
        for &a in &samples {
            assert_eq!(wide_negate_tritwise(a), a.negate());
            for &b in &samples {
                assert_eq!(wide_add_tritwise(a, b), a.carrying_add(b), "{a:?} + {b:?}");
                assert_eq!(wide_mul_tritwise(a, b), a.wrapping_mul(b), "{a:?} * {b:?}");
                assert_eq!(wide_compare_tritwise(a, b), a.cmp(&b));
                assert_eq!(wide_flips_tritwise(a, b), a.flips_from(&b));
                assert_eq!(wide_logic_tritwise(a, b, Trit::and), a.and(b));
                assert_eq!(wide_logic_tritwise(a, b, Trit::or), a.or(b));
                assert_eq!(wide_logic_tritwise(a, b, Trit::xor), a.xor(b));
            }
        }
    }

    #[test]
    fn real_references_match_packed() {
        use crate::TernaryReal;
        let samples: Vec<TernaryReal> = [
            -(3i64.pow(30)),
            -1_000_003,
            -2,
            -1,
            0,
            1,
            2,
            5,
            999_999,
            3i64.pow(26) + 1,
            3i64.pow(33),
        ]
        .iter()
        .map(|&v| TernaryReal::from_int(v))
        .collect();
        for a in &samples {
            for b in &samples {
                assert_eq!(real_parts(&a.add(b)), real_add_ref(a, b), "{a:?} + {b:?}");
                assert_eq!(real_parts(&a.mul(b)), real_mul_ref(a, b), "{a:?} * {b:?}");
            }
        }
    }

    #[test]
    fn real_reference_covers_the_sticky_shortcut() {
        use crate::TernaryReal;
        // Exponent gaps straddling the shift-28 cutoff, where the
        // smaller operand stops affecting the rounded sum.
        let big = TernaryReal::from_int(3i64.pow(30));
        for gap in [26u32, 27, 28, 29, 30] {
            let small = TernaryReal::from_int(3i64.pow(30 - gap) * 2);
            let sum = big.add(&small);
            assert_eq!(real_parts(&sum), real_add_ref(&big, &small), "gap {gap}");
            if gap >= 28 {
                assert_eq!(sum, big, "gap {gap} must be absorbed");
            } else {
                assert_ne!(sum, big, "gap {gap} must contribute");
            }
        }
    }

    #[test]
    fn exhaustive_small_width() {
        // Every pair of 3-trit words: the trit-domain algorithms agree
        // with integer arithmetic everywhere.
        for a in -13i64..=13 {
            for b in -13i64..=13 {
                let wa = Trits::<3>::from_i64(a).unwrap();
                let wb = Trits::<3>::from_i64(b).unwrap();
                assert_eq!(mul_tritwise(wa, wb), wa.wrapping_mul(wb), "{a}*{b}");
                if b != 0 {
                    let (q, r) = div_rem_tritwise(wa, wb).unwrap();
                    assert_eq!((q.to_i64(), r.to_i64()), (a / b, a % b), "{a}/{b}");
                }
            }
        }
    }
}
