//! Word-parallel bitplane kernels shared by every packed representation.
//!
//! A balanced-ternary digit vector is stored as two binary planes
//! (`pos`, `neg`) with `pos & neg == 0`. Addition of two such vectors
//! runs in *rounds*: each round forms all digit sums at once with a
//! handful of boolean operations and emits a carry plane one position
//! up. These formulas are the common core of three consumers, which
//! differ only in how they place and clip the carry shift:
//!
//! * [`Trits`](crate::Trits) — one `u64` per plane, carries shift
//!   freely within the word ([`Trits::carrying_add`](crate::Trits::carrying_add)).
//! * [`crate::simd::Word9xN`] — six 9-trit lanes per `u64`, carries
//!   clipped at lane boundaries.
//! * [`crate::wide::WideTrits`] — `[u64; W]` plane arrays, carries
//!   rippling across word boundaries.
//!
//! Keeping the digit-sum algebra here means a fix or optimization in
//! the formulas lands in all three layers at once, and the per-trit
//! references in [`crate::arith`] pin a single implementation.

/// One digit-sum round: `s + c` rewritten as `sum + 3·carry`, all
/// positions at once.
///
/// The digit sum `d = s_i + c_i ∈ [−2, 2]` decomposes as
/// `d = s' + 3·c'`:
///
/// * `d = ±1` → `s' = d`,  `c' = 0`
/// * `d = ±2` → `s' = ∓1`, `c' = ±1`
///
/// Returns `(sum_pos, sum_neg, carry_pos, carry_neg)` with the carry
/// planes **unshifted** — the caller shifts them one digit position up
/// in whatever geometry it owns (plain `<< 1`, lane-clipped, or across
/// plane words).
#[inline]
pub(crate) fn digit_sum(sp: u64, sn: u64, cp: u64, cn: u64) -> (u64, u64, u64, u64) {
    let np = ((sp ^ cp) & !(sn | cn)) | (sn & cn);
    let nn = ((sn ^ cn) & !(sp | cp)) | (sp & cp);
    (np, nn, sp & cp, sn & cn)
}

/// One 3:2 carry-save compression round: folds addend `(bp, bn)` into
/// the redundant pair `(s, c)` without propagating any carry.
///
/// Two applications of [`digit_sum`] run back to back — `s + c`, then
/// that partial sum plus `b` — and the two round carries merge by pure
/// cancellation: a digit position can never produce two same-sign
/// carries (a `+1` carry forces the partial-sum digit to `−1`, which
/// cannot carry `+1` again), so their digit sum is OR minus the
/// positions where they cancel.
///
/// Returns `(sum_pos, sum_neg, carry_pos, carry_neg)` with the merged
/// carry planes **unshifted**, like [`digit_sum`].
#[inline]
pub(crate) fn compress(
    sp: u64,
    sn: u64,
    cp: u64,
    cn: u64,
    bp: u64,
    bn: u64,
) -> (u64, u64, u64, u64) {
    let (tp, tn, g1p, g1n) = digit_sum(sp, sn, cp, cn);
    let (up, un, g2p, g2n) = digit_sum(tp, tn, bp, bn);
    let gp = (g1p | g2p) & !(g1n | g2n);
    let gn = (g1n | g2n) & !(g1p | g2p);
    (up, un, gp, gn)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Digit value at bit `i` of a plane pair.
    fn digit(p: u64, n: u64, i: usize) -> i32 {
        ((p >> i) & 1) as i32 - ((n >> i) & 1) as i32
    }

    #[test]
    fn digit_sum_decomposes_every_pair() {
        // All nine digit pairs at once across nine bit positions.
        let mut sp = 0u64;
        let mut sn = 0u64;
        let mut cp = 0u64;
        let mut cn = 0u64;
        let mut i = 0;
        for s in [-1i32, 0, 1] {
            for c in [-1i32, 0, 1] {
                match s {
                    1 => sp |= 1 << i,
                    -1 => sn |= 1 << i,
                    _ => {}
                }
                match c {
                    1 => cp |= 1 << i,
                    -1 => cn |= 1 << i,
                    _ => {}
                }
                i += 1;
            }
        }
        let (np, nn, gp, gn) = digit_sum(sp, sn, cp, cn);
        let mut i = 0;
        for s in [-1i32, 0, 1] {
            for c in [-1i32, 0, 1] {
                let sum = digit(np, nn, i);
                let carry = digit(gp, gn, i);
                assert_eq!(s + c, sum + 3 * carry, "digit pair ({s}, {c})");
                assert!(sum.abs() <= 1 && carry.abs() <= 1);
                i += 1;
            }
        }
    }

    #[test]
    fn compress_preserves_three_way_sums() {
        // All 27 digit triples, one per bit position.
        let mut planes = [[0u64; 2]; 3];
        let mut i = 0;
        let mut triples = Vec::new();
        for a in [-1i32, 0, 1] {
            for b in [-1i32, 0, 1] {
                for c in [-1i32, 0, 1] {
                    for (k, v) in [(0, a), (1, b), (2, c)] {
                        match v {
                            1 => planes[k][0] |= 1 << i,
                            -1 => planes[k][1] |= 1 << i,
                            _ => {}
                        }
                    }
                    triples.push((a, b, c));
                    i += 1;
                }
            }
        }
        let (up, un, gp, gn) = compress(
            planes[0][0],
            planes[0][1],
            planes[1][0],
            planes[1][1],
            planes[2][0],
            planes[2][1],
        );
        assert_eq!(up & un, 0);
        assert_eq!(gp & gn, 0, "merged carries must stay disjoint");
        for (i, (a, b, c)) in triples.iter().enumerate() {
            let sum = digit(up, un, i);
            let carry = digit(gp, gn, i);
            assert_eq!(a + b + c, sum + 3 * carry, "triple ({a}, {b}, {c})");
        }
    }
}
