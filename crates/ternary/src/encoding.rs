//! Binary-coded balanced ternary (BCT) packing, after Frieder & Luk
//! ("Algorithms for binary coded balanced and ordinary ternary
//! operations", IEEE Trans. Comput., 1975 — reference \[27\] of the paper).
//!
//! The FPGA verification platform of the paper emulates every ternary
//! building block with binary modules by encoding each trit in two bits:
//!
//! | trit | bits (`hi`,`lo`) |
//! |------|------------------|
//! |  0   | `00`             |
//! | +1   | `01`             |
//! | −1   | `10`             |
//!
//! The pair `11` is unused and decodes to an error. A 9-trit word packs
//! into 18 bits — this is where Table V's 9 216 RAM bits
//! (2 memories × 256 words × 18 bits) come from.

use crate::error::TernaryError;
use crate::trit::Trit;
use crate::word::Trits;

/// Encodes one trit as its 2-bit BCT pair (`hi << 1 | lo`).
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trit};
/// assert_eq!(encoding::trit_to_bits(Trit::Z), 0b00);
/// assert_eq!(encoding::trit_to_bits(Trit::P), 0b01);
/// assert_eq!(encoding::trit_to_bits(Trit::N), 0b10);
/// ```
#[inline]
pub const fn trit_to_bits(t: Trit) -> u8 {
    match t {
        Trit::Z => 0b00,
        Trit::P => 0b01,
        Trit::N => 0b10,
    }
}

/// Decodes a 2-bit BCT pair back to a trit.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] for the unused pair `0b11`
/// (reported at trit index 0) and for any value above `0b11`.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trit};
/// assert_eq!(encoding::bits_to_trit(0b10)?, Trit::N);
/// assert!(encoding::bits_to_trit(0b11).is_err());
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[inline]
pub const fn bits_to_trit(bits: u8) -> Result<Trit, TernaryError> {
    match bits {
        0b00 => Ok(Trit::Z),
        0b01 => Ok(Trit::P),
        0b10 => Ok(Trit::N),
        _ => Err(TernaryError::InvalidBctPair { index: 0 }),
    }
}

/// Packs an `N`-trit word into the low `2N` bits of a `u64`, trit 0 in
/// the two least-significant bits.
///
/// # Panics
///
/// Panics if `2 * N > 64` (words wider than 32 trits).
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let w = Word9::from_i64(8)?; // trits (lsb first): -, 0, +
/// assert_eq!(encoding::pack(&w), 0b01_00_10);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn pack<const N: usize>(word: &Trits<N>) -> u64 {
    assert!(2 * N <= 64, "BCT packing supports at most 32 trits");
    let mut acc = 0u64;
    for (i, t) in word.trits().iter().enumerate() {
        acc |= (trit_to_bits(*t) as u64) << (2 * i);
    }
    acc
}

/// Unpacks a BCT-encoded `u64` (as produced by [`pack`]) into a word.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] (with the offending trit
/// index) when any 2-bit pair is `11`.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let w = Word9::from_i64(-1234)?;
/// assert_eq!(encoding::unpack::<9>(encoding::pack(&w))?, w);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn unpack<const N: usize>(bits: u64) -> Result<Trits<N>, TernaryError> {
    assert!(2 * N <= 64, "BCT packing supports at most 32 trits");
    let mut trits = [Trit::Z; N];
    for (i, t) in trits.iter_mut().enumerate() {
        let pair = ((bits >> (2 * i)) & 0b11) as u8;
        *t = bits_to_trit(pair).map_err(|_| TernaryError::InvalidBctPair { index: i })?;
    }
    Ok(Trits::from_trits(trits))
}

/// Number of bits a BCT-encoded `N`-trit word occupies (2 bits per trit).
///
/// This is the unit behind the paper's FPGA RAM accounting (Table V).
///
/// # Examples
///
/// ```
/// use ternary::encoding;
/// assert_eq!(encoding::packed_bits(9), 18);
/// ```
#[inline]
pub const fn packed_bits(trits: usize) -> usize {
    2 * trits
}

/// BCT addition performed purely on packed operands, as the FPGA
/// emulation's binary modules would: unpack, ripple-add in the trit
/// domain, repack. Returns the packed wrapped sum.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] if either operand contains an
/// invalid pair.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let a = encoding::pack(&Word9::from_i64(700)?);
/// let b = encoding::pack(&Word9::from_i64(-512)?);
/// let s = encoding::packed_add::<9>(a, b)?;
/// assert_eq!(encoding::unpack::<9>(s)?.to_i64(), 188);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn packed_add<const N: usize>(a: u64, b: u64) -> Result<u64, TernaryError> {
    let wa = unpack::<N>(a)?;
    let wb = unpack::<N>(b)?;
    Ok(pack(&wa.wrapping_add(wb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word9;

    #[test]
    fn single_trit_encodings() {
        assert_eq!(trit_to_bits(Trit::Z), 0b00);
        assert_eq!(trit_to_bits(Trit::P), 0b01);
        assert_eq!(trit_to_bits(Trit::N), 0b10);
        for t in crate::trit::ALL_TRITS {
            assert_eq!(bits_to_trit(trit_to_bits(t)).unwrap(), t);
        }
        assert!(bits_to_trit(0b11).is_err());
    }

    #[test]
    fn pack_unpack_roundtrip_word9() {
        for v in [-9841i64, -100, -1, 0, 1, 8, 100, 9841] {
            let w = Word9::from_i64(v).unwrap();
            let packed = pack(&w);
            assert!(packed < (1 << 18), "9 trits fit in 18 bits");
            assert_eq!(unpack::<9>(packed).unwrap(), w);
        }
    }

    #[test]
    fn unpack_reports_invalid_pair_index() {
        // Pair `11` at trit 2.
        let bad = 0b11 << 4;
        match unpack::<9>(bad) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 2),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
    }

    #[test]
    fn packed_bits_accounting_matches_table5() {
        // Table V: two 256-word memories of 9-trit words = 9216 bits.
        assert_eq!(2 * 256 * packed_bits(9), 9216);
    }

    #[test]
    fn packed_add_matches_word_add() {
        for (a, b) in [(700i64, -512i64), (9841, 1), (-9841, -1), (0, 0)] {
            let wa = Word9::from_i64_wrapping(a);
            let wb = Word9::from_i64_wrapping(b);
            let s = packed_add::<9>(pack(&wa), pack(&wb)).unwrap();
            assert_eq!(unpack::<9>(s).unwrap(), wa.wrapping_add(wb));
        }
    }
}
