//! Binary-coded balanced ternary (BCT) packing, after Frieder & Luk
//! ("Algorithms for binary coded balanced and ordinary ternary
//! operations", IEEE Trans. Comput., 1975 — reference \[27\] of the paper).
//!
//! The FPGA verification platform of the paper emulates every ternary
//! building block with binary modules by encoding each trit in two bits:
//!
//! | trit | bits (`hi`,`lo`) |
//! |------|------------------|
//! |  0   | `00`             |
//! | +1   | `01`             |
//! | −1   | `10`             |
//!
//! The pair `11` is unused and decodes to an error. A 9-trit word packs
//! into 18 bits — this is where Table V's 9 216 RAM bits
//! (2 memories × 256 words × 18 bits) come from.
//!
//! Since the packed-bitplane refactor (see `docs/PERFORMANCE.md`) a
//! [`Trits<N>`] *is already* binary-coded internally — as two separate
//! bitplanes rather than interleaved pairs — so the conversions here
//! are pure bit shuffles (a Morton-style interleave) with no per-trit
//! loop, and [`packed_add`] runs the word-parallel carry loop directly
//! on the deinterleaved planes.

use crate::error::TernaryError;
use crate::trit::Trit;
use crate::word::Trits;

/// Even-bit mask: the `lo` bit of every BCT pair in a packed `u64`.
const EVEN: u64 = 0x5555_5555_5555_5555;

/// Spreads the low 32 bits of `x` onto the even bit positions of a
/// `u64` (Morton interleave half).
const fn spread(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & EVEN;
    x
}

/// Gathers the even bit positions of `x` into the low 32 bits — the
/// inverse of [`spread`].
const fn compress(x: u64) -> u64 {
    let mut x = x & EVEN;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0xFFFF_FFFF;
    x
}

/// Encodes one trit as its 2-bit BCT pair (`hi << 1 | lo`).
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trit};
/// assert_eq!(encoding::trit_to_bits(Trit::Z), 0b00);
/// assert_eq!(encoding::trit_to_bits(Trit::P), 0b01);
/// assert_eq!(encoding::trit_to_bits(Trit::N), 0b10);
/// ```
#[inline]
pub const fn trit_to_bits(t: Trit) -> u8 {
    match t {
        Trit::Z => 0b00,
        Trit::P => 0b01,
        Trit::N => 0b10,
    }
}

/// Decodes a 2-bit BCT pair back to a trit.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] for the unused pair `0b11`
/// (reported at trit index 0) and for any value above `0b11`.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trit};
/// assert_eq!(encoding::bits_to_trit(0b10)?, Trit::N);
/// assert!(encoding::bits_to_trit(0b11).is_err());
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[inline]
pub const fn bits_to_trit(bits: u8) -> Result<Trit, TernaryError> {
    match bits {
        0b00 => Ok(Trit::Z),
        0b01 => Ok(Trit::P),
        0b10 => Ok(Trit::N),
        _ => Err(TernaryError::InvalidBctPair { index: 0 }),
    }
}

/// Packs an `N`-trit word into the low `2N` bits of a `u64`, trit 0 in
/// the two least-significant bits.
///
/// With the bitplane word representation this is a branch-free bit
/// interleave: the `pos` plane becomes the even (`lo`) bits, the `neg`
/// plane the odd (`hi`) bits.
///
/// # Panics
///
/// Panics if `2 * N > 64` (words wider than 32 trits).
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let w = Word9::from_i64(8)?; // trits (lsb first): -, 0, +
/// assert_eq!(encoding::pack(&w), 0b01_00_10);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn pack<const N: usize>(word: &Trits<N>) -> u64 {
    assert!(2 * N <= 64, "BCT packing supports at most 32 trits");
    let (pos, neg) = word.bitplanes();
    spread(pos) | (spread(neg) << 1)
}

/// Unpacks a BCT-encoded `u64` (as produced by [`pack`]) into a word.
///
/// Bits above position `2N − 1` are ignored, matching the behaviour of
/// a `2N`-bit FPGA RAM port.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] (with the offending trit
/// index) when any 2-bit pair is `11`.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let w = Word9::from_i64(-1234)?;
/// assert_eq!(encoding::unpack::<9>(encoding::pack(&w))?, w);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn unpack<const N: usize>(bits: u64) -> Result<Trits<N>, TernaryError> {
    assert!(2 * N <= 64, "BCT packing supports at most 32 trits");
    let window = if 2 * N == 64 {
        !0
    } else {
        (1u64 << (2 * N)) - 1
    };
    let bits = bits & window;
    let invalid = bits & (bits >> 1) & EVEN;
    if invalid != 0 {
        return Err(TernaryError::InvalidBctPair {
            index: invalid.trailing_zeros() as usize / 2,
        });
    }
    Trits::from_bitplanes(compress(bits), compress(bits >> 1))
}

/// Number of bits a BCT-encoded `N`-trit word occupies (2 bits per trit).
///
/// This is the unit behind the paper's FPGA RAM accounting (Table V).
///
/// # Examples
///
/// ```
/// use ternary::encoding;
/// assert_eq!(encoding::packed_bits(9), 18);
/// ```
#[inline]
pub const fn packed_bits(trits: usize) -> usize {
    2 * trits
}

/// BCT addition performed purely on packed operands: the operands are
/// deinterleaved into bitplanes and summed with the word-parallel carry
/// loop — no per-trit work anywhere on the path. Returns the packed
/// wrapped sum.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] if either operand contains an
/// invalid pair.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let a = encoding::pack(&Word9::from_i64(700)?);
/// let b = encoding::pack(&Word9::from_i64(-512)?);
/// let s = encoding::packed_add::<9>(a, b)?;
/// assert_eq!(encoding::unpack::<9>(s)?.to_i64(), 188);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn packed_add<const N: usize>(a: u64, b: u64) -> Result<u64, TernaryError> {
    let wa = unpack::<N>(a)?;
    let wb = unpack::<N>(b)?;
    Ok(pack(&wa.wrapping_add(wb)))
}

/// BCT negation on a packed operand: in binary-coded balanced ternary,
/// negation is exactly the swap of the `hi` and `lo` bit of every pair,
/// so it needs no decoding (and cannot fail — the invalid pair `11`
/// maps to itself).
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Word9};
/// let w = Word9::from_i64(700)?;
/// let negated = encoding::packed_negate::<9>(encoding::pack(&w));
/// assert_eq!(encoding::unpack::<9>(negated)?.to_i64(), -700);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn packed_negate<const N: usize>(bits: u64) -> u64 {
    assert!(2 * N <= 64, "BCT packing supports at most 32 trits");
    ((bits & EVEN) << 1) | ((bits >> 1) & EVEN)
}

/// Even-bit mask over a `u128`: the `lo` bit of every BCT pair in a
/// wide packed word.
const EVEN_WIDE: u128 = 0x5555_5555_5555_5555_5555_5555_5555_5555;

/// Spreads the low 64 bits of `x` onto the even bit positions of a
/// `u128` — the [`spread`] interleave, doubled for wide words.
const fn spread_wide(x: u64) -> u128 {
    (spread(x & 0xFFFF_FFFF)) as u128 | ((spread(x >> 32) as u128) << 64)
}

/// Gathers the even bit positions of a `u128` into a `u64` — the
/// inverse of [`spread_wide`].
const fn compress_wide(x: u128) -> u64 {
    compress(x as u64) | (compress((x >> 64) as u64) << 32)
}

/// Packs a wide word (up to 63 trits — any width a single-plane
/// [`Trits`] supports) into the low `2N` bits of a `u128`, trit 0 in
/// the two least-significant bits. The wide analogue of [`pack`] for
/// the FPGA platform's double-pumped RAM ports.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trits};
///
/// let w = Trits::<40>::from_i64(8)?; // trits (lsb first): -, 0, +
/// assert_eq!(encoding::pack_wide(&w), 0b01_00_10);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn pack_wide<const N: usize>(word: &Trits<N>) -> u128 {
    let (pos, neg) = word.bitplanes();
    spread_wide(pos) | (spread_wide(neg) << 1)
}

/// Unpacks a wide BCT-encoded `u128` (as produced by [`pack_wide`])
/// into a word. Bits above position `2N − 1` are ignored.
///
/// # Errors
///
/// Returns [`TernaryError::InvalidBctPair`] (with the offending trit
/// index) when any 2-bit pair is `11`.
///
/// # Examples
///
/// ```
/// use ternary::{encoding, Trits};
///
/// let w = Trits::<63>::from_i128(-(1i128 << 90))?;
/// assert_eq!(encoding::unpack_wide::<63>(encoding::pack_wide(&w))?, w);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn unpack_wide<const N: usize>(bits: u128) -> Result<Trits<N>, TernaryError> {
    let window = if 2 * N == 128 {
        !0
    } else {
        (1u128 << (2 * N)) - 1
    };
    let bits = bits & window;
    let invalid = bits & (bits >> 1) & EVEN_WIDE;
    if invalid != 0 {
        return Err(TernaryError::InvalidBctPair {
            index: invalid.trailing_zeros() as usize / 2,
        });
    }
    Trits::from_bitplanes(compress_wide(bits), compress_wide(bits >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word9;

    #[test]
    fn single_trit_encodings() {
        assert_eq!(trit_to_bits(Trit::Z), 0b00);
        assert_eq!(trit_to_bits(Trit::P), 0b01);
        assert_eq!(trit_to_bits(Trit::N), 0b10);
        for t in crate::trit::ALL_TRITS {
            assert_eq!(bits_to_trit(trit_to_bits(t)).unwrap(), t);
        }
        assert!(bits_to_trit(0b11).is_err());
    }

    #[test]
    fn pack_matches_per_trit_definition() {
        for v in [-9841i64, -100, -1, 0, 1, 8, 100, 9841] {
            let w = Word9::from_i64(v).unwrap();
            let mut expect = 0u64;
            for i in 0..9 {
                expect |= (trit_to_bits(w.trit(i)) as u64) << (2 * i);
            }
            assert_eq!(pack(&w), expect, "pack({v})");
        }
    }

    #[test]
    fn pack_unpack_roundtrip_word9() {
        for v in [-9841i64, -100, -1, 0, 1, 8, 100, 9841] {
            let w = Word9::from_i64(v).unwrap();
            let packed = pack(&w);
            assert!(packed < (1 << 18), "9 trits fit in 18 bits");
            assert_eq!(unpack::<9>(packed).unwrap(), w);
        }
    }

    #[test]
    fn unpack_reports_invalid_pair_index() {
        // Pair `11` at trit 2.
        let bad = 0b11 << 4;
        match unpack::<9>(bad) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 2),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
    }

    #[test]
    fn unpack_ignores_bits_above_the_word() {
        let w = Word9::from_i64(77).unwrap();
        let packed = pack(&w) | (0b11 << 18); // garbage beyond 18 bits
        assert_eq!(unpack::<9>(packed).unwrap(), w);
    }

    #[test]
    fn packed_bits_accounting_matches_table5() {
        // Table V: two 256-word memories of 9-trit words = 9216 bits.
        assert_eq!(2 * 256 * packed_bits(9), 9216);
    }

    #[test]
    fn packed_add_matches_word_add() {
        for (a, b) in [(700i64, -512i64), (9841, 1), (-9841, -1), (0, 0)] {
            let wa = Word9::from_i64_wrapping(a);
            let wb = Word9::from_i64_wrapping(b);
            let s = packed_add::<9>(pack(&wa), pack(&wb)).unwrap();
            assert_eq!(unpack::<9>(s).unwrap(), wa.wrapping_add(wb));
        }
    }

    #[test]
    fn packed_negate_is_pair_swap() {
        for v in [-9841i64, -1, 0, 1, 700, 9841] {
            let w = Word9::from_i64(v).unwrap();
            let n = packed_negate::<9>(pack(&w));
            assert_eq!(unpack::<9>(n).unwrap().to_i64(), -v, "negate({v})");
        }
    }

    #[test]
    fn wide_pack_roundtrips_at_40_and_63_trits() {
        for v in [
            -Trits::<40>::MAX_VALUE_I128,
            -123_456_789_012_345,
            0,
            42,
            Trits::<40>::MAX_VALUE_I128,
        ] {
            let w = Trits::<40>::from_i128(v).unwrap();
            assert_eq!(unpack_wide::<40>(pack_wide(&w)).unwrap(), w, "{v}");
        }
        for v in [
            -Trits::<63>::MAX_VALUE_I128,
            -(1i128 << 90),
            0,
            1i128 << 90,
            Trits::<63>::MAX_VALUE_I128,
        ] {
            let w = Trits::<63>::from_i128(v).unwrap();
            assert_eq!(unpack_wide::<63>(pack_wide(&w)).unwrap(), w, "{v}");
        }
    }

    #[test]
    fn wide_pack_agrees_with_narrow_pack() {
        // On widths both paths support the encodings are identical.
        let w = Word9::from_i64(-1234).unwrap();
        assert_eq!(pack_wide(&w), pack(&w) as u128);
    }

    #[test]
    fn wide_unpack_rejects_invalid_pairs_past_bit_64() {
        // Pair `11` at trit 40 — only reachable in the wide encoding.
        let bad = 0b11u128 << 80;
        match unpack_wide::<63>(bad) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 40),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
        // Garbage above 2N is ignored.
        let w = Trits::<40>::from_i64(77).unwrap();
        let packed = pack_wide(&w) | (0b11u128 << 80);
        assert_eq!(unpack_wide::<40>(packed).unwrap(), w);
    }
}
