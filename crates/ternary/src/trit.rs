//! The balanced ternary digit ([`Trit`]) and its logic operations.
//!
//! A balanced trit takes one of the three values −1, 0, +1 (paper §II-A).
//! The logic operations reproduce the truth tables of Fig. 1 of the paper:
//! AND is the ternary minimum, OR the ternary maximum, XOR the negated
//! "consensus-style" product used by the ART-9 TALU, and the three
//! inverters STI/NTI/PTI are the standard, negative and positive ternary
//! inverters of the balanced system.

use std::fmt;
use std::ops::Neg;

use crate::error::TernaryError;

/// A balanced ternary digit: −1, 0 or +1.
///
/// `Trit` is the atom of every data type in this workspace. The variant
/// names follow the common balanced-ternary convention: [`Trit::N`] for
/// −1 ("negative"), [`Trit::Z`] for 0 ("zero") and [`Trit::P`] for +1
/// ("positive").
///
/// # Examples
///
/// ```
/// use ternary::Trit;
///
/// let t = Trit::P;
/// assert_eq!(t.value(), 1);
/// assert_eq!(-t, Trit::N);
/// assert_eq!(t.and(Trit::Z), Trit::Z); // min
/// assert_eq!(t.or(Trit::Z), Trit::P);  // max
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Trit {
    /// −1.
    N,
    /// 0. The default value, matching a cleared ternary register.
    #[default]
    Z,
    /// +1.
    P,
}

/// All three trit values in ascending order (−1, 0, +1).
///
/// Useful for exhaustive truth-table iteration in tests and for printing
/// Fig. 1 of the paper.
pub const ALL_TRITS: [Trit; 3] = [Trit::N, Trit::Z, Trit::P];

impl Trit {
    /// Returns the numeric value of the trit: −1, 0 or +1.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::N.value(), -1);
    /// assert_eq!(Trit::Z.value(), 0);
    /// assert_eq!(Trit::P.value(), 1);
    /// ```
    #[inline]
    pub const fn value(self) -> i8 {
        match self {
            Trit::N => -1,
            Trit::Z => 0,
            Trit::P => 1,
        }
    }

    /// Builds a trit from a numeric value in {−1, 0, +1}.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::TritRange`] when `v` is outside {−1, 0, 1}.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::try_from_i8(-1)?, Trit::N);
    /// assert!(Trit::try_from_i8(2).is_err());
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub const fn try_from_i8(v: i8) -> Result<Self, TernaryError> {
        match v {
            -1 => Ok(Trit::N),
            0 => Ok(Trit::Z),
            1 => Ok(Trit::P),
            _ => Err(TernaryError::TritRange { value: v as i64 }),
        }
    }

    /// Ternary AND: the minimum of the two operands (Fig. 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::P.and(Trit::N), Trit::N);
    /// assert_eq!(Trit::Z.and(Trit::P), Trit::Z);
    /// ```
    #[inline]
    pub const fn and(self, rhs: Self) -> Self {
        if self.value() <= rhs.value() {
            self
        } else {
            rhs
        }
    }

    /// Ternary OR: the maximum of the two operands (Fig. 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::P.or(Trit::N), Trit::P);
    /// assert_eq!(Trit::Z.or(Trit::N), Trit::Z);
    /// ```
    #[inline]
    pub const fn or(self, rhs: Self) -> Self {
        if self.value() >= rhs.value() {
            self
        } else {
            rhs
        }
    }

    /// Ternary XOR (Fig. 1): the negated product of the operands.
    ///
    /// In the balanced system the conventional ternary XOR used by the
    /// ART-9 TALU is `−(a·b)`: it is 0 whenever either input is 0,
    /// −1 when the inputs agree in sign and +1 when they differ — the
    /// direct generalization of the two-valued XOR once −1/+1 are read as
    /// the two binary levels.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::P.xor(Trit::P), Trit::N); // agree  -> -1
    /// assert_eq!(Trit::P.xor(Trit::N), Trit::P); // differ -> +1
    /// assert_eq!(Trit::P.xor(Trit::Z), Trit::Z); // zero dominates
    /// ```
    #[inline]
    pub const fn xor(self, rhs: Self) -> Self {
        match -(self.value() * rhs.value()) {
            -1 => Trit::N,
            1 => Trit::P,
            _ => Trit::Z,
        }
    }

    /// Standard ternary inverter (STI): full negation, −x (Fig. 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::P.sti(), Trit::N);
    /// assert_eq!(Trit::Z.sti(), Trit::Z);
    /// ```
    #[inline]
    pub const fn sti(self) -> Self {
        match self {
            Trit::N => Trit::P,
            Trit::Z => Trit::Z,
            Trit::P => Trit::N,
        }
    }

    /// Negative ternary inverter (NTI): maps 0 to −1, otherwise negates
    /// (Fig. 1). Equivalently: +1 ↦ −1, everything else ↦ the "low" rail
    /// except −1 ↦ +1.
    ///
    /// Truth table: NTI(−1) = +1, NTI(0) = −1, NTI(+1) = −1.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::Z.nti(), Trit::N);
    /// assert_eq!(Trit::N.nti(), Trit::P);
    /// ```
    #[inline]
    pub const fn nti(self) -> Self {
        match self {
            Trit::N => Trit::P,
            Trit::Z => Trit::N,
            Trit::P => Trit::N,
        }
    }

    /// Positive ternary inverter (PTI): maps 0 to +1, otherwise negates
    /// (Fig. 1).
    ///
    /// Truth table: PTI(−1) = +1, PTI(0) = +1, PTI(+1) = −1.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::Z.pti(), Trit::P);
    /// assert_eq!(Trit::P.pti(), Trit::N);
    /// ```
    #[inline]
    pub const fn pti(self) -> Self {
        match self {
            Trit::N => Trit::P,
            Trit::Z => Trit::P,
            Trit::P => Trit::N,
        }
    }

    /// Single-trit full addition: returns `(sum, carry)` with
    /// `a + b + cin = sum + 3·carry` and both outputs balanced trits.
    ///
    /// This is the behavioural model of the ternary full-adder cell used
    /// by the gate-level analyzer; the identity above is property-tested.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// // (+1) + (+1) = +2 = (−1) + 3·(+1)
    /// assert_eq!(Trit::P.full_add(Trit::P, Trit::Z), (Trit::N, Trit::P));
    /// ```
    #[inline]
    pub const fn full_add(self, rhs: Self, cin: Self) -> (Self, Self) {
        let total = self.value() + rhs.value() + cin.value(); // in [-3, 3]
                                                              // Balanced decomposition: total = sum + 3*carry, sum in [-1,1].
        let (sum, carry) = match total {
            -3 => (0i8, -1i8),
            -2 => (1, -1),
            -1 => (-1, 0),
            0 => (0, 0),
            1 => (1, 0),
            2 => (-1, 1),
            _ => (0, 1), // 3
        };
        (
            match sum {
                -1 => Trit::N,
                1 => Trit::P,
                _ => Trit::Z,
            },
            match carry {
                -1 => Trit::N,
                1 => Trit::P,
                _ => Trit::Z,
            },
        )
    }

    /// Single-trit multiplication (closed over {−1, 0, +1}).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::N.mul(Trit::N), Trit::P);
    /// assert_eq!(Trit::N.mul(Trit::Z), Trit::Z);
    /// ```
    #[inline]
    pub const fn mul(self, rhs: Self) -> Self {
        match self.value() * rhs.value() {
            -1 => Trit::N,
            1 => Trit::P,
            _ => Trit::Z,
        }
    }

    /// Returns `true` when the trit is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, Trit::Z)
    }

    /// The canonical display character of the trit: `-`, `0` or `+`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::N.to_char(), '-');
    /// assert_eq!(Trit::P.to_char(), '+');
    /// ```
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Trit::N => '-',
            Trit::Z => '0',
            Trit::P => '+',
        }
    }

    /// Parses a trit from its display character.
    ///
    /// Accepts `-`/`0`/`+` and the alternative ASCII spellings `N`/`Z`/`P`
    /// (case-insensitive) and `T` for −1 (the "T for minus" convention of
    /// some balanced-ternary literature).
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::TritChar`] for any other character.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trit;
    /// assert_eq!(Trit::try_from_char('+')?, Trit::P);
    /// assert_eq!(Trit::try_from_char('T')?, Trit::N);
    /// assert!(Trit::try_from_char('x').is_err());
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn try_from_char(c: char) -> Result<Self, TernaryError> {
        match c {
            '-' | 'N' | 'n' | 'T' | 't' => Ok(Trit::N),
            '0' | 'Z' | 'z' => Ok(Trit::Z),
            '+' | 'P' | 'p' | '1' => Ok(Trit::P),
            _ => Err(TernaryError::TritChar { found: c }),
        }
    }
}

impl Neg for Trit {
    type Output = Trit;

    /// Negation is the standard ternary inverter (STI).
    #[inline]
    fn neg(self) -> Trit {
        self.sti()
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<Trit> for i8 {
    #[inline]
    fn from(t: Trit) -> i8 {
        t.value()
    }
}

impl From<Trit> for i64 {
    #[inline]
    fn from(t: Trit) -> i64 {
        t.value() as i64
    }
}

impl TryFrom<i8> for Trit {
    type Error = TernaryError;

    fn try_from(v: i8) -> Result<Self, Self::Error> {
        Trit::try_from_i8(v)
    }
}

impl TryFrom<i64> for Trit {
    type Error = TernaryError;

    fn try_from(v: i64) -> Result<Self, Self::Error> {
        match v {
            -1 => Ok(Trit::N),
            0 => Ok(Trit::Z),
            1 => Ok(Trit::P),
            _ => Err(TernaryError::TritRange { value: v }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip() {
        for t in ALL_TRITS {
            assert_eq!(Trit::try_from_i8(t.value()).unwrap(), t);
        }
    }

    #[test]
    fn try_from_rejects_out_of_range() {
        assert!(Trit::try_from_i8(2).is_err());
        assert!(Trit::try_from_i8(-2).is_err());
        assert!(Trit::try_from(5i64).is_err());
    }

    #[test]
    fn and_is_min_exhaustive() {
        // Fig. 1, AND table.
        for a in ALL_TRITS {
            for b in ALL_TRITS {
                assert_eq!(a.and(b).value(), a.value().min(b.value()));
            }
        }
    }

    #[test]
    fn or_is_max_exhaustive() {
        // Fig. 1, OR table.
        for a in ALL_TRITS {
            for b in ALL_TRITS {
                assert_eq!(a.or(b).value(), a.value().max(b.value()));
            }
        }
    }

    #[test]
    fn xor_matches_negated_product() {
        // Fig. 1, XOR table.
        for a in ALL_TRITS {
            for b in ALL_TRITS {
                assert_eq!(a.xor(b).value(), -(a.value() * b.value()));
            }
        }
    }

    #[test]
    fn xor_is_commutative_and_zero_absorbing() {
        for a in ALL_TRITS {
            assert_eq!(a.xor(Trit::Z), Trit::Z);
            for b in ALL_TRITS {
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn inverters_match_fig1() {
        // STI: -1->+1, 0->0, +1->-1
        assert_eq!(Trit::N.sti(), Trit::P);
        assert_eq!(Trit::Z.sti(), Trit::Z);
        assert_eq!(Trit::P.sti(), Trit::N);
        // NTI: -1->+1, 0->-1, +1->-1
        assert_eq!(Trit::N.nti(), Trit::P);
        assert_eq!(Trit::Z.nti(), Trit::N);
        assert_eq!(Trit::P.nti(), Trit::N);
        // PTI: -1->+1, 0->+1, +1->-1
        assert_eq!(Trit::N.pti(), Trit::P);
        assert_eq!(Trit::Z.pti(), Trit::P);
        assert_eq!(Trit::P.pti(), Trit::N);
    }

    #[test]
    fn sti_is_involutive() {
        for t in ALL_TRITS {
            assert_eq!(t.sti().sti(), t);
        }
    }

    #[test]
    fn neg_operator_is_sti() {
        for t in ALL_TRITS {
            assert_eq!(-t, t.sti());
        }
    }

    #[test]
    fn full_add_identity_exhaustive() {
        for a in ALL_TRITS {
            for b in ALL_TRITS {
                for c in ALL_TRITS {
                    let (s, k) = a.full_add(b, c);
                    assert_eq!(
                        a.value() + b.value() + c.value(),
                        s.value() + 3 * k.value(),
                        "full_add({a:?},{b:?},{c:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_exhaustive() {
        for a in ALL_TRITS {
            for b in ALL_TRITS {
                assert_eq!(a.mul(b).value(), a.value() * b.value());
            }
        }
    }

    #[test]
    fn char_roundtrip() {
        for t in ALL_TRITS {
            assert_eq!(Trit::try_from_char(t.to_char()).unwrap(), t);
        }
        assert_eq!(Trit::try_from_char('T').unwrap(), Trit::N);
        assert_eq!(Trit::try_from_char('1').unwrap(), Trit::P);
        assert!(Trit::try_from_char('?').is_err());
    }

    #[test]
    fn display_is_nonempty_and_ordered() {
        assert_eq!(Trit::N.to_string(), "-");
        assert_eq!(Trit::Z.to_string(), "0");
        assert_eq!(Trit::P.to_string(), "+");
        assert!(Trit::N < Trit::Z && Trit::Z < Trit::P);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Trit::default(), Trit::Z);
    }
}
