//! # `ternary` — the balanced ternary number system
//!
//! Substrate crate of the ART-9 reproduction ("Design and Evaluation
//! Frameworks for Advanced RISC-based Ternary Processor", DATE 2022).
//! Everything the ternary processor computes with lives here:
//!
//! * [`Trit`] — the balanced ternary digit (−1/0/+1) with the logic
//!   operations of the paper's Fig. 1 (AND/OR/XOR/STI/NTI/PTI) and the
//!   ternary full-adder cell.
//! * [`Trits<N>`](Trits) / [`Word9`] — fixed-width little-endian trit
//!   words with wrapping arithmetic, balanced shifts, trit-wise logic and
//!   field extraction/splicing for instruction encoding. Words are
//!   stored as two packed binary bitplanes and every kernel is
//!   word-level bit-twiddling (see `docs/PERFORMANCE.md`); the per-trit
//!   reference algorithms live in [`arith`].
//! * [`encoding`] — binary-coded balanced ternary (2 bits/trit), the
//!   representation the paper's FPGA verification platform uses.
//! * [`simd`] — bitplane-SIMD lanes ([`simd::Word9xN`]): many 9-trit
//!   words packed across wide bitplanes, with the word-parallel kernels
//!   lifted to every lane at once and a ternary-weight
//!   multiply-accumulate for the NN workloads.
//! * [`TernaryMemory`] — word-addressed TIM/TDM models with memory-cell
//!   (trit) accounting for Fig. 5.
//!
//! ## Quick start
//!
//! ```
//! use ternary::{Trit, Word9};
//!
//! // 9-trit balanced words cover −9841..=9841.
//! let a = Word9::from_i64(1000)?;
//! let b = Word9::from_i64(-250)?;
//!
//! assert_eq!((a + b).to_i64(), 750);
//! assert_eq!((-a).to_i64(), -1000);      // negation = trit-wise STI
//! assert_eq!(a.shl(1).to_i64(), 3000);   // shift = ×3
//! assert_eq!(a.compare(b).lst(), Trit::P); // COMP semantics
//! # Ok::<(), ternary::TernaryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod encoding;
mod error;
mod memory;
mod planes;
pub mod real;
pub mod simd;
mod trit;
pub mod wide;
mod word;

pub use error::TernaryError;
pub use memory::TernaryMemory;
pub use real::TernaryReal;
pub use trit::{Trit, ALL_TRITS};
pub use wide::{WideTrits, Word27, Word81};
pub use word::{pow3, pow3_i128, Trits, Word9};
