//! Ternary instruction/data memories (TIM/TDM).
//!
//! The ART-9 core uses two synchronous single-port memories of 9-trit
//! words (paper §IV-B): the ternary instruction memory (TIM) and the
//! ternary data memory (TDM). A storing cell keeps one trit (three charge
//! levels, paper §V-A / [11]), so capacity accounting is in *trits* — the
//! unit of Fig. 5's memory-cell comparison.
//!
//! Addresses are 9-trit words interpreted as unsigned indices via the
//! paper's convention (§II-A): the *unsigned* ternary reading of the trit
//! pattern denotes indices, i.e. address trits are read as digits
//! {0,1,2} obtained from the balanced trits by the fixed recoding
//! −1 ↦ 2, 0 ↦ 0, +1 ↦ 1 on each trit. For the modest memory sizes of the
//! ART-9 prototype (256 words each, Table V) this simply means addresses
//! 0..size are the non-negative balanced values, and negative/oversized
//! addresses fault.

use crate::error::TernaryError;
use crate::word::Word9;

/// A word-addressed ternary memory holding 9-trit words.
///
/// Models the synchronous single-port TIM/TDM of the ART-9 core. Reads
/// and writes are bounds-checked; the cycle-level timing (one access per
/// cycle, synchronous read) is enforced by the pipeline model in
/// `art9-sim`, not here.
///
/// # Examples
///
/// ```
/// use ternary::{TernaryMemory, Word9};
///
/// let mut tdm = TernaryMemory::new(256);
/// tdm.write(5, Word9::from_i64(-42)?)?;
/// assert_eq!(tdm.read(5)?.to_i64(), -42);
/// assert!(tdm.read(256).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryMemory {
    words: Vec<Word9>,
}

impl TernaryMemory {
    /// Creates a zero-initialized memory of `size` 9-trit words.
    pub fn new(size: usize) -> Self {
        Self {
            words: vec![Word9::ZERO; size],
        }
    }

    /// Creates a memory pre-loaded with `image`, zero-padded to `size`.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() > size` — an image that does not fit its
    /// memory is a build configuration error, not a runtime condition.
    pub fn with_image(size: usize, image: &[Word9]) -> Self {
        assert!(
            image.len() <= size,
            "image of {} words does not fit a {size}-word memory",
            image.len()
        );
        let mut words = vec![Word9::ZERO; size];
        words[..image.len()].copy_from_slice(image);
        Self { words }
    }

    /// Number of words.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Total storage in ternary cells (trits) — Fig. 5's unit.
    #[inline]
    pub fn cells(&self) -> usize {
        self.words.len() * 9
    }

    /// Reads the word at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::AddressRange`] when `address >= size`.
    pub fn read(&self, address: usize) -> Result<Word9, TernaryError> {
        self.words
            .get(address)
            .copied()
            .ok_or(TernaryError::AddressRange {
                address: address as i64,
                size: self.words.len(),
            })
    }

    /// Writes `value` at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::AddressRange`] when `address >= size`.
    pub fn write(&mut self, address: usize, value: Word9) -> Result<(), TernaryError> {
        let size = self.words.len();
        match self.words.get_mut(address) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(TernaryError::AddressRange {
                address: address as i64,
                size,
            }),
        }
    }

    /// Resolves a 9-trit word to a memory index.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::AddressRange`] for negative values or
    /// values at/above the memory size.
    pub fn resolve(&self, address: Word9) -> Result<usize, TernaryError> {
        let v = address.to_i64();
        if v < 0 || v as usize >= self.words.len() {
            return Err(TernaryError::AddressRange {
                address: v,
                size: self.words.len(),
            });
        }
        Ok(v as usize)
    }

    /// Reads through a 9-trit address word (resolve + read).
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::AddressRange`] as in [`TernaryMemory::resolve`].
    pub fn read_word_addr(&self, address: Word9) -> Result<Word9, TernaryError> {
        self.read(self.resolve(address)?)
    }

    /// Writes through a 9-trit address word (resolve + write).
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::AddressRange`] as in [`TernaryMemory::resolve`].
    pub fn write_word_addr(&mut self, address: Word9, value: Word9) -> Result<(), TernaryError> {
        let idx = self.resolve(address)?;
        self.write(idx, value)
    }

    /// Iterates over the stored words in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Word9> {
        self.words.iter()
    }
}

impl<'a> IntoIterator for &'a TernaryMemory {
    type Item = &'a Word9;
    type IntoIter = std::slice::Iter<'a, Word9>;

    fn into_iter(self) -> Self::IntoIter {
        self.words.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = TernaryMemory::new(16);
        assert_eq!(m.size(), 16);
        assert!(m.iter().all(|w| w.is_zero()));
    }

    #[test]
    fn cells_counts_trits() {
        // 256-word memory = 2304 trits; two of them back Table V's RAM.
        assert_eq!(TernaryMemory::new(256).cells(), 2304);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = TernaryMemory::new(8);
        let v = Word9::from_i64(123).unwrap();
        m.write(3, v).unwrap();
        assert_eq!(m.read(3).unwrap(), v);
        assert_eq!(m.read(2).unwrap(), Word9::ZERO);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = TernaryMemory::new(4);
        assert!(m.read(4).is_err());
        assert!(m.write(4, Word9::ZERO).is_err());
        let neg = Word9::from_i64(-1).unwrap();
        assert!(m.read_word_addr(neg).is_err());
    }

    #[test]
    fn with_image_loads_and_pads() {
        let img = [Word9::from_i64(1).unwrap(), Word9::from_i64(2).unwrap()];
        let m = TernaryMemory::with_image(4, &img);
        assert_eq!(m.read(0).unwrap().to_i64(), 1);
        assert_eq!(m.read(1).unwrap().to_i64(), 2);
        assert_eq!(m.read(2).unwrap().to_i64(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn with_image_rejects_oversize() {
        let img = vec![Word9::ZERO; 5];
        let _ = TernaryMemory::with_image(4, &img);
    }

    #[test]
    fn word_addressing() {
        let mut m = TernaryMemory::new(32);
        let addr = Word9::from_i64(7).unwrap();
        m.write_word_addr(addr, Word9::from_i64(-9).unwrap())
            .unwrap();
        assert_eq!(m.read_word_addr(addr).unwrap().to_i64(), -9);
    }
}
