//! Error types of the `ternary` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by balanced-ternary conversions and memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TernaryError {
    /// A numeric value was outside the trit domain {−1, 0, +1}.
    TritRange {
        /// The offending value.
        value: i64,
    },
    /// A character did not name a trit.
    TritChar {
        /// The offending character.
        found: char,
    },
    /// An integer did not fit the symmetric range of an `N`-trit word.
    WordRange {
        /// The offending value.
        value: i64,
        /// Word width in trits.
        width: usize,
        /// Largest magnitude representable, (3^width − 1)/2.
        max: i64,
    },
    /// An integer did not fit the symmetric range of a wide (`> 40`
    /// trit) word, whose bound exceeds `i64`. The bound itself is
    /// derivable, `(3^width − 1)/2` — carrying it would double the
    /// size of every `Result` in the crate for a value `Display`
    /// recomputes anyway.
    WordRangeWide {
        /// The offending value.
        value: i128,
        /// Word width in trits.
        width: usize,
    },
    /// A wide word's value did not fit the narrower integer type a
    /// conversion requested (e.g. [`try_to_i64`](crate::Trits::try_to_i64)
    /// on a 63-trit word holding more than `i64::MAX`).
    NarrowingOverflow {
        /// The word's exact value.
        value: i128,
        /// Word width in trits.
        width: usize,
    },
    /// A string had the wrong number of trit characters for the word width.
    WordLength {
        /// Characters found.
        found: usize,
        /// Width expected.
        expected: usize,
    },
    /// A memory access fell outside the address space.
    AddressRange {
        /// The decimal address used.
        address: i64,
        /// Number of valid words (addresses 0..size).
        size: usize,
    },
    /// A binary-coded-ternary bit pair was the invalid encoding `11`.
    InvalidBctPair {
        /// Position of the trit whose encoding was invalid.
        index: usize,
    },
    /// Division by zero in word arithmetic.
    DivisionByZero,
}

impl fmt::Display for TernaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TernaryError::TritRange { value } => {
                write!(f, "value {value} is not a balanced trit (-1, 0 or 1)")
            }
            TernaryError::TritChar { found } => {
                write!(f, "character {found:?} does not name a trit")
            }
            TernaryError::WordRange { value, width, max } => write!(
                f,
                "value {value} does not fit a {width}-trit balanced word (range is -{max}..={max})"
            ),
            TernaryError::WordRangeWide { value, width } if *width <= 80 => {
                let max = (crate::pow3_i128(*width) - 1) / 2;
                write!(
                    f,
                    "value {value} does not fit a {width}-trit balanced word (range is -{max}..={max})"
                )
            }
            // Defensive: conversion paths never construct the variant
            // past 80 trits (every i128 fits), but the fields are
            // public and 3^width would overflow the recomputation.
            TernaryError::WordRangeWide { value, width } => {
                write!(f, "value {value} does not fit a {width}-trit balanced word")
            }
            TernaryError::NarrowingOverflow { value, width } => write!(
                f,
                "value {value} of a {width}-trit word does not fit the requested integer type"
            ),
            TernaryError::WordLength { found, expected } => {
                write!(f, "expected {expected} trit characters, found {found}")
            }
            TernaryError::AddressRange { address, size } => write!(
                f,
                "address {address} is outside the memory (size {size} words)"
            ),
            TernaryError::InvalidBctPair { index } => write!(
                f,
                "invalid binary-coded-ternary bit pair 11 at trit index {index}"
            ),
            TernaryError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl Error for TernaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TernaryError::WordRange {
            value: 99999,
            width: 9,
            max: 9841,
        };
        let s = e.to_string();
        assert!(s.contains("99999"));
        assert!(s.contains("9841"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TernaryError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(TernaryError::DivisionByZero);
        assert_eq!(e.to_string(), "division by zero");
    }
}
