//! Multi-plane balanced-ternary words past the one-`u64`-per-plane
//! ceiling: [`WideTrits<N, W>`] stores each bitplane as `[u64; W]`.
//!
//! [`Trits`] packs a word's two bitplanes into one `u64`
//! each, which caps the width at 63 trits (a guard bit above trit
//! `N − 1` catches the adder's carry-out). `WideTrits` lifts every
//! word-parallel kernel — the carry-loop adder, negate, the tritwise
//! logic family, compare, shifts, `flips_from`, and the carry-save 3:2
//! compressor from [`crate::simd`] — to plane *arrays*, where carries
//! ripple across word boundaries. The digit-sum algebra itself is a
//! private `planes` module shared with `Trits` and the SIMD lanes, so
//! all three packed layers compute
//! with one set of formulas.
//!
//! The two workhorse widths are [`Word27`] (27 trits, one plane word —
//! a triple-length accumulator for 9-trit MACs) and [`Word81`]
//! (81 trits, two plane words — the paper-family "word of words" whose
//! range exceeds even `i128`, so its oracle checks run packed vs
//! per-trit rather than through integers; see
//! [`crate::arith::wide_add_tritwise`]).
//!
//! # Examples
//!
//! ```
//! use ternary::{Trit, Word81};
//!
//! let a = Word81::from_i128(i128::MAX)?; // every i128 fits 81 trits
//! let b = Word81::from_i128(1)?;
//! assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
//! assert_eq!(a.negate().negate(), a);
//! assert_eq!(a.sign(), Trit::P);
//! # Ok::<(), ternary::TernaryError>(())
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::error::TernaryError;
use crate::planes;
use crate::trit::Trit;
use crate::word::{pow3_i128, Trits};

/// A fixed-width balanced-ternary word of `N` trits stored as two
/// `[u64; W]` bitplane arrays, little-endian in both trit index and
/// plane word index.
///
/// Invariants mirror [`Trits`]: `pos[w] & neg[w] == 0`
/// and both planes are masked so only trit positions below `N` are
/// populated. `W` must provide at least one guard bit above trit
/// `N − 1` (`N ≤ 64·W − 1`) and must not be wastefully large
/// (`N > 64·(W − 1)` when `W > 1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideTrits<const N: usize, const W: usize> {
    /// Bit `i % 64` of word `i / 64` set ⇔ trit `i` = +1.
    pos: [u64; W],
    /// Bit `i % 64` of word `i / 64` set ⇔ trit `i` = −1.
    neg: [u64; W],
}

/// A 27-trit word in one plane word: the triple-length accumulator
/// width (sums of up to 3^18 nine-trit products stay exact).
pub type Word27 = WideTrits<27, 1>;

/// An 81-trit word across two plane words. Its symmetric range,
/// ±(3^81 − 1)/2, exceeds the `i128` range — every `i128` converts in
/// ([`WideTrits::from_i128`] is total at this width), but values only
/// convert out when they happen to fit ([`WideTrits::try_to_i128`]).
pub type Word81 = WideTrits<81, 2>;

impl<const N: usize, const W: usize> Default for WideTrits<N, W> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize, const W: usize> WideTrits<N, W> {
    /// Per-plane-word masks keeping only trit positions below `N`; the
    /// width/plane-count guards live here so they fire on first use of
    /// any kernel.
    const MASKS: [u64; W] = {
        assert!(W >= 1, "at least one plane word");
        assert!(N >= 1, "zero-width wide words are not supported");
        assert!(N < 64 * W, "no guard bit: N must be at most 64*W - 1 trits");
        assert!(
            W == 1 || N > 64 * (W - 1),
            "too many plane words for this width"
        );
        let mut m = [0u64; W];
        let mut w = 0;
        while w < W {
            let lo = w * 64;
            if N >= lo + 64 {
                m[w] = u64::MAX;
            } else if N > lo {
                m[w] = (1u64 << (N - lo)) - 1;
            }
            w += 1;
        }
        m
    };

    /// The all-zero word.
    pub const ZERO: Self = Self {
        pos: [0; W],
        neg: [0; W],
    };

    /// The most positive representable word (all trits +1).
    pub const MAX: Self = Self {
        pos: Self::MASKS,
        neg: [0; W],
    };

    /// The most negative representable word (all trits −1).
    pub const MIN: Self = Self {
        pos: [0; W],
        neg: Self::MASKS,
    };

    /// Width of the word in trits.
    pub const WIDTH: usize = N;

    /// Plane words per bitplane.
    pub const PLANE_WORDS: usize = W;

    /// Largest magnitude representable, `(3^N − 1)/2`, clamped to
    /// `i128::MAX` for widths past 80 trits (where every `i128` is
    /// representable and the true bound exceeds the type).
    pub const MAX_VALUE_I128: i128 = if N <= 80 {
        (pow3_i128(N) - 1) / 2
    } else {
        i128::MAX
    };

    /// Builds a word directly from its trits (index 0 = least
    /// significant).
    pub const fn from_trits(trits: [Trit; N]) -> Self {
        let mut pos = [0u64; W];
        let mut neg = [0u64; W];
        let mut i = 0;
        while i < N {
            let (w, b) = (i / 64, i % 64);
            match trits[i] {
                Trit::P => pos[w] |= 1 << b,
                Trit::N => neg[w] |= 1 << b,
                Trit::Z => {}
            }
            i += 1;
        }
        Self { pos, neg }
    }

    /// The trits of the word, index 0 least significant.
    pub const fn trits(&self) -> [Trit; N] {
        let mut out = [Trit::Z; N];
        let mut i = 0;
        while i < N {
            let (w, b) = (i / 64, i % 64);
            if (self.pos[w] >> b) & 1 == 1 {
                out[i] = Trit::P;
            } else if (self.neg[w] >> b) & 1 == 1 {
                out[i] = Trit::N;
            }
            i += 1;
        }
        out
    }

    /// The trit at position `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    pub fn trit(&self, i: usize) -> Trit {
        assert!(i < N, "trit index {i} out of a {N}-trit word");
        let (w, b) = (i / 64, i % 64);
        if (self.pos[w] >> b) & 1 == 1 {
            Trit::P
        } else if (self.neg[w] >> b) & 1 == 1 {
            Trit::N
        } else {
            Trit::Z
        }
    }

    /// Returns a copy with the trit at position `i` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[must_use]
    pub fn with_trit(mut self, i: usize, t: Trit) -> Self {
        assert!(i < N, "trit index {i} out of a {N}-trit word");
        let (w, b) = (i / 64, i % 64);
        let bit = 1u64 << b;
        self.pos[w] &= !bit;
        self.neg[w] &= !bit;
        match t {
            Trit::P => self.pos[w] |= bit,
            Trit::N => self.neg[w] |= bit,
            Trit::Z => {}
        }
        self
    }

    /// The packed bitplane arrays `(pos, neg)`.
    #[inline]
    pub const fn bitplanes(&self) -> ([u64; W], [u64; W]) {
        (self.pos, self.neg)
    }

    /// Builds a word from its two bitplane arrays.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::InvalidBctPair`] (with the offending trit
    /// index) when a bit is set in both planes or at position `N` or
    /// above.
    pub fn from_bitplanes(pos: [u64; W], neg: [u64; W]) -> Result<Self, TernaryError> {
        for w in 0..W {
            let bad = (pos[w] & neg[w]) | ((pos[w] | neg[w]) & !Self::MASKS[w]);
            if bad != 0 {
                return Err(TernaryError::InvalidBctPair {
                    index: w * 64 + bad.trailing_zeros() as usize,
                });
            }
        }
        Ok(Self { pos, neg })
    }

    /// Widens a single-plane [`Trits`] word of the same trit count into
    /// its multi-plane representation (plane word 0).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trits, Word27};
    ///
    /// let t = Trits::<27>::from_i64(-1_000_000)?;
    /// assert_eq!(Word27::from_word(t).try_to_i128(), Some(-1_000_000));
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn from_word(t: Trits<N>) -> Self {
        let (p, n) = t.bitplanes();
        let mut pos = [0u64; W];
        let mut neg = [0u64; W];
        pos[0] = p;
        neg[0] = n;
        Self { pos, neg }
    }

    /// `true` when every trit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        let mut any = 0u64;
        for w in 0..W {
            any |= self.pos[w] | self.neg[w];
        }
        any == 0
    }

    /// The sign of the word as a trit (the most significant non-zero
    /// trit, which in balanced ternary equals the numeric sign).
    pub fn sign(&self) -> Trit {
        for w in (0..W).rev() {
            let nonzero = self.pos[w] | self.neg[w];
            if nonzero != 0 {
                let top = 63 - nonzero.leading_zeros();
                return if (self.pos[w] >> top) & 1 == 1 {
                    Trit::P
                } else {
                    Trit::N
                };
            }
        }
        Trit::Z
    }

    /// Wrapping addition with the ripple adder's carry-out trit
    /// (`a + b = sum + 3^N · carry`) — the carry-loop kernel of
    /// [`Trits::carrying_add`](crate::Trits::carrying_add) lifted to
    /// plane arrays.
    ///
    /// Each round applies the shared digit-sum formulas (the private
    /// `planes` module) to every plane word, then shifts the carry
    /// planes one trit position up with the top bit of each word
    /// rippling into the next. The carry word gains a trailing zero
    /// every round, so at most `N + 1` rounds run; the guard bit above
    /// trit `N − 1` (guaranteed by `N ≤ 64·W − 1`) catches the final
    /// carry-out exactly as in the single-plane adder.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Word81};
    ///
    /// let one = Word81::from_i128(1)?;
    /// let (s, c) = Word81::MAX.carrying_add(one);
    /// assert_eq!(s, Word81::MIN); // wrapped
    /// assert_eq!(c, Trit::P);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn carrying_add(&self, rhs: Self) -> (Self, Trit) {
        let mut sp = self.pos;
        let mut sn = self.neg;
        let mut cp = rhs.pos;
        let mut cn = rhs.neg;
        loop {
            let mut any = 0u64;
            for w in 0..W {
                any |= cp[w] | cn[w];
            }
            if any == 0 {
                break;
            }
            let mut rp = 0u64; // carry bit rippling into the next plane word
            let mut rn = 0u64;
            for w in 0..W {
                let (np, nn, gp, gn) = planes::digit_sum(sp[w], sn[w], cp[w], cn[w]);
                sp[w] = np;
                sn[w] = nn;
                let (next_rp, next_rn) = (gp >> 63, gn >> 63);
                cp[w] = (gp << 1) | rp;
                cn[w] = (gn << 1) | rn;
                rp = next_rp;
                rn = next_rn;
            }
            // rp/rn past the top plane word cannot occur: |a + b| <
            // 3^(N+1)/2 bounds the planes to one guard bit above trit
            // N − 1, and N ≤ 64·W − 1 keeps that bit in-array.
            debug_assert_eq!(rp | rn, 0, "carry escaped the guard bit");
        }
        let (gw, gb) = (N / 64, N % 64);
        let carry = if (sp[gw] >> gb) & 1 == 1 {
            Trit::P
        } else if (sn[gw] >> gb) & 1 == 1 {
            Trit::N
        } else {
            Trit::Z
        };
        let mut out = Self { pos: sp, neg: sn };
        for w in 0..W {
            out.pos[w] &= Self::MASKS[w];
            out.neg[w] &= Self::MASKS[w];
        }
        (out, carry)
    }

    /// Wrapping addition (discards the carry-out).
    #[inline]
    #[must_use]
    pub fn wrapping_add(&self, rhs: Self) -> Self {
        self.carrying_add(rhs).0
    }

    /// Wrapping subtraction: `a − b = a + STI(b)`, exact in balanced
    /// ternary.
    #[inline]
    #[must_use]
    pub fn wrapping_sub(&self, rhs: Self) -> Self {
        self.wrapping_add(rhs.negate())
    }

    /// Exact negation — a plane-array swap, still a true involution.
    #[inline]
    #[must_use]
    pub fn negate(&self) -> Self {
        Self {
            pos: self.neg,
            neg: self.pos,
        }
    }

    /// Wrapping multiplication by packed balanced shift-and-add: each
    /// multiplier trit selects add, subtract or skip of the shifted
    /// multiplicand. Wraps modulo 3^N like the hardware.
    #[must_use]
    pub fn wrapping_mul(&self, rhs: Self) -> Self {
        let mut acc = Self::ZERO;
        let mut shifted = *self;
        for i in 0..N {
            match rhs.trit(i) {
                Trit::P => acc = acc.wrapping_add(shifted),
                Trit::N => acc = acc.wrapping_sub(shifted),
                Trit::Z => {}
            }
            shifted = shifted.shl(1);
        }
        acc
    }

    /// One 3:2 carry-save compression step on plane arrays: folds `b`
    /// into the redundant sum/carry pair `(s, c)` without propagating
    /// any carry chain — the [`crate::simd`] compressor lifted from
    /// lane-clipped planes to word-boundary-crossing planes.
    ///
    /// The returned pair satisfies `s' + c' ≡ s + c + b (mod 3^N)`;
    /// resolve with one [`WideTrits::wrapping_add`] after the last
    /// step. `K` chained compressions cost `K` rounds of boolean ops
    /// plus a single carry loop, instead of `K` carry loops.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word81;
    ///
    /// let a = Word81::from_i128(1 << 100)?;
    /// let b = Word81::from_i128(-(1 << 90))?;
    /// let d = Word81::from_i128(12345)?;
    /// let (s, c) = Word81::compress3(a, b, d);
    /// assert_eq!(s.wrapping_add(c), a.wrapping_add(b).wrapping_add(d));
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[must_use]
    pub fn compress3(s: Self, c: Self, b: Self) -> (Self, Self) {
        let mut up = [0u64; W];
        let mut un = [0u64; W];
        let mut vp = [0u64; W];
        let mut vn = [0u64; W];
        let mut rp = 0u64;
        let mut rn = 0u64;
        for w in 0..W {
            let (sp, sn, gp, gn) =
                planes::compress(s.pos[w], s.neg[w], c.pos[w], c.neg[w], b.pos[w], b.neg[w]);
            up[w] = sp;
            un[w] = sn;
            let (next_rp, next_rn) = (gp >> 63, gn >> 63);
            vp[w] = ((gp << 1) | rp) & Self::MASKS[w];
            vn[w] = ((gn << 1) | rn) & Self::MASKS[w];
            rp = next_rp;
            rn = next_rn;
        }
        // Bits shifted past trit N − 1 are multiples of 3^N: the wrap.
        (Self { pos: up, neg: un }, Self { pos: vp, neg: vn })
    }

    /// Shift left by `k` trit positions (×3^k, wrapping); `k ≥ N`
    /// yields zero.
    #[must_use]
    pub fn shl(&self, k: usize) -> Self {
        if k >= N {
            return Self::ZERO;
        }
        let (ws, bs) = (k / 64, k % 64);
        let mut out = Self::ZERO;
        for w in (ws..W).rev() {
            let src = w - ws;
            let mut p = self.pos[src] << bs;
            let mut n = self.neg[src] << bs;
            if bs > 0 && src > 0 {
                p |= self.pos[src - 1] >> (64 - bs);
                n |= self.neg[src - 1] >> (64 - bs);
            }
            out.pos[w] = p & Self::MASKS[w];
            out.neg[w] = n & Self::MASKS[w];
        }
        out
    }

    /// Shift right by `k` trit positions. As in the single-plane word,
    /// dropping low trits rounds to the *nearest* multiple of 3^k (ties
    /// cannot occur), so this computes `round(x / 3^k)`; `k ≥ N` yields
    /// zero.
    #[must_use]
    pub fn shr(&self, k: usize) -> Self {
        if k >= N {
            return Self::ZERO;
        }
        let (ws, bs) = (k / 64, k % 64);
        let mut out = Self::ZERO;
        for w in 0..W - ws {
            let src = w + ws;
            let mut p = self.pos[src] >> bs;
            let mut n = self.neg[src] >> bs;
            if bs > 0 && src + 1 < W {
                p |= self.pos[src + 1] << (64 - bs);
                n |= self.neg[src + 1] << (64 - bs);
            }
            out.pos[w] = p;
            out.neg[w] = n;
        }
        out
    }

    /// Trit-wise ternary AND (minimum).
    #[must_use]
    pub fn and(&self, rhs: Self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.pos[w] = self.pos[w] & rhs.pos[w];
            out.neg[w] = self.neg[w] | rhs.neg[w];
        }
        out
    }

    /// Trit-wise ternary OR (maximum).
    #[must_use]
    pub fn or(&self, rhs: Self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.pos[w] = self.pos[w] | rhs.pos[w];
            out.neg[w] = self.neg[w] & rhs.neg[w];
        }
        out
    }

    /// Trit-wise ternary XOR: `−(a·b)` per trit.
    #[must_use]
    pub fn xor(&self, rhs: Self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.pos[w] = (self.pos[w] & rhs.neg[w]) | (self.neg[w] & rhs.pos[w]);
            out.neg[w] = (self.pos[w] & rhs.pos[w]) | (self.neg[w] & rhs.neg[w]);
        }
        out
    }

    /// Trit-wise standard ternary inversion (same as
    /// [`WideTrits::negate`]).
    #[inline]
    #[must_use]
    pub fn sti(&self) -> Self {
        self.negate()
    }

    /// Trit-wise negative ternary inversion: the output is +1 only
    /// where the input was −1, −1 everywhere else.
    #[must_use]
    pub fn nti(&self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.pos[w] = self.neg[w];
            out.neg[w] = !self.neg[w] & Self::MASKS[w];
        }
        out
    }

    /// Trit-wise positive ternary inversion: the output is −1 only
    /// where the input was +1, +1 everywhere else.
    #[must_use]
    pub fn pti(&self) -> Self {
        let mut out = Self::ZERO;
        for w in 0..W {
            out.pos[w] = !self.pos[w] & Self::MASKS[w];
            out.neg[w] = self.pos[w];
        }
        out
    }

    /// Number of trit positions whose value differs from `prev` — the
    /// multi-plane [`flips_from`](crate::Trits::flips_from), one
    /// XOR+OR+popcount per plane word.
    #[must_use]
    pub fn flips_from(&self, prev: &Self) -> u32 {
        let mut flips = 0u32;
        for w in 0..W {
            flips += (((self.pos[w] ^ prev.pos[w]) | (self.neg[w] ^ prev.neg[w])) & Self::MASKS[w])
                .count_ones();
        }
        flips
    }

    /// The COMP result: every-trit comparison sign word (see
    /// [`Trits::compare`](crate::Trits::compare)).
    #[must_use]
    pub fn compare(&self, rhs: Self) -> Self {
        match self.cmp(&rhs) {
            Ordering::Less => Self::ZERO.with_trit(0, Trit::N),
            Ordering::Equal => Self::ZERO,
            Ordering::Greater => Self::ZERO.with_trit(0, Trit::P),
        }
    }

    /// Converts an `i128`, wrapping modulo 3^N onto the symmetric
    /// range. For `N ≥ 81` the modulus exceeds the `i128` range, so
    /// every input converts exactly (no wrap can occur).
    ///
    /// Uses the textbook balanced digit recurrence (`d = v mod 3`
    /// rebalanced to {−1, 0, +1}, `v ← (v − d)/3`), which needs no
    /// wide modulus constant.
    pub fn from_i128_wrapping(v: i128) -> Self {
        let mut v = v;
        let mut pos = [0u64; W];
        let mut neg = [0u64; W];
        for i in 0..N {
            if v == 0 {
                break;
            }
            let (w, b) = (i / 64, i % 64);
            // v = 3·q + r with r ∈ {0, 1, 2}; rebalance r = 2 to digit
            // −1 by bumping the quotient. Phrased over euclidean
            // div/rem the loop never leaves the i128 range, even at
            // `i128::MIN` (where the naive `v -= 1` for digit +1, or a
            // reconstructed `3·q`, would overflow).
            let mut q = v.div_euclid(3);
            match v.rem_euclid(3) {
                1 => pos[w] |= 1 << b,
                2 => {
                    neg[w] |= 1 << b;
                    q += 1;
                }
                _ => {}
            }
            v = q;
        }
        Self { pos, neg }
    }

    /// Converts an `i128` that must fit the word exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::WordRangeWide`] when `v` exceeds the
    /// representable range (never at `N ≥ 81`, where every `i128`
    /// fits).
    pub fn from_i128(v: i128) -> Result<Self, TernaryError> {
        if N <= 80 && (v < -Self::MAX_VALUE_I128 || v > Self::MAX_VALUE_I128) {
            return Err(TernaryError::WordRangeWide { value: v, width: N });
        }
        Ok(Self::from_i128_wrapping(v))
    }

    /// The numeric value when it fits an `i128`; `None` for the wide
    /// values only an `N ≥ 81` word can hold. A checked Horner walk, so
    /// it is total at every width.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word81;
    ///
    /// assert_eq!(Word81::from_i128(-42)?.try_to_i128(), Some(-42));
    /// assert_eq!(Word81::MAX.try_to_i128(), None); // (3^81 − 1)/2 > i128::MAX
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn try_to_i128(&self) -> Option<i128> {
        // Sum the positive and negative plane contributions separately
        // in u128 (each is at most (3^81 − 1)/2, which fits), then take
        // the signed difference. A checked Horner walk would falsely
        // reject values within one digit of the i128 boundary.
        let mut top = None;
        for i in (0..N).rev() {
            let (w, b) = (i / 64, i % 64);
            if ((self.pos[w] | self.neg[w]) >> b) & 1 == 1 {
                top = Some(i);
                break;
            }
        }
        let top = match top {
            None => return Some(0),
            // A non-zero trit at 3^81 or above forces |v| ≥ (3^81 + 1)/2
            // > i128::MAX: unrepresentable regardless of lower trits.
            Some(t) if t > 80 => return None,
            Some(t) => t,
        };
        let mut plus: u128 = 0;
        let mut minus: u128 = 0;
        let mut pow: u128 = 1;
        for i in 0..=top {
            let (w, b) = (i / 64, i % 64);
            if (self.pos[w] >> b) & 1 == 1 {
                plus += pow;
            } else if (self.neg[w] >> b) & 1 == 1 {
                minus += pow;
            }
            if i < top {
                pow *= 3; // 3^80 fits u128
            }
        }
        if plus >= minus {
            i128::try_from(plus - minus).ok()
        } else {
            let mag = minus - plus;
            if mag > i128::MAX as u128 + 1 {
                None
            } else {
                // mag = 2^127 maps to i128::MIN via the wrapping cast.
                Some((mag as i128).wrapping_neg())
            }
        }
    }
}

impl<const N: usize, const W: usize> PartialOrd for WideTrits<N, W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize, const W: usize> Ord for WideTrits<N, W> {
    /// Words order by numeric value: the most significant differing
    /// trit decides, scanning plane words from the top.
    fn cmp(&self, other: &Self) -> Ordering {
        for w in (0..W).rev() {
            let differ = (self.pos[w] ^ other.pos[w]) | (self.neg[w] ^ other.neg[w]);
            if differ == 0 {
                continue;
            }
            let top = 63 - differ.leading_zeros();
            let a = ((self.pos[w] >> top) & 1) as i8 - ((self.neg[w] >> top) & 1) as i8;
            let b = ((other.pos[w] >> top) & 1) as i8 - ((other.neg[w] >> top) & 1) as i8;
            return a.cmp(&b);
        }
        Ordering::Equal
    }
}

impl<const N: usize, const W: usize> fmt::Debug for WideTrits<N, W> {
    /// Shows the trit string, and the decimal value when it fits an
    /// `i128` (an 81-trit word can exceed it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideTrits<{N}, {W}>(\"{self}\"")?;
        if let Some(v) = self.try_to_i128() {
            write!(f, " = {v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize, const W: usize> fmt::Display for WideTrits<N, W> {
    /// Writes the trits most-significant first, like [`Trits`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..N).rev() {
            write!(f, "{}", self.trit(i))?;
        }
        Ok(())
    }
}

impl<const N: usize, const W: usize> FromStr for WideTrits<N, W> {
    type Err = TernaryError;

    /// Parses exactly `N` trit characters, most significant first;
    /// underscores are ignored as digit separators.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().filter(|c| *c != '_').collect();
        if chars.len() != N {
            return Err(TernaryError::WordLength {
                found: chars.len(),
                expected: N,
            });
        }
        let mut out = Self::ZERO;
        for (i, c) in chars.iter().enumerate() {
            out = out.with_trit(N - 1 - i, Trit::try_from_char(*c)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word27_agrees_with_single_plane_word() {
        // One-plane wide words and Trits<27> are the same arithmetic.
        let samples = [
            -Trits::<27>::MAX_VALUE_I128,
            -1_000_000,
            -1,
            0,
            1,
            1_000_000,
            Trits::<27>::MAX_VALUE_I128,
        ];
        for &a in &samples {
            let t = Trits::<27>::from_i128(a).unwrap();
            let w = Word27::from_word(t);
            assert_eq!(w.try_to_i128(), Some(a));
            assert_eq!(Word27::from_i128(a).unwrap(), w);
            for &b in &samples {
                let tb = Trits::<27>::from_i128(b).unwrap();
                let wb = Word27::from_word(tb);
                let (ts, tc) = t.carrying_add(tb);
                let (ws, wc) = w.carrying_add(wb);
                assert_eq!(ws, Word27::from_word(ts), "{a} + {b}");
                assert_eq!(wc, tc, "{a} + {b} carry");
                assert_eq!(w.wrapping_mul(wb), Word27::from_word(t.wrapping_mul(tb)));
                assert_eq!(w.cmp(&wb), t.cmp(&tb));
                assert_eq!(w.flips_from(&wb), t.flips_from(&tb));
            }
        }
    }

    #[test]
    fn word81_roundtrips_every_i128_corner() {
        for v in [
            i128::MIN,
            i128::MIN + 1,
            -(1i128 << 100),
            -1,
            0,
            1,
            1i128 << 100,
            i128::MAX - 1,
            i128::MAX,
        ] {
            let w = Word81::from_i128(v).unwrap();
            assert_eq!(w.try_to_i128(), Some(v), "{v}");
        }
        assert_eq!(Word81::MAX.try_to_i128(), None);
        assert_eq!(Word81::MIN.try_to_i128(), None);
    }

    #[test]
    fn word81_addition_crosses_the_plane_boundary() {
        // Trit 63/64 straddle the two plane words: exercise carries
        // rippling across.
        let a = Word81::ZERO.with_trit(63, Trit::P);
        let b = Word81::ZERO.with_trit(63, Trit::P);
        let sum = a.wrapping_add(b);
        // 3^63 + 3^63 = 2·3^63 = 3^64 − 3^63: trit 64 = +1, trit 63 = −1.
        assert_eq!(sum.trit(64), Trit::P);
        assert_eq!(sum.trit(63), Trit::N);
        assert_eq!(sum.try_to_i128(), Some(2 * pow3_i128(63)), "{sum}");
    }

    #[test]
    fn word81_arithmetic_matches_integers_where_representable() {
        let samples = [
            -(1i128 << 126),
            -(3i128.pow(70)),
            -123_456_789,
            -1,
            0,
            1,
            987_654_321,
            3i128.pow(70),
            1i128 << 126,
        ];
        for &a in &samples {
            let wa = Word81::from_i128(a).unwrap();
            assert_eq!(wa.negate().try_to_i128(), Some(-a));
            if let Some(tripled) = a.checked_mul(3) {
                assert_eq!(wa.shl(1).try_to_i128(), Some(tripled));
            }
            for &b in &samples {
                let wb = Word81::from_i128(b).unwrap();
                if let Some(exact) = a.checked_add(b) {
                    assert_eq!(wa.wrapping_add(wb).try_to_i128(), Some(exact), "{a}+{b}");
                }
                if let Some(exact) = a.checked_mul(b) {
                    assert_eq!(wa.wrapping_mul(wb).try_to_i128(), Some(exact), "{a}*{b}");
                }
                assert_eq!(wa.cmp(&wb), a.cmp(&b), "{a} cmp {b}");
            }
        }
    }

    #[test]
    fn carry_out_identity_at_81_trits() {
        let one = Word81::from_i128(1).unwrap();
        let (s, c) = Word81::MAX.carrying_add(one);
        assert_eq!(s, Word81::MIN);
        assert_eq!(c, Trit::P);
        let (s, c) = Word81::MIN.carrying_add(one.negate());
        assert_eq!(s, Word81::MAX);
        assert_eq!(c, Trit::N);
    }

    #[test]
    fn compress3_preserves_sums() {
        let vals = [
            -(1i128 << 120),
            -(3i128.pow(64)),
            -5,
            0,
            7,
            3i128.pow(64) + 1,
            1i128 << 119,
        ];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let (s, cc) = Word81::compress3(
                        Word81::from_i128(a).unwrap(),
                        Word81::from_i128(b).unwrap(),
                        Word81::from_i128(c).unwrap(),
                    );
                    assert_eq!(
                        s.wrapping_add(cc).try_to_i128(),
                        Some(a + b + c),
                        "{a} + {b} + {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn shifts_cross_plane_words() {
        // Top trit of v sits at position 40, so shifts up to 40 keep
        // every trit; larger ones wrap high trits away.
        let v = 3i128.pow(40) + 3i128.pow(3) - 1;
        let w = Word81::from_i128(v).unwrap();
        for k in [0usize, 1, 26, 40, 63, 64, 65, 80] {
            let shifted = w.shl(k);
            if k <= 40 {
                assert_eq!(
                    shifted.try_to_i128(),
                    Some(v * 3i128.pow(k as u32)),
                    "shl {k}"
                );
                // shr after a lossless shl(k) is the identity.
                assert_eq!(shifted.shr(k).try_to_i128(), Some(v), "shr after shl {k}");
            } else {
                // High trits wrapped away; what survives still shifts
                // back down exactly (a multiple of 3^k loses nothing
                // to rounding).
                let kept = shifted.shr(k);
                assert_eq!(kept.shl(k), shifted, "reshift {k}");
            }
        }
        assert_eq!(w.shl(81), Word81::ZERO);
        assert_eq!(w.shr(81), Word81::ZERO);
        // Balanced right shift rounds to nearest.
        let five = Word81::from_i128(5).unwrap();
        assert_eq!(five.shr(1).try_to_i128(), Some(2));
        assert_eq!(five.negate().shr(1).try_to_i128(), Some(-2));
    }

    #[test]
    fn logic_family_matches_trit_tables() {
        let a: Word81 = Word81::from_i128(3i128.pow(65) - 12345).unwrap();
        let b: Word81 = Word81::from_i128(-(3i128.pow(64)) + 999).unwrap();
        for i in 0..81 {
            assert_eq!(a.and(b).trit(i), a.trit(i).and(b.trit(i)), "and {i}");
            assert_eq!(a.or(b).trit(i), a.trit(i).or(b.trit(i)), "or {i}");
            assert_eq!(a.xor(b).trit(i), a.trit(i).xor(b.trit(i)), "xor {i}");
            assert_eq!(a.sti().trit(i), a.trit(i).sti(), "sti {i}");
            assert_eq!(a.nti().trit(i), a.trit(i).nti(), "nti {i}");
            assert_eq!(a.pti().trit(i), a.trit(i).pti(), "pti {i}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for v in [-(1i128 << 99), -8, 0, 8, 1i128 << 99] {
            let w = Word81::from_i128(v).unwrap();
            let s = w.to_string();
            assert_eq!(s.len(), 81);
            assert_eq!(s.parse::<Word81>().unwrap(), w);
        }
        assert!("++".parse::<Word81>().is_err());
    }

    #[test]
    fn debug_includes_value_only_when_it_fits() {
        let small = Word81::from_i128(8).unwrap();
        assert!(format!("{small:?}").contains("= 8"));
        assert!(!format!("{:?}", Word81::MAX).contains('='));
    }

    #[test]
    fn bitplanes_validation() {
        let w = Word81::from_i128(1i128 << 70).unwrap();
        let (p, n) = w.bitplanes();
        assert_eq!(Word81::from_bitplanes(p, n).unwrap(), w);
        // Overlapping planes at a cross-word index are rejected with
        // the global trit index.
        let mut bad_p = [0u64; 2];
        let mut bad_n = [0u64; 2];
        bad_p[1] |= 1 << 5;
        bad_n[1] |= 1 << 5;
        match Word81::from_bitplanes(bad_p, bad_n) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 69),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
        // Bits at or above trit N are rejected.
        let mut high = [0u64; 2];
        high[1] |= 1 << (81 - 64);
        assert!(Word81::from_bitplanes(high, [0; 2]).is_err());
    }

    #[test]
    fn flips_and_sign() {
        let a = Word81::from_i128(1i128 << 100).unwrap();
        assert_eq!(a.flips_from(&a), 0);
        assert_eq!(a.sign(), Trit::P);
        assert_eq!(a.negate().sign(), Trit::N);
        assert_eq!(Word81::ZERO.sign(), Trit::Z);
        assert_eq!(Word81::MAX.flips_from(&Word81::MIN), 81);
        let expect = (0..81).filter(|&i| a.trit(i) != a.negate().trit(i)).count() as u32;
        assert_eq!(a.flips_from(&a.negate()), expect);
    }
}
