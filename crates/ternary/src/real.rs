//! Tapered-precision balanced-ternary real arithmetic.
//!
//! [`TernaryReal`] is a floating-point number over the balanced ternary
//! substrate, in the spirit of the Tekum format (arXiv:2512.10964): a
//! 27-trit balanced significand paired with a power-of-three exponent,
//! plus a *tapered* packed interchange encoding
//! ([`TernaryReal::to_tapered`]) where a posit-like regime run spends
//! trits on exponent range, so precision tapers away from magnitude
//! one.
//!
//! The value of `{ sig, exp }` is `sig · 3^(exp − 26)` — the exponent
//! names the weight of the significand's *top* trit, so `exp = 0` puts
//! the value in `(±½, ±(3 − 3^−26)/2)`.
//!
//! Balanced ternary makes the rounding story unusually clean: because
//! every trit is symmetric around zero, truncating low trits rounds to
//! the **nearest** representable value, and a tie would need a
//! discarded tail of exactly half an ulp — impossible, as powers of
//! three are odd. There is no rounding mode, no bias and no
//! double-rounding hazard: every operation here computes its result
//! exactly in a 55-trit intermediate ([`Trits<55>`]) and truncates
//! once.
//!
//! The per-trit reference formulation (exact `i128` arithmetic with
//! explicit nearest-rounding division) lives in [`crate::arith`]; the
//! property tests pin this packed path against it.
//!
//! # Examples
//!
//! ```
//! use ternary::TernaryReal;
//!
//! let a = TernaryReal::from_int(6);
//! let b = TernaryReal::from_int(7);
//! assert_eq!(a.mul(&b), TernaryReal::from_int(42));
//! assert_eq!(a.add(&b).sub(&b), a); // exact: both fit 27 trits
//! assert!(a < b);
//! ```

use std::cmp::Ordering;
use std::fmt;

use crate::trit::Trit;
use crate::word::Trits;

/// Significand width in trits.
pub const SIG_TRITS: usize = 27;

/// Width of the exact intermediate every operation rounds from:
/// wide enough for a full 27×27-trit product (54 trits) and for any
/// aligned sum this type performs.
const WIDE: usize = 55;

/// Most positive regime-encodable exponent (see
/// [`TernaryReal::to_tapered`]); at least one significand trit must
/// survive the regime and its terminator.
const TAPER_EXP_MAX: i32 = 24;

/// Most negative regime-encodable exponent.
const TAPER_EXP_MIN: i32 = -25;

/// A balanced-ternary real: 27-trit significand × power-of-three
/// exponent, value `sig · 3^(exp − 26)`.
///
/// Non-zero values are kept **normalized** — the significand's top trit
/// (position 26) is non-zero, which also carries the value's sign — and
/// zero is canonically `{ sig: 0, exp: 0 }`. Normal forms are unique,
/// so the derived structural equality is value equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TernaryReal {
    sig: Trits<SIG_TRITS>,
    exp: i32,
}

impl Default for TernaryReal {
    fn default() -> Self {
        Self::ZERO
    }
}

impl TernaryReal {
    /// The canonical zero.
    pub const ZERO: Self = Self {
        sig: Trits::ZERO,
        exp: 0,
    };

    /// One.
    pub fn one() -> Self {
        Self::from_int(1)
    }

    /// Builds the value `v`, rounded to the nearest 27-trit significand
    /// (exact whenever `|v| ≤ (3^27 − 1)/2`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::TernaryReal;
    ///
    /// let x = TernaryReal::from_int(1_000_000);
    /// assert_eq!(x.exponent(), 13); // balanced top trit of 10^6 is 3^13
    /// assert_eq!(x.significand().to_i64(), 1_000_000 * 3i64.pow(13));
    /// ```
    pub fn from_int(v: i64) -> Self {
        Self::from_wide(Trits::<WIDE>::from_i128_wrapping(v as i128), 0)
    }

    /// Builds `m · 3^exp_lsb`, rounded to the nearest 27-trit
    /// significand — the general constructor for exact ternary
    /// fractions (negative `exp_lsb`) as well as large scaled values.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::TernaryReal;
    ///
    /// let third = TernaryReal::from_scaled(1, -1); // exactly 1/3
    /// assert_eq!(third.add(&third).add(&third), TernaryReal::one());
    /// ```
    pub fn from_scaled(m: i64, exp_lsb: i32) -> Self {
        Self::from_wide(Trits::<WIDE>::from_i128_wrapping(m as i128), exp_lsb)
    }

    /// The normalized significand (top trit at position 26 when
    /// non-zero).
    pub fn significand(&self) -> Trits<SIG_TRITS> {
        self.sig
    }

    /// The exponent: the power of three weighting the significand's top
    /// trit.
    pub fn exponent(&self) -> i32 {
        self.exp
    }

    /// `true` for the canonical zero.
    pub fn is_zero(&self) -> bool {
        self.sig.is_zero()
    }

    /// Normalizes `v · 3^exp_lsb` (where `exp_lsb` weights trit 0 of
    /// `v`) into a `TernaryReal`, rounding by a single balanced
    /// truncation.
    ///
    /// The top non-zero trit is moved to significand position 26. A
    /// right shift rounds to nearest (ties impossible); the rounded
    /// magnitude stays within 27 trits and cannot fall below the normal
    /// range, so one shift always normalizes.
    fn from_wide(v: Trits<WIDE>, exp_lsb: i32) -> Self {
        let (p, n) = v.bitplanes();
        let occupied = p | n;
        if occupied == 0 {
            return Self::ZERO;
        }
        let top = (63 - occupied.leading_zeros()) as usize;
        let shifted = if top >= 26 {
            v.shr(top - 26)
        } else {
            v.shl(26 - top)
        };
        // `shifted` now occupies at most trits 0..=26 (a rounding carry
        // past trit 26 is impossible: |round(x / 3^k)| ≤ (3^27 − 1)/2
        // whenever the top trit of x is at position 26 + k).
        let sig = Trits::<SIG_TRITS>::from_i128(shifted.to_i128())
            .expect("normalized significand fits 27 trits");
        Self {
            sig,
            exp: exp_lsb + top as i32,
        }
    }

    /// Sum, correctly rounded to nearest.
    ///
    /// The smaller operand is aligned into a 55-trit intermediate and
    /// added exactly, then the shared normalization truncates
    /// once — so there is no double rounding. When the exponents differ
    /// by 28 or more the smaller operand is below one sixth of the
    /// larger's ulp and cannot move the rounded result, so the larger
    /// operand is returned as-is.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_zero() {
            return *rhs;
        }
        if rhs.is_zero() {
            return *self;
        }
        let (hi, lo) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let shift = i64::from(hi.exp) - i64::from(lo.exp);
        if shift >= 28 {
            return *hi;
        }
        let wide_hi = Trits::<WIDE>::from_i128_wrapping(hi.sig.to_i128()).shl(shift as usize);
        let wide_lo = Trits::<WIDE>::from_i128_wrapping(lo.sig.to_i128());
        // |hi·3^shift| + |lo| < 3^27/2 · (3^27 + 1) < (3^55 − 1)/2: the
        // wide sum is exact, never wrapped.
        Self::from_wide(wide_hi.wrapping_add(wide_lo), lo.exp - 26)
    }

    /// Difference, correctly rounded to nearest.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.negate())
    }

    /// Product, correctly rounded to nearest: the full 54-trit
    /// significand product is formed exactly in `i128` (bounded by
    /// `((3^27 − 1)/2)^2 < 1.5 × 10^25`), then truncated once.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::ZERO;
        }
        let product = self.sig.to_i128() * rhs.sig.to_i128();
        Self::from_wide(
            Trits::<WIDE>::from_i128_wrapping(product),
            self.exp + rhs.exp - 52,
        )
    }

    /// Exact negation (significand plane swap; the exponent is
    /// sign-free).
    #[must_use]
    pub fn negate(&self) -> Self {
        Self {
            sig: self.sig.negate(),
            exp: self.exp,
        }
    }

    /// The nearest `f64` (convenience for inspection; the `f64` is not
    /// the source of truth).
    pub fn to_f64(&self) -> f64 {
        self.sig.to_i64() as f64 * 3f64.powi(self.exp - 26)
    }

    /// Packs into the 27-trit **tapered** interchange word: a
    /// posit-style regime run encodes the exponent, a zero trit
    /// terminates it, and the remaining trits carry the top of the
    /// significand — so precision tapers as the magnitude leaves the
    /// vicinity of one.
    ///
    /// Layout, most significant trit first:
    ///
    /// * `exp ≥ 0`: a run of `exp + 1` `+` trits, then a `0`;
    /// * `exp < 0`: a run of `−exp` `−` trits, then a `0`;
    /// * then the top `26 − run` significand trits (the first of which
    ///   is the value's sign — non-zero by normalization).
    ///
    /// Dropped significand trits are truncated, which rounds to
    /// nearest. Exponents outside `−25..=24` saturate the regime
    /// (keeping one significand trit), and zero packs as the all-zero
    /// word — the only word whose leading trit is `0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::TernaryReal;
    ///
    /// // 5 = +−− (top trit at 3^2), so the regime is a run of 3.
    /// let x = TernaryReal::from_int(5);
    /// let packed = x.to_tapered();
    /// assert_eq!(packed.to_string(), "+++0+--00000000000000000000");
    /// assert_eq!(TernaryReal::from_tapered(packed), x); // 5 fits 23 trits
    /// ```
    pub fn to_tapered(&self) -> Trits<SIG_TRITS> {
        if self.is_zero() {
            return Trits::ZERO;
        }
        let e = self.exp.clamp(TAPER_EXP_MIN, TAPER_EXP_MAX);
        let (mark, run) = if e >= 0 {
            (Trit::P, (e + 1) as usize)
        } else {
            (Trit::N, (-e) as usize)
        };
        let mut out = Trits::<SIG_TRITS>::ZERO;
        for i in 0..run {
            out = out.with_trit(26 - i, mark);
        }
        // Terminator at trit 26 − run stays 0; then `m` significand
        // trits, top-aligned to the low field.
        let m = 26 - run;
        for j in 0..m {
            out = out.with_trit(m - 1 - j, self.sig.trit(26 - j));
        }
        out
    }

    /// Unpacks a tapered word (inverse of [`Self::to_tapered`] up to
    /// the trits the taper discarded). Any 27-trit word decodes: the
    /// leading-trit run is the regime, and a significand field of all
    /// zeros decodes to zero.
    pub fn from_tapered(packed: Trits<SIG_TRITS>) -> Self {
        let lead = packed.trit(26);
        if lead == Trit::Z {
            return Self::ZERO;
        }
        let mut run = 1;
        while run < 26 && packed.trit(26 - run) == lead {
            run += 1;
        }
        let e = if lead == Trit::P {
            run as i32 - 1
        } else {
            -(run as i32)
        };
        let m = 26usize.saturating_sub(run);
        let mut sig = Trits::<SIG_TRITS>::ZERO;
        for j in 0..m {
            sig = sig.with_trit(26 - j, packed.trit(m - 1 - j));
        }
        // Route through the normalizer so denormal significand fields
        // in arbitrary input still yield a canonical value.
        Self::from_wide(Trits::<WIDE>::from_i128_wrapping(sig.to_i128()), e - 26)
    }
}

impl PartialOrd for TernaryReal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TernaryReal {
    /// Total numeric order. Normalization makes this cheap: sign first,
    /// then exponent (normal magnitudes of adjacent exponents cannot
    /// overlap), then the significands at equal scale.
    fn cmp(&self, other: &Self) -> Ordering {
        let sa = self.sig.cmp(&Trits::ZERO);
        let sb = other.sig.cmp(&Trits::ZERO);
        if sa != sb {
            return sa.cmp(&sb);
        }
        match sa {
            Ordering::Equal => Ordering::Equal,
            Ordering::Greater => self
                .exp
                .cmp(&other.exp)
                .then_with(|| self.sig.cmp(&other.sig)),
            Ordering::Less => other
                .exp
                .cmp(&self.exp)
                .then_with(|| self.sig.cmp(&other.sig)),
        }
    }
}

impl fmt::Debug for TernaryReal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TernaryReal({} × 3^{} ≈ {})",
            self.sig.to_i64(),
            self.exp - 26,
            self.to_f64()
        )
    }
}

impl fmt::Display for TernaryReal {
    /// Writes `<significand trits>p<exponent>`, the ternary analogue of
    /// hex-float notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p{}", self.sig, self.exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(v: i64) -> TernaryReal {
        TernaryReal::from_int(v)
    }

    #[test]
    fn canonical_forms_are_unique() {
        assert_eq!(TernaryReal::ZERO, real(0));
        assert!(real(0).is_zero());
        for v in [1, -1, 3, 9, 1_000_000, -99_999_999] {
            let x = real(v);
            assert!(x.significand().trit(26) != Trit::Z, "{v}");
            assert_eq!(x.negate().negate(), x);
        }
    }

    #[test]
    fn small_integers_are_exact() {
        for a in [-50i64, -7, -1, 0, 1, 2, 7, 50, 12345] {
            for b in [-50i64, -3, 0, 5, 12345] {
                assert_eq!(real(a).add(&real(b)), real(a + b), "{a} + {b}");
                assert_eq!(real(a).mul(&real(b)), real(a * b), "{a} * {b}");
                assert_eq!(real(a).sub(&real(b)), real(a - b), "{a} - {b}");
                assert_eq!(real(a).cmp(&real(b)), a.cmp(&b), "{a} cmp {b}");
            }
        }
    }

    #[test]
    fn rounding_is_to_nearest_by_truncation() {
        // 3^27 does not fit 27 trits: from_int must round to the
        // nearest representable, which it is exactly (3^27 = 3 · 3^26).
        let v = 3i64.pow(27);
        let x = real(v);
        assert_eq!(x.to_f64(), v as f64);
        // 3^27 + 1 rounds back down to 3^27 (the discarded +1 is less
        // than half the ulp of 3).
        assert_eq!(real(v + 1), x);
        // 3^27 + 2 rounds up to 3^27 + 3.
        assert_eq!(real(v + 2), real(v + 3));
        // Negative mirror: truncation has no sign bias.
        assert_eq!(real(-v - 1), real(-v));
        assert_eq!(real(-v - 2), real(-v - 3));
    }

    #[test]
    fn far_apart_addends_do_not_move_the_sum() {
        let big = real(3i64.pow(30));
        let tiny = TernaryReal::from_wide(Trits::<WIDE>::from_i128_wrapping(1), -60);
        assert_eq!(big.add(&tiny), big);
        assert_eq!(tiny.add(&big), big);
        // But a half-way-significant addend does participate.
        let mid = real(3i64.pow(4));
        assert_eq!(big.add(&mid), real(3i64.pow(30) + 3i64.pow(4)));
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let a = real(3i64.pow(26) + 1);
        let b = real(3i64.pow(26));
        assert_eq!(a.sub(&b), real(1)); // exact: the wide sum keeps every trit
    }

    #[test]
    fn ordering_crosses_exponents_and_signs() {
        let vals = [
            real(-3i64.pow(20)),
            real(-12345),
            real(-1),
            TernaryReal::ZERO,
            real(1),
            real(2),
            real(12345),
            real(3i64.pow(20)),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn tapered_roundtrip_is_truncation() {
        for v in [0i64, 1, -1, 5, -5, 42, 1000, -31250] {
            let x = real(v);
            assert_eq!(TernaryReal::from_tapered(x.to_tapered()), x, "{v}");
        }
        // A full-precision significand with a large exponent loses
        // exactly the trits the regime displaced — nothing more.
        let x = real(3i64.pow(26) + 1); // 27 significant trits, exp 26
        let back = TernaryReal::from_tapered(x.to_tapered());
        assert_eq!(back.exponent(), TAPER_EXP_MAX); // saturated
        assert_eq!(back.significand().trit(26), Trit::P);
    }

    #[test]
    fn tapered_precision_tapers_with_exponent() {
        // exp 0 leaves 25 significand trits; exp 10 leaves only 15.
        let near_one = TernaryReal::from_wide(
            Trits::<WIDE>::from_i128_wrapping(3i128.pow(26) + 3i128.pow(3)),
            -26,
        );
        assert_eq!(near_one.exponent(), 0);
        assert_eq!(TernaryReal::from_tapered(near_one.to_tapered()), near_one);
        let shifted = near_one.mul(&real(3i64.pow(10)));
        assert_eq!(shifted.exponent(), 10);
        let back = TernaryReal::from_tapered(shifted.to_tapered());
        // The 3^3 tail sits 23 trits below the top: kept at exp 0,
        // truncated away at exp 10.
        assert_ne!(back, shifted);
        assert_eq!(back, real(3i64.pow(10)));
    }

    #[test]
    fn tapered_regime_saturates_but_keeps_sign() {
        let huge = real(1).mul(&real(3i64.pow(30))).mul(&real(3i64.pow(30)));
        assert_eq!(huge.exponent(), 60);
        let packed = huge.to_tapered();
        let back = TernaryReal::from_tapered(packed);
        assert_eq!(back.exponent(), TAPER_EXP_MAX);
        assert!(back > TernaryReal::ZERO);
        let tiny = TernaryReal::from_wide(Trits::<WIDE>::from_i128_wrapping(-1), -80);
        let back = TernaryReal::from_tapered(tiny.to_tapered());
        assert_eq!(back.exponent(), TAPER_EXP_MIN);
        assert!(back < TernaryReal::ZERO);
    }

    #[test]
    fn zero_packs_as_the_all_zero_word() {
        assert!(TernaryReal::ZERO.to_tapered().is_zero());
        assert_eq!(TernaryReal::from_tapered(Trits::ZERO), TernaryReal::ZERO);
    }

    #[test]
    fn display_shows_significand_and_exponent() {
        let x = real(1);
        let s = x.to_string();
        assert!(s.ends_with("p0"), "{s}");
        assert!(format!("{x:?}").contains("3^-26"));
    }
}
