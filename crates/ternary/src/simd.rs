//! Bitplane-SIMD lanes: many 9-trit words computed on at once.
//!
//! [`Word9xN`] packs `N` [`Word9`] lanes across wide `pos`/`neg`
//! bitplanes (a `Vec<u64>` per plane) and lifts the word-level kernels
//! of [`Word9`] to every lane simultaneously. Each lane occupies
//! a 10-bit stride — 9 data bits plus one *guard* bit — so six lanes
//! share one `u64` and the word-parallel carry loop of
//! [`Trits::carrying_add`](crate::Trits::carrying_add) runs unchanged
//! across all of them: a carry rippling out of a lane's top trit lands
//! on the guard bit and is masked off before it can leak into the
//! neighbouring lane, which is exactly the per-lane wrap-around the
//! scalar adder implements by discarding its carry-out.
//!
//! The headline operation is the ternary-weight multiply-accumulate
//! ([`Word9xN::mac`]): a weight in {−1, 0, +1} per lane multiplies by
//! selecting the negated planes (swap), nothing (zero), or the original
//! planes — pure masking, no per-trit loops anywhere. This is the host
//! mirror of in-memory associative processing (Hout et al.,
//! arXiv:2110.09643), and the substrate for the ternary-NN workloads
//! in the `workloads` crate.
//!
//! Every lane operation has a per-lane reference built from the
//! per-trit algorithms in [`crate::arith`]; property tests pin the two
//! to each other (see `tests/properties.rs` and the `--oracle simd`
//! fuzz campaign).
//!
//! # Examples
//!
//! ```
//! use ternary::{simd::Word9xN, Trit, Word9};
//!
//! let x = Word9xN::from_words(&[
//!     Word9::from_i64(100)?,
//!     Word9::from_i64(-42)?,
//!     Word9::from_i64(9841)?,
//! ]);
//! let acc = Word9xN::zero(3);
//! // One MAC: every lane picks +x, −x or 0 by weight, then adds.
//! let acc = acc.mac_trits(&x, &[Trit::P, Trit::N, Trit::Z]);
//! assert_eq!(
//!     acc.to_words().iter().map(Word9::to_i64).collect::<Vec<_>>(),
//!     vec![100, 42, 0],
//! );
//! assert_eq!(acc.reduce_add().to_i64(), 142);
//! # Ok::<(), ternary::TernaryError>(())
//! ```

use crate::trit::Trit;
use crate::word::Word9;

/// Bits per lane: 9 data trit-bits plus one guard bit for the adder's
/// per-lane carry-out.
const STRIDE: usize = 10;

/// Lanes packed into each `u64` of a plane (6 × 10 bits; the top 4 bits
/// of every plane word are never set).
pub const LANES_PER_WORD: usize = 6;

/// The 9 data bits of a single lane.
const LANE_DATA: u64 = 0x1FF;

/// Repeats a per-lane bit pattern across all six lane positions.
const fn repeat6(m: u64) -> u64 {
    let mut acc = 0u64;
    let mut i = 0;
    while i < LANES_PER_WORD {
        acc |= m << (i * STRIDE);
        i += 1;
    }
    acc
}

/// Data bits of every lane (guard bits excluded).
const DATA_MASK: u64 = repeat6(LANE_DATA);

/// Legal destinations of a shifted carry: bits 1..=9 of each lane. A
/// carry generated on a guard bit would shift into the next lane's bit
/// 0; masking with this drops it — the per-lane analogue of the scalar
/// adder discarding its carry-out trit.
const CARRY_MASK: u64 = repeat6(0x3FE);

/// Bit 0 of every lane — where the comparison/sign ladders accumulate
/// their per-lane verdicts.
const LSB_MASK: u64 = repeat6(1);

/// One carry-loop round lifted to six lanes at once: identical digit-sum
/// formulas to [`Trits::carrying_add`](crate::Trits::carrying_add), with
/// the shifted carries clipped at lane boundaries. Returns the per-lane
/// wrapped sums, guard bits cleared.
#[inline]
fn add_planes(ap: u64, an: u64, bp: u64, bn: u64) -> (u64, u64) {
    let (mut sp, mut sn) = (ap, an);
    let (mut cp, mut cn) = (bp, bn);
    while cp | cn != 0 {
        let (np, nn, gp, gn) = crate::planes::digit_sum(sp, sn, cp, cn);
        cp = (gp << 1) & CARRY_MASK;
        cn = (gn << 1) & CARRY_MASK;
        sp = np;
        sn = nn;
    }
    (sp & DATA_MASK, sn & DATA_MASK)
}

/// One 3:2 carry-save compression round over six lanes: folds addend
/// `(bp, bn)` into the redundant pair `(s, c)` without propagating any
/// carry. Two applications of the two-digit sum formulas run back to
/// back — `s + c`, then that partial sum plus `b` — and the two round
/// carries merge by pure cancellation: a digit position can never
/// produce two same-sign carries (a `+1` carry forces the partial sum
/// digit to `−1`, which cannot carry `+1` again), so their digit sum
/// is OR minus the positions where they cancel. Dropped bits (lane
/// boundary clips via [`CARRY_MASK`]) are multiples of 3⁹ per lane —
/// exactly the per-lane wrap-around.
#[inline]
fn compress_planes(sp: u64, sn: u64, cp: u64, cn: u64, bp: u64, bn: u64) -> (u64, u64, u64, u64) {
    let (up, un, gp, gn) = crate::planes::compress(sp, sn, cp, cn, bp, bn);
    (up, un, (gp << 1) & CARRY_MASK, (gn << 1) & CARRY_MASK)
}

/// `N` balanced-ternary 9-trit words computed on lane-parallel.
///
/// The lane count is a runtime value (the NN workloads size it to the
/// layer width); storage is two `Vec<u64>` bitplanes of
/// `ceil(N / 6)` words each. Invariants: `pos & neg == 0` bitwise,
/// guard bits are never set between operations, and lanes at or above
/// the lane count are all-zero.
///
/// # Examples
///
/// ```
/// use ternary::{simd::Word9xN, Word9};
///
/// let a = Word9xN::splat(Word9::from_i64(9841)?, 8);
/// let b = Word9xN::splat(Word9::from_i64(1)?, 8);
/// // Eight lanes wrap past +9841 simultaneously.
/// assert!(a.wrapping_add(&b).to_words().iter().all(|w| w.to_i64() == -9841));
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word9xN {
    lanes: usize,
    pos: Vec<u64>,
    neg: Vec<u64>,
}

impl Word9xN {
    /// The all-zero vector of `lanes` lanes.
    pub fn zero(lanes: usize) -> Self {
        let words = lanes.div_ceil(LANES_PER_WORD);
        Self {
            lanes,
            pos: vec![0; words],
            neg: vec![0; words],
        }
    }

    /// Packs a slice of scalar words, one per lane, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{simd::Word9xN, Word9};
    ///
    /// let words: Vec<Word9> = (0..13).map(|v| Word9::from_i64_wrapping(v * v)).collect();
    /// let v = Word9xN::from_words(&words);
    /// assert_eq!(v.lanes(), 13);
    /// assert_eq!(v.to_words(), words); // pack/unpack round-trips
    /// ```
    pub fn from_words(words: &[Word9]) -> Self {
        let mut v = Self::zero(words.len());
        for (i, w) in words.iter().enumerate() {
            let (p, n) = w.bitplanes();
            let shift = (i % LANES_PER_WORD) * STRIDE;
            v.pos[i / LANES_PER_WORD] |= p << shift;
            v.neg[i / LANES_PER_WORD] |= n << shift;
        }
        v
    }

    /// Broadcasts one scalar word into every lane.
    pub fn splat(w: Word9, lanes: usize) -> Self {
        let (p, n) = w.bitplanes();
        let (full_p, full_n) = (repeat6(p), repeat6(n));
        let mut v = Self::zero(lanes);
        for i in 0..v.pos.len() {
            v.pos[i] = full_p;
            v.neg[i] = full_n;
        }
        // Clear the inactive tail lanes of the last plane word.
        if let Some(mask) = tail_mask(lanes) {
            if let (Some(p), Some(n)) = (v.pos.last_mut(), v.neg.last_mut()) {
                *p &= mask;
                *n &= mask;
            }
        }
        v
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts lane `i` as a scalar word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.lanes()`.
    #[inline]
    pub fn lane(&self, i: usize) -> Word9 {
        assert!(
            i < self.lanes,
            "lane {i} out of a {}-lane vector",
            self.lanes
        );
        let shift = (i % LANES_PER_WORD) * STRIDE;
        let p = (self.pos[i / LANES_PER_WORD] >> shift) & LANE_DATA;
        let n = (self.neg[i / LANES_PER_WORD] >> shift) & LANE_DATA;
        Word9::from_bitplanes(p, n).expect("lane planes stay disjoint and in range")
    }

    /// Unpacks every lane back into scalar words, in lane order.
    pub fn to_words(&self) -> Vec<Word9> {
        (0..self.lanes).map(|i| self.lane(i)).collect()
    }

    /// Lane-parallel negation (trit-wise STI): one plane swap for all
    /// lanes, exactly like the scalar [`Word9::negate`].
    #[must_use]
    pub fn negate(&self) -> Self {
        Self {
            lanes: self.lanes,
            pos: self.neg.clone(),
            neg: self.pos.clone(),
        }
    }

    /// Lane-parallel ternary AND (minimum), every lane at once.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    #[must_use]
    pub fn and(&self, rhs: &Self) -> Self {
        self.zip(rhs, |ap, an, bp, bn| (ap & bp, an | bn))
    }

    /// Lane-parallel ternary OR (maximum), every lane at once.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    #[must_use]
    pub fn or(&self, rhs: &Self) -> Self {
        self.zip(rhs, |ap, an, bp, bn| (ap | bp, an & bn))
    }

    /// Lane-parallel ternary XOR (`−(a·b)` per trit), every lane at once.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    #[must_use]
    pub fn xor(&self, rhs: &Self) -> Self {
        self.zip(rhs, |ap, an, bp, bn| {
            ((ap & bn) | (an & bp), (ap & bp) | (an & bn))
        })
    }

    /// Lane-parallel wrapping addition: the word-parallel carry loop of
    /// the scalar adder run across all lanes at once, with carries
    /// clipped at lane boundaries (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{simd::Word9xN, Word9};
    ///
    /// let a = Word9xN::from_words(&[Word9::from_i64(9841)?, Word9::from_i64(-3)?]);
    /// let b = Word9xN::from_words(&[Word9::from_i64(1)?, Word9::from_i64(-9841)?]);
    /// let s = a.wrapping_add(&b);
    /// assert_eq!(s.lane(0).to_i64(), -9841); // wrapped, no leak into lane 1
    /// assert_eq!(s.lane(1).to_i64(), 9839);  // wrapped the other way
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[must_use]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.zip(rhs, add_planes)
    }

    /// Lane-parallel wrapping subtraction: `a − b = a + STI(b)`, the
    /// plane swap making per-lane negation free.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    #[must_use]
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.zip(rhs, |ap, an, bp, bn| add_planes(ap, an, bn, bp))
    }

    /// Lane-parallel COMP: each lane's result trit (in its least
    /// significant position, like the scalar
    /// [`Word9::compare`]) is +1 / 0 / −1 as the lane of `self` is
    /// greater / equal / less than the lane of `rhs`.
    ///
    /// Runs the trit-serial comparator of the TALU — most significant
    /// trit first, first difference decides — as a fixed 9-round ladder
    /// over all lanes at once. Use [`Word9xN::lane_lsts`] to read the
    /// verdicts out.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{simd::Word9xN, Trit, Word9};
    ///
    /// let a = Word9xN::from_words(&[Word9::from_i64(5)?, Word9::ZERO, Word9::from_i64(-9)?]);
    /// let b = Word9xN::splat(Word9::ZERO, 3);
    /// assert_eq!(a.compare(&b).lane_lsts(), vec![Trit::P, Trit::Z, Trit::N]);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[must_use]
    pub fn compare(&self, rhs: &Self) -> Self {
        assert_eq!(self.lanes, rhs.lanes, "compare requires equal lane counts");
        let mut out = Self::zero(self.lanes);
        for w in 0..self.pos.len() {
            let (ap, an) = (self.pos[w], self.neg[w]);
            let (bp, bn) = (rhs.pos[w], rhs.neg[w]);
            let mut undecided = LSB_MASK;
            let (mut gt, mut lt) = (0u64, 0u64);
            for k in (0..Word9::WIDTH).rev() {
                let apk = (ap >> k) & LSB_MASK;
                let ank = (an >> k) & LSB_MASK;
                let bpk = (bp >> k) & LSB_MASK;
                let bnk = (bn >> k) & LSB_MASK;
                // Per lane-lsb bit: a > b at this trit, or a < b.
                let g = (apk & !bpk) | (!(apk | ank) & bnk);
                let l = (bpk & !apk) | (!(bpk | bnk) & ank);
                gt |= undecided & g;
                lt |= undecided & l;
                undecided &= !(g | l);
            }
            out.pos[w] = gt;
            out.neg[w] = lt;
        }
        out
    }

    /// The least significant trit of every lane — the per-lane branch
    /// condition a [`Word9xN::compare`] result carries.
    pub fn lane_lsts(&self) -> Vec<Trit> {
        (0..self.lanes).map(|i| self.lane(i).lst()).collect()
    }

    /// Per-lane multiply by a ternary weight: −1 swaps the lane's
    /// planes, 0 clears them, +1 passes them through — four ANDs and
    /// two ORs per plane word, no arithmetic at all.
    ///
    /// # Panics
    ///
    /// Panics if `weights` was built for a different lane count.
    #[must_use]
    pub fn weight_select(&self, weights: &LaneWeights) -> Self {
        assert_eq!(
            self.lanes, weights.lanes,
            "weight mask built for {} lanes, vector has {}",
            weights.lanes, self.lanes
        );
        let mut out = Self::zero(self.lanes);
        for w in 0..self.pos.len() {
            out.pos[w] = (self.pos[w] & weights.pos[w]) | (self.neg[w] & weights.neg[w]);
            out.neg[w] = (self.neg[w] & weights.pos[w]) | (self.pos[w] & weights.neg[w]);
        }
        out
    }

    /// Ternary-weight multiply-accumulate: `self + w ⊙ x` with
    /// `w ∈ {−1, 0, +1}` per lane — a [`Word9xN::weight_select`]
    /// followed by one lane-parallel add. This is the inner loop of the
    /// ternary-NN matmul: one call per input activation updates every
    /// output lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts disagree.
    #[must_use]
    pub fn mac(&self, x: &Self, weights: &LaneWeights) -> Self {
        self.wrapping_add(&x.weight_select(weights))
    }

    /// In-place MAC of a *broadcast* scalar: `self += w ⊙ splat(x)`,
    /// fused so the inner loop of a ternary matvec touches each plane
    /// word once and allocates nothing. The weight masks already clear
    /// inactive tail lanes, so no explicit splat (or tail masking) is
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` was built for a different lane count.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{simd::{LaneWeights, Word9xN}, Trit, Word9};
    ///
    /// let mut acc = Word9xN::zero(3);
    /// acc.mac_splat(Word9::from_i64(40)?, &LaneWeights::new(&[Trit::P, Trit::N, Trit::Z]));
    /// acc.mac_splat(Word9::from_i64(2)?, &LaneWeights::new(&[Trit::P, Trit::P, Trit::N]));
    /// assert_eq!(
    ///     acc.to_words().iter().map(Word9::to_i64).collect::<Vec<_>>(),
    ///     vec![42, -38, -2],
    /// );
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn mac_splat(&mut self, x: Word9, weights: &LaneWeights) {
        assert_eq!(
            self.lanes, weights.lanes,
            "weight mask built for {} lanes, accumulator has {}",
            weights.lanes, self.lanes
        );
        let (p, n) = x.bitplanes();
        let (rp, rn) = (repeat6(p), repeat6(n));
        for w in 0..self.pos.len() {
            let bp = (rp & weights.pos[w]) | (rn & weights.neg[w]);
            let bn = (rn & weights.pos[w]) | (rp & weights.neg[w]);
            (self.pos[w], self.neg[w]) = add_planes(self.pos[w], self.neg[w], bp, bn);
        }
    }

    /// [`Word9xN::mac`] with the weight mask built on the fly; prefer
    /// pre-building a [`LaneWeights`] when the same weights are reused.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the lane count.
    #[must_use]
    pub fn mac_trits(&self, x: &Self, weights: &[Trit]) -> Self {
        self.mac(x, &LaneWeights::new(weights))
    }

    /// Horizontal reduce: the wrapping sum of every lane as one scalar
    /// word. Plane words are folded lane-parallel first (six lanes per
    /// round), then the final six lanes are summed scalar.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{simd::Word9xN, Word9};
    ///
    /// let v = Word9xN::from_words(
    ///     &(1..=20).map(Word9::from_i64).collect::<Result<Vec<_>, _>>()?,
    /// );
    /// assert_eq!(v.reduce_add().to_i64(), 210);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn reduce_add(&self) -> Word9 {
        let (mut ap, mut an) = (0u64, 0u64);
        for w in 0..self.pos.len() {
            (ap, an) = add_planes(ap, an, self.pos[w], self.neg[w]);
        }
        let mut acc = Word9::ZERO;
        for l in 0..LANES_PER_WORD {
            let shift = l * STRIDE;
            let lane = Word9::from_bitplanes((ap >> shift) & LANE_DATA, (an >> shift) & LANE_DATA)
                .expect("fold keeps planes disjoint");
            acc = acc.wrapping_add(lane);
        }
        acc
    }

    /// Applies `f` to corresponding plane words of two equal-length
    /// vectors.
    fn zip(&self, rhs: &Self, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> Self {
        assert_eq!(
            self.lanes, rhs.lanes,
            "lane-parallel ops require equal lane counts"
        );
        let mut out = Self::zero(self.lanes);
        for w in 0..self.pos.len() {
            (out.pos[w], out.neg[w]) = f(self.pos[w], self.neg[w], rhs.pos[w], rhs.neg[w]);
        }
        out
    }
}

/// Mask keeping only the active lanes of the *last* plane word, or
/// `None` when every lane of it is active.
fn tail_mask(lanes: usize) -> Option<u64> {
    let tail = lanes % LANES_PER_WORD;
    if lanes == 0 || tail == 0 {
        return None;
    }
    let mut m = 0u64;
    for i in 0..tail {
        m |= LANE_DATA << (i * STRIDE);
    }
    Some(m)
}

/// A per-lane ternary weight vector in mask form, precomputed once and
/// reused across [`Word9xN::mac`] calls: full-lane masks of the +1
/// lanes (`pos`) and the −1 lanes (`neg`). Zero-weight lanes appear in
/// neither, so the select clears them.
///
/// # Examples
///
/// ```
/// use ternary::{simd::{LaneWeights, Word9xN}, Trit, Word9};
///
/// let w = LaneWeights::new(&[Trit::P, Trit::Z, Trit::N]);
/// let x = Word9xN::splat(Word9::from_i64(7)?, 3);
/// let y = x.weight_select(&w);
/// assert_eq!(
///     y.to_words().iter().map(Word9::to_i64).collect::<Vec<_>>(),
///     vec![7, 0, -7],
/// );
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneWeights {
    lanes: usize,
    pos: Vec<u64>,
    neg: Vec<u64>,
}

impl LaneWeights {
    /// Builds the mask form of a ternary weight vector, one trit per
    /// lane.
    pub fn new(weights: &[Trit]) -> Self {
        let words = weights.len().div_ceil(LANES_PER_WORD);
        let mut pos = vec![0u64; words];
        let mut neg = vec![0u64; words];
        for (i, t) in weights.iter().enumerate() {
            let mask = LANE_DATA << ((i % LANES_PER_WORD) * STRIDE);
            match t {
                Trit::P => pos[i / LANES_PER_WORD] |= mask,
                Trit::N => neg[i / LANES_PER_WORD] |= mask,
                Trit::Z => {}
            }
        }
        Self {
            lanes: weights.len(),
            pos,
            neg,
        }
    }

    /// Number of weight lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// A whole ternary weight matrix in *word-major* packed-mask form:
/// for each plane word index, the `(pos, neg)` mask words of every
/// column sit contiguously. [`matvec`] streams these rows strictly
/// sequentially — one flat allocation instead of a pointer chase
/// through per-column [`LaneWeights`] vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedWeights {
    lanes: usize,
    cols: usize,
    /// `planes[w * cols + c]` = plane word `w` of column `c`.
    planes: Vec<(u64, u64)>,
}

impl PackedWeights {
    /// Re-packs per-column masks word-major.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or the columns disagree on lane
    /// count.
    pub fn from_columns(columns: &[LaneWeights]) -> Self {
        assert!(!columns.is_empty(), "a weight matrix needs columns");
        let lanes = columns[0].lanes;
        let words = lanes.div_ceil(LANES_PER_WORD);
        let mut planes = Vec::with_capacity(words * columns.len());
        for w in 0..words {
            for col in columns {
                assert_eq!(
                    col.lanes, lanes,
                    "weight mask built for {} lanes, matrix has {}",
                    col.lanes, lanes
                );
                planes.push((col.pos[w], col.neg[w]));
            }
        }
        Self {
            lanes,
            cols: columns.len(),
            planes,
        }
    }

    /// Number of output lanes (matrix rows).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of weight columns (input activations).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Word-major carry-save matvec kernel: `Σ_c column_c ⊙ x[c]` over the
/// matrix's output lanes, the fast path of a ternary matrix-vector
/// product. Column-major accumulation ([`CsaAccumulator`] driven one
/// `mac_splat` per column) streams the whole redundant accumulator
/// through memory on every step; this kernel flips the loop nest so
/// each plane word's sum/carry pair stays in registers across *all*
/// columns — per column-word step only the two packed weight words are
/// loaded (sequentially), everything else is ~30 register-resident
/// logic ops. Three plane words run per pass: each word's compression
/// is one serial dependency chain, so interleaving independent chains
/// multiplies the instruction-level parallelism the host can extract
/// until its ALU ports saturate.
///
/// # Panics
///
/// Panics if `x.len() != weights.cols()`.
///
/// # Examples
///
/// ```
/// use ternary::{simd::{self, LaneWeights, PackedWeights}, Trit, Word9};
///
/// // [ +1 −1 ] [40]   [ 38]
/// // [  0 +1 ] [ 2] = [  2]
/// let m = PackedWeights::from_columns(&[
///     LaneWeights::new(&[Trit::P, Trit::Z]),
///     LaneWeights::new(&[Trit::N, Trit::P]),
/// ]);
/// let y = simd::matvec(&[Word9::from_i64(40)?, Word9::from_i64(2)?], &m);
/// assert_eq!(y.to_words().iter().map(Word9::to_i64).collect::<Vec<_>>(), vec![38, 2]);
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[must_use]
pub fn matvec(x: &[Word9], weights: &PackedWeights) -> Word9xN {
    assert_eq!(
        x.len(),
        weights.cols,
        "one input activation per weight column"
    );
    // Broadcast every activation once, up front.
    let splats: Vec<(u64, u64)> = x
        .iter()
        .map(|w| {
            let (p, n) = w.bitplanes();
            (repeat6(p), repeat6(n))
        })
        .collect();
    let mut out = Word9xN::zero(weights.lanes);
    let words = out.pos.len();
    let mut w = 0;
    // Passes of 3 or 4 plane words, never leaving a lone serial word:
    // 7 words run as 3 + 4, 8 as 3 + 3 + 2, and so on.
    let mut rem = words;
    while rem >= 5 {
        matvec_pass::<3>(&splats, weights, w, &mut out);
        w += 3;
        rem -= 3;
    }
    match rem {
        4 => matvec_pass::<4>(&splats, weights, w, &mut out),
        3 => matvec_pass::<3>(&splats, weights, w, &mut out),
        2 => matvec_pass::<2>(&splats, weights, w, &mut out),
        1 => matvec_pass::<1>(&splats, weights, w, &mut out),
        _ => {}
    }
    out
}

/// One [`matvec`] pass over plane words `w .. w + K`: `K` independent
/// compression chains interleaved so the host can overlap them.
#[inline(always)]
fn matvec_pass<const K: usize>(
    splats: &[(u64, u64)],
    weights: &PackedWeights,
    w: usize,
    out: &mut Word9xN,
) {
    let cols = weights.cols;
    let rows: [&[(u64, u64)]; K] =
        core::array::from_fn(|k| &weights.planes[(w + k) * cols..(w + k + 1) * cols]);
    let mut s = [[0u64; 4]; K];
    for (c, &(rp, rn)) in splats.iter().enumerate() {
        for k in 0..K {
            let (p, n) = rows[k][c];
            s[k] = compress_step(s[k], rp, rn, p, n);
        }
    }
    for (k, &[sp, sn, cp, cn]) in s.iter().enumerate() {
        (out.pos[w + k], out.neg[w + k]) = add_planes(sp, sn, cp, cn);
    }
}

/// One weight-select + 3:2 compression round on a packed `[sp, sn,
/// cp, cn]` accumulator state — the register-resident inner step of
/// [`matvec`].
#[inline(always)]
fn compress_step(s: [u64; 4], rp: u64, rn: u64, wp: u64, wn: u64) -> [u64; 4] {
    let bp = (rp & wp) | (rn & wn);
    let bn = (rn & wp) | (rp & wn);
    let (sp, sn, cp, cn) = compress_planes(s[0], s[1], s[2], s[3], bp, bn);
    [sp, sn, cp, cn]
}

/// Carry-save MAC accumulator: the lanes are held as a *redundant*
/// sum/carry pair so each [`CsaAccumulator::mac_splat`] step is one 3:2
/// compression round — a fixed ~20 logic ops per plane word, **no**
/// carry-propagation loop. Only [`CsaAccumulator::resolve`] pays for a
/// full lane-parallel add, once, after the whole dot-product chain.
///
/// This is the balanced-ternary analogue of a binary carry-save adder
/// tree and the intended accumulator for long MAC chains (the ternary-NN
/// matvec inner loop); for a handful of adds, [`Word9xN::mac_splat`] is
/// simpler and just as fast.
///
/// # Examples
///
/// ```
/// use ternary::{simd::{CsaAccumulator, LaneWeights, Word9xN}, Trit, Word9};
///
/// let mut acc = CsaAccumulator::zero(3);
/// acc.mac_splat(Word9::from_i64(40)?, &LaneWeights::new(&[Trit::P, Trit::N, Trit::Z]));
/// acc.mac_splat(Word9::from_i64(2)?, &LaneWeights::new(&[Trit::P, Trit::P, Trit::N]));
/// assert_eq!(
///     acc.resolve().to_words().iter().map(Word9::to_i64).collect::<Vec<_>>(),
///     vec![42, -38, -2],
/// );
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CsaAccumulator {
    lanes: usize,
    /// Redundant pair: the true lane value is `s + c` (wrapping).
    sp: Vec<u64>,
    sn: Vec<u64>,
    cp: Vec<u64>,
    cn: Vec<u64>,
}

impl CsaAccumulator {
    /// An all-zero accumulator over `lanes` lanes.
    #[must_use]
    pub fn zero(lanes: usize) -> Self {
        let words = lanes.div_ceil(LANES_PER_WORD);
        Self {
            lanes,
            sp: vec![0; words],
            sn: vec![0; words],
            cp: vec![0; words],
            cn: vec![0; words],
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Carry-save MAC of a broadcast scalar: `self += w ⊙ splat(x)` as
    /// one compression round per plane word. The weight masks clear
    /// inactive tail lanes, so nothing leaks past [`Self::lanes`].
    ///
    /// # Panics
    ///
    /// Panics if `weights` was built for a different lane count.
    pub fn mac_splat(&mut self, x: Word9, weights: &LaneWeights) {
        assert_eq!(
            self.lanes, weights.lanes,
            "weight mask built for {} lanes, accumulator has {}",
            weights.lanes, self.lanes
        );
        let (p, n) = x.bitplanes();
        let (rp, rn) = (repeat6(p), repeat6(n));
        for w in 0..self.sp.len() {
            let bp = (rp & weights.pos[w]) | (rn & weights.neg[w]);
            let bn = (rn & weights.pos[w]) | (rp & weights.neg[w]);
            (self.sp[w], self.sn[w], self.cp[w], self.cn[w]) =
                compress_planes(self.sp[w], self.sn[w], self.cp[w], self.cn[w], bp, bn);
        }
    }

    /// Collapses the redundant pair into a plain vector with one full
    /// carry-propagating add per plane word.
    #[must_use]
    pub fn resolve(&self) -> Word9xN {
        let mut out = Word9xN::zero(self.lanes);
        for w in 0..self.sp.len() {
            (out.pos[w], out.neg[w]) = add_planes(self.sp[w], self.sn[w], self.cp[w], self.cn[w]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pow3;

    /// The adversarial value pool: every ±3^k carry corner, the range
    /// extremes, and their neighbours.
    fn corners() -> Vec<i64> {
        let mut v = vec![0, 1, -1, 9841, -9841, 9840, -9840];
        for k in 0..9 {
            let p = pow3(k);
            v.extend([p, -p, p - 1, -(p - 1), (p - 1) / 2, -(p - 1) / 2]);
        }
        v
    }

    fn pack(values: &[i64]) -> Word9xN {
        Word9xN::from_words(
            &values
                .iter()
                .map(|&v| Word9::from_i64_wrapping(v))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn pack_unpack_roundtrip_at_awkward_lane_counts() {
        for lanes in [0usize, 1, 5, 6, 7, 12, 13, 20] {
            let words: Vec<Word9> = (0..lanes as i64)
                .map(|v| Word9::from_i64_wrapping(v * 1103 - 5000))
                .collect();
            let v = Word9xN::from_words(&words);
            assert_eq!(v.lanes(), lanes);
            assert_eq!(v.to_words(), words);
        }
    }

    #[test]
    fn add_matches_scalar_on_all_corner_pairs() {
        let c = corners();
        let a = pack(&c);
        for &offset in &c {
            let shifted: Vec<i64> = c.iter().map(|&v| v.wrapping_add(offset)).collect();
            let b = pack(&shifted);
            let sum = a.wrapping_add(&b);
            for (i, (&x, &y)) in c.iter().zip(&shifted).enumerate() {
                let expect = Word9::from_i64_wrapping(x).wrapping_add(Word9::from_i64_wrapping(y));
                assert_eq!(sum.lane(i), expect, "lane {i}: {x} + {y}");
            }
        }
    }

    #[test]
    fn carries_never_leak_between_lanes() {
        // Neighbouring lanes at the extremes: every lane must wrap
        // independently, as if computed scalar.
        let a = pack(&[9841, 9841, -9841, -9841, 9841, -9841, 9841]);
        let b = pack(&[1, 9841, -1, -9841, -9841, 9841, 1]);
        let s = a.wrapping_add(&b);
        let expect = [-9841, -1, 9841, 1, 0, 0, -9841];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(s.lane(i).to_i64(), e, "lane {i}");
        }
    }

    #[test]
    fn sub_and_negate_match_scalar() {
        let c = corners();
        let a = pack(&c);
        let rev: Vec<i64> = c.iter().rev().copied().collect();
        let b = pack(&rev);
        let d = a.wrapping_sub(&b);
        let n = a.negate();
        for i in 0..c.len() {
            let wa = Word9::from_i64_wrapping(c[i]);
            let wb = Word9::from_i64_wrapping(rev[i]);
            assert_eq!(d.lane(i), wa.wrapping_sub(wb));
            assert_eq!(n.lane(i), wa.negate());
        }
    }

    #[test]
    fn logic_matches_scalar() {
        let c = corners();
        let rev: Vec<i64> = c.iter().rev().copied().collect();
        let a = pack(&c);
        let b = pack(&rev);
        for i in 0..c.len() {
            let wa = Word9::from_i64_wrapping(c[i]);
            let wb = Word9::from_i64_wrapping(rev[i]);
            assert_eq!(a.and(&b).lane(i), wa.and(wb), "and lane {i}");
            assert_eq!(a.or(&b).lane(i), wa.or(wb), "or lane {i}");
            assert_eq!(a.xor(&b).lane(i), wa.xor(wb), "xor lane {i}");
        }
    }

    #[test]
    fn compare_matches_scalar_comp() {
        let c = corners();
        let rev: Vec<i64> = c.iter().rev().copied().collect();
        let a = pack(&c);
        let b = pack(&rev);
        let cmp = a.compare(&b);
        for i in 0..c.len() {
            let wa = Word9::from_i64_wrapping(c[i]);
            let wb = Word9::from_i64_wrapping(rev[i]);
            assert_eq!(cmp.lane(i).lst(), wa.compare(wb).lst(), "lane {i}");
        }
    }

    #[test]
    fn mac_applies_each_weight_kind() {
        let x = pack(&[11, 12, 13, 14, 15, 16, 17]);
        let weights = [
            Trit::P,
            Trit::N,
            Trit::Z,
            Trit::P,
            Trit::N,
            Trit::Z,
            Trit::P,
        ];
        let acc = Word9xN::splat(Word9::from_i64(100).unwrap(), 7);
        let out = acc.mac_trits(&x, &weights);
        let expect = [111, 88, 100, 114, 85, 100, 117];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(out.lane(i).to_i64(), e, "lane {i}");
        }
    }

    #[test]
    fn mac_splat_agrees_with_mac_of_an_explicit_splat() {
        let weights: Vec<Trit> = (0..13)
            .map(|i| match i % 3 {
                0 => Trit::P,
                1 => Trit::N,
                _ => Trit::Z,
            })
            .collect();
        let masks = LaneWeights::new(&weights);
        for &x in &[0i64, 1, -1, 9841, -9841, 3280, -4921] {
            let xw = Word9::from_i64_wrapping(x);
            let acc = pack(&(0..13).map(|i| i * 731 - 4000).collect::<Vec<_>>());
            let via_splat = acc.mac(&Word9xN::splat(xw, 13), &masks);
            let mut fused = acc.clone();
            fused.mac_splat(xw, &masks);
            assert_eq!(fused, via_splat, "x = {x}");
        }
    }

    #[test]
    fn all_zero_weights_are_the_identity_mac() {
        let x = pack(&corners());
        let acc = pack(&corners().iter().map(|v| v / 2).collect::<Vec<_>>());
        let w = vec![Trit::Z; x.lanes()];
        assert_eq!(acc.mac_trits(&x, &w), acc);
    }

    #[test]
    fn reduce_add_matches_wrapped_integer_sum() {
        for values in [
            vec![],
            vec![9841],
            vec![9841, 9841, 9841],
            corners(),
            (0..23).map(|i| i * 997 - 9000).collect(),
        ] {
            let total: i64 = values
                .iter()
                .map(|&v| Word9::from_i64_wrapping(v).to_i64())
                .sum();
            assert_eq!(
                pack(&values).reduce_add(),
                Word9::from_i64_wrapping(total),
                "{values:?}"
            );
        }
    }

    #[test]
    fn splat_fills_every_lane_and_masks_the_tail() {
        for lanes in [1usize, 6, 7, 11] {
            let v = Word9xN::splat(Word9::from_i64(-1234).unwrap(), lanes);
            assert_eq!(v.lanes(), lanes);
            assert!(v.to_words().iter().all(|w| w.to_i64() == -1234));
            // Inactive tail lanes stay zero so reduce sees nothing extra.
            assert_eq!(
                v.reduce_add().to_i64(),
                Word9::from_i64_wrapping(-1234 * lanes as i64).to_i64()
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal lane counts")]
    fn mismatched_lane_counts_panic() {
        let _ = Word9xN::zero(3).wrapping_add(&Word9xN::zero(4));
    }

    #[test]
    fn csa_chain_matches_carry_propagating_chain() {
        // A long MAC chain over adversarial scalars: the carry-save
        // accumulator must resolve to exactly what the plain
        // carry-propagating mac_splat chain produces, at lane counts
        // that exercise the word tail.
        for lanes in [1usize, 5, 6, 7, 13] {
            let mut csa = CsaAccumulator::zero(lanes);
            let mut plain = Word9xN::zero(lanes);
            let mut seed = 0x9e37_79b9_7f4a_7c15u64;
            for (step, &x) in corners().iter().enumerate() {
                let weights: Vec<Trit> = (0..lanes)
                    .map(|i| {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        match (seed >> 33).wrapping_add((step + i) as u64) % 3 {
                            0 => Trit::P,
                            1 => Trit::N,
                            _ => Trit::Z,
                        }
                    })
                    .collect();
                let masks = LaneWeights::new(&weights);
                let xw = Word9::from_i64_wrapping(x);
                csa.mac_splat(xw, &masks);
                plain.mac_splat(xw, &masks);
                assert_eq!(csa.resolve(), plain, "lanes {lanes}, step {step} (x = {x})");
            }
        }
    }

    #[test]
    fn csa_saturating_same_sign_chain_wraps_per_lane() {
        // Repeatedly adding MAX drives every digit through its deepest
        // carry chains; the redundant pair must still wrap per lane.
        let masks = LaneWeights::new(&[
            Trit::P,
            Trit::N,
            Trit::P,
            Trit::Z,
            Trit::P,
            Trit::N,
            Trit::P,
        ]);
        let mut csa = CsaAccumulator::zero(7);
        let mut expect = Word9xN::zero(7);
        for _ in 0..50 {
            csa.mac_splat(Word9::MAX, &masks);
            expect.mac_splat(Word9::MAX, &masks);
        }
        assert_eq!(csa.resolve(), expect);
        assert_eq!(csa.lanes(), 7);
    }

    #[test]
    #[should_panic(expected = "weight mask built for")]
    fn csa_lane_mismatch_panics() {
        CsaAccumulator::zero(3).mac_splat(Word9::ZERO, &LaneWeights::new(&[Trit::P; 4]));
    }
}
