//! Fixed-width balanced-ternary words ([`Trits<N>`]) and the 9-trit
//! machine word ([`Word9`]) of the ART-9 processor.
//!
//! A word stores its trits little-endian: index 0 is the least significant
//! trit (LST in the paper's terminology). An `N`-trit balanced word covers
//! the symmetric integer range `[-(3^N-1)/2, +(3^N-1)/2]`; for the ART-9
//! machine word (`N = 9`) that is −9841..=9841.
//!
//! Arithmetic wraps modulo `3^N` onto the symmetric range — the balanced
//! analogue of two's-complement wrap-around — which is exactly what a
//! ripple-carry ternary adder that discards its carry-out computes.
//!
//! ## Packed representation
//!
//! Since PR 2 a word is **not** stored as an array of [`Trit`] enums but
//! as two binary *bitplanes* (see `docs/PERFORMANCE.md`):
//!
//! * `pos` — bit `i` set ⇔ trit `i` is +1,
//! * `neg` — bit `i` set ⇔ trit `i` is −1,
//!
//! with the invariant `pos & neg == 0` and both masked to the low `N`
//! bits. This is the software mirror of the paper's binary-coded-ternary
//! FPGA mapping (§III-B): every trit-wise operation becomes a handful of
//! word-level boolean instructions instead of an `N`-step loop, and
//! negation is a single plane swap. The per-trit reference algorithms
//! are retained in [`crate::arith`] and property-tested equivalent.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Neg, Sub};
use std::str::FromStr;

use crate::error::TernaryError;
use crate::planes;
use crate::trit::Trit;

/// Returns 3^n as an `i64`.
///
/// # Panics
///
/// Panics if `n > 39` (3^40 overflows `i64`). Widths past that are
/// served by [`pow3_i128`].
#[inline]
pub const fn pow3(n: usize) -> i64 {
    assert!(n <= 39, "3^n overflows i64 for n > 39; use pow3_i128");
    let mut acc = 1i64;
    let mut i = 0;
    while i < n {
        acc *= 3;
        i += 1;
    }
    acc
}

/// Returns 3^n as an `i128` — the wide-width companion of [`pow3`],
/// covering every width the bitplane words support (3^80 still fits an
/// `i128`; 3^81 does not).
///
/// # Panics
///
/// Panics if `n > 80`.
#[inline]
pub const fn pow3_i128(n: usize) -> i128 {
    assert!(n <= 80, "3^n overflows i128 for n > 80");
    let mut acc = 1i128;
    let mut i = 0;
    while i < n {
        acc *= 3;
        i += 1;
    }
    acc
}

/// A fixed-width balanced-ternary word of `N` trits, little-endian,
/// stored as two packed binary bitplanes (`pos`/`neg`, one bit per trit).
///
/// The workhorse instantiation is [`Word9`], the ART-9 machine word; the
/// assembler and the gate-level analyzer also use narrower widths for
/// instruction fields (e.g. `Trits<2>` register indices, `Trits<5>`
/// immediates).
///
/// # Examples
///
/// ```
/// use ternary::{Trit, Word9};
///
/// let a = Word9::from_i64(100)?;
/// let b = Word9::from_i64(-42)?;
/// assert_eq!((a + b).to_i64(), 58);
/// assert_eq!((-a).to_i64(), -100);
/// assert_eq!(a.trit(0), Trit::P); // 100 = +1 -1 0 +1 0 +1 reading down
/// # Ok::<(), ternary::TernaryError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Trits<const N: usize> {
    /// Bit `i` set ⇔ trit `i` = +1. Disjoint from `neg`, masked to `N` bits.
    pos: u64,
    /// Bit `i` set ⇔ trit `i` = −1. Disjoint from `pos`, masked to `N` bits.
    neg: u64,
}

/// The 9-trit machine word of the ART-9 processor (range −9841..=9841).
///
/// # Examples
///
/// ```
/// use ternary::Word9;
///
/// // Exact round-trip inside the 9-trit range…
/// let w = Word9::from_i64(-4821)?;
/// assert_eq!(w.to_i64(), -4821);
/// assert_eq!(w.to_string().parse::<Word9>()?, w);
///
/// // …and modular wrapping outside it (symmetric, ±9841).
/// assert_eq!(Word9::from_i64_wrapping(9842).to_i64(), -9841);
/// assert_eq!(w.wrapping_mul(w).to_i64(), {
///     let m = ternary::pow3(9);
///     let r = ((-4821i64 * -4821) % m + m) % m;
///     if r > 9841 { r - m } else { r }
/// });
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub type Word9 = Trits<9>;

impl<const N: usize> Default for Trits<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Trits<N> {
    /// Low-`N`-bits mask both bitplanes are kept under.
    const MASK: u64 = {
        assert!(N <= 63, "bitplane words support at most 63 trits");
        if N == 0 {
            0
        } else {
            (1u64 << N) - 1
        }
    };

    /// The all-zero word.
    pub const ZERO: Self = Self { pos: 0, neg: 0 };

    /// The most positive representable word, `(3^N − 1) / 2` (all trits +1).
    pub const MAX: Self = Self {
        pos: Self::MASK,
        neg: 0,
    };

    /// The most negative representable word, `−(3^N − 1) / 2` (all trits −1).
    pub const MIN: Self = Self {
        pos: 0,
        neg: Self::MASK,
    };

    /// Largest magnitude representable: `(3^N − 1) / 2`.
    ///
    /// Only available for `N ≤ 40` — the widest bound that still fits
    /// an `i64`. Wider widths (the ones this const used to break at
    /// compile time) use [`Trits::MAX_VALUE_I128`].
    pub const MAX_VALUE: i64 = {
        assert!(
            N <= 40,
            "(3^N - 1)/2 overflows i64 for N > 40; use MAX_VALUE_I128"
        );
        (Self::MAX_VALUE_I128) as i64
    };

    /// Number of distinct values, `3^N`.
    ///
    /// Only available for `N ≤ 39`; wider widths use
    /// [`Trits::MODULUS_I128`].
    pub const MODULUS: i64 = {
        assert!(N <= 39, "3^N overflows i64 for N > 39; use MODULUS_I128");
        Self::MODULUS_I128 as i64
    };

    /// Largest magnitude representable, `(3^N − 1) / 2`, as an `i128` —
    /// exact for every width the bitplane representation admits. All
    /// generic conversion paths route through this and
    /// [`Trits::MODULUS_I128`] so that every `N ≤ 63` the `MASK` assert
    /// accepts actually compiles.
    pub const MAX_VALUE_I128: i128 = (pow3_i128(N) - 1) / 2;

    /// Number of distinct values, `3^N`, as an `i128`.
    pub const MODULUS_I128: i128 = pow3_i128(N);

    /// Width of the word in trits.
    pub const WIDTH: usize = N;

    /// Builds a word directly from its trits (index 0 = least significant).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Trits};
    /// let w = Trits::<3>::from_trits([Trit::P, Trit::Z, Trit::N]);
    /// assert_eq!(w.to_i64(), 1 + 0 * 3 - 9);
    /// ```
    #[inline]
    pub const fn from_trits(trits: [Trit; N]) -> Self {
        let mut pos = 0u64;
        let mut neg = 0u64;
        let mut i = 0;
        while i < N {
            match trits[i] {
                Trit::P => pos |= 1 << i,
                Trit::N => neg |= 1 << i,
                Trit::Z => {}
            }
            i += 1;
        }
        Self { pos, neg }
    }

    /// The trits of the word, index 0 least significant.
    ///
    /// Since the packed-bitplane refactor this unpacks into a fresh
    /// array (the word no longer stores one); prefer [`Trits::trit`] or
    /// [`Trits::bitplanes`] on hot paths.
    #[inline]
    pub const fn trits(&self) -> [Trit; N] {
        let mut out = [Trit::Z; N];
        let mut i = 0;
        while i < N {
            if (self.pos >> i) & 1 == 1 {
                out[i] = Trit::P;
            } else if (self.neg >> i) & 1 == 1 {
                out[i] = Trit::N;
            }
            i += 1;
        }
        out
    }

    /// Builds a word from its two packed bitplanes — the zero-cost
    /// entry point for code that already holds data in binary-coded
    /// form (FPGA memory images, the BCT [`crate::encoding`] module).
    ///
    /// Bit `i` of `pos` makes trit `i` equal +1, bit `i` of `neg` makes
    /// it −1.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::InvalidBctPair`] (with the offending trit
    /// index) when a bit is set in both planes — the same impossible
    /// state as the BCT pair `11` — or in either plane at position `N`
    /// or above.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    ///
    /// // pos = 0b011 (trits 0,1 = +1), neg = 0b100 (trit 2 = −1): 1+3−9.
    /// let w = Trits::<3>::from_bitplanes(0b011, 0b100)?;
    /// assert_eq!(w.to_i64(), -5);
    /// assert!(Trits::<3>::from_bitplanes(0b001, 0b001).is_err()); // overlap
    /// assert!(Trits::<3>::from_bitplanes(0b1000, 0).is_err());    // too wide
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub const fn from_bitplanes(pos: u64, neg: u64) -> Result<Self, TernaryError> {
        let bad = (pos & neg) | ((pos | neg) & !Self::MASK);
        if bad != 0 {
            return Err(TernaryError::InvalidBctPair {
                index: bad.trailing_zeros() as usize,
            });
        }
        Ok(Self { pos, neg })
    }

    /// The two packed bitplanes `(pos, neg)` of the word — the inverse
    /// of [`Trits::from_bitplanes`], and the representation every
    /// word-level kernel in this module computes on directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    ///
    /// let w = Trits::<3>::from_i64(-5)?; // trits (lsb first): +, +, −
    /// assert_eq!(w.bitplanes(), (0b011, 0b100));
    /// let (pos, neg) = w.bitplanes();
    /// assert_eq!(pos & neg, 0); // planes are always disjoint
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub const fn bitplanes(&self) -> (u64, u64) {
        (self.pos, self.neg)
    }

    /// Converts an integer that must fit the word exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::WordRange`] when `v` is outside
    /// `[-MAX_VALUE, MAX_VALUE]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// assert_eq!(Word9::from_i64(9841)?.to_i64(), 9841);
    /// assert!(Word9::from_i64(9842).is_err());
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn from_i64(v: i64) -> Result<Self, TernaryError> {
        // Bounds-check against the i128 constant: valid for every width
        // (the error's i64 `max` field is only materialized on the
        // failing branch, where the bound is necessarily below `v` and
        // therefore fits an i64).
        if (v as i128) < -Self::MAX_VALUE_I128 || (v as i128) > Self::MAX_VALUE_I128 {
            return Err(TernaryError::WordRange {
                value: v,
                width: N,
                max: Self::MAX_VALUE_I128 as i64,
            });
        }
        Ok(Self::from_i64_wrapping(v))
    }

    /// Converts an integer, wrapping modulo `3^N` onto the symmetric range.
    ///
    /// This is the balanced-ternary analogue of `as` casts between binary
    /// integer widths and models what the datapath registers actually hold
    /// after an overflowing operation.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// // 9842 wraps to the bottom of the range.
    /// assert_eq!(Word9::from_i64_wrapping(9842).to_i64(), -9841);
    /// ```
    pub fn from_i64_wrapping(v: i64) -> Self {
        if N > 39 {
            // The modulus exceeds i64: delegate to the wide path. (For
            // N ≥ 41 every i64 is already in range, so this reduces to
            // plain digit extraction.)
            return Self::from_i128_wrapping(v as i128);
        }
        // Narrow fast path in pure i64 arithmetic — the hot conversion
        // of the 9-trit simulators, kept off the slower i128 div/mod.
        let m = Self::MODULUS_I128 as i64;
        let max = Self::MAX_VALUE_I128 as i64;
        // Shift into [0, m), then back to the symmetric range.
        let mut rem = ((v % m) + m) % m; // non-negative residue
        if rem > max {
            rem -= m;
        }
        // Biased digit extraction: rem + MAX_VALUE has plain (unbalanced)
        // base-3 digits d ∈ {0,1,2}; the balanced trit is d − 1. This
        // avoids the per-digit rebalancing branches of the textbook loop.
        let mut u = (rem + max) as u64;
        let mut pos = 0u64;
        let mut neg = 0u64;
        for i in 0..N {
            let d = u % 3;
            u /= 3;
            match d {
                0 => neg |= 1 << i,
                2 => pos |= 1 << i,
                _ => {}
            }
        }
        debug_assert_eq!(u, 0, "value fits after wrapping");
        Self { pos, neg }
    }

    /// Same as [`Trits::from_i64_wrapping`] for `i128` inputs — the
    /// primary conversion for widths past 39 trits, and the path
    /// multiplication takes when intermediate products overflow `i64`.
    ///
    /// Reduces modulo the exact wide modulus `3^N` (an `i128` for every
    /// supported width), then extracts digits through the same biased
    /// scheme as the narrow path, in `u128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    ///
    /// // One past +MAX_VALUE wraps to −MAX_VALUE, exactly like the
    /// // 9-trit word — now at 40 trits.
    /// let max = Trits::<40>::MAX_VALUE_I128;
    /// assert_eq!(Trits::<40>::from_i128_wrapping(max + 1).to_i128(), -max);
    /// ```
    pub fn from_i128_wrapping(v: i128) -> Self {
        let m = Self::MODULUS_I128;
        let max = Self::MAX_VALUE_I128;
        let mut rem = ((v % m) + m) % m;
        if rem > max {
            rem -= m;
        }
        let mut u = (rem + max) as u128;
        let mut pos = 0u64;
        let mut neg = 0u64;
        for i in 0..N {
            let d = u % 3;
            u /= 3;
            match d {
                0 => neg |= 1 << i,
                2 => pos |= 1 << i,
                _ => {}
            }
        }
        debug_assert_eq!(u, 0, "value fits after wrapping");
        Self { pos, neg }
    }

    /// Converts an `i128` that must fit the word exactly — the checked
    /// companion of [`Trits::from_i128_wrapping`] and the primary
    /// checked conversion for widths past 40 trits.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::WordRangeWide`] when `v` is outside
    /// `[-MAX_VALUE_I128, MAX_VALUE_I128]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    ///
    /// let max = Trits::<63>::MAX_VALUE_I128;
    /// assert_eq!(Trits::<63>::from_i128(max)?.to_i128(), max);
    /// assert!(Trits::<63>::from_i128(max + 1).is_err());
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn from_i128(v: i128) -> Result<Self, TernaryError> {
        if v < -Self::MAX_VALUE_I128 || v > Self::MAX_VALUE_I128 {
            return Err(TernaryError::WordRangeWide { value: v, width: N });
        }
        Ok(Self::from_i128_wrapping(v))
    }

    /// The numeric value of the word.
    ///
    /// Exact for `N ≤ 40`, whose whole range fits an `i64`. For wider
    /// words, prefer [`Trits::to_i128`] (always exact) or
    /// [`Trits::try_to_i64`] (typed failure) — this method never wraps
    /// silently.
    ///
    /// # Panics
    ///
    /// Panics when `N > 40` and the value does not fit an `i64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Trits};
    /// let w = Trits::<4>::from_trits([Trit::N, Trit::Z, Trit::Z, Trit::P]);
    /// assert_eq!(w.to_i64(), -1 + 27);
    /// ```
    #[inline]
    pub fn to_i64(&self) -> i64 {
        if N <= 40 {
            // Branch-free Horner walk over the bitplanes; the loop bound
            // is a const generic, so this fully unrolls.
            let mut acc = 0i64;
            let mut i = N;
            while i > 0 {
                i -= 1;
                acc = acc * 3 + ((self.pos >> i) & 1) as i64 - ((self.neg >> i) & 1) as i64;
            }
            acc
        } else {
            let v = self.to_i128();
            assert!(
                i64::try_from(v).is_ok(),
                "value of a {N}-trit word does not fit an i64; use to_i128"
            );
            v as i64
        }
    }

    /// The numeric value of the word as an `i128` — exact at every
    /// supported width (a 63-trit word tops out at `(3^63 − 1)/2`,
    /// comfortably inside `i128`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    /// let w = Trits::<63>::MAX;
    /// assert_eq!(w.to_i128(), Trits::<63>::MAX_VALUE_I128);
    /// ```
    #[inline]
    pub fn to_i128(&self) -> i128 {
        let mut acc = 0i128;
        let mut i = N;
        while i > 0 {
            i -= 1;
            acc = acc * 3 + ((self.pos >> i) & 1) as i128 - ((self.neg >> i) & 1) as i128;
        }
        acc
    }

    /// The numeric value as an `i64`, failing typed instead of panicking
    /// when a wide word's value exceeds the `i64` range.
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::NarrowingOverflow`] when the value does
    /// not fit (possible only for `N ≥ 41`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Trits;
    /// assert_eq!(Trits::<63>::from_i128(7)?.try_to_i64()?, 7);
    /// assert!(Trits::<63>::MAX.try_to_i64().is_err());
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    pub fn try_to_i64(&self) -> Result<i64, TernaryError> {
        let v = self.to_i128();
        i64::try_from(v).map_err(|_| TernaryError::NarrowingOverflow { value: v, width: N })
    }

    /// The trit at position `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    pub fn trit(&self, i: usize) -> Trit {
        assert!(i < N, "trit index {i} out of a {N}-trit word");
        if (self.pos >> i) & 1 == 1 {
            Trit::P
        } else if (self.neg >> i) & 1 == 1 {
            Trit::N
        } else {
            Trit::Z
        }
    }

    /// Returns a copy with the trit at position `i` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    #[must_use]
    pub fn with_trit(self, i: usize, t: Trit) -> Self {
        assert!(i < N, "trit index {i} out of a {N}-trit word");
        let bit = 1u64 << i;
        let (mut pos, mut neg) = (self.pos & !bit, self.neg & !bit);
        match t {
            Trit::P => pos |= bit,
            Trit::N => neg |= bit,
            Trit::Z => {}
        }
        Self { pos, neg }
    }

    /// The least significant trit — the paper's "LST", used by COMP/BEQ/BNE.
    #[inline]
    pub fn lst(&self) -> Trit {
        self.trit(0)
    }

    /// Extracts `M` consecutive trits starting at position `lo` as a
    /// narrower word; the paper's field notation `X[hi:lo]` is
    /// `x.field::<{hi - lo + 1}>(lo)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + M > N`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// let w = Word9::from_i64(121)?; // 121 = +++++0000 little-endian
    /// assert_eq!(w.field::<2>(0).to_i64(), 4); // low two trits: ++
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub fn field<const M: usize>(&self, lo: usize) -> Trits<M> {
        assert!(
            lo + M <= N,
            "field [{}..{}] out of a {N}-trit word",
            lo,
            lo + M
        );
        Trits::<M> {
            pos: (self.pos >> lo) & Trits::<M>::MASK,
            neg: (self.neg >> lo) & Trits::<M>::MASK,
        }
    }

    /// Returns a copy with `M` consecutive trits starting at `lo` replaced
    /// by `value` — the store counterpart of [`Trits::field`]. Used by the
    /// LI/LUI semantics that splice immediates into a register.
    ///
    /// # Panics
    ///
    /// Panics if `lo + M > N`.
    #[inline]
    #[must_use]
    pub fn with_field<const M: usize>(self, lo: usize, value: Trits<M>) -> Self {
        assert!(
            lo + M <= N,
            "field [{}..{}] out of a {N}-trit word",
            lo,
            lo + M
        );
        let clear = !(Trits::<M>::MASK << lo);
        Self {
            pos: (self.pos & clear) | (value.pos << lo),
            neg: (self.neg & clear) | (value.neg << lo),
        }
    }

    /// Widens (sign-extends) or narrows (truncates) to another width.
    ///
    /// Widening preserves the value exactly (balanced words need no
    /// explicit sign trit — zero-fill *is* sign extension). Narrowing
    /// keeps the low trits, wrapping the value like the hardware would.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trits, Word9};
    /// let imm = Trits::<3>::from_i64(-13)?;
    /// assert_eq!(imm.resize::<9>().to_i64(), -13);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub fn resize<const M: usize>(&self) -> Trits<M> {
        Trits::<M> {
            pos: self.pos & Trits::<M>::MASK,
            neg: self.neg & Trits::<M>::MASK,
        }
    }

    /// `true` when every trit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.pos | self.neg == 0
    }

    /// The sign of the word as a trit: the most significant non-zero trit,
    /// or zero for the zero word. In balanced ternary this equals the sign
    /// of the numeric value.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Word9};
    /// assert_eq!(Word9::from_i64(-5)?.sign(), Trit::N);
    /// assert_eq!(Word9::ZERO.sign(), Trit::Z);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub fn sign(&self) -> Trit {
        let nonzero = self.pos | self.neg;
        if nonzero == 0 {
            return Trit::Z;
        }
        let top = 63 - nonzero.leading_zeros();
        if (self.pos >> top) & 1 == 1 {
            Trit::P
        } else {
            Trit::N
        }
    }

    /// Wrapping addition; returns the sum and the carry-out trit of the
    /// ripple adder (`a + b = sum + 3^N · carry`).
    ///
    /// Computed word-parallel on the bitplanes: each round forms all
    /// `N` digit sums at once (a handful of boolean ops) and re-adds the
    /// carries one position up, exactly like the binary `xor`/`and`
    /// addition idiom. The carry word gains a trailing zero every round,
    /// so at most `N + 1` rounds run; random operands settle in two or
    /// three. The per-trit reference this is property-tested against is
    /// [`crate::arith::add_tritwise`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Word9};
    /// let (s, c) = Word9::MAX.carrying_add(Word9::from_i64(1)?);
    /// assert_eq!(s, Word9::MIN); // wrapped
    /// assert_eq!(c, Trit::P);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    pub fn carrying_add(&self, rhs: Self) -> (Self, Trit) {
        // (sp, sn): running digit sums; (cp, cn): carries still to add.
        // Both live in N+1-bit planes — the bound |a + b| < 3^(N+1)/2
        // keeps bit N+1 from ever being produced (see docs/PERFORMANCE.md).
        let (mut sp, mut sn) = (self.pos, self.neg);
        let (mut cp, mut cn) = (rhs.pos, rhs.neg);
        while cp | cn != 0 {
            let (np, nn, gp, gn) = planes::digit_sum(sp, sn, cp, cn);
            sp = np;
            sn = nn;
            cp = gp << 1;
            cn = gn << 1;
        }
        let carry = if (sp >> N) & 1 == 1 {
            Trit::P
        } else if (sn >> N) & 1 == 1 {
            Trit::N
        } else {
            Trit::Z
        };
        (
            Self {
                pos: sp & Self::MASK,
                neg: sn & Self::MASK,
            },
            carry,
        )
    }

    /// Wrapping addition (discards the carry-out).
    #[inline]
    #[must_use]
    pub fn wrapping_add(&self, rhs: Self) -> Self {
        self.carrying_add(rhs).0
    }

    /// Wrapping subtraction: `a − b = a + STI(b)` — exact in balanced
    /// ternary (the paper's "conversion-based negation property", §II-A).
    #[inline]
    #[must_use]
    pub fn wrapping_sub(&self, rhs: Self) -> Self {
        self.wrapping_add(rhs.negate())
    }

    /// Exact negation: trit-wise STI. Unlike two's complement there is no
    /// asymmetric edge case — `negate` is a true involution. On the
    /// packed representation it is a single bitplane swap.
    #[inline]
    #[must_use]
    pub fn negate(&self) -> Self {
        Self {
            pos: self.neg,
            neg: self.pos,
        }
    }

    /// Wrapping multiplication.
    ///
    /// Up to 40 trits the product is formed exactly in `i128`
    /// (`(3^40/2)² = 3^80/4` still fits) and reduced once; wider words
    /// use packed balanced shift-and-add on the bitplanes, where every
    /// partial sum wraps natively.
    #[must_use]
    pub fn wrapping_mul(&self, rhs: Self) -> Self {
        if N <= 40 {
            Self::from_i128_wrapping(self.to_i128() * rhs.to_i128())
        } else {
            let mut acc = Self::ZERO;
            let mut shifted = *self;
            for i in 0..N {
                match rhs.trit(i) {
                    Trit::P => acc = acc.wrapping_add(shifted),
                    Trit::N => acc = acc.wrapping_sub(shifted),
                    Trit::Z => {}
                }
                shifted = shifted.shl(1);
            }
            acc
        }
    }

    /// Quotient and remainder, truncating toward zero (like Rust's `/`
    /// and `%` on integers).
    ///
    /// # Errors
    ///
    /// Returns [`TernaryError::DivisionByZero`] when `rhs` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// let (q, r) = Word9::from_i64(-7)?.div_rem(Word9::from_i64(2)?)?;
    /// assert_eq!((q.to_i64(), r.to_i64()), (-3, -1));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn div_rem(&self, rhs: Self) -> Result<(Self, Self), TernaryError> {
        if rhs.is_zero() {
            return Err(TernaryError::DivisionByZero);
        }
        if N <= 40 {
            // Narrow fast path: both operands fit an i64 exactly.
            let d = rhs.to_i64();
            let n = self.to_i64();
            Ok((
                Self::from_i64_wrapping(n / d),
                Self::from_i64_wrapping(n % d),
            ))
        } else {
            let d = rhs.to_i128();
            let n = self.to_i128();
            Ok((
                Self::from_i128_wrapping(n / d),
                Self::from_i128_wrapping(n % d),
            ))
        }
    }

    /// Shift left by `k` trit positions: multiply by 3^k, dropping high
    /// trits (wrapping). `k ≥ N` yields zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// assert_eq!(Word9::from_i64(5)?.shl(2).to_i64(), 45);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    #[must_use]
    pub fn shl(&self, k: usize) -> Self {
        if k >= N {
            return Self::ZERO;
        }
        Self {
            pos: (self.pos << k) & Self::MASK,
            neg: (self.neg << k) & Self::MASK,
        }
    }

    /// Shift right by `k` trit positions: discards the low `k` trits.
    ///
    /// In balanced ternary dropping low trits rounds the value to the
    /// *nearest* multiple of 3^k (ties cannot occur), so `shr(k)` computes
    /// `round(x / 3^k)` — subtly different from the binary arithmetic
    /// shift's floor, and property-tested as such. `k ≥ N` yields zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// assert_eq!(Word9::from_i64(5)?.shr(1).to_i64(), 2);  // 5/3 = 1.67 -> 2
    /// assert_eq!(Word9::from_i64(-5)?.shr(1).to_i64(), -2);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    #[must_use]
    pub fn shr(&self, k: usize) -> Self {
        if k >= N {
            return Self::ZERO;
        }
        Self {
            pos: self.pos >> k,
            neg: self.neg >> k,
        }
    }

    /// Trit-wise ternary AND (minimum), the TALU `AND` operation.
    ///
    /// On bitplanes: the result is −1 wherever either operand is −1,
    /// +1 where both are +1.
    #[inline]
    #[must_use]
    pub fn and(&self, rhs: Self) -> Self {
        Self {
            pos: self.pos & rhs.pos,
            neg: self.neg | rhs.neg,
        }
    }

    /// Trit-wise ternary OR (maximum), the TALU `OR` operation.
    #[inline]
    #[must_use]
    pub fn or(&self, rhs: Self) -> Self {
        Self {
            pos: self.pos | rhs.pos,
            neg: self.neg & rhs.neg,
        }
    }

    /// Trit-wise ternary XOR, the TALU `XOR` operation: `−(a·b)` per trit.
    #[inline]
    #[must_use]
    pub fn xor(&self, rhs: Self) -> Self {
        // Product planes: + where signs agree, − where they differ;
        // XOR is the negation of the product, so the planes swap.
        Self {
            pos: (self.pos & rhs.neg) | (self.neg & rhs.pos),
            neg: (self.pos & rhs.pos) | (self.neg & rhs.neg),
        }
    }

    /// Trit-wise standard ternary inversion (same as [`Trits::negate`]).
    #[inline]
    #[must_use]
    pub fn sti(&self) -> Self {
        self.negate()
    }

    /// Trit-wise negative ternary inversion (0 ↦ −1, ±1 ↦ ∓1 except
    /// +1 ↦ −1): the output is +1 only where the input was −1.
    #[inline]
    #[must_use]
    pub fn nti(&self) -> Self {
        Self {
            pos: self.neg,
            neg: !self.neg & Self::MASK,
        }
    }

    /// Trit-wise positive ternary inversion (0 ↦ +1, +1 ↦ −1, −1 ↦ +1):
    /// the output is −1 only where the input was +1.
    #[inline]
    #[must_use]
    pub fn pti(&self) -> Self {
        Self {
            pos: !self.pos & Self::MASK,
            neg: self.pos,
        }
    }

    /// Number of trit positions whose value differs from `prev` — the
    /// switching activity a register or bus holding `prev` exhibits when
    /// it is overwritten with `self`.
    ///
    /// On the packed representation a trit differs exactly when either
    /// bitplane differs at its position (the balanced encoding is
    /// unique), so the count is one XOR + OR + popcount — the same
    /// differing-trit mask [`Ord::cmp`] scans. This is the primitive the
    /// dynamic energy model (`art9-hw`) is built on; the per-trit
    /// reference it is property-tested against is
    /// [`crate::arith::flips_tritwise`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    ///
    /// let a = Word9::from_i64(8)?;  // 000000+0-
    /// assert_eq!(a.flips_from(&a), 0);
    /// assert_eq!(a.flips_from(&Word9::ZERO), 2); // trits 0 and 2 switch
    /// assert_eq!(Word9::MAX.flips_from(&Word9::MIN), 9); // every trit
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    #[must_use]
    pub fn flips_from(&self, prev: &Self) -> u32 {
        (((self.pos ^ prev.pos) | (self.neg ^ prev.neg)) & Self::MASK).count_ones()
    }

    /// The COMP result of the paper (§IV-A): a word whose every-trit value
    /// is the comparison sign — zero when equal, +1 when `self > rhs`,
    /// −1 when `self < rhs` — so its LST is the 1-trit branch condition.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::{Trit, Word9};
    /// let a = Word9::from_i64(7)?;
    /// let b = Word9::from_i64(9)?;
    /// assert_eq!(a.compare(b).lst(), Trit::N);
    /// assert_eq!(a.compare(a).lst(), Trit::Z);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    #[inline]
    #[must_use]
    pub fn compare(&self, rhs: Self) -> Self {
        // The TALU uses a dedicated trit-serial comparator (most
        // significant trit first), which in balanced ternary is exactly
        // numeric comparison.
        match self.cmp(&rhs) {
            Ordering::Less => Self {
                pos: 0,
                neg: 1 & Self::MASK,
            },
            Ordering::Equal => Self::ZERO,
            Ordering::Greater => Self {
                pos: 1 & Self::MASK,
                neg: 0,
            },
        }
    }
}

impl<const N: usize> PartialOrd for Trits<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for Trits<N> {
    /// Words order by numeric value (not lexicographically by storage).
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // The most significant differing trit decides (balanced
        // representation is unique): one leading-zeros scan instead of
        // a trit loop.
        let differ = (self.pos ^ other.pos) | (self.neg ^ other.neg);
        if differ == 0 {
            return Ordering::Equal;
        }
        let top = 63 - differ.leading_zeros();
        let a = ((self.pos >> top) & 1) as i8 - ((self.neg >> top) & 1) as i8;
        let b = ((other.pos >> top) & 1) as i8 - ((other.neg >> top) & 1) as i8;
        a.cmp(&b)
    }
}

impl<const N: usize> Add for Trits<N> {
    type Output = Self;

    /// Wrapping addition (hardware register semantics).
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
}

impl<const N: usize> Sub for Trits<N> {
    type Output = Self;

    /// Wrapping subtraction (hardware register semantics).
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl<const N: usize> Neg for Trits<N> {
    type Output = Self;

    /// Exact negation (trit-wise STI).
    #[inline]
    fn neg(self) -> Self {
        self.negate()
    }
}

impl<const N: usize> fmt::Debug for Trits<N> {
    /// Shows the trit string and the decimal value, e.g.
    /// `Trits<9>("0000000+0-" = 8)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trits<{N}>(\"{self}\" = {})", self.to_i128())
    }
}

impl<const N: usize> fmt::Display for Trits<N> {
    /// Writes the trits most-significant first, e.g. `000000+0-` for 8.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..N).rev() {
            write!(f, "{}", self.trit(i))?;
        }
        Ok(())
    }
}

impl<const N: usize> FromStr for Trits<N> {
    type Err = TernaryError;

    /// Parses exactly `N` trit characters, most significant first;
    /// underscores are ignored as digit separators.
    ///
    /// # Examples
    ///
    /// ```
    /// use ternary::Word9;
    /// let w: Word9 = "0000_00+0-".parse()?;
    /// assert_eq!(w.to_i64(), 8);
    /// # Ok::<(), ternary::TernaryError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().filter(|c| *c != '_').collect();
        if chars.len() != N {
            return Err(TernaryError::WordLength {
                found: chars.len(),
                expected: N,
            });
        }
        let mut out = Self::ZERO;
        for (i, c) in chars.iter().enumerate() {
            out = out.with_trit(N - 1 - i, Trit::try_from_char(*c)?);
        }
        Ok(out)
    }
}

impl<const N: usize> TryFrom<i64> for Trits<N> {
    type Error = TernaryError;

    fn try_from(v: i64) -> Result<Self, Self::Error> {
        Self::from_i64(v)
    }
}

impl<const N: usize> From<Trits<N>> for i64 {
    fn from(w: Trits<N>) -> i64 {
        w.to_i64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Word9::MAX_VALUE, 9841);
        assert_eq!(Word9::MODULUS, 19683);
        assert_eq!(Word9::MAX.to_i64(), 9841);
        assert_eq!(Word9::MIN.to_i64(), -9841);
        assert_eq!(Word9::ZERO.to_i64(), 0);
        assert_eq!(Word9::WIDTH, 9);
    }

    #[test]
    fn roundtrip_full_range_small_width() {
        // Exhaustive over a 5-trit word.
        for v in -121i64..=121 {
            let w = Trits::<5>::from_i64(v).unwrap();
            assert_eq!(w.to_i64(), v);
        }
    }

    #[test]
    fn from_i64_rejects_out_of_range() {
        assert!(Word9::from_i64(9842).is_err());
        assert!(Word9::from_i64(-9842).is_err());
        assert!(Word9::from_i64(9841).is_ok());
    }

    #[test]
    fn wrapping_conversion() {
        assert_eq!(Word9::from_i64_wrapping(9842).to_i64(), -9841);
        assert_eq!(Word9::from_i64_wrapping(-9842).to_i64(), 9841);
        assert_eq!(Word9::from_i64_wrapping(19683).to_i64(), 0);
        assert_eq!(Word9::from_i64_wrapping(19684).to_i64(), 1);
    }

    #[test]
    fn bitplanes_roundtrip_and_invariants() {
        for v in -121i64..=121 {
            let w = Trits::<5>::from_i64(v).unwrap();
            let (pos, neg) = w.bitplanes();
            assert_eq!(pos & neg, 0, "planes overlap for {v}");
            assert_eq!(pos | neg, (pos | neg) & 0b11111, "stray high bits for {v}");
            assert_eq!(Trits::<5>::from_bitplanes(pos, neg).unwrap(), w);
        }
    }

    #[test]
    fn from_bitplanes_rejects_bad_planes() {
        match Trits::<5>::from_bitplanes(0b00100, 0b00100) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 2),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
        match Trits::<5>::from_bitplanes(1 << 5, 0) {
            Err(TernaryError::InvalidBctPair { index }) => assert_eq!(index, 5),
            other => panic!("expected InvalidBctPair, got {other:?}"),
        }
    }

    #[test]
    fn trits_array_roundtrip() {
        for v in [-9841i64, -100, 0, 8, 9841] {
            let w = Word9::from_i64(v).unwrap();
            assert_eq!(Word9::from_trits(w.trits()), w);
            for (i, t) in w.trits().iter().enumerate() {
                assert_eq!(w.trit(i), *t);
            }
        }
    }

    #[test]
    fn addition_matches_integers() {
        for a in [-9841i64, -100, -1, 0, 1, 100, 9841] {
            for b in [-9841i64, -50, 0, 3, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(
                    (wa + wb).to_i64(),
                    Word9::from_i64_wrapping(a + b).to_i64(),
                    "{a} + {b}"
                );
            }
        }
    }

    #[test]
    fn addition_exhaustive_small_width() {
        // The packed carry loop agrees with integer addition on every
        // pair of 3-trit words (worst-case carry chains included).
        for a in -13i64..=13 {
            for b in -13i64..=13 {
                let wa = Trits::<3>::from_i64(a).unwrap();
                let wb = Trits::<3>::from_i64(b).unwrap();
                let (s, c) = wa.carrying_add(wb);
                assert_eq!(a + b, s.to_i64() + 27 * c.value() as i64, "{a} + {b}");
            }
        }
    }

    #[test]
    fn carry_out_identity() {
        let one = Word9::from_i64(1).unwrap();
        let (s, c) = Word9::MAX.carrying_add(one);
        assert_eq!(
            Word9::MAX.to_i64() + 1,
            s.to_i64() + Word9::MODULUS * c.value() as i64
        );
    }

    #[test]
    fn negation_is_exact_involution() {
        for v in [-9841i64, -4921, -1, 0, 1, 4921, 9841] {
            let w = Word9::from_i64(v).unwrap();
            assert_eq!(w.negate().to_i64(), -v);
            assert_eq!(w.negate().negate(), w);
        }
    }

    #[test]
    fn subtraction_matches_integers() {
        let a = Word9::from_i64(123).unwrap();
        let b = Word9::from_i64(456).unwrap();
        assert_eq!((a - b).to_i64(), -333);
        assert_eq!((b - a).to_i64(), 333);
    }

    #[test]
    fn multiplication_wraps() {
        let a = Word9::from_i64(100).unwrap();
        let b = Word9::from_i64(98).unwrap();
        assert_eq!(a.wrapping_mul(b).to_i64(), 9800);
        let c = Word9::from_i64(200).unwrap();
        assert_eq!(
            a.wrapping_mul(c).to_i64(),
            Word9::from_i64_wrapping(20000).to_i64()
        );
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        let n = Word9::from_i64(-7).unwrap();
        let d = Word9::from_i64(2).unwrap();
        let (q, r) = n.div_rem(d).unwrap();
        assert_eq!((q.to_i64(), r.to_i64()), (-3, -1));
        assert!(n.div_rem(Word9::ZERO).is_err());
    }

    #[test]
    fn shifts() {
        let w = Word9::from_i64(5).unwrap();
        assert_eq!(w.shl(1).to_i64(), 15);
        assert_eq!(w.shl(2).to_i64(), 45);
        assert_eq!(w.shl(9).to_i64(), 0);
        // Balanced right shift rounds to nearest.
        assert_eq!(w.shr(1).to_i64(), 2); // 5/3 rounds to 2
        assert_eq!(Word9::from_i64(4).unwrap().shr(1).to_i64(), 1); // 4/3 -> 1
        assert_eq!(Word9::from_i64(-5).unwrap().shr(1).to_i64(), -2);
        assert_eq!(w.shr(9).to_i64(), 0);
    }

    #[test]
    fn shr_rounds_to_nearest_exhaustive_small() {
        for v in -121i64..=121 {
            let w = Trits::<5>::from_i64(v).unwrap();
            let shifted = w.shr(1).to_i64();
            // round-half-never-happens nearest of v/3
            let expect = (v as f64 / 3.0).round() as i64;
            assert_eq!(shifted, expect, "shr(1) of {v}");
        }
    }

    #[test]
    fn logic_ops_tritwise() {
        let a: Word9 = "0000000+-".parse().unwrap();
        let b: Word9 = "0000000--".parse().unwrap();
        assert_eq!(a.and(b).to_string(), "0000000--");
        assert_eq!(a.or(b).to_string(), "0000000+-");
        // xor: t1 = xor(+,-) = +1 (signs differ), t0 = xor(-,-) = -1 (agree)
        assert_eq!(a.xor(b).to_string(), "0000000+-");
        assert_eq!(a.sti().to_string(), "0000000-+");
        assert_eq!(a.nti().to_string(), "--------+"); // zeros -> -1
        assert_eq!(a.pti().to_string(), "+++++++-+"); // zeros -> +1
    }

    #[test]
    fn logic_ops_match_trit_tables_exhaustive() {
        // Word-level bit twiddling vs. the Fig. 1 truth tables, over
        // every pair of 2-trit words.
        for a in -4i64..=4 {
            for b in -4i64..=4 {
                let wa = Trits::<2>::from_i64(a).unwrap();
                let wb = Trits::<2>::from_i64(b).unwrap();
                for i in 0..2 {
                    assert_eq!(wa.and(wb).trit(i), wa.trit(i).and(wb.trit(i)));
                    assert_eq!(wa.or(wb).trit(i), wa.trit(i).or(wb.trit(i)));
                    assert_eq!(wa.xor(wb).trit(i), wa.trit(i).xor(wb.trit(i)));
                    assert_eq!(wa.sti().trit(i), wa.trit(i).sti());
                    assert_eq!(wa.nti().trit(i), wa.trit(i).nti());
                    assert_eq!(wa.pti().trit(i), wa.trit(i).pti());
                }
            }
        }
    }

    #[test]
    fn flips_count_differing_trits() {
        let a = Word9::from_i64(8).unwrap(); // 000000+0-
        assert_eq!(a.flips_from(&a), 0);
        assert_eq!(a.flips_from(&Word9::ZERO), 2);
        assert_eq!(Word9::ZERO.flips_from(&a), 2); // symmetric
        assert_eq!(Word9::MAX.flips_from(&Word9::MIN), 9);
        // −8 = 000000-0+: both nonzero trits swap sign, both count.
        assert_eq!(a.flips_from(&a.negate()), 2);
        // Exhaustive against the unpacked definition on a 3-trit word.
        for x in -13i64..=13 {
            for y in -13i64..=13 {
                let wx = Trits::<3>::from_i64(x).unwrap();
                let wy = Trits::<3>::from_i64(y).unwrap();
                let expect = (0..3).filter(|&i| wx.trit(i) != wy.trit(i)).count() as u32;
                assert_eq!(wx.flips_from(&wy), expect, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn compare_semantics() {
        let a = Word9::from_i64(7).unwrap();
        let b = Word9::from_i64(9).unwrap();
        assert_eq!(a.compare(b).lst(), Trit::N);
        assert_eq!(b.compare(a).lst(), Trit::P);
        assert_eq!(a.compare(a).lst(), Trit::Z);
        assert_eq!(a.compare(b).to_i64(), -1);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut vals: Vec<Word9> = [-5i64, 3, -9841, 9841, 0]
            .iter()
            .map(|v| Word9::from_i64(*v).unwrap())
            .collect();
        vals.sort();
        let sorted: Vec<i64> = vals.iter().map(Word9::to_i64).collect();
        assert_eq!(sorted, vec![-9841, -5, 0, 3, 9841]);
    }

    #[test]
    fn field_extraction_and_splice() {
        let w = Word9::from_i64(8).unwrap(); // +0- in low trits
        assert_eq!(w.field::<2>(0).trits(), [Trit::N, Trit::Z]);
        assert_eq!(w.field::<3>(0).to_i64(), 8);
        let spliced = Word9::ZERO.with_field::<3>(0, Trits::<3>::from_i64(8).unwrap());
        assert_eq!(spliced.to_i64(), 8);
        // LUI-style: imm[3:0] into positions 5..9
        let hi = Word9::ZERO.with_field::<4>(5, Trits::<4>::from_i64(40).unwrap());
        assert_eq!(hi.to_i64(), 40 * 243);
    }

    #[test]
    fn resize_sign_extends_exactly() {
        for v in -13i64..=13 {
            let imm = Trits::<3>::from_i64(v).unwrap();
            assert_eq!(imm.resize::<9>().to_i64(), v);
        }
        // Narrowing keeps low trits.
        let w = Word9::from_i64(100).unwrap();
        assert_eq!(
            w.resize::<3>().to_i64(),
            Trits::<3>::from_i64_wrapping(100).to_i64()
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for v in [-9841i64, -1, 0, 8, 9841] {
            let w = Word9::from_i64(v).unwrap();
            let s = w.to_string();
            assert_eq!(s.parse::<Word9>().unwrap(), w);
            assert_eq!(s.len(), 9);
        }
        assert!("++".parse::<Word9>().is_err());
        assert!("0000000x+".parse::<Word9>().is_err());
    }

    #[test]
    fn debug_shows_trits_and_value() {
        let w = Word9::from_i64(8).unwrap();
        let s = format!("{w:?}");
        assert!(s.contains("+0-"), "{s}");
        assert!(s.contains('8'), "{s}");
    }

    #[test]
    fn sign_matches_value_sign() {
        for v in [-9841i64, -3, 0, 2, 9841] {
            let w = Word9::from_i64(v).unwrap();
            assert_eq!(w.sign().value() as i64, v.signum());
        }
    }

    #[test]
    fn pow3_table() {
        assert_eq!(pow3(0), 1);
        assert_eq!(pow3(9), 19683);
        assert_eq!(pow3(2), 9);
    }

    #[test]
    fn pow3_i128_table() {
        assert_eq!(pow3_i128(0), 1);
        assert_eq!(pow3_i128(9), 19683);
        assert_eq!(pow3_i128(40), 12_157_665_459_056_928_801);
        // 3^80 is the widest power an i128 holds.
        assert_eq!(pow3_i128(80), pow3_i128(40) * pow3_i128(40));
    }

    // ---- Wide-width regressions (ISSUE 10) ---------------------------
    //
    // `Trits<40>` and `Trits<63>` used to fail to *compile* the moment
    // any conversion was instantiated: `MAX_VALUE`/`MODULUS` const-eval
    // panicked in `pow3` for N > 39. These tests pin the fix by
    // instantiating both widths and round-tripping the extremes.

    #[test]
    fn trits40_compiles_and_roundtrips_extremes() {
        let max = Trits::<40>::MAX_VALUE_I128;
        assert_eq!(max, (pow3_i128(40) - 1) / 2);
        // MAX_VALUE (i64) is still available at N = 40 — the widest
        // width whose bound fits an i64.
        assert_eq!(Trits::<40>::MAX_VALUE as i128, max);
        for v in [-max, -1, 0, 1, max] {
            let w = Trits::<40>::from_i128(v).unwrap();
            assert_eq!(w.to_i128(), v);
            assert_eq!(w.to_i64() as i128, v); // whole range fits i64
        }
        assert_eq!(Trits::<40>::MAX.to_i128(), max);
        assert_eq!(Trits::<40>::MIN.to_i128(), -max);
    }

    #[test]
    fn trits63_compiles_and_roundtrips_extremes() {
        let max = Trits::<63>::MAX_VALUE_I128;
        for v in [-max, -max + 1, -1, 0, 1, max - 1, max] {
            let w = Trits::<63>::from_i128(v).unwrap();
            assert_eq!(w.to_i128(), v);
        }
        assert_eq!(Trits::<63>::MAX.to_i128(), max);
        assert_eq!(Trits::<63>::MIN.to_i128(), -max);
        assert!(Trits::<63>::from_i128(max + 1).is_err());
        assert!(Trits::<63>::from_i128(-max - 1).is_err());
    }

    #[test]
    fn from_i128_wrapping_corner_at_n40() {
        // The audited bug: the old implementation reduced by the broken
        // i64 modulus and funneled through `from_i64_wrapping`. Corner
        // values at ±(3^40 − 1)/2 must wrap symmetrically.
        let max = Trits::<40>::MAX_VALUE_I128;
        assert_eq!(Trits::<40>::from_i128_wrapping(max).to_i128(), max);
        assert_eq!(Trits::<40>::from_i128_wrapping(max + 1).to_i128(), -max);
        assert_eq!(Trits::<40>::from_i128_wrapping(-max - 1).to_i128(), max);
        let m = Trits::<40>::MODULUS_I128;
        assert_eq!(Trits::<40>::from_i128_wrapping(m).to_i128(), 0);
        assert_eq!(Trits::<40>::from_i128_wrapping(m + 7).to_i128(), 7);
        assert_eq!(Trits::<40>::from_i128_wrapping(-m - 7).to_i128(), -7);
    }

    #[test]
    fn narrow_and_wide_wrapping_agree() {
        // The i64 fast path and the i128 path implement one function.
        for v in [-9_000_000i64, -9841, -1, 0, 1, 9841, 123_456_789] {
            assert_eq!(
                Word9::from_i64_wrapping(v),
                Word9::from_i128_wrapping(v as i128),
                "{v}"
            );
            assert_eq!(
                Trits::<40>::from_i64_wrapping(v),
                Trits::<40>::from_i128_wrapping(v as i128),
                "{v}"
            );
            assert_eq!(
                Trits::<63>::from_i64_wrapping(v),
                Trits::<63>::from_i128_wrapping(v as i128),
                "{v}"
            );
        }
    }

    #[test]
    fn try_to_i64_fails_typed_past_the_i64_range() {
        let big = Trits::<63>::MAX;
        match big.try_to_i64() {
            Err(TernaryError::NarrowingOverflow { value, width }) => {
                assert_eq!(value, Trits::<63>::MAX_VALUE_I128);
                assert_eq!(width, 63);
            }
            other => panic!("expected NarrowingOverflow, got {other:?}"),
        }
        assert_eq!(Trits::<63>::from_i128(42).unwrap().try_to_i64(), Ok(42));
    }

    #[test]
    fn wide_arithmetic_matches_i128_domain() {
        // Packed kernels at 63 trits against exact integer arithmetic.
        let max = Trits::<63>::MAX_VALUE_I128;
        let samples = [-max, -max / 2, -12_345, -1, 0, 1, 98_765, max / 3, max];
        for &a in &samples {
            let wa = Trits::<63>::from_i128(a).unwrap();
            assert_eq!(wa.negate().to_i128(), -a, "-{a}");
            for &b in &samples {
                let wb = Trits::<63>::from_i128(b).unwrap();
                assert_eq!(
                    wa.wrapping_add(wb),
                    Trits::<63>::from_i128_wrapping(a + b),
                    "{a} + {b}"
                );
                assert_eq!(
                    wa.wrapping_sub(wb),
                    Trits::<63>::from_i128_wrapping(a - b),
                    "{a} - {b}"
                );
                assert_eq!(wa.cmp(&wb), a.cmp(&b), "{a} cmp {b}");
                if b != 0 {
                    let (q, r) = wa.div_rem(wb).unwrap();
                    assert_eq!((q.to_i128(), r.to_i128()), (a / b, a % b), "{a} / {b}");
                }
            }
        }
    }

    #[test]
    fn wide_mul_shift_add_matches_integer_path() {
        // N = 63 multiplication runs the packed shift-and-add branch;
        // on operands whose exact product fits i128 it must agree with
        // a single wide reduction.
        let samples = [
            -3_037_000_499i128,
            -123_456,
            -1,
            0,
            1,
            99_991,
            2_147_483_647,
        ];
        for &a in &samples {
            for &b in &samples {
                let wa = Trits::<63>::from_i128(a).unwrap();
                let wb = Trits::<63>::from_i128(b).unwrap();
                assert_eq!(
                    wa.wrapping_mul(wb),
                    Trits::<63>::from_i128_wrapping(a * b),
                    "{a} * {b}"
                );
            }
        }
        // And the carry-out identity still holds at 63 trits.
        let one = Trits::<63>::from_i128(1).unwrap();
        let (s, c) = Trits::<63>::MAX.carrying_add(one);
        assert_eq!(s, Trits::<63>::MIN);
        assert_eq!(c, Trit::P);
    }
}
