//! Property-based tests for the balanced ternary substrate.
//!
//! These pin the algebraic contracts that the rest of the workspace
//! (ISA semantics, pipeline datapath, gate-level models) relies on.

use proptest::prelude::*;
use ternary::simd::Word9xN;
use ternary::{arith, encoding, pow3, TernaryReal, Trit, Trits, WideTrits, Word27, Word81, Word9};

const W9_MAX: i64 = 9841;

fn word9() -> impl Strategy<Value = Word9> {
    (-W9_MAX..=W9_MAX).prop_map(|v| Word9::from_i64(v).expect("in range"))
}

fn trit() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::N), Just(Trit::Z), Just(Trit::P)]
}

proptest! {
    #[test]
    fn roundtrip_i64(v in -W9_MAX..=W9_MAX) {
        prop_assert_eq!(Word9::from_i64(v).unwrap().to_i64(), v);
    }

    #[test]
    fn wrapping_is_mod_3n(v in proptest::num::i64::ANY) {
        let w = Word9::from_i64_wrapping(v);
        let m = pow3(9);
        // Same residue class, symmetric range.
        prop_assert_eq!(((w.to_i64() - v) % m + m) % m, 0);
        prop_assert!((-W9_MAX..=W9_MAX).contains(&w.to_i64()));
    }

    #[test]
    fn add_commutative_associative(a in word9(), b in word9(), c in word9()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn add_matches_wrapped_integer_add(a in word9(), b in word9()) {
        prop_assert_eq!(
            (a + b).to_i64(),
            Word9::from_i64_wrapping(a.to_i64() + b.to_i64()).to_i64()
        );
    }

    #[test]
    fn sub_is_add_of_negation(a in word9(), b in word9()) {
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!((a - b) + b, a);
    }

    #[test]
    fn negation_exact_and_involutive(a in word9()) {
        prop_assert_eq!((-a).to_i64(), -a.to_i64()); // no edge case, unlike two's complement
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn mul_matches_wrapped_integer_mul(a in word9(), b in word9()) {
        prop_assert_eq!(
            a.wrapping_mul(b).to_i64(),
            Word9::from_i128_like(a.to_i64() as i128 * b.to_i64() as i128)
        );
    }

    #[test]
    fn div_rem_reconstructs(a in word9(), b in word9().prop_filter("nonzero", |w| !w.is_zero())) {
        let (q, r) = a.div_rem(b).unwrap();
        prop_assert_eq!(q.to_i64() * b.to_i64() + r.to_i64(), a.to_i64());
        prop_assert!(r.to_i64().abs() < b.to_i64().abs());
    }

    #[test]
    fn shl_multiplies_by_three(a in word9(), k in 0usize..4) {
        let shifted = a.shl(k);
        prop_assert_eq!(
            shifted.to_i64(),
            Word9::from_i64_wrapping(a.to_i64().wrapping_mul(pow3(k))).to_i64()
        );
    }

    #[test]
    fn shr_rounds_to_nearest(a in word9(), k in 0usize..5) {
        let shifted = a.shr(k).to_i64();
        let div = pow3(k) as f64;
        let expect = (a.to_i64() as f64 / div).round() as i64;
        prop_assert_eq!(shifted, expect);
    }

    #[test]
    fn shr_then_shl_bounds_error(a in word9(), k in 0usize..5) {
        // |x - (x >> k) << k| <= (3^k - 1) / 2: right shift loses at most
        // half a unit in the last place (nearest rounding).
        let approx = a.shr(k).shl(k).to_i64();
        prop_assert!((a.to_i64() - approx).abs() <= (pow3(k) - 1) / 2);
    }

    #[test]
    fn compare_matches_ord(a in word9(), b in word9()) {
        let c = a.compare(b);
        prop_assert_eq!(c.lst().value() as i64, {
            use std::cmp::Ordering::*;
            match a.to_i64().cmp(&b.to_i64()) { Less => -1, Equal => 0, Greater => 1 }
        });
        prop_assert_eq!(c.to_i64().signum(), (a.to_i64() - b.to_i64()).signum());
    }

    #[test]
    fn logic_de_morgan_min_max(a in word9(), b in word9()) {
        // STI(min(a,b)) = max(STI(a), STI(b)) trit-wise.
        prop_assert_eq!(a.and(b).sti(), a.sti().or(b.sti()));
        prop_assert_eq!(a.or(b).sti(), a.sti().and(b.sti()));
    }

    #[test]
    fn logic_idempotent_absorbing(a in word9(), b in word9()) {
        prop_assert_eq!(a.and(a), a);
        prop_assert_eq!(a.or(a), a);
        prop_assert_eq!(a.and(b).or(a), a); // absorption
    }

    #[test]
    fn xor_properties(a in word9(), b in word9()) {
        prop_assert_eq!(a.xor(b), b.xor(a));
        prop_assert_eq!(a.xor(Word9::ZERO), Word9::ZERO); // zero absorbs (MVL XOR)
    }

    #[test]
    fn bct_roundtrip(a in word9()) {
        let packed = encoding::pack(&a);
        prop_assert!(packed < (1u64 << 18));
        prop_assert_eq!(encoding::unpack::<9>(packed).unwrap(), a);
    }

    #[test]
    fn bct_packed_add_matches(a in word9(), b in word9()) {
        let s = encoding::packed_add::<9>(encoding::pack(&a), encoding::pack(&b)).unwrap();
        prop_assert_eq!(encoding::unpack::<9>(s).unwrap(), a.wrapping_add(b));
    }

    #[test]
    fn full_adder_identity(a in trit(), b in trit(), c in trit()) {
        let (s, k) = a.full_add(b, c);
        prop_assert_eq!(
            a.value() + b.value() + c.value(),
            s.value() + 3 * k.value()
        );
    }

    #[test]
    fn display_parse_roundtrip(a in word9()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Word9>().unwrap(), a);
    }

    #[test]
    fn field_splice_roundtrip(a in word9(), lo in 0usize..7) {
        let f = a.field::<3>(lo.min(6));
        let back = a.with_field::<3>(lo.min(6), f);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn sign_extension_via_resize(v in -13i64..=13) {
        let narrow = Trits::<3>::from_i64(v).unwrap();
        prop_assert_eq!(narrow.resize::<9>().to_i64(), v);
    }

    #[test]
    fn ordering_total_and_numeric(a in word9(), b in word9()) {
        prop_assert_eq!(a.cmp(&b), a.to_i64().cmp(&b.to_i64()));
    }

    // ---- Packed bitplane kernels vs. retained per-trit references ----
    //
    // The word kernels operate on two packed binary bitplanes (PR 2);
    // `ternary::arith` keeps the per-trit algorithms as executable
    // specifications. These properties pin the two implementations to
    // each other over random `Trits<9>` pairs.

    #[test]
    fn packed_add_agrees_with_tritwise_reference(a in word9(), b in word9()) {
        let (packed_sum, packed_carry) = a.carrying_add(b);
        let (ref_sum, ref_carry) = ternary::arith::add_tritwise(a, b);
        prop_assert_eq!(packed_sum, ref_sum);
        prop_assert_eq!(packed_carry, ref_carry);
    }

    #[test]
    fn packed_add_carry_identity(a in word9(), b in word9()) {
        // a + b = sum + 3^9 * carry, exactly.
        let (sum, carry) = a.carrying_add(b);
        prop_assert_eq!(
            a.to_i64() + b.to_i64(),
            sum.to_i64() + pow3(9) * carry.value() as i64
        );
    }

    #[test]
    fn packed_logic_agrees_with_trit_tables(a in word9(), b in word9(), i in 0usize..9) {
        // Word-level bit twiddling vs. the Fig. 1 truth tables per trit.
        prop_assert_eq!(a.and(b).trit(i), a.trit(i).and(b.trit(i)));
        prop_assert_eq!(a.or(b).trit(i), a.trit(i).or(b.trit(i)));
        prop_assert_eq!(a.xor(b).trit(i), a.trit(i).xor(b.trit(i)));
        prop_assert_eq!(a.sti().trit(i), a.trit(i).sti());
        prop_assert_eq!(a.nti().trit(i), a.trit(i).nti());
        prop_assert_eq!(a.pti().trit(i), a.trit(i).pti());
    }

    #[test]
    fn bitplanes_roundtrip_and_disjoint(a in word9()) {
        let (pos, neg) = a.bitplanes();
        prop_assert_eq!(pos & neg, 0);
        prop_assert_eq!(pos | neg, (pos | neg) & 0x1FF); // 9 low bits only
        prop_assert_eq!(Word9::from_bitplanes(pos, neg).unwrap(), a);
    }

    #[test]
    fn trits_array_roundtrip(a in word9()) {
        prop_assert_eq!(Word9::from_trits(a.trits()), a);
    }

    #[test]
    fn bct_packed_negate_negates(a in word9()) {
        let n = encoding::packed_negate::<9>(encoding::pack(&a));
        prop_assert_eq!(encoding::unpack::<9>(n).unwrap(), a.negate());
    }

    #[test]
    fn tritwise_mul_agrees_with_integer_mul(a in word9(), b in word9()) {
        prop_assert_eq!(ternary::arith::mul_tritwise(a, b), a.wrapping_mul(b));
    }

    #[test]
    fn packed_flips_agree_with_tritwise_reference(a in word9(), b in word9()) {
        prop_assert_eq!(a.flips_from(&b), ternary::arith::flips_tritwise(a, b));
        prop_assert_eq!(a.flips_from(&b), b.flips_from(&a)); // symmetric
        prop_assert_eq!(a.flips_from(&a), 0);
    }

    #[test]
    fn packed_flips_agree_every_width(a in flip_operand(9841), b in flip_operand(9841)) {
        // Every `Trits<N>` width the workspace instantiates (register
        // indices, immediates, LI payloads, the machine word), with the
        // operand pool biased toward the ±3^k carry/borrow corners where
        // many trits change at once.
        check_flips::<2>(a, b);
        check_flips::<3>(a, b);
        check_flips::<4>(a, b);
        check_flips::<5>(a, b);
        check_flips::<9>(a, b);
    }

    #[test]
    fn flips_bounded_by_width(a in word9(), b in word9()) {
        prop_assert!(a.flips_from(&b) <= 9);
    }

    #[test]
    fn tritwise_div_agrees_with_integer_div(
        a in word9(),
        b in word9().prop_filter("nonzero", |w| !w.is_zero())
    ) {
        let (q, r) = ternary::arith::div_rem_tritwise(a, b).unwrap();
        let (qi, ri) = a.div_rem(b).unwrap();
        prop_assert_eq!(q, qi);
        prop_assert_eq!(r, ri);
    }
}

// ---- Bitplane-SIMD lanes vs. the per-lane references ----------------
//
// `simd::Word9xN` runs the word kernels across many lanes at once;
// `arith::{add,mac,compare,...}_lanewise` perform the same work one
// lane at a time through the per-trit algorithms. Lane counts straddle
// the 6-lanes-per-u64 packing boundary on purpose.

proptest! {
    #[test]
    fn simd_add_sub_agree_with_lanewise_reference(
        (a, b) in lane_pair(1..=14)
    ) {
        let va = Word9xN::from_words(&a);
        let vb = Word9xN::from_words(&b);
        prop_assert_eq!(va.wrapping_add(&vb).to_words(), arith::add_lanewise(&a, &b));
        prop_assert_eq!(
            va.wrapping_sub(&vb).to_words(),
            arith::add_lanewise(&a, &arith::negate_lanewise(&b))
        );
        prop_assert_eq!(va.negate().to_words(), arith::negate_lanewise(&a));
    }

    #[test]
    fn simd_logic_agrees_with_lanewise_reference((a, b) in lane_pair(1..=14)) {
        let va = Word9xN::from_words(&a);
        let vb = Word9xN::from_words(&b);
        prop_assert_eq!(va.and(&vb).to_words(), arith::logic_lanewise(&a, &b, Trit::and));
        prop_assert_eq!(va.or(&vb).to_words(), arith::logic_lanewise(&a, &b, Trit::or));
        prop_assert_eq!(va.xor(&vb).to_words(), arith::logic_lanewise(&a, &b, Trit::xor));
    }

    #[test]
    fn simd_compare_agrees_with_lanewise_reference((a, b) in lane_pair(1..=14)) {
        let va = Word9xN::from_words(&a);
        let vb = Word9xN::from_words(&b);
        prop_assert_eq!(va.compare(&vb).lane_lsts(), arith::compare_lanewise(&a, &b));
    }

    #[test]
    fn simd_mac_agrees_with_lanewise_reference(
        (acc, x) in lane_pair(1..=14),
        seed in proptest::num::u64::ANY
    ) {
        // Weights derived from the seed so every {−1,0,+1} mix occurs.
        let weights: Vec<Trit> = (0..acc.len())
            .map(|i| match (seed >> (2 * (i % 32))) % 3 {
                0 => Trit::N,
                1 => Trit::Z,
                _ => Trit::P,
            })
            .collect();
        let out = Word9xN::from_words(&acc).mac_trits(&Word9xN::from_words(&x), &weights);
        prop_assert_eq!(out.to_words(), arith::mac_lanewise(&acc, &x, &weights));
    }

    #[test]
    fn simd_reduce_agrees_with_lanewise_reference(a in lane_words(0..=20)) {
        prop_assert_eq!(
            Word9xN::from_words(&a).reduce_add(),
            arith::reduce_add_lanewise(&a)
        );
    }

    #[test]
    fn simd_splat_lane_roundtrip(v in -W9_MAX..=W9_MAX, lanes in 1usize..=13) {
        let w = Word9::from_i64(v).unwrap();
        let s = Word9xN::splat(w, lanes);
        prop_assert_eq!(s.lanes(), lanes);
        for i in 0..lanes {
            prop_assert_eq!(s.lane(i), w);
        }
    }
}

/// Strategy: a lane vector of corner-biased words (see [`flip_operand`]).
fn lane_words(lanes: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<Word9>> {
    proptest::collection::vec(flip_operand(9841).prop_map(Word9::from_i64_wrapping), lanes)
}

/// Strategy: two equal-length lane vectors (generated as a vector of
/// lane pairs, then unzipped).
fn lane_pair(
    lanes: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = (Vec<Word9>, Vec<Word9>)> {
    let word = || flip_operand(9841).prop_map(Word9::from_i64_wrapping);
    proptest::collection::vec((word(), word()), lanes).prop_map(|pairs| pairs.into_iter().unzip())
}

/// Operand strategy for the flips properties: uniform values mixed with
/// the adversarial ±3^k corners (and their ±1 neighbours), where a
/// single increment flips a long run of trits at once.
fn flip_operand(max: i64) -> impl Strategy<Value = i64> {
    let corners: Vec<i64> = (0..9)
        .flat_map(|k| {
            let p = pow3(k);
            [p - 1, p, p + 1, -p + 1, -p, -p - 1]
        })
        .filter(move |v| v.abs() <= max)
        .collect();
    let len = corners.len();
    prop_oneof![
        3 => -max..=max,
        2 => (0usize..len).prop_map(move |i| corners[i]),
    ]
}

/// Pins packed `flips_from` to the per-trit reference at one width, with
/// both operands wrapped into range like the datapath would.
fn check_flips<const N: usize>(a: i64, b: i64) {
    let wa = Trits::<N>::from_i64_wrapping(a);
    let wb = Trits::<N>::from_i64_wrapping(b);
    let packed = wa.flips_from(&wb);
    let reference = ternary::arith::flips_tritwise(wa, wb);
    assert_eq!(packed, reference, "width {N} with {a} vs {b}");
    assert!(packed <= N as u32);
}

// ---- Width-parametric: packed kernels vs per-trit references --------
//
// The same carry-loop, shift-and-add and plane-swap kernels must hold
// at every width the crate supports — including the once-broken
// 40..=63 band and the multi-plane 27/81-trit words. Each check pins
// the packed operation against the trit-serial reference in `arith`.

proptest! {
    #[test]
    fn packed_matches_tritwise_every_width(a in wide_operand(), b in wide_operand()) {
        check_width::<1>(a, b);
        check_width::<13>(a, b);
        check_width::<27>(a, b);
        check_width::<40>(a, b);
        check_width::<63>(a, b);
    }

    #[test]
    fn multi_plane_words_match_references(a in wide_operand(), b in wide_operand()) {
        check_planes::<27, 1>(a, b);
        check_planes::<81, 2>(a, b);
    }

    #[test]
    fn word27_agrees_with_single_plane_trits27(a in wide_operand(), b in wide_operand()) {
        // The one-plane wide word and Trits<27> are the same arithmetic.
        let ta = Trits::<27>::from_i128_wrapping(a);
        let tb = Trits::<27>::from_i128_wrapping(b);
        let (wa, wb) = (Word27::from_word(ta), Word27::from_word(tb));
        let (ts, tc) = ta.carrying_add(tb);
        prop_assert_eq!(wa.carrying_add(wb), (Word27::from_word(ts), tc));
        prop_assert_eq!(wa.wrapping_mul(wb), Word27::from_word(ta.wrapping_mul(tb)));
        prop_assert_eq!(wa.cmp(&wb), ta.cmp(&tb));
    }

    #[test]
    fn word81_beyond_i128_still_matches_tritwise(
        a in wide_operand(),
        b in wide_operand(),
        k in 0usize..40
    ) {
        // Shift the operands into the region only 81 trits can hold
        // (no integer oracle exists there) and pin packed vs per-trit.
        let wa = Word81::from_i128_wrapping(a).shl(k);
        let wb = Word81::from_i128_wrapping(b).shl(k / 2);
        prop_assert_eq!(wa.carrying_add(wb), arith::wide_add_tritwise(wa, wb));
        prop_assert_eq!(wa.negate(), arith::wide_negate_tritwise(wa));
        prop_assert_eq!(wa.cmp(&wb), arith::wide_compare_tritwise(wa, wb));
        prop_assert_eq!(wa.flips_from(&wb), arith::wide_flips_tritwise(wa, wb));
    }

    #[test]
    fn wide_conversions_roundtrip(v in any_i128()) {
        // Every i128 fits an 81-trit word exactly.
        prop_assert_eq!(Word81::from_i128(v).unwrap().try_to_i128(), Some(v));
        // At 63 trits the wrap is mod 3^63 onto the symmetric range.
        let w = Trits::<63>::from_i128_wrapping(v);
        let m = ternary::pow3_i128(63);
        let wrapped = {
            let mut r = v.rem_euclid(m);
            if r > (m - 1) / 2 {
                r -= m;
            }
            r
        };
        prop_assert_eq!(w.to_i128(), wrapped);
    }

    #[test]
    fn tapered_real_add_mul_match_reference(a in real_operand(), b in real_operand()) {
        prop_assert_eq!(arith::real_parts(&a.add(&b)), arith::real_add_ref(&a, &b));
        prop_assert_eq!(arith::real_parts(&a.mul(&b)), arith::real_mul_ref(&a, &b));
        // Commutativity holds exactly (both sides round the same sum).
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        // a − a is exactly zero: no cancellation error.
        prop_assert_eq!(a.sub(&a), TernaryReal::ZERO);
    }

    #[test]
    fn tapered_packing_is_idempotent(a in real_operand()) {
        // One encode/decode may shed taper-displaced trits; a second
        // pass must be exact.
        let once = TernaryReal::from_tapered(a.to_tapered());
        prop_assert_eq!(TernaryReal::from_tapered(once.to_tapered()), once);
    }
}

/// Whole-domain `i128` strategy (the vendored proptest only ships
/// 64-bit primitives, so compose one from two halves).
fn any_i128() -> impl Strategy<Value = i128> {
    (proptest::num::u64::ANY, proptest::num::u64::ANY)
        .prop_map(|(hi, lo)| (((hi as u128) << 64) | lo as u128) as i128)
}

/// Operand strategy for the wide widths: uniform `i128` values mixed
/// with the ±3^k carry corners (and neighbours) up to 3^80.
fn wide_operand() -> impl Strategy<Value = i128> {
    let corners: Vec<i128> = (0..=80)
        .step_by(4)
        .flat_map(|k| {
            let p = ternary::pow3_i128(k);
            [p - 1, p, p + 1, -p + 1, -p, -p - 1]
        })
        .chain([i128::MIN, i128::MAX, 0])
        .collect();
    let len = corners.len();
    prop_oneof![
        3 => any_i128(),
        2 => (0usize..len).prop_map(move |i| corners[i]),
    ]
}

/// Strategy over tapered reals spanning the exponent range, built from
/// a scaled significand so negative exponents occur too.
fn real_operand() -> impl Strategy<Value = TernaryReal> {
    (proptest::num::i64::ANY, -60i32..=60).prop_map(|(m, e)| TernaryReal::from_scaled(m, e))
}

/// Pins every packed `Trits<N>` kernel to its trit-serial reference at
/// one width, operands wrapped into range.
fn check_width<const N: usize>(a: i128, b: i128) {
    let wa = Trits::<N>::from_i128_wrapping(a);
    let wb = Trits::<N>::from_i128_wrapping(b);
    assert_eq!(
        Trits::<N>::from_i128_wrapping(wa.to_i128()),
        wa,
        "width {N} roundtrip of {a}"
    );
    assert_eq!(
        wa.carrying_add(wb),
        arith::add_tritwise(wa, wb),
        "width {N} add {a} {b}"
    );
    assert_eq!(
        wa.wrapping_mul(wb),
        arith::mul_tritwise(wa, wb),
        "width {N} mul {a} {b}"
    );
    assert_eq!(wa.negate(), arith::negate_tritwise(wa), "width {N} neg");
    assert_eq!(
        wa.flips_from(&wb),
        arith::flips_tritwise(wa, wb),
        "width {N} flips"
    );
    assert_eq!(
        wa.cmp(&wb),
        wa.to_i128().cmp(&wb.to_i128()),
        "width {N} ord"
    );
    if !wb.is_zero() {
        let (q, r) = wa.div_rem(wb).unwrap();
        let (qr, rr) = arith::div_rem_tritwise(wa, wb).unwrap();
        assert_eq!((q, r), (qr, rr), "width {N} div {a} {b}");
    }
}

/// Pins every multi-plane `WideTrits<N, W>` kernel to its trit-serial
/// reference at one geometry.
fn check_planes<const N: usize, const W: usize>(a: i128, b: i128) {
    let wa = WideTrits::<N, W>::from_i128_wrapping(a);
    let wb = WideTrits::<N, W>::from_i128_wrapping(b);
    assert_eq!(
        wa.carrying_add(wb),
        arith::wide_add_tritwise(wa, wb),
        "planes {N}/{W} add {a} {b}"
    );
    assert_eq!(
        wa.wrapping_mul(wb),
        arith::wide_mul_tritwise(wa, wb),
        "planes {N}/{W} mul {a} {b}"
    );
    assert_eq!(wa.negate(), arith::wide_negate_tritwise(wa));
    assert_eq!(wa.cmp(&wb), arith::wide_compare_tritwise(wa, wb));
    assert_eq!(wa.flips_from(&wb), arith::wide_flips_tritwise(wa, wb));
    assert_eq!(wa.and(wb), arith::wide_logic_tritwise(wa, wb, Trit::and));
    assert_eq!(wa.or(wb), arith::wide_logic_tritwise(wa, wb, Trit::or));
    assert_eq!(wa.xor(wb), arith::wide_logic_tritwise(wa, wb, Trit::xor));
    // The carry-save compressor preserves three-way sums.
    let (s, c) = WideTrits::<N, W>::compress3(wa, wb, wa.negate());
    assert_eq!(
        s.wrapping_add(c),
        wa.wrapping_add(wb).wrapping_add(wa.negate())
    );
}

/// Helper used by `mul_matches_wrapped_integer_mul`: an i128 wrap without
/// exposing the crate-private helper.
trait WrapI128 {
    fn from_i128_like(v: i128) -> i64;
}

impl WrapI128 for Word9 {
    fn from_i128_like(v: i128) -> i64 {
        let m = pow3(9) as i128;
        let mut rem = ((v % m) + m) % m;
        if rem > 9841 {
            rem -= m;
        }
        rem as i64
    }
}
