//! The budget-sliced session scheduler.
//!
//! N worker threads share the session population through per-worker
//! FIFO run queues plus a global injector. A worker repeatedly:
//!
//! 1. pops its own queue (front), falling back to the injector, then
//!    to **stealing** from the back of another worker's queue;
//! 2. runs the session for one quantum —
//!    `run_for(Budget::Retired(retired + quantum))`, the
//!    backend-independent way to cut a run at an instruction boundary;
//! 3. re-queues the session (its own queue) or finalizes it (halt,
//!    fault, budget exhaustion, cancellation).
//!
//! A session that changes workers **migrates by checkpoint transfer**:
//! the new worker snapshots the core, rebuilds a fresh one from the
//! shared program image, and restores — the exact invariant the
//! `slice-migrate` fuzz oracle checks differentially (a sliced,
//! migrated run is bit-identical to a straight-line run). Observers
//! (energy accounting) live in `Arc`s owned by the session's builder,
//! so they survive rebuilds and keep accumulating across migrations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use art9_sim::observers::EnergyAccounting;
use art9_sim::{Budget, Core, SimBuilder, SimError};
use workloads::batch::ExecConfig;
use workloads::{VerifyError, Workload, WorkloadError};

use crate::job::PreparedJob;
use crate::session::{SessionHandle, SessionResult};

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (defaults to available parallelism minus one,
    /// at least one — leaving a core for the accept/connection side).
    pub workers: usize,
    /// Slice length in retired instructions.
    pub quantum: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        SchedulerConfig {
            workers: parallelism.saturating_sub(1).max(1),
            quantum: 1_000,
        }
    }
}

/// One schedulable session: the shared handle plus the worker-owned
/// execution state. Exactly one queue (or worker) owns a `Runnable` at
/// any time; everything observable lives in the [`SessionHandle`].
struct Runnable {
    handle: Arc<SessionHandle>,
    builder: SimBuilder,
    core: Box<dyn Core>,
    workload: Option<Workload>,
    config: ExecConfig,
    max_retired: u64,
    energy: Option<Arc<Mutex<EnergyAccounting>>>,
    last_worker: Option<usize>,
}

impl std::fmt::Debug for Runnable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runnable")
            .field("id", &self.handle.id)
            .field("last_worker", &self.last_worker)
            .finish_non_exhaustive()
    }
}

/// Power-of-two slice-latency histogram (bucket `i` holds slices that
/// took `< 2^i` ns) — lock-free to record, cheap to quantile.
#[derive(Debug)]
struct LatencyHist {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHist {
    fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - ns.leading_zeros()).min(63) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket containing quantile `q`; 0.0
    /// when nothing was recorded.
    fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (1u64 << idx) as f64 / 1e3;
            }
        }
        f64::INFINITY
    }
}

/// A point-in-time copy of the scheduler's aggregate counters.
#[derive(Debug, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Worker threads.
    pub workers: usize,
    /// Slice quantum (retired instructions).
    pub quantum: u64,
    /// Slices executed.
    pub slices: u64,
    /// Sessions taken from another worker's queue.
    pub steals: u64,
    /// Checkpoint migrations between workers.
    pub migrations: u64,
    /// Median slice execution latency (µs, histogram upper bound).
    pub p50_slice_us: f64,
    /// 99th-percentile slice execution latency (µs).
    pub p99_slice_us: f64,
}

#[derive(Debug)]
struct Shared {
    queues: Vec<Mutex<VecDeque<Runnable>>>,
    injector: Mutex<VecDeque<Runnable>>,
    /// Parking lot for idle workers (paired with `alarm`).
    park: Mutex<()>,
    alarm: Condvar,
    stop: AtomicBool,
    quantum: u64,
    next_id: AtomicU64,
    sessions: Mutex<Vec<Arc<SessionHandle>>>,
    slices: AtomicU64,
    steals: AtomicU64,
    migrations: AtomicU64,
    latency: LatencyHist,
}

/// The worker pool (see the [module docs](self)).
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: SchedulerConfig,
}

impl Scheduler {
    /// Spawns the worker pool.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Mutex::new(()),
            alarm: Condvar::new(),
            stop: AtomicBool::new(false),
            quantum: config.quantum.max(1),
            next_id: AtomicU64::new(1),
            sessions: Mutex::new(Vec::new()),
            slices: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            latency: LatencyHist::default(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("art9-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(handles),
            config,
        }
    }

    /// Admits a prepared job: builds its core over the shared image,
    /// registers a [`SessionHandle`] and enqueues the session on the
    /// global injector. Returns immediately; the handle observes
    /// progress.
    pub fn submit(&self, job: PreparedJob) -> Arc<SessionHandle> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let mut builder = SimBuilder::new(&job.image)
            .backend(job.spec.config.backend)
            .forwarding(job.spec.config.forwarding);
        let energy = job
            .spec
            .energy
            .then(|| Arc::new(Mutex::new(EnergyAccounting::new())));
        if let Some(e) = &energy {
            builder = builder.observer(e.clone());
        }
        let core = builder.build();
        let handle = Arc::new(SessionHandle::new(id, job.name, job.spec.events));
        let runnable = Runnable {
            handle: Arc::clone(&handle),
            builder,
            core,
            workload: job.workload,
            config: job.spec.config,
            max_retired: job.spec.max_retired.max(1),
            energy,
            last_worker: None,
        };
        self.shared
            .sessions
            .lock()
            .expect("session registry lock")
            .push(Arc::clone(&handle));
        self.shared
            .injector
            .lock()
            .expect("injector lock")
            .push_back(runnable);
        self.shared.alarm.notify_all();
        handle
    }

    /// The handle for session `id`.
    pub fn session(&self, id: u64) -> Option<Arc<SessionHandle>> {
        self.shared
            .sessions
            .lock()
            .expect("session registry lock")
            .iter()
            .find(|h| h.id == id)
            .cloned()
    }

    /// Every session ever admitted, in submission order.
    pub fn sessions(&self) -> Vec<Arc<SessionHandle>> {
        self.shared
            .sessions
            .lock()
            .expect("session registry lock")
            .clone()
    }

    /// Aggregate counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            workers: self.config.workers.max(1),
            quantum: self.shared.quantum,
            slices: self.shared.slices.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            migrations: self.shared.migrations.load(Ordering::Relaxed),
            p50_slice_us: self.shared.latency.quantile_us(0.50),
            p99_slice_us: self.shared.latency.quantile_us(0.99),
        }
    }

    /// Stops the workers (sessions still queued stay unfinished) and
    /// joins them. Idempotent; callable from any thread.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.alarm.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker registry lock")
            .drain(..)
            .collect();
        for worker in handles {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    while !shared.stop.load(Ordering::SeqCst) {
        let job = pop_work(shared, me);
        match job {
            Some(runnable) => run_slice(shared, me, runnable),
            None => {
                // Nothing runnable anywhere: park until a submit or a
                // re-queue, with a timeout bounding missed-wakeup
                // staleness (and re-opening steal opportunities).
                let guard = shared.park.lock().expect("park lock");
                let _ = shared
                    .alarm
                    .wait_timeout(guard, Duration::from_millis(2))
                    .expect("park lock");
            }
        }
    }
}

/// Own queue (front) → injector (front) → steal (back of another
/// worker's queue, scanning round-robin from `me + 1`).
fn pop_work(shared: &Shared, me: usize) -> Option<Runnable> {
    if let Some(job) = shared.queues[me].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    if let Some(job) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(job);
    }
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(job) = shared.queues[victim].lock().expect("queue lock").pop_back() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

/// Runs one quantum of `runnable` on worker `me` and re-queues or
/// finalizes it.
fn run_slice(shared: &Shared, me: usize, mut runnable: Runnable) {
    let handle = Arc::clone(&runnable.handle);
    if handle.cancel_requested() {
        handle.finish_cancelled();
        return;
    }

    // Arriving from a different worker (a steal, or first pickup from
    // the injector after running elsewhere): migrate by checkpoint
    // transfer — snapshot, rebuild from the shared image, restore.
    if runnable.last_worker.is_some_and(|last| last != me) {
        let checkpoint = runnable.core.snapshot();
        let mut fresh = runnable.builder.build();
        if let Err(e) = fresh.restore(&checkpoint) {
            handle.finish_failed(sim_error(&runnable, e));
            return;
        }
        runnable.core = fresh;
        handle.record_migration();
        shared.migrations.fetch_add(1, Ordering::Relaxed);
    }
    runnable.last_worker = Some(me);
    handle.mark_running(me);

    let target = runnable.core.retired() + shared.quantum;
    let start = Instant::now();
    let summary = runnable.core.run_for(Budget::Retired(target));
    shared.latency.record(start.elapsed());
    shared.slices.fetch_add(1, Ordering::Relaxed);

    let summary = match summary {
        Ok(s) => s,
        Err(e) => {
            handle.finish_failed(sim_error(&runnable, e));
            return;
        }
    };

    match summary.halt {
        Some(halt) => {
            // Verify workload jobs against their golden reference;
            // inline programs have none.
            if let Some(w) = &runnable.workload {
                if let Err(e) = w.verify_art9(runnable.core.state()) {
                    let error = match e.downcast::<VerifyError>() {
                        Ok(ve) => WorkloadError::Verify(*ve),
                        Err(e) => WorkloadError::Unavailable {
                            workload: handle.name.clone(),
                            detail: format!("verify: {e}"),
                        },
                    };
                    handle.finish_failed(error);
                    return;
                }
            }
            let state = runnable.core.state();
            let mut trf = [0i64; 9];
            for (slot, word) in trf.iter_mut().zip(state.trf.iter()) {
                *slot = word.to_i64();
            }
            handle.finish_done(SessionResult {
                halt,
                retired: summary.retired,
                trf,
                mix: runnable.core.instruction_mix(),
                flips: flips(&runnable),
                verified: runnable.workload.is_some(),
            });
        }
        None if summary.retired >= runnable.max_retired => {
            let limit = runnable.max_retired;
            handle.finish_failed(sim_error(&runnable, SimError::Timeout { limit }));
        }
        None => {
            handle.record_slice(summary.retired, me, flips(&runnable));
            shared.queues[me]
                .lock()
                .expect("queue lock")
                .push_back(runnable);
            shared.alarm.notify_one();
        }
    }
}

/// Cumulative trit-flip count, when the session measures energy.
fn flips(runnable: &Runnable) -> Option<u64> {
    runnable.energy.as_ref().map(|e| {
        let totals = e.lock().expect("energy lock").totals();
        totals.regfile + totals.tdm + totals.fetch + totals.alu
    })
}

fn sim_error(runnable: &Runnable, source: SimError) -> WorkloadError {
    WorkloadError::Sim {
        workload: runnable.handle.name.clone(),
        config: runnable.config.name(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ImageCache;
    use crate::job::JobSpec;
    use crate::session::SessionStatus;
    use std::collections::HashMap;

    fn submit_inline(
        scheduler: &Scheduler,
        cache: &ImageCache,
        assembly: &str,
        extra: &[(&str, &str)],
    ) -> Arc<SessionHandle> {
        let mut args: HashMap<String, String> = extra
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        args.insert("program".into(), "inline".into());
        let spec = JobSpec::from_args(&args, Some(assembly.to_string())).unwrap();
        scheduler.submit(spec.prepare(cache).unwrap())
    }

    /// ~`2 + outer * (5 + 4 * inner)` retired instructions of busy
    /// looping (same idiom as the loadtest spin program).
    fn spin(outer: u32, inner: u32) -> String {
        format!(
            "LI t3, {outer}\nouter:\nLI t4, {inner}\ninner:\nADDI t4, -1\nMV t7, t4\n\
             COMP t7, t0\nBEQ t7, +, inner\nADDI t3, -1\nMV t7, t3\nCOMP t7, t0\n\
             BEQ t7, +, outer\nJAL t0, 0\n"
        )
    }

    #[test]
    fn sessions_complete_with_exact_retirement() {
        let scheduler = Scheduler::new(SchedulerConfig {
            workers: 3,
            quantum: 50,
        });
        let cache = ImageCache::new();
        let expected = 2 + 20 * (5 + 4 * 10);
        let handles: Vec<_> = (0..16)
            .map(|_| submit_inline(&scheduler, &cache, &spin(20, 10), &[]))
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), SessionStatus::Done);
            let result = h.result().unwrap();
            assert_eq!(result.retired, expected);
            assert_eq!(result.trf[3], 0, "t3 counted down to zero");
            assert!(!result.verified, "inline jobs have no golden reference");
        }
        // 16 identical programs → one shared image.
        assert_eq!(cache.len(), 1);
        let m = scheduler.metrics();
        assert!(m.slices >= 16, "sliced execution: {m:?}");
        scheduler.shutdown();
    }

    #[test]
    fn faulting_and_timed_out_jobs_fail_typed() {
        let scheduler = Scheduler::new(SchedulerConfig {
            workers: 1,
            quantum: 10,
        });
        let cache = ImageCache::new();
        // LOAD from a negative address faults.
        let fault = submit_inline(&scheduler, &cache, "LI t3, -100\nLOAD t4, t3, 0\n", &[]);
        match fault.wait() {
            SessionStatus::Failed(WorkloadError::Sim { source, .. }) => {
                assert!(matches!(source, SimError::MemoryFault { .. }), "{source}");
            }
            other => panic!("expected memory fault, got {other:?}"),
        }
        // A long spin with a tiny budget times out.
        let slow = submit_inline(
            &scheduler,
            &cache,
            &spin(100, 100),
            &[("max-retired", "200")],
        );
        match slow.wait() {
            SessionStatus::Failed(WorkloadError::Sim { source, .. }) => {
                assert_eq!(source, SimError::Timeout { limit: 200 });
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        scheduler.shutdown();
    }

    #[test]
    fn workload_jobs_verify_and_energy_accumulates_across_slices() {
        let scheduler = Scheduler::new(SchedulerConfig {
            workers: 2,
            quantum: 100,
        });
        let cache = ImageCache::new();
        let args: HashMap<String, String> = [
            ("workload", "dot-product"),
            ("n", "8"),
            ("config", "art9-threaded"),
            ("energy", "1"),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let spec = JobSpec::from_args(&args, None).unwrap();
        let handle = scheduler.submit(spec.prepare(&cache).unwrap());
        assert_eq!(handle.wait(), SessionStatus::Done);
        let result = handle.result().unwrap();
        assert!(result.verified);
        assert!(
            result.flips.unwrap() > 0,
            "energy observer survived slicing"
        );
        assert_eq!(result.mix.values().sum::<u64>(), result.retired);
        scheduler.shutdown();
    }

    #[test]
    fn cancellation_stops_a_session_at_a_slice_boundary() {
        let scheduler = Scheduler::new(SchedulerConfig {
            workers: 1,
            quantum: 10,
        });
        let cache = ImageCache::new();
        // An endless loop: only cancellation (or the retired budget)
        // can stop it.
        let handle = submit_inline(
            &scheduler,
            &cache,
            "loop:\nADDI t3, 1\nADDI t3, -1\nJAL t4, loop\n",
            &[],
        );
        handle.request_cancel();
        assert_eq!(handle.wait(), SessionStatus::Cancelled);
        scheduler.shutdown();
    }

    #[test]
    fn latency_histogram_quantiles_are_sane() {
        let hist = LatencyHist::default();
        assert_eq!(hist.quantile_us(0.99), 0.0);
        for _ in 0..99 {
            hist.record(Duration::from_micros(10));
        }
        hist.record(Duration::from_millis(10));
        // p50 lands in the ~16 µs bucket, p99+ sees the outlier.
        assert!(hist.quantile_us(0.5) < 100.0);
        assert!(hist.quantile_us(0.995) > 1_000.0);
    }
}
