//! The job schema: what a `SUBMIT` line describes and how it becomes
//! a runnable session.
//!
//! Jobs reference programs two ways — by **workload name** (the
//! [`workloads::by_name`] registry; RV32 sources go through the
//! compiling framework exactly as in a batch run) or as **inline
//! ART-9 assembly** uploaded with the request. Execution options ride
//! on [`ExecConfig`] names (`config=art9-threaded`, …); only ART-9
//! machines are schedulable — the RV32 cycle models have no
//! preemptible [`art9_sim::Core`] and stay batch-only.
//!
//! Preparation failures come back as the same typed
//! [`WorkloadError`] the batch API's `try_run` surfaces.

use std::collections::HashMap;

use art9_sim::PredecodedProgram;
use workloads::batch::ExecConfig;
use workloads::{Workload, WorkloadError};

use crate::cache::ImageCache;

/// Default per-job retired-instruction budget: a job that has not
/// halted after this many instructions fails with a simulator timeout.
pub const DEFAULT_JOB_RETIRED: u64 = 500_000_000;

/// The program a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A registered workload (`workload=<name>`), optionally resized
    /// (`n=<k>`) and reseeded (`seed=<u64>`).
    Workload {
        /// Registry name (see [`workloads::WORKLOAD_NAMES`]).
        name: String,
        /// Size override.
        n: Option<usize>,
        /// Input seed.
        seed: Option<u64>,
    },
    /// ART-9 assembly uploaded with the request (`program=inline
    /// lines=<k>` followed by `k` raw source lines).
    Inline {
        /// The assembly source.
        assembly: String,
    },
}

/// One parsed job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to run.
    pub source: JobSource,
    /// How to run it (must be an ART-9 machine).
    pub config: ExecConfig,
    /// Retired-instruction budget before the job times out.
    pub max_retired: u64,
    /// Attach an energy observer and report trit-flip snapshots.
    pub energy: bool,
    /// Record per-slice events for `EVENTS` streaming.
    pub events: bool,
}

/// A prepared job: the shared program image plus what the scheduler
/// needs to verify and report it.
#[derive(Debug)]
pub struct PreparedJob {
    /// Display name (workload name or `inline`).
    pub name: String,
    /// The interned, shared program image.
    pub image: PredecodedProgram,
    /// The workload for output verification (`None` for inline jobs).
    pub workload: Option<Workload>,
    /// The spec the job was built from.
    pub spec: JobSpec,
}

impl JobSpec {
    /// Builds a spec from the parsed `key=value` arguments of a
    /// `SUBMIT` line plus the inline assembly body (when the request
    /// carried one).
    ///
    /// # Errors
    ///
    /// A protocol-level diagnostic for unknown keys, malformed values,
    /// missing sources or non-ART-9 configs.
    pub fn from_args(
        args: &HashMap<String, String>,
        inline_body: Option<String>,
    ) -> Result<JobSpec, String> {
        for key in args.keys() {
            if !matches!(
                key.as_str(),
                "workload"
                    | "program"
                    | "lines"
                    | "n"
                    | "seed"
                    | "config"
                    | "max-retired"
                    | "energy"
                    | "events"
            ) {
                return Err(format!("unknown SUBMIT key {key:?}"));
            }
        }
        let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
            args.get(key)
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("{key} must be an unsigned integer, got {v:?}"))
                })
                .transpose()
        };
        let parse_flag = |key: &str| -> Result<bool, String> {
            match args.get(key).map(String::as_str) {
                None | Some("0") => Ok(false),
                Some("1") => Ok(true),
                Some(v) => Err(format!("{key} must be 0 or 1, got {v:?}")),
            }
        };

        let source = match (args.get("workload"), args.get("program"), inline_body) {
            (Some(_), None, Some(_)) => {
                return Err("workload jobs take no inline body (drop lines=<k>)".into())
            }
            (Some(name), None, None) => JobSource::Workload {
                name: name.clone(),
                n: parse_u64("n")?.map(|v| v as usize),
                seed: parse_u64("seed")?,
            },
            (None, Some(kind), Some(assembly)) if kind == "inline" => {
                JobSource::Inline { assembly }
            }
            (None, Some(kind), _) => {
                return Err(format!(
                    "program={kind:?} not supported (only program=inline lines=<k>)"
                ))
            }
            (Some(_), Some(_), _) => {
                return Err("give either workload=<name> or program=inline, not both".into())
            }
            (None, None, _) => return Err("missing workload=<name> or program=inline".into()),
        };

        let config = match args.get("config") {
            None => ExecConfig::art9(art9_sim::Backend::Functional),
            Some(name) => name.parse::<ExecConfig>()?,
        };
        if !config.is_art9() {
            return Err(format!(
                "config {} is batch-only: the scheduler slices preemptible ART-9 cores, \
                 RV32 cycle models have none",
                config.name()
            ));
        }

        Ok(JobSpec {
            source,
            config,
            max_retired: parse_u64("max-retired")?.unwrap_or(DEFAULT_JOB_RETIRED),
            energy: parse_flag("energy")?,
            events: parse_flag("events")?,
        })
    }

    /// Resolves the spec into a shared program image: builds or
    /// assembles the program, translates workload sources through the
    /// compiling framework, predecodes once and interns the image in
    /// `cache`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] exactly as the batch prepare stage would
    /// report it (unknown names surface as [`WorkloadError::Unavailable`]).
    pub fn prepare(&self, cache: &ImageCache) -> Result<PreparedJob, WorkloadError> {
        match &self.source {
            JobSource::Workload { name, n, seed } => {
                let workload =
                    workloads::by_name(name, *n).ok_or_else(|| WorkloadError::Unavailable {
                        workload: name.clone(),
                        detail: format!(
                            "unknown workload or out-of-range size (known: {})",
                            workloads::WORKLOAD_NAMES.join(", ")
                        ),
                    })?;
                let workload = match seed {
                    Some(seed) => workload.with_input_seed(*seed),
                    None => workload,
                };
                let rv = workload.rv32_program().map_err(|e| WorkloadError::Parse {
                    workload: name.clone(),
                    detail: e.to_string(),
                })?;
                let translation =
                    art9_compiler::translate(&rv).map_err(|e| WorkloadError::Translate {
                        workload: name.clone(),
                        detail: e.to_string(),
                    })?;
                let image = cache.intern(PredecodedProgram::new(&translation.program));
                Ok(PreparedJob {
                    name: workload.name.to_string(),
                    image,
                    workload: Some(workload),
                    spec: self.clone(),
                })
            }
            JobSource::Inline { assembly } => {
                let program = art9_isa::assemble(assembly).map_err(|e| WorkloadError::Parse {
                    workload: "inline".into(),
                    detail: e.to_string(),
                })?;
                let image = cache.intern(PredecodedProgram::new(&program));
                Ok(PreparedJob {
                    name: "inline".into(),
                    image,
                    workload: None,
                    spec: self.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_sim::Backend;

    fn args(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn workload_spec_parses_with_defaults() {
        let spec = JobSpec::from_args(&args(&[("workload", "gemm")]), None).unwrap();
        assert_eq!(
            spec.source,
            JobSource::Workload {
                name: "gemm".into(),
                n: None,
                seed: None,
            }
        );
        assert_eq!(spec.config, ExecConfig::art9(Backend::Functional));
        assert_eq!(spec.max_retired, DEFAULT_JOB_RETIRED);
        assert!(!spec.energy);
    }

    #[test]
    fn rv32_configs_are_rejected() {
        let err = JobSpec::from_args(
            &args(&[("workload", "gemm"), ("config", "rv32-picorv32")]),
            None,
        )
        .unwrap_err();
        assert!(err.contains("batch-only"), "{err}");
    }

    #[test]
    fn unknown_keys_and_bad_values_are_diagnosed() {
        assert!(JobSpec::from_args(&args(&[("frobnicate", "1")]), None).is_err());
        assert!(JobSpec::from_args(&args(&[("workload", "gemm"), ("n", "x")]), None).is_err());
        assert!(
            JobSpec::from_args(&args(&[("workload", "gemm"), ("energy", "yes")]), None).is_err()
        );
        assert!(JobSpec::from_args(&args(&[]), None).is_err());
    }

    #[test]
    fn inline_jobs_prepare_and_share_images() {
        let cache = ImageCache::new();
        let spec = JobSpec::from_args(
            &args(&[("program", "inline"), ("config", "art9-threaded")]),
            Some("LI t3, 41\nADDI t3, 1\nJAL t0, 0\n".into()),
        )
        .unwrap();
        let a = spec.prepare(&cache).unwrap();
        let b = spec.prepare(&cache).unwrap();
        assert_eq!(a.name, "inline");
        assert!(a.workload.is_none());
        assert_eq!(a.image.text().as_ptr(), b.image.text().as_ptr());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let cache = ImageCache::new();
        let spec = JobSpec::from_args(&args(&[("workload", "quux")]), None).unwrap();
        match spec.prepare(&cache).unwrap_err() {
            WorkloadError::Unavailable { workload, detail } => {
                assert_eq!(workload, "quux");
                assert!(detail.contains("bubble-sort"), "{detail}");
            }
            other => panic!("expected Unavailable, got {other}"),
        }
    }

    #[test]
    fn bad_inline_assembly_is_a_parse_error() {
        let cache = ImageCache::new();
        let spec = JobSpec::from_args(
            &args(&[("program", "inline")]),
            Some("NOT AN OPCODE\n".into()),
        )
        .unwrap();
        assert!(matches!(
            spec.prepare(&cache).unwrap_err(),
            WorkloadError::Parse { .. }
        ));
    }
}
