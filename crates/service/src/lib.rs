//! # `art9-service` — simulation as a service
//!
//! A multi-tenant session scheduler for ART-9 simulations: clients
//! submit jobs over a line-oriented TCP protocol (`art9-service v1`,
//! in the same text style as the `art9-checkpoint v1` format), and a
//! worker thread pool runs thousands of concurrent sessions *fairly*
//! by slicing each one on [`art9_sim::Budget::Retired`] quanta.
//!
//! The pieces, bottom-up:
//!
//! * [`cache`] — one [`art9_sim::PredecodedProgram`] per distinct
//!   program image, keyed by content hash, however many sessions
//!   submit it.
//! * [`session`] — the shared per-job handle (status, counters, event
//!   ring, condvar) connections observe and workers update.
//! * [`scheduler`] — per-worker run queues with work stealing; a
//!   stolen session **migrates** between workers via
//!   [`art9_sim::Checkpoint`] transfer (snapshot → rebuild from the
//!   shared image → restore), the same invariant the `slice-migrate`
//!   fuzz oracle checks differentially.
//! * [`job`] / [`protocol`] — the wire-level job schema (built on
//!   [`workloads::batch::ExecConfig`]) and request parsing.
//! * [`server`] / [`client`] — std-only TCP endpoints (no async
//!   runtime; one thread per connection).
//! * [`loadtest`] — the load-generation client the CI smoke step runs:
//!   N concurrent sessions to completion, asserting fair progress and
//!   bounded p99 slice latency.
//!
//! Everything is `std`-only: the vendored-offline build environment
//! has no tokio, and does not need one — sessions are CPU-bound and
//! the scheduler's unit of concurrency is a slice, not a socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod job;
pub mod loadtest;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;

pub use cache::ImageCache;
pub use client::Client;
pub use job::{JobSource, JobSpec, DEFAULT_JOB_RETIRED};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServiceConfig};
pub use session::{SessionHandle, SessionStatus};

/// Protocol identifier sent in the `HELLO` response and checked by
/// clients (version-gated, like the checkpoint format's magic line).
pub const PROTOCOL: &str = "art9-service v1";
