//! Content-addressed sharing of predecoded program images.
//!
//! The `OnceLock` threaded-code cache inside
//! [`PredecodedProgram`] already guarantees one direct-threaded
//! compilation per *image*; this cache supplies the multi-tenant half
//! of that guarantee: one image per *program*. Every submitted job's
//! program is interned by [`PredecodedProgram::content_hash`], so a
//! thousand sessions running the same kernel share a single decoded
//! instruction vector (and, for the threaded backend, a single
//! compilation) instead of carrying a thousand copies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use art9_sim::PredecodedProgram;

/// A content-hash-keyed store of shared program images.
#[derive(Debug, Default)]
pub struct ImageCache {
    map: Mutex<HashMap<u64, PredecodedProgram>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ImageCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared image for `image`'s content: the cached copy
    /// when one exists (an O(1) `Arc` clone), otherwise `image` itself
    /// after registering it.
    pub fn intern(&self, image: PredecodedProgram) -> PredecodedProgram {
        let hash = image.content_hash();
        let mut map = self.map.lock().expect("image cache lock");
        match map.get(&hash) {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cached.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                map.insert(hash, image.clone());
                image
            }
        }
    }

    /// Number of distinct images currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("image cache lock").len()
    }

    /// `true` when no image has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters: hits are interns that found an
    /// existing image, misses are first-time inserts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::assemble;

    #[test]
    fn intern_dedupes_by_content() {
        let cache = ImageCache::new();
        let a = cache.intern(PredecodedProgram::new(
            &assemble("LI t3, 1\nJAL t0, 0\n").unwrap(),
        ));
        let b = cache.intern(PredecodedProgram::new(
            &assemble("LI t3, 1\nJAL t0, 0\n").unwrap(),
        ));
        // Same content → same shared storage.
        assert_eq!(a.text().as_ptr(), b.text().as_ptr());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));

        let c = cache.intern(PredecodedProgram::new(
            &assemble("LI t3, 2\nJAL t0, 0\n").unwrap(),
        ));
        assert_ne!(a.text().as_ptr(), c.text().as_ptr());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 2));
    }
}
