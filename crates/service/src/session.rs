//! Per-job session state shared between workers and connections.
//!
//! A [`SessionHandle`] is the rendezvous point of the service: the
//! scheduler's workers update it after every slice, connection threads
//! read it for `STATUS`/`LIST`, block on it for `WAIT`, and drain its
//! bounded event ring for `EVENTS`. One mutex + condvar per session —
//! contention is inherently low because exactly one worker owns a
//! session's runnable half at any time.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use art9_sim::HaltReason;
use workloads::WorkloadError;

/// Cap on the per-session event ring; the oldest events are dropped
/// first once a slow `EVENTS` consumer falls this far behind.
pub const EVENT_RING_CAP: usize = 256;

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionStatus {
    /// Waiting in a run queue for its next (or first) slice.
    Queued,
    /// A worker is currently executing a slice.
    Running {
        /// Index of the executing worker.
        worker: usize,
    },
    /// The program halted; `RESULT` is available.
    Done,
    /// The job failed (parse, translation, simulator fault, budget
    /// exhaustion or output mismatch) — the same typed error the batch
    /// API surfaces.
    Failed(WorkloadError),
    /// Cancelled by a client before completion.
    Cancelled,
}

impl SessionStatus {
    /// Single-token wire name (`queued`/`running`/`done`/`failed`/
    /// `cancelled`).
    pub fn token(&self) -> &'static str {
        match self {
            SessionStatus::Queued => "queued",
            SessionStatus::Running { .. } => "running",
            SessionStatus::Done => "done",
            SessionStatus::Failed(_) => "failed",
            SessionStatus::Cancelled => "cancelled",
        }
    }

    /// `true` once the session can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionStatus::Done | SessionStatus::Failed(_) | SessionStatus::Cancelled
        )
    }
}

/// One observer event, recorded per completed slice when the job was
/// submitted with `events=1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEvent {
    /// Slice ordinal (1-based).
    pub slice: u64,
    /// Total instructions retired after the slice.
    pub retired: u64,
    /// Worker that executed the slice.
    pub worker: usize,
    /// Cumulative trit-flip count (energy snapshot), when the job
    /// measures energy.
    pub flips: Option<u64>,
}

/// The final machine state of a completed session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Why the program stopped.
    pub halt: HaltReason,
    /// Total instructions retired.
    pub retired: u64,
    /// Final register file (t0..t8) as balanced-ternary integers.
    pub trf: [i64; 9],
    /// Dynamic instruction mix.
    pub mix: BTreeMap<&'static str, u64>,
    /// Total trit flips, when the job measured energy.
    pub flips: Option<u64>,
    /// Whether the output region was checked against a golden
    /// reference (workload jobs; inline programs have none).
    pub verified: bool,
}

/// A point-in-time copy of a session's observable counters.
#[derive(Debug, Clone)]
pub struct SessionView {
    /// Session id.
    pub id: u64,
    /// Program name (workload name or `inline`).
    pub name: String,
    /// Lifecycle state.
    pub status: SessionStatus,
    /// Total instructions retired so far.
    pub retired: u64,
    /// Slices executed so far.
    pub slices: u64,
    /// Checkpoint migrations between workers so far.
    pub migrations: u64,
}

#[derive(Debug)]
struct Inner {
    status: SessionStatus,
    retired: u64,
    slices: u64,
    migrations: u64,
    cancel: bool,
    record_events: bool,
    events: VecDeque<SessionEvent>,
    result: Option<SessionResult>,
}

/// Shared handle to one session (see the [module docs](self)).
#[derive(Debug)]
pub struct SessionHandle {
    /// Session id (unique per server).
    pub id: u64,
    /// Program name (workload name or `inline`).
    pub name: String,
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl SessionHandle {
    /// A fresh queued session.
    pub fn new(id: u64, name: String, record_events: bool) -> Self {
        SessionHandle {
            id,
            name,
            inner: Mutex::new(Inner {
                status: SessionStatus::Queued,
                retired: 0,
                slices: 0,
                migrations: 0,
                cancel: false,
                record_events,
                events: VecDeque::new(),
                result: None,
            }),
            changed: Condvar::new(),
        }
    }

    /// Snapshot of the observable counters.
    pub fn view(&self) -> SessionView {
        let inner = self.lock();
        SessionView {
            id: self.id,
            name: self.name.clone(),
            status: inner.status.clone(),
            retired: inner.retired,
            slices: inner.slices,
            migrations: inner.migrations,
        }
    }

    /// The final machine state, once [`SessionStatus::Done`].
    pub fn result(&self) -> Option<SessionResult> {
        self.lock().result.clone()
    }

    /// Blocks until the session reaches a terminal state; returns it.
    pub fn wait(&self) -> SessionStatus {
        let mut inner = self.lock();
        while !inner.status.is_terminal() {
            inner = self.changed.wait(inner).expect("session lock");
        }
        inner.status.clone()
    }

    /// Drains buffered events, blocking up to `timeout` when none are
    /// pending and the session is still live. Returns the drained
    /// events and whether the session is terminal (meaning no further
    /// events will ever arrive once the returned batch is empty).
    pub fn next_events(&self, timeout: std::time::Duration) -> (Vec<SessionEvent>, bool) {
        let mut inner = self.lock();
        if inner.events.is_empty() && !inner.status.is_terminal() {
            (inner, _) = self
                .changed
                .wait_timeout(inner, timeout)
                .expect("session lock");
        }
        let events = inner.events.drain(..).collect();
        (events, inner.status.is_terminal())
    }

    /// Requests cancellation; the owning worker drops the session at
    /// its next slice boundary. No-op on terminal sessions.
    pub fn request_cancel(&self) {
        let mut inner = self.lock();
        if !inner.status.is_terminal() {
            inner.cancel = true;
        }
    }

    /// Whether a client asked for cancellation.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.lock().cancel
    }

    pub(crate) fn mark_running(&self, worker: usize) {
        self.lock().status = SessionStatus::Running { worker };
    }

    pub(crate) fn record_migration(&self) {
        self.lock().migrations += 1;
    }

    /// Records a completed slice: updates counters, re-queues the
    /// status, and appends an event when the session records them.
    pub(crate) fn record_slice(&self, retired: u64, worker: usize, flips: Option<u64>) {
        let mut inner = self.lock();
        inner.retired = retired;
        inner.slices += 1;
        inner.status = SessionStatus::Queued;
        if inner.record_events {
            if inner.events.len() == EVENT_RING_CAP {
                inner.events.pop_front();
            }
            let slice = inner.slices;
            inner.events.push_back(SessionEvent {
                slice,
                retired,
                worker,
                flips,
            });
        }
        drop(inner);
        self.changed.notify_all();
    }

    pub(crate) fn finish_done(&self, result: SessionResult) {
        let mut inner = self.lock();
        inner.retired = result.retired;
        inner.status = SessionStatus::Done;
        inner.result = Some(result);
        drop(inner);
        self.changed.notify_all();
    }

    pub(crate) fn finish_failed(&self, error: WorkloadError) {
        let mut inner = self.lock();
        inner.status = SessionStatus::Failed(error);
        drop(inner);
        self.changed.notify_all();
    }

    pub(crate) fn finish_cancelled(&self) {
        let mut inner = self.lock();
        inner.status = SessionStatus::Cancelled;
        drop(inner);
        self.changed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("session lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_blocks_until_terminal() {
        let h = Arc::new(SessionHandle::new(1, "inline".into(), false));
        let waiter = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || h.wait())
        };
        h.mark_running(0);
        h.record_slice(100, 0, None);
        h.finish_cancelled();
        assert_eq!(waiter.join().unwrap(), SessionStatus::Cancelled);
        assert!(h.view().status.is_terminal());
    }

    #[test]
    fn event_ring_is_bounded_and_drains() {
        let h = SessionHandle::new(2, "inline".into(), true);
        for i in 0..(EVENT_RING_CAP as u64 + 10) {
            h.record_slice(i + 1, 0, Some(i));
        }
        let (events, terminal) = h.next_events(Duration::from_millis(1));
        assert!(!terminal);
        assert_eq!(events.len(), EVENT_RING_CAP);
        // The *oldest* events were dropped.
        assert_eq!(events[0].slice, 11);
        // Drained: a second call times out empty.
        let (events, _) = h.next_events(Duration::from_millis(1));
        assert!(events.is_empty());
    }

    #[test]
    fn cancel_is_sticky_until_terminal() {
        let h = SessionHandle::new(3, "inline".into(), false);
        assert!(!h.cancel_requested());
        h.request_cancel();
        assert!(h.cancel_requested());
        h.finish_cancelled();
        assert_eq!(h.view().status, SessionStatus::Cancelled);
        assert_eq!(h.view().status.token(), "cancelled");
    }
}
