//! The TCP daemon: one accept loop, one thread per connection.
//!
//! Connections speak the [`crate::protocol`] request grammar against a
//! shared [`Scheduler`] + [`ImageCache`]. Job preparation (parse,
//! translate, predecode, intern) happens on the connection thread —
//! workers only ever execute slices — so a malformed submission costs
//! its own client, not the worker pool.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::ImageCache;
use crate::job::JobSpec;
use crate::protocol::{parse_request, Request};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::session::{SessionHandle, SessionStatus};
use crate::PROTOCOL;

use art9_sim::HaltReason;

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Listen address; an empty string (or port 0) binds an ephemeral
    /// loopback port — [`Server::local_addr`] reports the result.
    pub addr: String,
    /// Scheduler tuning.
    pub scheduler: SchedulerConfig,
}

struct ServerShared {
    scheduler: Scheduler,
    cache: ImageCache,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A running service instance.
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener, spawns the scheduler workers and the accept
    /// thread, and returns immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let addr = if config.addr.is_empty() {
            "127.0.0.1:0".to_string()
        } else {
            config.addr
        };
        let listener = TcpListener::bind(&addr)?;
        let shared = Arc::new(ServerShared {
            scheduler: Scheduler::new(config.scheduler),
            cache: ImageCache::new(),
            stop: AtomicBool::new(false),
            addr: listener.local_addr()?,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("art9-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops accepting, stops the workers, joins the accept thread.
    /// Connection threads finish on their own as clients disconnect.
    pub fn shutdown(&mut self) {
        request_shutdown(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the service is shut down (daemon mode).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flags the service for shutdown and unblocks the accept loop with a
/// dummy connection.
fn request_shutdown(shared: &ServerShared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.scheduler.shutdown();
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(shared: &Arc<ServerShared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("art9-conn".into())
            .spawn(move || {
                let _ = handle_connection(&shared, stream);
            });
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let request = match parse_request(line.trim_end_matches(['\r', '\n'])) {
            Ok(r) => r,
            Err(e) => {
                writeln!(writer, "ERR {e}")?;
                continue;
            }
        };
        match request {
            Request::Hello => writeln!(writer, "OK {PROTOCOL}")?,
            Request::Submit { args, inline_lines } => {
                let body = read_inline_body(&mut reader, inline_lines)?;
                match submit(shared, &args, body) {
                    Ok(handle) => writeln!(writer, "OK job {}", handle.id)?,
                    Err(e) => writeln!(writer, "ERR {e}")?,
                }
            }
            Request::Status(id) => match shared.scheduler.session(id) {
                None => writeln!(writer, "ERR no session {id}")?,
                Some(h) => writeln!(writer, "{}", status_line(&h))?,
            },
            Request::Wait(id) => match shared.scheduler.session(id) {
                None => writeln!(writer, "ERR no session {id}")?,
                Some(h) => {
                    h.wait();
                    writeln!(writer, "{}", status_line(&h))?;
                }
            },
            Request::Result(id) => match shared.scheduler.session(id) {
                None => writeln!(writer, "ERR no session {id}")?,
                Some(h) => write_result(&mut writer, &h)?,
            },
            Request::Events(id) => match shared.scheduler.session(id) {
                None => writeln!(writer, "ERR no session {id}")?,
                Some(h) => stream_events(&mut writer, &h)?,
            },
            Request::Cancel(id) => match shared.scheduler.session(id) {
                None => writeln!(writer, "ERR no session {id}")?,
                Some(h) => {
                    h.request_cancel();
                    writeln!(writer, "OK job {id} cancel-requested")?;
                }
            },
            Request::List => {
                writeln!(writer, "OK sessions")?;
                for h in shared.scheduler.sessions() {
                    let v = h.view();
                    writeln!(
                        writer,
                        "session {} {} {} {} {} {}",
                        v.id,
                        v.name,
                        v.status.token(),
                        v.retired,
                        v.slices,
                        v.migrations
                    )?;
                }
                writeln!(writer, "end")?;
            }
            Request::Metrics => write_metrics(&mut writer, shared)?,
            Request::Shutdown => {
                writeln!(writer, "OK shutting down")?;
                request_shutdown(shared);
                return Ok(());
            }
            Request::Quit => {
                writeln!(writer, "OK bye")?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

fn read_inline_body(
    reader: &mut BufReader<TcpStream>,
    inline_lines: usize,
) -> io::Result<Option<String>> {
    if inline_lines == 0 {
        return Ok(None);
    }
    let mut body = String::new();
    let mut line = String::new();
    for _ in 0..inline_lines {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // truncated upload; the assembler will diagnose it
        }
        body.push_str(line.trim_end_matches(['\r', '\n']));
        body.push('\n');
    }
    Ok(Some(body))
}

fn submit(
    shared: &ServerShared,
    args: &std::collections::HashMap<String, String>,
    body: Option<String>,
) -> Result<Arc<SessionHandle>, String> {
    let spec = JobSpec::from_args(args, body)?;
    let prepared = spec.prepare(&shared.cache).map_err(|e| e.to_string())?;
    Ok(shared.scheduler.submit(prepared))
}

fn halt_name(halt: HaltReason) -> &'static str {
    match halt {
        HaltReason::JumpToSelf => "jump-to-self",
        HaltReason::FellOffEnd => "fell-off-end",
    }
}

/// One-line session status: `OK job <id> state=<s> retired=<n>
/// slices=<n> migrations=<n> [worker=<w>] [halt=<r> verified=<v>]
/// [error=<text…>]` (the free-text error is always last).
fn status_line(handle: &SessionHandle) -> String {
    let v = handle.view();
    let mut line = format!(
        "OK job {} state={} retired={} slices={} migrations={}",
        v.id,
        v.status.token(),
        v.retired,
        v.slices,
        v.migrations
    );
    match &v.status {
        SessionStatus::Running { worker } => {
            line.push_str(&format!(" worker={worker}"));
        }
        SessionStatus::Done => {
            if let Some(r) = handle.result() {
                line.push_str(&format!(
                    " halt={} verified={}",
                    halt_name(r.halt),
                    if r.verified { "ok" } else { "-" }
                ));
                if let Some(flips) = r.flips {
                    line.push_str(&format!(" flips={flips}"));
                }
            }
        }
        SessionStatus::Failed(e) => line.push_str(&format!(" error={e}")),
        SessionStatus::Queued | SessionStatus::Cancelled => {}
    }
    line
}

fn write_result(writer: &mut TcpStream, handle: &SessionHandle) -> io::Result<()> {
    let Some(r) = handle.result() else {
        return writeln!(
            writer,
            "ERR job {} has no result (state={})",
            handle.id,
            handle.view().status.token()
        );
    };
    writeln!(writer, "OK result {}", handle.id)?;
    writeln!(writer, "halt {}", halt_name(r.halt))?;
    writeln!(writer, "retired {}", r.retired)?;
    writeln!(writer, "verified {}", if r.verified { "ok" } else { "-" })?;
    for (i, value) in r.trf.iter().enumerate() {
        writeln!(writer, "reg t{i} {value}")?;
    }
    for (mnemonic, count) in &r.mix {
        writeln!(writer, "mix {mnemonic} {count}")?;
    }
    if let Some(flips) = r.flips {
        writeln!(writer, "flips {flips}")?;
    }
    writeln!(writer, "end")
}

/// Streams `event <slice> <retired> <worker> <flips|->` lines until
/// the session is terminal and its ring is drained, then a final
/// status line and `end`.
fn stream_events(writer: &mut TcpStream, handle: &SessionHandle) -> io::Result<()> {
    writeln!(writer, "OK events {}", handle.id)?;
    loop {
        let (events, terminal) = handle.next_events(Duration::from_millis(50));
        for e in &events {
            let flips = e.flips.map_or_else(|| "-".to_string(), |f| f.to_string());
            writeln!(
                writer,
                "event {} {} {} {}",
                e.slice, e.retired, e.worker, flips
            )?;
        }
        writer.flush()?;
        if terminal && events.is_empty() {
            writeln!(writer, "{}", status_line(handle))?;
            return writeln!(writer, "end");
        }
    }
}

fn write_metrics(writer: &mut TcpStream, shared: &ServerShared) -> io::Result<()> {
    let m = shared.scheduler.metrics();
    let sessions = shared.scheduler.sessions();
    let active = sessions
        .iter()
        .filter(|h| !h.view().status.is_terminal())
        .count();
    let (hits, misses) = shared.cache.stats();
    writeln!(writer, "OK metrics")?;
    writeln!(writer, "workers {}", m.workers)?;
    writeln!(writer, "quantum {}", m.quantum)?;
    writeln!(writer, "sessions-total {}", sessions.len())?;
    writeln!(writer, "sessions-active {active}")?;
    writeln!(writer, "slices {}", m.slices)?;
    writeln!(writer, "steals {}", m.steals)?;
    writeln!(writer, "migrations {}", m.migrations)?;
    writeln!(writer, "p50-slice-us {:.3}", m.p50_slice_us)?;
    writeln!(writer, "p99-slice-us {:.3}", m.p99_slice_us)?;
    writeln!(writer, "cache-images {}", shared.cache.len())?;
    writeln!(writer, "cache-hits {hits}")?;
    writeln!(writer, "cache-misses {misses}")?;
    writeln!(writer, "end")
}
