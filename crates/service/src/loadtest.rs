//! Multi-tenant load test: floods a service with inline sessions and
//! checks completion, *fairness* and slice-latency bounds.
//!
//! Every session runs a nested spin loop with a statically known
//! retirement count, so "completed correctly" is an exact assertion,
//! not a heuristic. Fairness is sampled mid-flight from `LIST`: with
//! budget-sliced round-robin scheduling, no live session should be
//! starved while a neighbour races ahead, so the max/min progress
//! ratio across in-flight sessions stays bounded.

use std::io;
use std::time::Instant;

use crate::client::Client;
use crate::scheduler::SchedulerConfig;
use crate::server::{Server, ServiceConfig};

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent sessions to submit.
    pub sessions: usize,
    /// Approximate retired instructions per session (the spin program
    /// is sized to the nearest achievable count at or above this).
    pub target_retired: u64,
    /// Scheduler quantum (retired instructions per slice).
    pub quantum: u64,
    /// Worker threads (`None` = scheduler default).
    pub workers: Option<usize>,
    /// Client connections to spread submissions over.
    pub connections: usize,
    /// Maximum allowed max/min progress ratio across live sessions in
    /// any mid-flight fairness sample.
    pub fairness_ratio: f64,
    /// Maximum allowed p99 slice latency, in milliseconds.
    pub p99_slice_ms: f64,
    /// Distinct program images to rotate across sessions (exercises
    /// the predecode cache; must be ≥ 1).
    pub distinct_images: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 256,
            target_retired: 100_000,
            quantum: 1_000,
            workers: None,
            connections: 8,
            fairness_ratio: 64.0,
            p99_slice_ms: 250.0,
            distinct_images: 4,
        }
    }
}

/// What the load test observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions submitted (and expected to complete).
    pub sessions: usize,
    /// Worker threads the service ran.
    pub workers: u64,
    /// Sessions completed per wall-clock second.
    pub sessions_per_second: f64,
    /// Aggregate retired instructions per second per worker.
    pub per_worker_ips: f64,
    /// p50 slice latency in microseconds.
    pub p50_slice_us: f64,
    /// p99 slice latency in microseconds.
    pub p99_slice_us: f64,
    /// Total migrations across all sessions.
    pub migrations: u64,
    /// Total steals across all workers.
    pub steals: u64,
    /// Distinct cached images at the end (should equal
    /// `distinct_images`).
    pub cache_images: u64,
    /// Worst max/min fairness ratio observed in mid-flight samples
    /// (0.0 when no usable sample was taken — noted, not a violation).
    pub worst_fairness_ratio: f64,
    /// Mid-flight fairness samples actually taken.
    pub fairness_samples: usize,
    /// Human-readable acceptance failures; empty means pass.
    pub violations: Vec<String>,
}

impl LoadReport {
    /// `true` when every acceptance check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The per-session spin program: three nested loops, retiring exactly
/// [`spin_retired`]`(mega, outer, inner)` instructions before the
/// final jump-to-self. Three levels because every loop counter is an
/// `LI` immediate capped at ±121 (5 trits): two levels top out near
/// 60k retired instructions, three reach into the millions. `variant`
/// perturbs the loop bodies (without changing the count) so the cache
/// sees several distinct images.
fn spin_program(mega: u64, outer: u64, inner: u64, variant: usize) -> String {
    // Distinct scratch register per variant => distinct encoded text.
    let scratch = ["t5", "t6", "t7", "t8"][variant % 4];
    format!(
        "LI t2, {mega}\n\
         mega:\n\
         LI t3, {outer}\n\
         outer:\n\
         LI t4, {inner}\n\
         inner:\n\
         ADDI t4, -1\n\
         MV {scratch}, t4\n\
         COMP {scratch}, t0\n\
         BEQ {scratch}, +, inner\n\
         ADDI t3, -1\n\
         MV {scratch}, t3\n\
         COMP {scratch}, t0\n\
         BEQ {scratch}, +, outer\n\
         ADDI t2, -1\n\
         MV {scratch}, t2\n\
         COMP {scratch}, t0\n\
         BEQ {scratch}, +, mega\n\
         JAL t0, 0\n"
    )
}

/// Exact retirement count of [`spin_program`]: the initial `LI` plus
/// the final jump-to-self `JAL` (which does retire), plus, per mega
/// iteration, its own `LI`+tail and `5 + 4 * inner` per outer
/// iteration.
fn spin_retired(mega: u64, outer: u64, inner: u64) -> u64 {
    2 + mega * (5 + outer * (5 + 4 * inner))
}

/// Sizes the spin loops so the program retires at least `target`
/// instructions; returns `(mega, outer, inner, exact_retired)`. Every
/// counter stays within the 5-trit `LI` range (±121), which caps the
/// reachable target at ~7.1M retired instructions per session.
fn size_spin(target: u64) -> (u64, u64, u64, u64) {
    let needed = target.saturating_sub(2).max(1);
    // The default granularity keeps small targets tight; grow the
    // inner loop only when the 121-caps cannot otherwise reach.
    let inner = if needed > 121 * (5 + 121 * (5 + 4 * 25)) {
        121u64
    } else {
        25u64
    };
    let per_outer = 5 + 4 * inner;
    let outer = needed.div_ceil(per_outer).clamp(1, 121);
    let block = 5 + outer * per_outer;
    let mega = needed.div_ceil(block).clamp(1, 121);
    (mega, outer, inner, spin_retired(mega, outer, inner))
}

/// Runs the load against an already-listening service.
///
/// # Errors
///
/// I/O errors talking to the service; acceptance failures are
/// reported in [`LoadReport::violations`], not as errors.
pub fn run_against(addr: &str, config: &LoadConfig) -> io::Result<LoadReport> {
    let (mega, outer, inner, expected_retired) = size_spin(config.target_retired);
    let mut violations = Vec::new();

    // Submit over a small pool of connections, round-robin.
    let mut pool: Vec<Client> = (0..config.connections.max(1))
        .map(|_| Client::connect(addr))
        .collect::<io::Result<_>>()?;
    let started = Instant::now();
    let mut ids = Vec::with_capacity(config.sessions);
    let pool_len = pool.len();
    for i in 0..config.sessions {
        let client = &mut pool[i % pool_len];
        let program = spin_program(mega, outer, inner, i % config.distinct_images.max(1));
        let id = client.submit_inline(&program, "config=art9-functional")?;
        ids.push(id);
    }

    // Sample fairness mid-flight from LIST while sessions drain.
    let mut worst_ratio = 0.0f64;
    let mut samples = 0usize;
    let sampler = &mut pool[0];
    for _ in 0..32 {
        let rows = sampler.list()?;
        let live: Vec<u64> = rows
            .iter()
            .filter(|r| {
                !matches!(r.state.as_str(), "done" | "failed" | "cancelled") && r.retired > 0
            })
            .map(|r| r.retired)
            .collect();
        // Only trust samples that cover a majority of the fleet:
        // near the end most sessions are done and the few stragglers
        // legitimately span a wide progress range.
        if live.len() >= config.sessions / 2 {
            let max = *live.iter().max().unwrap() as f64;
            let min = *live.iter().min().unwrap() as f64;
            let q = config.quantum as f64;
            let ratio = (max + q) / (min + q);
            worst_ratio = worst_ratio.max(ratio);
            samples += 1;
            if ratio > config.fairness_ratio {
                violations.push(format!(
                    "fairness: max/min progress ratio {ratio:.1} exceeds {:.1} \
                     across {} live sessions",
                    config.fairness_ratio,
                    live.len()
                ));
            }
        }
        if rows
            .iter()
            .all(|r| matches!(r.state.as_str(), "done" | "failed" | "cancelled"))
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Wait for every session and check exact completion.
    let mut done = 0usize;
    for (i, id) in ids.iter().enumerate() {
        let client = &mut pool[i % pool_len];
        let status = client.wait(*id)?;
        if status.state != "done" {
            violations.push(format!(
                "session {id}: expected done, got {} ({})",
                status.state,
                status.error.as_deref().unwrap_or("-")
            ));
            continue;
        }
        if status.retired != expected_retired {
            violations.push(format!(
                "session {id}: retired {} instructions, expected exactly {expected_retired}",
                status.retired
            ));
            continue;
        }
        done += 1;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let metrics = pool[0].metrics()?;
    let metric = |key: &str| -> f64 {
        metrics
            .get(key)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
    };
    let workers = metric("workers") as u64;
    let p99_us = metric("p99-slice-us");
    if p99_us > config.p99_slice_ms * 1000.0 {
        violations.push(format!(
            "latency: p99 slice {:.1}ms exceeds {:.1}ms",
            p99_us / 1000.0,
            config.p99_slice_ms
        ));
    }
    let cache_images = metric("cache-images") as u64;
    let expected_images = config.distinct_images.clamp(1, 4) as u64;
    if cache_images != expected_images {
        violations.push(format!(
            "cache: {cache_images} distinct images interned, expected {expected_images}"
        ));
    }

    let total_retired = expected_retired.saturating_mul(done as u64);
    Ok(LoadReport {
        sessions: config.sessions,
        workers,
        sessions_per_second: done as f64 / elapsed,
        per_worker_ips: total_retired as f64 / elapsed / workers.max(1) as f64,
        p50_slice_us: metric("p50-slice-us"),
        p99_slice_us: p99_us,
        migrations: metric("migrations") as u64,
        steals: metric("steals") as u64,
        cache_images,
        worst_fairness_ratio: worst_ratio,
        fairness_samples: samples,
        violations,
    })
}

/// Spawns an in-process service on an ephemeral port, runs the load
/// against it and shuts it down.
///
/// # Errors
///
/// I/O errors from the server or clients.
pub fn run_self_contained(config: &LoadConfig) -> io::Result<LoadReport> {
    let mut server = Server::start(ServiceConfig {
        addr: String::new(),
        scheduler: SchedulerConfig {
            workers: config
                .workers
                .unwrap_or_else(|| SchedulerConfig::default().workers),
            quantum: config.quantum,
        },
    })?;
    let report = run_against(&server.local_addr().to_string(), config);
    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_sizing_hits_at_least_the_target() {
        for target in [1u64, 100, 12_345, 100_000, 1_000_000, 7_000_000] {
            let (mega, outer, inner, exact) = size_spin(target);
            assert!(exact >= target, "target {target}: sized to {exact}");
            assert_eq!(exact, spin_retired(mega, outer, inner));
            // Every counter must load in one 5-trit LI.
            assert!(mega <= 121 && outer <= 121 && inner <= 121);
        }
    }

    #[test]
    fn sized_spin_retires_exactly_as_predicted() {
        // The exact-completion assertion the load test makes for every
        // session, checked once directly against the simulator.
        use art9_sim::{Budget, Core, SimBuilder};
        let (mega, outer, inner, exact) = size_spin(20_000);
        let program = art9_isa::assemble(&spin_program(mega, outer, inner, 0)).unwrap();
        let mut core = SimBuilder::new(&program).build_functional();
        core.run_for(Budget::Steps(10_000_000)).unwrap();
        assert!(core.halted().is_some());
        assert_eq!(core.retired(), exact);
    }

    #[test]
    fn spin_variants_assemble_to_distinct_images() {
        use art9_sim::PredecodedProgram;
        let mut hashes = std::collections::HashSet::new();
        for variant in 0..4 {
            let program = art9_isa::assemble(&spin_program(2, 3, 2, variant)).unwrap();
            hashes.insert(PredecodedProgram::new(&program).content_hash());
        }
        assert_eq!(hashes.len(), 4);
    }

    #[test]
    fn small_load_passes_end_to_end() {
        let report = run_self_contained(&LoadConfig {
            sessions: 48,
            target_retired: 5_000,
            quantum: 250,
            workers: Some(3),
            connections: 4,
            ..LoadConfig::default()
        })
        .unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.workers, 3);
        assert_eq!(report.cache_images, 4);
    }
}
