//! A small blocking client for the `art9-service v1` protocol.
//!
//! Used by the load-test harness, the CLI and the end-to-end tests;
//! external tooling can speak the wire protocol with nothing more than
//! `nc`, but this wraps the request/reply framing for Rust callers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::session::SessionStatus;

/// One connection to a running service.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A parsed `STATUS`/`WAIT` reply line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Session id.
    pub id: u64,
    /// Lifecycle token (`queued`/`running`/`done`/`failed`/`cancelled`).
    pub state: String,
    /// Instructions retired so far.
    pub retired: u64,
    /// Slices executed so far.
    pub slices: u64,
    /// Worker-to-worker migrations so far.
    pub migrations: u64,
    /// Error text, for failed sessions.
    pub error: Option<String>,
}

impl JobStatus {
    /// `true` once the session can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }
}

/// One row of a `LIST` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRow {
    /// Session id.
    pub id: u64,
    /// Program name.
    pub name: String,
    /// Lifecycle token.
    pub state: String,
    /// Instructions retired so far.
    pub retired: u64,
    /// Slices executed so far.
    pub slices: u64,
    /// Migrations so far.
    pub migrations: u64,
}

fn proto_err(detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

impl Client {
    /// Connects and performs the `HELLO` handshake.
    ///
    /// # Errors
    ///
    /// I/O errors, or a banner that is not `art9-service v1`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        };
        let banner = client.command("HELLO")?;
        if banner != format!("OK {}", crate::PROTOCOL) {
            return Err(proto_err(format!("unexpected banner {banner:?}")));
        }
        Ok(client)
    }

    fn read_reply_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Sends one request line and returns the single-line reply
    /// (which may start `ERR`).
    ///
    /// # Errors
    ///
    /// I/O errors only; protocol-level `ERR` replies are returned.
    pub fn command(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    /// Reads the remaining lines of a multi-line reply up to the bare
    /// `end` terminator (exclusive).
    fn read_body(&mut self) -> io::Result<Vec<String>> {
        let mut lines = Vec::new();
        loop {
            let line = self.read_reply_line()?;
            if line == "end" {
                return Ok(lines);
            }
            lines.push(line);
        }
    }

    /// Submits an inline ART-9 program; returns the session id.
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn submit_inline(&mut self, assembly: &str, options: &str) -> io::Result<u64> {
        let lines: Vec<&str> = assembly.lines().collect();
        let mut request = format!("SUBMIT program=inline lines={}", lines.len());
        if !options.is_empty() {
            request.push(' ');
            request.push_str(options);
        }
        writeln!(self.writer, "{request}")?;
        for line in &lines {
            writeln!(self.writer, "{line}")?;
        }
        self.writer.flush()?;
        parse_job_id(&self.read_reply_line()?)
    }

    /// Submits a registered workload; returns the session id.
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn submit_workload(&mut self, name: &str, options: &str) -> io::Result<u64> {
        let mut request = format!("SUBMIT workload={name}");
        if !options.is_empty() {
            request.push(' ');
            request.push_str(options);
        }
        parse_job_id(&self.command(&request)?)
    }

    /// `STATUS <id>`, parsed.
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn status(&mut self, id: u64) -> io::Result<JobStatus> {
        let reply = self.command(&format!("STATUS {id}"))?;
        parse_status(&reply)
    }

    /// `WAIT <id>`: blocks until the session is terminal.
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn wait(&mut self, id: u64) -> io::Result<JobStatus> {
        let reply = self.command(&format!("WAIT {id}"))?;
        parse_status(&reply)
    }

    /// `RESULT <id>`: the raw body lines (`halt …`, `retired …`,
    /// `reg t0 …`, `mix …`, …).
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn result(&mut self, id: u64) -> io::Result<Vec<String>> {
        let head = self.command(&format!("RESULT {id}"))?;
        if head.starts_with("ERR") {
            return Err(proto_err(head));
        }
        self.read_body()
    }

    /// `EVENTS <id>`: streams `event` lines until the session is
    /// terminal; returns them (plus the final status line).
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn events(&mut self, id: u64) -> io::Result<Vec<String>> {
        let head = self.command(&format!("EVENTS {id}"))?;
        if head.starts_with("ERR") {
            return Err(proto_err(head));
        }
        self.read_body()
    }

    /// `LIST`, parsed into one row per session.
    ///
    /// # Errors
    ///
    /// I/O errors or a malformed reply.
    pub fn list(&mut self) -> io::Result<Vec<SessionRow>> {
        let head = self.command("LIST")?;
        if head.starts_with("ERR") {
            return Err(proto_err(head));
        }
        self.read_body()?
            .iter()
            .map(|line| parse_session_row(line))
            .collect()
    }

    /// `METRICS`, parsed into a key → value map.
    ///
    /// # Errors
    ///
    /// I/O errors or a malformed reply.
    pub fn metrics(&mut self) -> io::Result<HashMap<String, String>> {
        let head = self.command("METRICS")?;
        if head.starts_with("ERR") {
            return Err(proto_err(head));
        }
        let mut map = HashMap::new();
        for line in self.read_body()? {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| proto_err(format!("bad metrics line {line:?}")))?;
            map.insert(key.to_string(), value.to_string());
        }
        Ok(map)
    }

    /// `CANCEL <id>`.
    ///
    /// # Errors
    ///
    /// I/O errors or an `ERR` reply.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        let reply = self.command(&format!("CANCEL {id}"))?;
        if reply.starts_with("ERR") {
            return Err(proto_err(reply));
        }
        Ok(())
    }

    /// `SHUTDOWN`: stops the whole service.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let _ = self.command("SHUTDOWN")?;
        Ok(())
    }
}

fn parse_job_id(reply: &str) -> io::Result<u64> {
    // "OK job <id>"
    let id = reply
        .strip_prefix("OK job ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|id| id.parse::<u64>().ok());
    id.ok_or_else(|| proto_err(reply))
}

fn parse_status(reply: &str) -> io::Result<JobStatus> {
    // "OK job <id> state=<s> retired=<n> slices=<n> migrations=<n> [… error=<text>]"
    let rest = reply
        .strip_prefix("OK job ")
        .ok_or_else(|| proto_err(reply))?;
    let mut tokens = rest.split_whitespace();
    let id = tokens
        .next()
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| proto_err(reply))?;
    let mut status = JobStatus {
        id,
        state: String::new(),
        retired: 0,
        slices: 0,
        migrations: 0,
        error: None,
    };
    let remainder: Vec<&str> = tokens.collect();
    for (i, token) in remainder.iter().enumerate() {
        let Some((key, value)) = token.split_once('=') else {
            continue;
        };
        match key {
            "state" => status.state = value.to_string(),
            "retired" => status.retired = value.parse().map_err(|_| proto_err(reply))?,
            "slices" => status.slices = value.parse().map_err(|_| proto_err(reply))?,
            "migrations" => status.migrations = value.parse().map_err(|_| proto_err(reply))?,
            // The error is free text and always last: take the rest of
            // the line verbatim.
            "error" => {
                let mut text = value.to_string();
                for extra in &remainder[i + 1..] {
                    text.push(' ');
                    text.push_str(extra);
                }
                status.error = Some(text);
                break;
            }
            _ => {}
        }
    }
    if status.state.is_empty() {
        return Err(proto_err(reply));
    }
    Ok(status)
}

fn parse_session_row(line: &str) -> io::Result<SessionRow> {
    // "session <id> <name> <state> <retired> <slices> <migrations>"
    let fields: Vec<&str> = line.split_whitespace().collect();
    let [tag, id, name, state, retired, slices, migrations] = fields.as_slice() else {
        return Err(proto_err(format!("bad session row {line:?}")));
    };
    if *tag != "session" {
        return Err(proto_err(format!("bad session row {line:?}")));
    }
    let num = |s: &str| s.parse::<u64>().map_err(|_| proto_err(line));
    Ok(SessionRow {
        id: num(id)?,
        name: (*name).to_string(),
        state: (*state).to_string(),
        retired: num(retired)?,
        slices: num(slices)?,
        migrations: num(migrations)?,
    })
}

/// Maps a wire state token back to a comparable [`SessionStatus`]
/// shape (errors and worker indices are not reconstructed).
pub fn token_is_terminal(token: &str) -> bool {
    !matches!(
        token,
        t if t == SessionStatus::Queued.token()
            || t == SessionStatus::Running { worker: 0 }.token()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lines_parse() {
        let s = parse_status("OK job 7 state=running retired=1200 slices=3 migrations=1 worker=2")
            .unwrap();
        assert_eq!(s.id, 7);
        assert_eq!(s.state, "running");
        assert_eq!(s.retired, 1200);
        assert_eq!(s.slices, 3);
        assert_eq!(s.migrations, 1);
        assert!(s.error.is_none());
        assert!(!s.is_terminal());

        let s = parse_status(
            "OK job 9 state=failed retired=10 slices=1 migrations=0 \
             error=gemm [art9-functional]: simulator timeout",
        )
        .unwrap();
        assert!(s.is_terminal());
        assert_eq!(
            s.error.as_deref(),
            Some("gemm [art9-functional]: simulator timeout")
        );

        assert!(parse_status("ERR no session 3").is_err());
    }

    #[test]
    fn session_rows_parse() {
        let row = parse_session_row("session 4 gemm queued 512 2 1").unwrap();
        assert_eq!(row.id, 4);
        assert_eq!(row.name, "gemm");
        assert_eq!(row.state, "queued");
        assert_eq!(row.retired, 512);
        assert!(parse_session_row("nonsense").is_err());
    }

    #[test]
    fn terminal_tokens() {
        assert!(!token_is_terminal("queued"));
        assert!(!token_is_terminal("running"));
        assert!(token_is_terminal("done"));
        assert!(token_is_terminal("failed"));
        assert!(token_is_terminal("cancelled"));
    }
}
