//! `art9-service`: simulation-as-a-service CLI.
//!
//! ```text
//! art9-service serve [--addr A] [--workers N] [--quantum Q]
//! art9-service load  [--addr A] [--sessions N] [--target-retired R]
//!                    [--workers N] [--quantum Q] [--connections C]
//!                    [--fairness-ratio F] [--p99-ms MS]
//! art9-service run   --program FILE [--resume FILE] [--backend B]
//!                    [--max-steps N]
//! ```
//!
//! `serve` runs the daemon until a client sends `SHUTDOWN`. `load`
//! floods a service (an external one via `--addr`, or a self-contained
//! in-process one) with concurrent sessions and exits non-zero on any
//! fairness/latency/completion violation. `run` executes one program
//! to a checkpoint on stdout — the worker half of the cross-process
//! checkpoint-transfer test.

use std::process::ExitCode;

use art9_service::loadtest::{run_against, run_self_contained, LoadConfig, LoadReport};
use art9_service::{SchedulerConfig, Server, ServiceConfig};
use art9_sim::{Backend, Budget, Checkpoint, SimBuilder};

const USAGE: &str = "usage: art9-service <serve|load|run> [options]
  serve  --addr A --workers N --quantum Q
  load   [--addr A] --sessions N --target-retired R --workers N
         --quantum Q --connections C --fairness-ratio F --p99-ms MS
  run    --program FILE [--resume FILE] [--backend B] [--max-steps N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "serve" => serve(rest),
        "load" => load(rest),
        "run" => run(rest),
        _ => Err(format!("unknown command {command:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("art9-service: {message}");
            ExitCode::from(2)
        }
    }
}

/// Pulls `--flag value` pairs out of `args`; rejects stray arguments.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag:?}\n{USAGE}"))?;
        if !allowed.contains(&name) {
            return Err(format!("unknown flag --{name}\n{USAGE}"));
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.push((name.to_string(), value.clone()));
    }
    Ok(flags)
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
) -> Result<Option<T>, String> {
    get(flags, name)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("bad value for --{name}: {v:?}"))
        })
        .transpose()
}

fn scheduler_config(flags: &[(String, String)]) -> Result<SchedulerConfig, String> {
    let mut config = SchedulerConfig::default();
    if let Some(workers) = parse::<usize>(flags, "workers")? {
        config.workers = workers.max(1);
    }
    if let Some(quantum) = parse::<u64>(flags, "quantum")? {
        config.quantum = quantum.max(1);
    }
    Ok(config)
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args, &["addr", "workers", "quantum"])?;
    let config = ServiceConfig {
        addr: get(&flags, "addr").unwrap_or("127.0.0.1:9841").to_string(),
        scheduler: scheduler_config(&flags)?,
    };
    let server = Server::start(config).map_err(|e| format!("bind: {e}"))?;
    println!("listening {}", server.local_addr());
    server.wait();
    Ok(ExitCode::SUCCESS)
}

fn load(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "sessions",
            "target-retired",
            "workers",
            "quantum",
            "connections",
            "fairness-ratio",
            "p99-ms",
        ],
    )?;
    let mut config = LoadConfig::default();
    if let Some(v) = parse(&flags, "sessions")? {
        config.sessions = v;
    }
    if let Some(v) = parse(&flags, "target-retired")? {
        config.target_retired = v;
    }
    if let Some(v) = parse(&flags, "quantum")? {
        config.quantum = v;
    }
    config.workers = parse(&flags, "workers")?;
    if let Some(v) = parse(&flags, "connections")? {
        config.connections = v;
    }
    if let Some(v) = parse(&flags, "fairness-ratio")? {
        config.fairness_ratio = v;
    }
    if let Some(v) = parse::<f64>(&flags, "p99-ms")? {
        config.p99_slice_ms = v;
    }
    let report = match get(&flags, "addr") {
        Some(addr) => run_against(addr, &config),
        None => run_self_contained(&config),
    }
    .map_err(|e| format!("load test: {e}"))?;
    print_report(&report);
    if report.passed() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn print_report(report: &LoadReport) {
    println!("sessions            {}", report.sessions);
    println!("workers             {}", report.workers);
    println!("sessions-per-second {:.1}", report.sessions_per_second);
    println!("per-worker-ips      {:.0}", report.per_worker_ips);
    println!("p50-slice-us        {:.3}", report.p50_slice_us);
    println!("p99-slice-us        {:.3}", report.p99_slice_us);
    println!("migrations          {}", report.migrations);
    println!("steals              {}", report.steals);
    println!("cache-images        {}", report.cache_images);
    println!(
        "fairness            worst ratio {:.2} over {} samples",
        report.worst_fairness_ratio, report.fairness_samples
    );
    if report.passed() {
        println!("result              PASS");
    } else {
        println!("result              FAIL");
        for violation in &report.violations {
            println!("violation           {violation}");
        }
    }
}

/// Runs one program (optionally resuming a checkpoint) and writes the
/// final checkpoint to stdout — the subprocess half of the
/// cross-process checkpoint-transfer test.
fn run(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args, &["program", "resume", "backend", "max-steps"])?;
    let path = get(&flags, "program").ok_or("run needs --program FILE")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let program = art9_isa::assemble(&source).map_err(|e| format!("assemble {path}: {e}"))?;
    let backend = match get(&flags, "backend") {
        None => Backend::Functional,
        Some(name) => name.parse::<Backend>()?,
    };
    let max_steps = parse::<u64>(&flags, "max-steps")?.unwrap_or(10_000_000);

    let mut core = SimBuilder::new(&program).backend(backend).build();
    if let Some(resume) = get(&flags, "resume") {
        let text = std::fs::read_to_string(resume).map_err(|e| format!("read {resume}: {e}"))?;
        let checkpoint = Checkpoint::from_text(&text).map_err(|e| format!("{resume}: {e}"))?;
        core.restore(&checkpoint)
            .map_err(|e| format!("restore: {e}"))?;
    }
    core.run_for(Budget::Steps(max_steps))
        .map_err(|e| format!("run: {e}"))?;
    print!("{}", core.snapshot().to_text());
    Ok(ExitCode::SUCCESS)
}
