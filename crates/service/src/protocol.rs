//! Wire protocol: `art9-service v1`.
//!
//! Line-oriented text over TCP, in the same spirit (and style) as the
//! `art9-checkpoint v1` serialization: one request per line, commands
//! in upper case, arguments as `key=value` tokens, multi-line
//! responses terminated by a bare `end` line. Replies start `OK` or
//! `ERR`. The full grammar lives in `docs/SERVICE.md`.
//!
//! ```text
//! HELLO
//! SUBMIT workload=gemm n=6 config=art9-threaded energy=1
//! SUBMIT program=inline lines=3 max-retired=100000
//! LI t3, 41
//! ADDI t3, 1
//! JAL t0, 0
//! STATUS 7 | WAIT 7 | RESULT 7 | EVENTS 7 | CANCEL 7
//! LIST | METRICS | SHUTDOWN | QUIT
//! ```

use std::collections::HashMap;

/// A parsed request line. `SUBMIT` is returned *before* any inline
/// program body is read — `lines` tells the transport how many raw
/// source lines follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Protocol handshake; replies with the version banner.
    Hello,
    /// Job submission: the `key=value` arguments plus the number of
    /// inline source lines that follow the request line.
    Submit {
        /// Parsed `key=value` arguments.
        args: HashMap<String, String>,
        /// Raw source lines following the request (`lines=<k>`).
        inline_lines: usize,
    },
    /// One-line status of a session.
    Status(u64),
    /// Block until the session is terminal; reply like `STATUS`.
    Wait(u64),
    /// Final machine state of a completed session (multi-line).
    Result(u64),
    /// Stream per-slice events until the session is terminal.
    Events(u64),
    /// One line per session (multi-line).
    List,
    /// Scheduler/cache counters (multi-line).
    Metrics,
    /// Request cancellation of a session.
    Cancel(u64),
    /// Stop the whole service.
    Shutdown,
    /// Close this connection.
    Quit,
}

/// Parses one request line.
///
/// # Errors
///
/// A diagnostic string suitable for an `ERR` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().ok_or("empty request")?;
    let rest: Vec<&str> = tokens.collect();
    let no_args = |request: Request| {
        if rest.is_empty() {
            Ok(request)
        } else {
            Err(format!("{command} takes no arguments"))
        }
    };
    let id_arg = || -> Result<u64, String> {
        match rest.as_slice() {
            [id] => id
                .parse::<u64>()
                .map_err(|_| format!("{command} needs a numeric session id, got {id:?}")),
            _ => Err(format!("{command} needs exactly one session id")),
        }
    };
    match command {
        "HELLO" => no_args(Request::Hello),
        "SUBMIT" => {
            let args = parse_kv(&rest)?;
            let inline_lines = match args.get("lines") {
                None => 0,
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|_| format!("lines must be a count, got {v:?}"))?,
            };
            if inline_lines > 10_000 {
                return Err("inline programs are capped at 10000 lines".into());
            }
            Ok(Request::Submit { args, inline_lines })
        }
        "STATUS" => Ok(Request::Status(id_arg()?)),
        "WAIT" => Ok(Request::Wait(id_arg()?)),
        "RESULT" => Ok(Request::Result(id_arg()?)),
        "EVENTS" => Ok(Request::Events(id_arg()?)),
        "CANCEL" => Ok(Request::Cancel(id_arg()?)),
        "LIST" => no_args(Request::List),
        "METRICS" => no_args(Request::Metrics),
        "SHUTDOWN" => no_args(Request::Shutdown),
        "QUIT" | "BYE" => no_args(Request::Quit),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parses `key=value` tokens (duplicate keys rejected).
///
/// # Errors
///
/// A diagnostic string for tokens without `=` or repeated keys.
pub fn parse_kv(tokens: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
        if map.insert(key.to_string(), value.to_string()).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_request("HELLO").unwrap(), Request::Hello);
        assert_eq!(parse_request("STATUS 7").unwrap(), Request::Status(7));
        assert_eq!(parse_request("WAIT 9").unwrap(), Request::Wait(9));
        assert_eq!(parse_request("LIST").unwrap(), Request::List);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        match parse_request("SUBMIT workload=gemm n=6 lines=0").unwrap() {
            Request::Submit { args, inline_lines } => {
                assert_eq!(args.get("workload").unwrap(), "gemm");
                assert_eq!(args.get("n").unwrap(), "6");
                assert_eq!(inline_lines, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB").is_err());
        assert!(parse_request("STATUS").is_err());
        assert!(parse_request("STATUS x").is_err());
        assert!(parse_request("LIST now").is_err());
        assert!(parse_request("SUBMIT workload").is_err());
        assert!(parse_request("SUBMIT a=1 a=2").is_err());
        assert!(parse_request("SUBMIT lines=999999999").is_err());
    }
}
