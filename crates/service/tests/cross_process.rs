//! Cross-process checkpoint transfer: serialize a mid-run checkpoint
//! in this process, restore and finish it in a spawned `art9-service
//! run` subprocess, and compare the child's final checkpoint against
//! an uninterrupted in-process run — for every backend.
//!
//! This is the process-boundary version of the scheduler's worker
//! migration invariant: a run split across *processes* by checkpoint
//! text must land in exactly the same final state.

use std::path::PathBuf;
use std::process::Command;

use art9_sim::{Backend, Budget, Checkpoint, SimBuilder};

/// A nested spin loop retiring exactly `2 + 30 * (5 + 4 * 10) = 1352`
/// instructions (same idiom as the load-test program).
const PROGRAM: &str = "LI t3, 30\n\
    outer:\n\
    LI t4, 10\n\
    inner:\n\
    ADDI t4, -1\n\
    MV t7, t4\n\
    COMP t7, t0\n\
    BEQ t7, +, inner\n\
    ADDI t3, -1\n\
    MV t7, t3\n\
    COMP t7, t0\n\
    BEQ t7, +, outer\n\
    JAL t0, 0\n";

fn temp_file(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("art9-cross-process-{}-{name}", std::process::id()));
    path
}

#[test]
fn mid_run_checkpoints_resume_in_a_subprocess() {
    let program = art9_isa::assemble(PROGRAM).unwrap();
    let program_path = temp_file("program.art9");
    std::fs::write(&program_path, PROGRAM).unwrap();

    for backend in Backend::ALL {
        // Straight-line run to completion in this process.
        let mut straight = SimBuilder::new(&program).backend(backend).build();
        straight.run_for(Budget::Steps(1_000_000)).unwrap();
        assert!(
            straight.halted().is_some(),
            "{backend}: straight-line halts"
        );
        let expected = straight.snapshot();

        // Mid-run checkpoint: stop after 600 retired instructions.
        let mut half = SimBuilder::new(&program).backend(backend).build();
        let summary = half.run_for(Budget::Retired(600)).unwrap();
        assert_eq!(summary.halt, None, "{backend}: cut mid-run, not at halt");
        let checkpoint_path = temp_file(&format!("{backend}.ckpt"));
        std::fs::write(&checkpoint_path, half.snapshot().to_text()).unwrap();

        // Restore and finish in a subprocess; its stdout is the final
        // checkpoint.
        let output = Command::new(env!("CARGO_BIN_EXE_art9-service"))
            .args(["run", "--program"])
            .arg(&program_path)
            .arg("--resume")
            .arg(&checkpoint_path)
            .args(["--backend", backend.name()])
            .output()
            .expect("spawn art9-service run");
        assert!(
            output.status.success(),
            "{backend}: child failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child = Checkpoint::from_text(&String::from_utf8(output.stdout).unwrap())
            .unwrap_or_else(|e| panic!("{backend}: child checkpoint: {e}"));

        assert_eq!(
            child, expected,
            "{backend}: resumed-in-subprocess final state diverged"
        );
        std::fs::remove_file(&checkpoint_path).ok();
    }
    std::fs::remove_file(&program_path).ok();
}

#[test]
fn architectural_checkpoints_cross_backends_across_processes() {
    // A functional mid-run checkpoint resumes under the *threaded*
    // backend in the child — architectural checkpoints are
    // backend-portable, and the process boundary doesn't change that.
    let program = art9_isa::assemble(PROGRAM).unwrap();
    let program_path = temp_file("cross-program.art9");
    std::fs::write(&program_path, PROGRAM).unwrap();

    let mut straight = SimBuilder::new(&program).backend(Backend::Threaded).build();
    straight.run_for(Budget::Steps(1_000_000)).unwrap();
    let expected = straight.snapshot();

    let mut half = SimBuilder::new(&program)
        .backend(Backend::Functional)
        .build();
    half.run_for(Budget::Retired(600)).unwrap();
    let checkpoint_path = temp_file("cross.ckpt");
    std::fs::write(&checkpoint_path, half.snapshot().to_text()).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_art9-service"))
        .args(["run", "--program"])
        .arg(&program_path)
        .arg("--resume")
        .arg(&checkpoint_path)
        .args(["--backend", "threaded"])
        .output()
        .expect("spawn art9-service run");
    assert!(
        output.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let child = Checkpoint::from_text(&String::from_utf8(output.stdout).unwrap()).unwrap();
    assert_eq!(child.state, expected.state);
    assert_eq!(child.retired, expected.retired);
    assert_eq!(child.halted, expected.halted);

    std::fs::remove_file(&checkpoint_path).ok();
    std::fs::remove_file(&program_path).ok();
}
