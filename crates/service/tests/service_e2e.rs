//! End-to-end protocol tests: a real `Server` on an ephemeral
//! loopback port, driven through real `Client` connections.

use art9_service::loadtest::{run_against, LoadConfig};
use art9_service::{Client, SchedulerConfig, Server, ServiceConfig};

fn start_server(workers: usize, quantum: u64) -> Server {
    Server::start(ServiceConfig {
        addr: String::new(),
        scheduler: SchedulerConfig { workers, quantum },
    })
    .expect("start server")
}

const SPIN: &str = "LI t3, 20\n\
    outer:\n\
    LI t4, 10\n\
    inner:\n\
    ADDI t4, -1\n\
    MV t7, t4\n\
    COMP t7, t0\n\
    BEQ t7, +, inner\n\
    ADDI t3, -1\n\
    MV t7, t3\n\
    COMP t7, t0\n\
    BEQ t7, +, outer\n\
    JAL t0, 0\n";

/// Exact retirement of [`SPIN`]: `2 + 20 * (5 + 4 * 10)`.
const SPIN_RETIRED: u64 = 2 + 20 * 45;

#[test]
fn inline_job_lifecycle_over_tcp() {
    let mut server = start_server(2, 100);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let id = client.submit_inline(SPIN, "config=art9-threaded").unwrap();
    let status = client.wait(id).unwrap();
    assert_eq!(status.state, "done");
    assert_eq!(status.retired, SPIN_RETIRED);
    assert!(status.slices >= 2, "quantum 100 forces multiple slices");

    let result = client.result(id).unwrap();
    assert!(
        result.contains(&"halt jump-to-self".to_string()),
        "{result:?}"
    );
    assert!(
        result.contains(&format!("retired {SPIN_RETIRED}")),
        "{result:?}"
    );
    assert!(result.contains(&"reg t3 0".to_string()), "{result:?}");
    assert!(
        result.iter().any(|l| l.starts_with("mix ADDI ")),
        "{result:?}"
    );

    // A second STATUS from a *different* connection sees the same
    // session.
    let mut second = Client::connect(&addr).unwrap();
    assert_eq!(second.status(id).unwrap().state, "done");

    server.shutdown();
}

#[test]
fn workload_jobs_verify_and_stream_events() {
    let mut server = start_server(2, 200);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let id = client
        .submit_workload(
            "dot-product",
            "n=8 config=art9-functional energy=1 events=1",
        )
        .unwrap();
    let lines = client.events(id).unwrap();
    let events: Vec<&String> = lines.iter().filter(|l| l.starts_with("event ")).collect();
    assert!(!events.is_empty(), "per-slice events streamed: {lines:?}");
    // Every event carries a cumulative flip count (energy=1).
    for event in &events {
        let fields: Vec<&str> = event.split_whitespace().collect();
        assert_eq!(fields.len(), 5, "{event}");
        assert!(fields[4].parse::<u64>().is_ok(), "{event}");
    }
    // The stream ends with the terminal status line.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("state=done") && l.contains("verified=ok")),
        "{lines:?}"
    );

    server.shutdown();
}

#[test]
fn nn_session_verifies_over_the_protocol() {
    let mut server = start_server(2, 150);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // The ternary-NN workload is addressable by registry name over the
    // wire like any other; a small quantum slices the inference run.
    let id = client
        .submit_workload("nn-mlp", "n=8 config=art9-threaded energy=1")
        .unwrap();
    let status = client.wait(id).unwrap();
    assert_eq!(status.state, "done");
    assert!(status.retired > 0);
    assert!(status.slices >= 2, "quantum 150 forces multiple slices");

    let result = client.result(id).unwrap();
    assert!(result.contains(&"verified ok".to_string()), "{result:?}");
    assert!(result.iter().any(|l| l.starts_with("mix ")), "{result:?}");

    // The associative-search workload rides the same registry path.
    let id = client
        .submit_workload("assoc-match", "n=32 config=art9-functional")
        .unwrap();
    let status = client.wait(id).unwrap();
    assert_eq!(status.state, "done");
    let result = client.result(id).unwrap();
    assert!(result.contains(&"verified ok".to_string()), "{result:?}");

    server.shutdown();
}

#[test]
fn protocol_errors_are_diagnosed_not_fatal() {
    let mut server = start_server(1, 1_000);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Unknown command / bad request: ERR reply, connection stays up.
    assert!(client.command("FROBNICATE").unwrap().starts_with("ERR"));
    assert!(client.command("STATUS 999").unwrap().starts_with("ERR"));

    // Typed preparation failures surface as ERR with the WorkloadError
    // text.
    let reply = client.command("SUBMIT workload=quux").unwrap();
    assert!(reply.starts_with("ERR"), "{reply}");
    assert!(reply.contains("quux"), "{reply}");

    let reply = client
        .command("SUBMIT workload=gemm config=rv32-picorv32")
        .unwrap();
    assert!(reply.contains("batch-only"), "{reply}");

    // Bad inline assembly: parse error names the line.
    let lines = ["SUBMIT program=inline lines=1", "NOT AN OPCODE"].join("\n");
    let reply = client.command(&lines).unwrap();
    assert!(reply.starts_with("ERR"), "{reply}");
    assert!(reply.contains("parse"), "{reply}");

    // The connection is still serviceable afterwards.
    let id = client.submit_inline(SPIN, "").unwrap();
    assert_eq!(client.wait(id).unwrap().state, "done");

    server.shutdown();
}

#[test]
fn cancel_list_and_metrics_roundtrip() {
    let mut server = start_server(1, 50);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // An endless loop only cancellation can stop.
    let endless = "loop:\nADDI t3, 1\nADDI t3, -1\nJAL t4, loop\n";
    let id = client.submit_inline(endless, "").unwrap();
    client.cancel(id).unwrap();
    assert_eq!(client.wait(id).unwrap().state, "cancelled");

    let rows = client.list().unwrap();
    assert!(rows.iter().any(|r| r.id == id && r.state == "cancelled"));

    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("workers").map(String::as_str), Some("1"));
    assert_eq!(metrics.get("quantum").map(String::as_str), Some("50"));
    assert!(metrics.contains_key("p99-slice-us"));
    assert!(metrics.contains_key("cache-images"));

    server.shutdown();
}

#[test]
fn shutdown_command_stops_the_service() {
    let server = start_server(1, 1_000);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    // The daemon-side wait() returns once SHUTDOWN lands.
    server.wait();
    // New connections are refused (or reset) after shutdown.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn concurrent_load_with_migrations_completes_exactly() {
    // A denser version of the CI load smoke: many more sessions than
    // workers so stealing + migration actually happen, every session
    // checked for exact retirement.
    let mut server = start_server(3, 100);
    let report = run_against(
        &server.local_addr().to_string(),
        &LoadConfig {
            sessions: 96,
            target_retired: 10_000,
            quantum: 100,
            connections: 6,
            ..LoadConfig::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.cache_images, 4, "4 distinct spin variants interned");
    server.shutdown();
}
