//! The hardware-level evaluation framework, end to end (paper Fig. 3):
//! cycle-accurate simulation → gate-level analysis → performance
//! estimation.

use art9_hw::analyzer::{analyze, GateAnalysis};
use art9_hw::datapath::Datapath;
use art9_hw::estimator::{
    estimate_cntfet, estimate_fpga, CntfetEstimate, DhrystoneResult, FpgaEstimate,
};
use art9_hw::fpga::{map_to_fpga, MemoryConfig};
use art9_hw::tech::{cntfet32, TechLibrary};
use art9_isa::Program;
use art9_sim::{PipelineStats, SimBuilder, SimError};

/// Front door of the hardware-level framework.
///
/// # Examples
///
/// ```
/// use art9_core::HardwareFramework;
/// use art9_isa::assemble;
///
/// let fw = HardwareFramework::new();
/// let p = assemble("LI t3, 3\nADDI t3, -1\nJAL t0, 0\n")?;
/// let stats = fw.run_cycles(&p, 10_000)?;
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HardwareFramework {
    datapath: Datapath,
    library: TechLibrary,
    fpga_mem: MemoryConfig,
    fpga_mhz: f64,
}

/// Everything the framework produces for one design point.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Gate-level analysis under the ternary library.
    pub gate_analysis: GateAnalysis,
    /// Table IV-style CNTFET estimate.
    pub cntfet: CntfetEstimate,
    /// Table V-style FPGA estimate.
    pub fpga: FpgaEstimate,
}

impl Default for HardwareFramework {
    fn default() -> Self {
        Self::new()
    }
}

impl HardwareFramework {
    /// Framework over the ART-9 datapath, the 32 nm CNTFET library and
    /// the Table V FPGA configuration (256-word memories, 150 MHz).
    pub fn new() -> Self {
        Self {
            datapath: Datapath::art9(),
            library: cntfet32(),
            fpga_mem: MemoryConfig::default(),
            fpga_mhz: 150.0,
        }
    }

    /// Swaps the technology library (for ablations).
    #[must_use]
    pub fn with_library(mut self, library: TechLibrary) -> Self {
        self.library = library;
        self
    }

    /// The modelled datapath.
    pub fn datapath(&self) -> &Datapath {
        &self.datapath
    }

    /// Cycle-accurate simulation of a program on the pipelined core.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (faults, timeout).
    pub fn run_cycles(
        &self,
        program: &Program,
        max_cycles: u64,
    ) -> Result<PipelineStats, SimError> {
        let mut core = SimBuilder::new(program).build_pipelined();
        core.run(max_cycles)
    }

    /// The complete Fig. 3 flow, given Dhrystone cycles-per-iteration
    /// from [`HardwareFramework::run_cycles`] on the Dhrystone program.
    pub fn evaluate(&self, dhrystone_cycles_per_iteration: f64) -> Evaluation {
        let dhrystone = DhrystoneResult {
            cycles_per_iteration: dhrystone_cycles_per_iteration,
        };
        let gate_analysis = analyze(&self.datapath, &self.library);
        let cntfet = estimate_cntfet(&gate_analysis, dhrystone);
        let fpga_report = map_to_fpga(&self.datapath, self.fpga_mem, self.fpga_mhz);
        let fpga = estimate_fpga(&fpga_report, dhrystone);
        Evaluation {
            gate_analysis,
            cntfet,
            fpga,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::assemble;

    #[test]
    fn full_flow_produces_consistent_tables() {
        let fw = HardwareFramework::new();
        let e = fw.evaluate(1355.0);
        assert_eq!(e.gate_analysis.gates, e.cntfet.total_gates);
        assert!(e.cntfet.dmips_per_watt > e.fpga.dmips_per_watt * 1e3);
        assert_eq!(e.fpga.report.ram_bits, 9216);
    }

    #[test]
    fn cycle_run_smoke() {
        let fw = HardwareFramework::new();
        let p = assemble("LI t3, 5\nADD t3, t3\nJAL t0, 0\n").unwrap();
        let stats = fw.run_cycles(&p, 1000).unwrap();
        assert_eq!(stats.instructions, 3);
    }

    #[test]
    fn library_swap_changes_results() {
        let fast = HardwareFramework::new().evaluate(1000.0);
        let slow = HardwareFramework::new()
            .with_library(art9_hw::tech::generic_cmos_ternary())
            .evaluate(1000.0);
        assert!(slow.cntfet.fmax_mhz < fast.cntfet.fmax_mhz);
        assert!(slow.cntfet.dmips_per_watt < fast.cntfet.dmips_per_watt);
    }
}
