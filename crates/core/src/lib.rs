//! # `art9-core` — the design and evaluation frameworks
//!
//! The paper's two headline contributions as one API:
//!
//! * [`SoftwareFramework`] — the software-level compiling framework
//!   (Fig. 2): RV32 assembly → ART-9 ternary program, with the memory-
//!   cell accounting behind Fig. 5;
//! * [`HardwareFramework`] — the hardware-level evaluation framework
//!   (Fig. 3): cycle-accurate simulation, gate-level analysis under a
//!   technology library, and the performance estimator behind
//!   Tables IV and V;
//! * [`report`] — renderers that print the paper's tables.
//!
//! ## The whole paper in one block
//!
//! ```
//! use art9_core::{HardwareFramework, SoftwareFramework};
//! use rv32::parse_program;
//!
//! // Software-level: compile an RV32 program to ternary.
//! let rv = parse_program("
//!     li a0, 10
//!     li a1, 0
//! loop:
//!     add a1, a1, a0
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     ebreak
//! ")?;
//! let sw = SoftwareFramework::new();
//! let translation = sw.compile(&rv)?;
//!
//! // Hardware-level: run it cycle-accurately, then estimate silicon.
//! let hw = HardwareFramework::new();
//! let stats = hw.run_cycles(&translation.program, 100_000)?;
//! let evaluation = hw.evaluate(stats.cycles as f64); // 1 "iteration"
//! println!("{}", art9_core::report::table4(&evaluation));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hardware;
pub mod report;
mod software;

pub use hardware::{Evaluation, HardwareFramework};
pub use software::{MemoryComparison, SoftwareFramework};
