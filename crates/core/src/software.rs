//! The software-level compiling framework, end to end (paper Fig. 2).

use art9_compiler::{translate_with_tdm, CompileError, Translation};
use rv32::{estimate_thumb, Rv32Program};

/// Front door of the software-level framework: RV32 assembly in,
/// executable ART-9 program + statistics out.
///
/// # Examples
///
/// ```
/// use art9_core::SoftwareFramework;
/// use rv32::parse_program;
///
/// let fw = SoftwareFramework::new();
/// let rv = parse_program("li a0, 1\nadd a0, a0, a0\nebreak\n")?;
/// let t = fw.compile(&rv)?;
/// assert!(!t.program.text().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareFramework {
    tdm_words: usize,
}

impl Default for SoftwareFramework {
    fn default() -> Self {
        Self::new()
    }
}

/// One row of the Fig. 5 memory-cell comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryComparison {
    /// Program name.
    pub name: String,
    /// ART-9 storage: ternary memory cells (trits), instructions + data.
    pub art9_cells: usize,
    /// RV-32I storage: bits, instructions + data.
    pub rv32_bits: usize,
    /// ARMv6-M estimate: bits, instructions + data.
    pub thumb_bits: usize,
}

impl MemoryComparison {
    /// Cell-count reduction of ART-9 vs RV-32I (the paper quotes 54 %
    /// for Dhrystone). Compares raw storage-cell counts, as Fig. 5
    /// does: a ternary cell stores one trit, a binary cell one bit.
    pub fn saving_vs_rv32(&self) -> f64 {
        1.0 - self.art9_cells as f64 / self.rv32_bits as f64
    }

    /// Cell-count reduction vs the ARMv6-M estimate.
    pub fn saving_vs_thumb(&self) -> f64 {
        1.0 - self.art9_cells as f64 / self.thumb_bits as f64
    }
}

impl SoftwareFramework {
    /// Framework with the default 256-word TDM.
    pub fn new() -> Self {
        Self {
            tdm_words: art9_compiler::DEFAULT_TDM_WORDS,
        }
    }

    /// Framework targeting a custom TDM size.
    pub fn with_tdm_words(tdm_words: usize) -> Self {
        Self { tdm_words }
    }

    /// Runs the full Fig. 2 pipeline: instruction mapping, operand
    /// conversion, redundancy checking, branch retargeting.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] — untranslatable programs are rejected.
    pub fn compile(&self, program: &Rv32Program) -> Result<Translation, CompileError> {
        translate_with_tdm(program, self.tdm_words)
    }

    /// Produces one Fig. 5 row: the same program's storage on the
    /// three ISAs.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] from the translation.
    pub fn memory_comparison(
        &self,
        name: impl Into<String>,
        program: &Rv32Program,
    ) -> Result<MemoryComparison, CompileError> {
        let t = self.compile(program)?;
        let thumb = estimate_thumb(program);
        Ok(MemoryComparison {
            name: name.into(),
            // Instructions + initial data, in storage cells.
            art9_cells: t.program.instruction_cells() + program.data().len() * 9,
            rv32_bits: program.memory_bits(),
            thumb_bits: thumb.memory_bits(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv32::parse_program;

    #[test]
    fn comparison_row_has_all_three_columns() {
        let fw = SoftwareFramework::new();
        let rv = parse_program(
            ".data\nv: .word 1, 2, 3\n.text\nla a0, v\nlw a1, 0(a0)\nadd a1, a1, a1\nebreak\n",
        )
        .unwrap();
        let row = fw.memory_comparison("demo", &rv).unwrap();
        assert!(row.art9_cells > 0);
        assert!(row.rv32_bits > 0);
        assert!(row.thumb_bits > 0);
        // Thumb is denser than RV32 in bits.
        assert!(row.thumb_bits < row.rv32_bits);
    }

    #[test]
    fn art9_saves_cells_on_loopy_code() {
        // Branch-heavy code is where 9-trit instructions pay off.
        let fw = SoftwareFramework::new();
        let rv = parse_program(
            "
            li a0, 9
            li a1, 0
            loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ebreak
            ",
        )
        .unwrap();
        let row = fw.memory_comparison("loop", &rv).unwrap();
        assert!(
            row.saving_vs_rv32() > 0.0,
            "expected cell saving, got {:.2}",
            row.saving_vs_rv32()
        );
    }
}
