//! Human-readable evaluation reports in the shape of the paper's
//! tables.

use std::fmt;

use crate::hardware::Evaluation;
use crate::software::MemoryComparison;

/// Renders Table IV (CNTFET implementation).
pub fn table4(e: &Evaluation) -> String {
    let c = &e.cntfet;
    let mut s = String::new();
    s.push_str("Table IV — implementation results using CNTFET ternary gates\n");
    s.push_str("Voltage  Total gates  Power      DMIPS/W\n");
    s.push_str(&format!(
        "{:.1}V     {:<11}  {:.1} µW   {:.2e}\n",
        c.voltage, c.total_gates, c.power_uw, c.dmips_per_watt
    ));
    s.push_str(&format!(
        "(fmax {:.0} MHz, {:.1} DMIPS)\n",
        c.fmax_mhz, c.dmips
    ));
    s
}

/// Renders Table V (FPGA implementation).
pub fn table5(e: &Evaluation) -> String {
    let f = &e.fpga;
    let r = &f.report;
    let mut s = String::new();
    s.push_str("Table V — implementation results using FPGA-based ternary logics\n");
    s.push_str("Voltage  Frequency  ALMs  Registers  RAM        Power\n");
    s.push_str(&format!(
        "{:.1}V     {:.0} MHz    {:<5} {:<10} {} bits  {:.2} W\n",
        r.voltage, r.frequency_mhz, r.alms, r.registers, r.ram_bits, r.power_w
    ));
    s.push_str(&format!(
        "({:.1} DMIPS, {:.1} DMIPS/W)\n",
        f.dmips, f.dmips_per_watt
    ));
    s
}

/// Renders the Fig. 5 memory-cell comparison.
pub fn fig5(rows: &[MemoryComparison]) -> String {
    let mut s = String::new();
    s.push_str("Fig. 5 — memory cells for storing benchmark programs\n");
    s.push_str(&format!(
        "{:<14} {:>14} {:>14} {:>14} {:>10}\n",
        "benchmark", "ART-9 (trits)", "RV-32I (bits)", "ARMv6-M (bits)", "vs RV32"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:>14} {:>14} {:>14} {:>9.0}%\n",
            r.name,
            r.art9_cells,
            r.rv32_bits,
            r.thumb_bits,
            100.0 * r.saving_vs_rv32()
        ));
    }
    s
}

/// A minimal wrapper so reports can be `Display`ed together.
#[derive(Debug, Clone)]
pub struct FullReport {
    /// Hardware evaluation (Tables IV and V).
    pub evaluation: Evaluation,
    /// Memory comparison rows (Fig. 5).
    pub memory_rows: Vec<MemoryComparison>,
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\n{}\n{}",
            fig5(&self.memory_rows),
            table4(&self.evaluation),
            table5(&self.evaluation)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareFramework;

    #[test]
    fn tables_render_key_fields() {
        let e = HardwareFramework::new().evaluate(1355.0);
        let t4 = table4(&e);
        assert!(t4.contains("CNTFET"));
        assert!(t4.contains("0.9V"));
        let t5 = table5(&e);
        assert!(t5.contains("9216"));
        let f5 = fig5(&[MemoryComparison {
            name: "dhrystone".into(),
            art9_cells: 11600,
            rv32_bits: 25400,
            thumb_bits: 23700,
        }]);
        assert!(f5.contains("dhrystone"));
        assert!(f5.contains("54%"));
    }
}
