//! The [`Writeback`] event stream is architectural: for the same
//! program, all four backends must report bit-identical sequences of
//! write-back events — pc, instruction, old/new destination register
//! value, old/new TDM cell, result-bus value — in retirement order.
//! This is the contract the `EnergyAccounting` observer (and therefore
//! the whole measured-energy path of Table IV) rests on, so it is
//! property-tested on random looped programs the same way
//! `checkpoint_resume` pins snapshot invisibility.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use art9_isa::{Instruction, Program, TReg};
use art9_sim::observers::EnergyAccounting;
use art9_sim::{Backend, Budget, Observer, SimBuilder, Writeback};
use ternary::Trits;

/// Base register kept stable for memory addressing.
const BASE: TReg = TReg::T2;
const BASE_ADDR: i64 = 100;

/// Records every [`Writeback`] event verbatim.
#[derive(Default)]
struct WritebackLog {
    log: Vec<Writeback>,
}

impl Observer for WritebackLog {
    fn on_writeback(&mut self, wb: &Writeback) {
        self.log.push(*wb);
    }
}

fn imm<const N: usize>() -> impl Strategy<Value = Trits<N>> {
    let max = (ternary::pow3(N) - 1) / 2;
    (-max..=max).prop_map(|v| Trits::<N>::from_i64(v).expect("in range"))
}

/// A counted loop around a random ALU/memory body (the structural
/// termination guarantee of the `equivalence` and `checkpoint_resume`
/// suites), so write-backs cover forwarding chains, loads, stores and
/// taken/untaken branches.
fn looped_program() -> impl Strategy<Value = Program> {
    use Instruction::*;
    let body_reg = || {
        prop_oneof![
            Just(TReg::T3),
            Just(TReg::T4),
            Just(TReg::T5),
            Just(TReg::T6),
        ]
    };
    let body_op = prop_oneof![
        (body_reg(), body_reg()).prop_map(|(a, b)| Mv { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Add { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Sub { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Xor { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Comp { a, b }),
        (body_reg(), imm::<3>()).prop_map(|(a, imm)| Addi { a, imm }),
        (body_reg(), imm::<5>()).prop_map(|(a, imm)| Li { a, imm }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Load { a, b: BASE, offset }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Store { a, b: BASE, offset }),
    ];
    (proptest::collection::vec(body_op, 1..20), 2i64..=6).prop_map(|(body, iters)| {
        let (hi, lo) = art9_isa::asm::split_hi_lo(BASE_ADDR);
        let mut text = vec![
            Lui {
                a: BASE,
                imm: Trits::<4>::from_i64(hi).expect("fits"),
            },
            Li {
                a: BASE,
                imm: Trits::<5>::from_i64(lo).expect("fits"),
            },
            Li {
                a: TReg::T1,
                imm: Trits::<5>::from_i64(iters).expect("fits"),
            },
        ];
        let body_len = body.len() as i64;
        text.extend(body);
        text.push(Addi {
            a: TReg::T1,
            imm: Trits::<3>::from_i64(-1).expect("fits"),
        });
        text.push(Mv {
            a: TReg::T7,
            b: TReg::T1,
        });
        text.push(Comp {
            a: TReg::T7,
            b: TReg::T0,
        });
        text.push(Instruction::Beq {
            b: TReg::T7,
            cond: ternary::Trit::P,
            offset: Trits::<4>::from_i64(-(body_len + 3)).expect("fits imm4"),
        });
        Program::from_instructions(text)
    })
}

fn writeback_log(p: &Program, backend: Backend) -> (Vec<Writeback>, u64) {
    let log = Arc::new(Mutex::new(WritebackLog::default()));
    let mut core = SimBuilder::new(p)
        .backend(backend)
        .observer(log.clone())
        .build();
    core.run_for(Budget::Steps(1_000_000))
        .expect("run completes");
    let l = log.lock().unwrap().log.clone();
    (l, core.retired())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn writeback_stream_is_identical_on_every_backend(p in looped_program()) {
        let (base, base_retired) = writeback_log(&p, Backend::Functional);
        prop_assert_eq!(base.len() as u64, base_retired, "one write-back per retirement");
        for backend in [Backend::Pipelined, Backend::Reference, Backend::Threaded] {
            let (log, retired) = writeback_log(&p, backend);
            prop_assert_eq!(base_retired, retired, "{} retired differently", backend);
            prop_assert_eq!(&base, &log, "{} write-back stream diverged", backend);
        }
    }

    #[test]
    fn energy_totals_are_backend_independent(p in looped_program()) {
        // The flip accumulators are a pure function of the write-back
        // stream, so identical streams must give identical energy — the
        // in-process counterpart of the `energy` fuzz oracle.
        let mut per_backend = Vec::new();
        for backend in Backend::ALL {
            let energy = Arc::new(Mutex::new(EnergyAccounting::new()));
            let mut core = SimBuilder::new(&p)
                .backend(backend)
                .observer(energy.clone())
                .build();
            core.run_for(Budget::Steps(1_000_000)).expect("run completes");
            let snapshot = energy.lock().unwrap().clone();
            prop_assert_eq!(
                snapshot.totals().retired,
                core.retired(),
                "{} missed retirements", backend
            );
            per_backend.push(*snapshot.per_opcode());
        }
        for (i, later) in per_backend.iter().enumerate().skip(1) {
            prop_assert_eq!(&per_backend[0], later, "backend #{} diverged", i);
        }
    }
}
