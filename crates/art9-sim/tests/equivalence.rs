//! The pipeline timing model must be architecturally invisible: on any
//! program, the cycle-accurate 5-stage core and the functional reference
//! produce identical final register files, data memories and retirement
//! counts. Programs here are randomly generated with forward-only
//! control flow (guaranteed termination) over the full ALU/memory/branch
//! repertoire.

use proptest::prelude::*;

use art9_isa::{Instruction, Program, TReg};
use art9_sim::SimBuilder;
use ternary::{Trit, Trits};

/// Base register kept stable for memory addressing.
const BASE: TReg = TReg::T2;
/// The address preloaded into BASE (mid-TDM, so ±13 offsets stay valid).
const BASE_ADDR: i64 = 100;

fn data_reg() -> impl Strategy<Value = TReg> {
    // Any register except the memory base.
    prop_oneof![
        Just(TReg::T0),
        Just(TReg::T1),
        Just(TReg::T3),
        Just(TReg::T4),
        Just(TReg::T5),
        Just(TReg::T6),
        Just(TReg::T7),
        Just(TReg::T8),
    ]
}

fn trit() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::N), Just(Trit::Z), Just(Trit::P)]
}

fn imm<const N: usize>() -> impl Strategy<Value = Trits<N>> {
    let max = (ternary::pow3(N) - 1) / 2;
    (-max..=max).prop_map(|v| Trits::<N>::from_i64(v).expect("in range"))
}

/// A non-control, non-base-clobbering instruction.
fn straightline() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    prop_oneof![
        (data_reg(), data_reg()).prop_map(|(a, b)| Mv { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Pti { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Nti { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Sti { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| And { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Or { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Xor { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Add { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Sub { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Sr { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Sl { a, b }),
        (data_reg(), data_reg()).prop_map(|(a, b)| Comp { a, b }),
        (data_reg(), imm::<3>()).prop_map(|(a, imm)| Andi { a, imm }),
        (data_reg(), imm::<3>()).prop_map(|(a, imm)| Addi { a, imm }),
        (data_reg(), imm::<2>()).prop_map(|(a, imm)| Sri { a, imm }),
        (data_reg(), imm::<2>()).prop_map(|(a, imm)| Sli { a, imm }),
        (data_reg(), imm::<4>()).prop_map(|(a, imm)| Lui { a, imm }),
        (data_reg(), imm::<5>()).prop_map(|(a, imm)| Li { a, imm }),
        (data_reg(), imm::<3>()).prop_map(|(a, offset)| Load { a, b: BASE, offset }),
        (data_reg(), imm::<3>()).prop_map(|(a, offset)| Store { a, b: BASE, offset }),
    ]
}

/// A whole program: prologue loading BASE, then a random body where
/// every control transfer jumps strictly forward (1..=4 instructions).
fn program() -> impl Strategy<Value = Program> {
    let body = proptest::collection::vec(
        prop_oneof![
            4 => straightline().prop_map(|i| (i, 0usize)),
            1 => (data_reg(), trit(), 1usize..=4).prop_map(|(b, cond, skip)| {
                (Instruction::Beq { b, cond, offset: Trits::ZERO }, skip)
            }),
            1 => (data_reg(), trit(), 1usize..=4).prop_map(|(b, cond, skip)| {
                (Instruction::Bne { b, cond, offset: Trits::ZERO }, skip)
            }),
            1 => (data_reg(), 1usize..=4).prop_map(|(a, skip)| {
                (Instruction::Jal { a, offset: Trits::ZERO }, skip)
            }),
        ],
        1..60,
    );
    body.prop_map(|items| {
        use Instruction::*;
        // Prologue: BASE = BASE_ADDR (hi/lo split), without touching
        // other registers.
        let (hi, lo) = art9_isa::asm::split_hi_lo(BASE_ADDR);
        let mut text = vec![
            Lui {
                a: BASE,
                imm: Trits::<4>::from_i64(hi).expect("fits"),
            },
            Li {
                a: BASE,
                imm: Trits::<5>::from_i64(lo).expect("fits"),
            },
        ];
        let n = items.len();
        for (idx, (instr, skip)) in items.into_iter().enumerate() {
            let fixed = match instr {
                Beq { b, cond, .. } => {
                    let off = (skip.min(n - idx)) as i64;
                    Beq {
                        b,
                        cond,
                        offset: Trits::<4>::from_i64(off).expect("small"),
                    }
                }
                Bne { b, cond, .. } => {
                    let off = (skip.min(n - idx)) as i64;
                    Bne {
                        b,
                        cond,
                        offset: Trits::<4>::from_i64(off).expect("small"),
                    }
                }
                Jal { a, .. } => {
                    let off = (skip.min(n - idx)).max(1) as i64;
                    Jal {
                        a,
                        offset: Trits::<5>::from_i64(off).expect("small"),
                    }
                }
                other => other,
            };
            text.push(fixed);
        }
        Program::from_instructions(text)
    })
}

/// A counted loop around a random body: the counter (t1), the guard
/// scratch (t7) and the zero register (t0) are excluded from the body's
/// register set, so termination is structural. Backward branches and
/// repeated forwarding patterns get covered this way.
fn looped_program() -> impl Strategy<Value = Program> {
    use Instruction::*;
    let body_reg = || {
        prop_oneof![
            Just(TReg::T3),
            Just(TReg::T4),
            Just(TReg::T5),
            Just(TReg::T6),
        ]
    };
    let body_op = prop_oneof![
        (body_reg(), body_reg()).prop_map(|(a, b)| Mv { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Add { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Sub { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Comp { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Xor { a, b }),
        (body_reg(), imm::<3>()).prop_map(|(a, imm)| Addi { a, imm }),
        (body_reg(), imm::<5>()).prop_map(|(a, imm)| Li { a, imm }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Load { a, b: BASE, offset }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Store { a, b: BASE, offset }),
    ];
    (
        proptest::collection::vec(body_op, 1..25),
        2i64..=6, // iterations
    )
        .prop_map(|(body, iters)| {
            let (hi, lo) = art9_isa::asm::split_hi_lo(BASE_ADDR);
            let mut text = vec![
                Lui {
                    a: BASE,
                    imm: Trits::<4>::from_i64(hi).expect("fits"),
                },
                Li {
                    a: BASE,
                    imm: Trits::<5>::from_i64(lo).expect("fits"),
                },
                Li {
                    a: TReg::T1,
                    imm: Trits::<5>::from_i64(iters).expect("fits"),
                },
            ];
            let body_len = body.len() as i64;
            text.extend(body);
            // Guard: t1 -= 1; t7 = sign(t1); loop while positive.
            text.push(Addi {
                a: TReg::T1,
                imm: Trits::<3>::from_i64(-1).expect("fits"),
            });
            text.push(Mv {
                a: TReg::T7,
                b: TReg::T1,
            });
            text.push(Comp {
                a: TReg::T7,
                b: TReg::T0,
            });
            text.push(Beq {
                b: TReg::T7,
                cond: ternary::Trit::P,
                offset: Trits::<4>::from_i64(-(body_len + 3)).expect("<= 28 fits imm4"),
            });
            Program::from_instructions(text)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn looped_pipeline_matches_functional(p in looped_program()) {
        let builder = SimBuilder::new(&p);
        let mut f = builder.build_functional();
        let fr = f.run(1_000_000).expect("functional run completes");
        let mut pipe = builder.build_pipelined();
        let stats = pipe.run(1_000_000).expect("pipelined run completes");
        prop_assert_eq!(pipe.state().trf, f.state().trf, "register files diverge");
        prop_assert!(pipe.state().tdm.iter().eq(f.state().tdm.iter()));
        prop_assert_eq!(stats.instructions, fr.instructions);
    }

    #[test]
    fn looped_no_forwarding_still_architecturally_equal(p in looped_program()) {
        let builder = SimBuilder::new(&p);
        let mut f = builder.build_functional();
        f.run(1_000_000).expect("functional run completes");
        let mut pipe = builder.clone().forwarding(false).build_pipelined();
        let stats = pipe.run(2_000_000).expect("no-forwarding run completes");
        prop_assert_eq!(pipe.state().trf, f.state().trf, "no-fwd diverges");
        prop_assert!(stats.cycles >= stats.instructions + 4);
    }

    #[test]
    fn pipeline_matches_functional(p in program()) {
        let builder = SimBuilder::new(&p);
        let mut f = builder.build_functional();
        let fr = f.run(1_000_000).expect("functional run completes");

        let mut pipe = builder.build_pipelined();
        let stats = pipe.run(1_000_000).expect("pipelined run completes");

        prop_assert_eq!(pipe.state().trf, f.state().trf, "register files diverge");
        prop_assert!(
            pipe.state().tdm.iter().eq(f.state().tdm.iter()),
            "data memories diverge"
        );
        prop_assert_eq!(stats.instructions, fr.instructions, "retirement counts diverge");
        // Timing sanity: a 5-stage pipe needs at least instret + 4 cycles,
        // and every cycle is either a retirement, a fill slot, or an
        // accounted stall/bubble.
        prop_assert!(stats.cycles >= stats.instructions + 4);
        prop_assert!(
            stats.cycles <= stats.instructions + 4 + stats.lost_cycles() + 1,
            "cycles {} not explained by instret {} + stalls {}",
            stats.cycles, stats.instructions, stats.lost_cycles()
        );
    }
}
