//! Superblock formation over the link table: table-driven corner
//! cases for the direct-threaded backend's compiler. Each case pins
//! the exact block partition (`ThreadedSim::superblocks`) and the
//! number of fused pairs, then proves fusion is architecturally
//! invisible by retiring the program on the threaded and functional
//! backends and comparing the instruction mix, retirement count, halt
//! reason, and final state.

use art9_isa::assemble;
use art9_sim::{Budget, Core, HaltReason, SimBuilder};

struct Case {
    name: &'static str,
    asm: &'static str,
    /// Expected `(start, len)` partition of the text.
    blocks: &'static [(usize, usize)],
    /// Expected number of fused instruction pairs.
    fused_pairs: usize,
    /// Expected halt reason and retired-instruction count.
    halt: HaltReason,
    retired: u64,
}

const CASES: &[Case] = &[
    Case {
        // A jump-to-self is a one-instruction terminator block; its
        // target (itself) is a block head, cutting the preceding
        // straight-line code short.
        name: "self-loop",
        asm: "LI t3, 1\nhalt: JAL t0, halt\n",
        blocks: &[(0, 1), (1, 1)],
        fused_pairs: 0,
        halt: HaltReason::JumpToSelf,
        retired: 2,
    },
    Case {
        // A backward branch into the middle of otherwise straight-line
        // code forces a head at its target: the line splits there even
        // though nothing else interrupts it. The loop body fuses
        // ADDI+ADDI and MV+COMP.
        name: "branch-into-mid-block",
        asm: "LI t3, 3\nagain: ADDI t4, 1\nADDI t3, -1\nMV t7, t3\n\
              COMP t7, t0\nBEQ t7, +, again\nJAL t0, 0\n",
        blocks: &[(0, 1), (1, 5), (6, 1)],
        fused_pairs: 2,
        halt: HaltReason::JumpToSelf,
        // 1 (LI) + 3 iterations x 5 + 1 (JAL)
        retired: 17,
    },
    Case {
        // A forward branch over the fall-through path: both the
        // fall-through successor and the branch target are heads, so
        // the skipped code forms its own block that ends AT the next
        // head without a terminator (sequential exit). The MV+COMP
        // guard pair fuses, and so does the skipped ADDI+ADDI block.
        name: "skip-over-a-block-head",
        asm: "LI t3, 1\nMV t7, t3\nCOMP t7, t0\nBEQ t7, +, skip\n\
              ADDI t4, 1\nADDI t4, 1\nskip: ADDI t5, 1\nJAL t0, 0\n",
        blocks: &[(0, 4), (4, 2), (6, 1), (7, 1)],
        fused_pairs: 2,
        halt: HaltReason::JumpToSelf,
        // t3 = 1 compares positive, so the branch is taken: LI, MV,
        // COMP, BEQ, ADDI(skip), JAL.
        retired: 6,
    },
    Case {
        // A call splits the code at both the call site's successor
        // (the return address) and the callee; the JALR return target
        // is dynamic, so the callee block ends at the JALR terminator
        // with no head at any return point beyond the static ones.
        name: "call-return-splitting",
        asm: "LI t1, 0\nJAL t1, func\nJAL t0, 0\nfunc: ADDI t4, 1\n\
              JALR t0, t1, 0\n",
        blocks: &[(0, 2), (2, 1), (3, 2)],
        fused_pairs: 0,
        halt: HaltReason::JumpToSelf,
        retired: 5,
    },
    Case {
        // The countdown-loop idiom compiles to exactly two dispatches
        // per iteration: ADDI+MV fuses, and the COMP fuses with the
        // BEQ terminator itself (a fused compare-and-branch resolves
        // the transfer inside one host call).
        name: "fused-compare-branch-loop",
        asm: "LI t3, 3\nloop: ADDI t3, -1\nMV t7, t3\nCOMP t7, t0\n\
              BEQ t7, +, loop\nJAL t0, 0\n",
        blocks: &[(0, 1), (1, 4), (5, 1)],
        fused_pairs: 2,
        halt: HaltReason::JumpToSelf,
        // 1 (LI) + 3 iterations x 4 + 1 (JAL)
        retired: 14,
    },
    Case {
        // No control flow at all: one block spanning the whole text,
        // exiting by falling off the end (the halt-terminated tail).
        // ADDI+MV fuses.
        name: "halt-terminated-tail",
        asm: "LI t3, 2\nADDI t3, 1\nMV t4, t3\n",
        blocks: &[(0, 3)],
        fused_pairs: 1,
        halt: HaltReason::FellOffEnd,
        retired: 3,
    },
];

#[test]
fn link_table_corner_cases_form_the_expected_blocks() {
    for case in CASES {
        let program = assemble(case.asm).expect(case.name);
        let threaded = SimBuilder::new(&program).build_threaded();

        let blocks = threaded.superblocks();
        assert_eq!(blocks, case.blocks, "{}: wrong block partition", case.name);
        assert_eq!(
            threaded.fused_pairs(),
            case.fused_pairs,
            "{}: wrong fused-pair count",
            case.name
        );

        // Every block partition must tile the text exactly: block
        // starts are strictly increasing and each block ends where the
        // next begins.
        let mut covered = 0usize;
        for (start, len) in blocks {
            assert_eq!(start, covered, "{}: gap or overlap at {start}", case.name);
            assert!(len > 0, "{}: empty block", case.name);
            covered = start + len;
        }
        assert_eq!(
            covered,
            program.text().len(),
            "{}: text not tiled",
            case.name
        );
    }
}

#[test]
fn fused_sequences_retire_the_same_mix_as_unfused_execution() {
    for case in CASES {
        let program = assemble(case.asm).expect(case.name);
        let builder = SimBuilder::new(&program);

        // Fused superblock dispatch (no observers, whole blocks fit
        // the budget)...
        let mut threaded = builder.build_threaded();
        let summary = threaded.run_for(Budget::Steps(10_000)).expect(case.name);
        assert_eq!(summary.halt, Some(case.halt), "{}", case.name);
        assert_eq!(threaded.retired(), case.retired, "{}", case.name);

        // ...against the unfused functional execution: identical
        // dynamic instruction mix, not just identical end state.
        let mut func = builder.build_functional();
        func.run_for(Budget::Steps(10_000)).expect(case.name);
        assert_eq!(
            threaded.instruction_mix(),
            func.instruction_mix(),
            "{}: fusion changed the retired mix",
            case.name
        );
        assert_eq!(threaded.retired(), func.retired(), "{}", case.name);
        assert_eq!(
            func.state().first_difference(threaded.state()),
            None,
            "{}: fused execution diverged",
            case.name
        );

        // Single-stepping the threaded core (the precise path) retires
        // the same mix too — fusion is a dispatch detail, invisible at
        // every granularity.
        let mut stepped = builder.build_threaded();
        while Core::step(&mut stepped).expect(case.name).is_none() {}
        assert_eq!(
            stepped.instruction_mix(),
            func.instruction_mix(),
            "{}: stepped mix differs",
            case.name
        );
    }
}
