//! Snapshot/resume must be invisible: taking a [`Checkpoint`] at an
//! arbitrary point mid-run, restoring it into a *fresh* core (via the
//! serialized text form, so the on-disk format is exercised too) and
//! continuing must yield a bit-identical final [`CoreState`] — and, for
//! the pipelined backend, identical [`PipelineStats`] — versus a run
//! that was never interrupted. This is the property preemptible/sharded
//! batch serving rests on.

use proptest::prelude::*;

use art9_isa::{Instruction, Program, TReg};
use art9_sim::{Backend, Budget, Checkpoint, SimBuilder};
use ternary::Trits;

/// Base register kept stable for memory addressing.
const BASE: TReg = TReg::T2;
const BASE_ADDR: i64 = 100;

fn imm<const N: usize>() -> impl Strategy<Value = Trits<N>> {
    let max = (ternary::pow3(N) - 1) / 2;
    (-max..=max).prop_map(|v| Trits::<N>::from_i64(v).expect("in range"))
}

/// A counted loop around a random ALU/memory body (same structural
/// termination guarantee as the `equivalence` suite), so checkpoints
/// land in interesting places: mid-loop, mid-dependency-chain, around
/// stores.
fn looped_program() -> impl Strategy<Value = Program> {
    use Instruction::*;
    let body_reg = || {
        prop_oneof![
            Just(TReg::T3),
            Just(TReg::T4),
            Just(TReg::T5),
            Just(TReg::T6),
        ]
    };
    let body_op = prop_oneof![
        (body_reg(), body_reg()).prop_map(|(a, b)| Mv { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Add { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Sub { a, b }),
        (body_reg(), body_reg()).prop_map(|(a, b)| Comp { a, b }),
        (body_reg(), imm::<3>()).prop_map(|(a, imm)| Addi { a, imm }),
        (body_reg(), imm::<5>()).prop_map(|(a, imm)| Li { a, imm }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Load { a, b: BASE, offset }),
        (body_reg(), imm::<3>()).prop_map(|(a, offset)| Store { a, b: BASE, offset }),
    ];
    (proptest::collection::vec(body_op, 1..20), 2i64..=6).prop_map(|(body, iters)| {
        let (hi, lo) = art9_isa::asm::split_hi_lo(BASE_ADDR);
        let mut text = vec![
            Lui {
                a: BASE,
                imm: Trits::<4>::from_i64(hi).expect("fits"),
            },
            Li {
                a: BASE,
                imm: Trits::<5>::from_i64(lo).expect("fits"),
            },
            Li {
                a: TReg::T1,
                imm: Trits::<5>::from_i64(iters).expect("fits"),
            },
        ];
        let body_len = body.len() as i64;
        text.extend(body);
        text.push(Addi {
            a: TReg::T1,
            imm: Trits::<3>::from_i64(-1).expect("fits"),
        });
        text.push(Mv {
            a: TReg::T7,
            b: TReg::T1,
        });
        text.push(Comp {
            a: TReg::T7,
            b: TReg::T0,
        });
        text.push(Instruction::Beq {
            b: TReg::T7,
            cond: ternary::Trit::P,
            offset: Trits::<4>::from_i64(-(body_len + 3)).expect("fits imm4"),
        });
        Program::from_instructions(text)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn snapshot_restore_resume_is_bit_identical(p in looped_program(), cut in 0u64..160) {
        for backend in Backend::ALL {
            let builder = SimBuilder::new(&p).backend(backend);

            // The uninterrupted run.
            let mut base = builder.build();
            let summary = base.run_for(Budget::Steps(1_000_000)).expect("base run completes");
            prop_assert!(summary.halt.is_some(), "{backend}: did not halt");

            // Run to an arbitrary cut point, snapshot, serialize.
            let mut first = builder.build();
            first.run_for(Budget::Steps(cut)).expect("first half completes");
            let text = first.snapshot().to_text();

            // Restore into a fresh core through the text format, resume.
            let checkpoint = Checkpoint::from_text(&text).expect("parses back");
            prop_assert_eq!(&checkpoint, &first.snapshot(), "text roundtrip inexact");
            let mut resumed = builder.build();
            resumed.restore(&checkpoint).expect("restores");
            let resumed_summary =
                resumed.run_for(Budget::Steps(1_000_000)).expect("resumed run completes");

            // Bit-identical outcome: halt reason, architectural state
            // (registers, memory, PC), retirement counters, mix — and
            // for the pipelined backend the full cycle/stall accounting.
            prop_assert_eq!(summary.halt, resumed_summary.halt, "{}", backend);
            prop_assert_eq!(
                base.state().first_difference(resumed.state()),
                None,
                "{} diverged after resume", backend
            );
            prop_assert_eq!(base.state().pc, resumed.state().pc, "{}", backend);
            prop_assert_eq!(base.retired(), resumed.retired(), "{}", backend);
            prop_assert_eq!(base.instruction_mix(), resumed.instruction_mix(), "{}", backend);
            prop_assert_eq!(base.pipeline_stats(), resumed.pipeline_stats(), "{}", backend);
        }
    }

    #[test]
    fn architectural_checkpoints_cross_restore_between_backends(
        p in looped_program(),
        cut in 0u64..160,
    ) {
        // An architectural checkpoint is backend-portable: a snapshot
        // cut anywhere in a threaded run restores into a fresh
        // functional (or reference) core and vice versa, and the
        // cross-restored run is indistinguishable from one that ran on
        // the destination backend from reset — final state, counters,
        // and the serialized checkpoint itself.
        let builder = SimBuilder::new(&p);
        for (from, to) in [
            (Backend::Threaded, Backend::Functional),
            (Backend::Functional, Backend::Threaded),
            (Backend::Threaded, Backend::Reference),
        ] {
            // The uninterrupted run on the destination backend.
            let mut base = builder.clone().backend(to).build();
            let summary = base.run_for(Budget::Steps(1_000_000)).expect("base run completes");
            prop_assert!(summary.halt.is_some(), "{}: did not halt", to);

            // Source backend to an arbitrary cut; serialize the
            // checkpoint so the on-disk format crosses backends too.
            let mut first = builder.clone().backend(from).build();
            first.run_for(Budget::Steps(cut)).expect("first half completes");
            let checkpoint =
                Checkpoint::from_text(&first.snapshot().to_text()).expect("parses back");

            let mut resumed = builder.clone().backend(to).build();
            resumed.restore(&checkpoint).expect("cross-restore accepted");
            let resumed_summary =
                resumed.run_for(Budget::Steps(1_000_000)).expect("resumed run completes");

            prop_assert_eq!(summary.halt, resumed_summary.halt, "{} -> {}", from, to);
            prop_assert_eq!(
                base.state().first_difference(resumed.state()),
                None,
                "{} -> {} diverged after cross-restore", from, to
            );
            prop_assert_eq!(base.state().pc, resumed.state().pc, "{} -> {}", from, to);
            prop_assert_eq!(base.retired(), resumed.retired(), "{} -> {}", from, to);
            prop_assert_eq!(
                base.instruction_mix(),
                resumed.instruction_mix(),
                "{} -> {}", from, to
            );
            // Bit-identical serialized checkpoints at halt: the digest
            // preemptible batch serving keys on.
            prop_assert_eq!(
                base.snapshot().to_text(),
                resumed.snapshot().to_text(),
                "{} -> {}", from, to
            );
        }
    }

    #[test]
    fn budgeted_halves_equal_one_whole_run(p in looped_program(), slice in 1u64..40) {
        // Chained run_for calls on ONE core (no snapshot at all) must
        // also agree with a single-budget run — the preemption
        // primitive itself.
        let builder = SimBuilder::new(&p).backend(Backend::Pipelined);
        let mut whole = builder.build();
        whole.run_for(Budget::Steps(1_000_000)).expect("completes");

        let mut sliced = builder.build();
        let mut guard = 0u64;
        while sliced.run_for(Budget::Steps(slice)).expect("slice completes").halt.is_none() {
            guard += 1;
            prop_assert!(guard < 2_000_000, "did not converge");
        }
        prop_assert_eq!(whole.state().first_difference(sliced.state()), None);
        prop_assert_eq!(whole.pipeline_stats(), sliced.pipeline_stats());
    }
}
