//! A deliberately slow per-trit reference interpreter.
//!
//! One corner of the differential-testing triangle (see
//! `docs/FUZZING.md`): where [`FunctionalSim`](crate::FunctionalSim)
//! and [`PipelinedSim`](crate::PipelinedSim) execute through the shared
//! [`crate::talu`] on packed bitplanes, this interpreter re-derives
//! every instruction's semantics **trit by trit** from the paper —
//! ripple-carry addition via [`ternary::arith::add_tritwise`], per-trit
//! inversions and logic via the [`Trit`] truth tables, shifts and field
//! splices as explicit trit-array surgery, comparison as a
//! most-significant-trit-first scan — so a bug in the packed carry-loop
//! kernels (the place Etiemble's adder comparisons say ternary
//! arithmetic goes wrong: carry chains and sign boundaries) cannot hide
//! in both simulators at once.
//!
//! The interpreter intentionally shares **no** execution code with the
//! other backends: only the instruction enum, the architectural
//! containers ([`CoreState`]), and the halt convention are common
//! vocabulary. It lives in `art9-sim` (promoted out of `art9-fuzz`) so
//! it can implement the unified [`Core`](crate::Core) API and be driven
//! by any consumer — most importantly the generic fuzz lockstep oracle.

use art9_isa::{Instruction, TReg};
use ternary::{arith, TernaryError, Trit, Trits, Word9};

use crate::checkpoint::{Checkpoint, Micro};
use crate::core::{run_loop, Backend, Budget, Core, RunSummary};
use crate::error::SimError;
use crate::functional::{CoreState, HaltReason};
use crate::observer::{MemWrite, MemoryAccess, ObserverSet, RegWrite, Writeback};
use crate::predecode::PredecodedProgram;

/// The per-trit reference interpreter.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::{Backend, Budget, Core, SimBuilder};
///
/// let p = assemble("LI t3, 20\nADDI t3, 1\nADD t3, t3\nJAL t0, 0\n")?;
/// let mut r = SimBuilder::new(&p).backend(Backend::Reference).build();
/// r.run_for(Budget::Steps(100))?;
/// assert_eq!(r.state().reg("t3".parse()?).to_i64(), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceSim {
    text: Vec<Instruction>,
    state: CoreState,
    instructions: u64,
    halted: Option<HaltReason>,
    mix: [u64; Instruction::OPCODE_COUNT],
    observers: ObserverSet,
}

impl ReferenceSim {
    /// The one real constructor, reached through
    /// [`SimBuilder`](crate::SimBuilder).
    pub(crate) fn build(
        image: &PredecodedProgram,
        tdm_words: usize,
        observers: ObserverSet,
    ) -> Self {
        Self {
            text: image.text().to_vec(),
            state: CoreState::with_image(image.data(), tdm_words),
            instructions: 0,
            halted: None,
            mix: [0; Instruction::OPCODE_COUNT],
            observers,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: TReg) -> Word9 {
        self.state.reg(r)
    }

    /// The architectural state (inspectable mid-run).
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Mutable state access, e.g. to preload registers before a run.
    pub fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether (and why) the machine halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Resolves a signed address value to a TDM index.
    fn resolve(&self, addr: i64, pc: usize) -> Result<usize, SimError> {
        if addr < 0 || addr as usize >= self.state.tdm.size() {
            return Err(SimError::MemoryFault {
                pc,
                cause: TernaryError::AddressRange {
                    address: addr,
                    size: self.state.tdm.size(),
                },
            });
        }
        Ok(addr as usize)
    }

    /// Executes one instruction; mirrors the architectural contract of
    /// `FunctionalSim::step` (halt detection order included) while
    /// computing every result per trit.
    ///
    /// # Errors
    ///
    /// [`SimError`] on wild control transfers or TDM violations.
    pub fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        if let Some(r) = self.halted {
            return Ok(Some(r));
        }
        let pc = self.state.pc;
        if pc == self.text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            if !self.observers.is_empty() {
                self.observers
                    .halt(HaltReason::FellOffEnd, self.instructions);
            }
            return Ok(Some(HaltReason::FellOffEnd));
        }
        let instr = self.text[pc];
        self.instructions += 1;
        self.mix[instr.opcode()] += 1;

        use Instruction::*;
        let link = word_from_value(pc as i64 + 1);

        // Write-back observation inputs, captured before execution:
        // the old destination value and the per-trit result-bus value
        // (the execute arms below mutate the register file in place).
        let observing = !self.observers.is_empty();
        let old_reg = if observing {
            instr.writes().map(|dest| self.state.reg(dest))
        } else {
            None
        };
        let bus = if observing {
            Some(bus_tritwise(&instr, &self.state.trf, pc))
        } else {
            None
        };
        let mut mem_write = None;

        // Destination value (per-trit), memory effects, and branch
        // decision, all re-derived from the paper's semantics.
        let trf = &mut self.state.trf;
        match instr {
            Mv { a, b } => trf[a.index()] = trf[b.index()],
            Pti { a, b } => trf[a.index()] = map_trits(trf[b.index()], Trit::pti),
            Nti { a, b } => trf[a.index()] = map_trits(trf[b.index()], Trit::nti),
            Sti { a, b } => trf[a.index()] = map_trits(trf[b.index()], Trit::sti),
            And { a, b } => trf[a.index()] = zip_trits(trf[a.index()], trf[b.index()], Trit::and),
            Or { a, b } => trf[a.index()] = zip_trits(trf[a.index()], trf[b.index()], Trit::or),
            Xor { a, b } => trf[a.index()] = zip_trits(trf[a.index()], trf[b.index()], Trit::xor),
            Add { a, b } => {
                trf[a.index()] = arith::add_tritwise(trf[a.index()], trf[b.index()]).0;
            }
            Sub { a, b } => {
                let neg_b = map_trits(trf[b.index()], Trit::sti);
                trf[a.index()] = arith::add_tritwise(trf[a.index()], neg_b).0;
            }
            Sr { a, b } => {
                let amount = low2_value(trf[b.index()]);
                trf[a.index()] = shift_trits(trf[a.index()], -amount);
            }
            Sl { a, b } => {
                let amount = low2_value(trf[b.index()]);
                trf[a.index()] = shift_trits(trf[a.index()], amount);
            }
            Comp { a, b } => {
                trf[a.index()] = compare_trits(trf[a.index()], trf[b.index()]);
            }
            Andi { a, imm } => {
                trf[a.index()] = zip_trits(trf[a.index()], extend(imm), Trit::and);
            }
            Addi { a, imm } => {
                trf[a.index()] = arith::add_tritwise(trf[a.index()], extend(imm)).0;
            }
            Sri { a, imm } => {
                trf[a.index()] = shift_trits(trf[a.index()], -signed_value(imm));
            }
            Sli { a, imm } => {
                trf[a.index()] = shift_trits(trf[a.index()], signed_value(imm));
            }
            Lui { a, imm } => {
                // {imm[3:0], 00000}: low five trits zero.
                let mut out = [Trit::Z; 9];
                for (i, t) in imm.trits().iter().enumerate() {
                    out[5 + i] = *t;
                }
                trf[a.index()] = Trits::from_trits(out);
            }
            Li { a, imm } => {
                // {TRF[Ta][8:5], imm[4:0]}: upper trits preserved.
                let mut out = trf[a.index()].trits();
                for (i, t) in imm.trits().iter().enumerate() {
                    out[i] = *t;
                }
                trf[a.index()] = Trits::from_trits(out);
            }
            // B-type register effects (the links) are handled together
            // with the control transfer below, so `JALR tX, tX, k`
            // reads its base before the link overwrites it.
            Beq { .. } | Bne { .. } | Jal { .. } | Jalr { .. } => {}
            Load { a, b, offset } => {
                let addr = address_value(trf[b.index()], offset);
                let idx = self.resolve(addr, pc)?;
                let v = self.state.tdm.read(idx).expect("resolved in range");
                self.state.trf[a.index()] = v;
                if !self.observers.is_empty() {
                    self.observers.memory(&MemoryAccess {
                        pc,
                        address: idx,
                        value: v,
                        is_write: false,
                    });
                }
            }
            Store { a, b, offset } => {
                let addr = address_value(trf[b.index()], offset);
                let idx = self.resolve(addr, pc)?;
                let v = self.state.trf[a.index()];
                let old_cell = self.state.tdm.read(idx).expect("resolved in range");
                self.state.tdm.write(idx, v).expect("resolved in range");
                if !self.observers.is_empty() {
                    self.observers.memory(&MemoryAccess {
                        pc,
                        address: idx,
                        value: v,
                        is_write: true,
                    });
                    mem_write = Some(MemWrite {
                        address: idx,
                        old: old_cell,
                        new: v,
                    });
                }
            }
        }

        // Control flow (per-trit address arithmetic for JALR).
        let trf = &mut self.state.trf;
        let (next, taken): (i64, bool) = match instr {
            Beq { b, cond, offset } => {
                if trf[b.index()].trits()[0] == cond {
                    (pc as i64 + signed_value(offset), true)
                } else {
                    (pc as i64 + 1, false)
                }
            }
            Bne { b, cond, offset } => {
                if trf[b.index()].trits()[0] != cond {
                    (pc as i64 + signed_value(offset), true)
                } else {
                    (pc as i64 + 1, false)
                }
            }
            Jal { a, offset } => {
                let target = pc as i64 + signed_value(offset);
                trf[a.index()] = link;
                (target, true)
            }
            Jalr { a, b, offset } => {
                // Target = base + offset computed tritwise *before* the
                // link write, so `JALR tX, tX, k` uses the old base.
                let target = address_value(trf[b.index()], offset);
                trf[a.index()] = link;
                (target, true)
            }
            _ => (pc as i64 + 1, false),
        };

        if next < 0 || next as usize > self.text.len() {
            return Err(SimError::PcOutOfRange {
                at: self.instructions,
                pc: next,
                tim_size: self.text.len(),
            });
        }
        if observing {
            if instr.is_control_flow() {
                self.observers.control(pc, &instr, taken, next as usize);
            }
            self.observers.writeback(&Writeback {
                pc,
                instr,
                reg: instr.writes().map(|dest| RegWrite {
                    reg: dest,
                    old: old_reg.expect("captured above"),
                    new: self.state.reg(dest),
                }),
                mem: mem_write,
                bus: bus.expect("captured above"),
            });
            self.observers.retire(pc, &instr, &self.state);
        }
        let next = next as usize;
        let halt = if next == pc {
            Some(HaltReason::JumpToSelf)
        } else if next == self.text.len() {
            self.state.pc = next;
            Some(HaltReason::FellOffEnd)
        } else {
            self.state.pc = next;
            None
        };
        if let Some(reason) = halt {
            self.halted = Some(reason);
            if !self.observers.is_empty() {
                self.observers.halt(reason, self.instructions);
            }
        }
        Ok(halt)
    }
}

impl Core for ReferenceSim {
    fn backend(&self) -> Backend {
        Backend::Reference
    }

    fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        ReferenceSim::step(self)
    }

    fn run_for(&mut self, budget: Budget) -> Result<RunSummary, SimError> {
        run_loop(self, budget)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    fn retired(&self) -> u64 {
        self.instructions
    }

    fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        crate::core::mix_map(&self.mix)
    }

    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            backend: Backend::Reference,
            text_len: self.text.len(),
            state: self.state.clone(),
            retired: self.instructions,
            halted: self.halted,
            mix: self.mix,
            micro: Micro::Architectural,
        }
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError> {
        checkpoint.guard(Backend::Reference, self.text.len())?;
        self.state = checkpoint.state.clone();
        self.instructions = checkpoint.retired;
        self.halted = checkpoint.halted;
        self.mix = checkpoint.mix;
        Ok(())
    }
}

/// The value the TALU drives onto the result bus for `instr`, re-derived
/// per trit from the pre-execution register file — the reference
/// counterpart of [`crate::talu`]'s return value, observed by the
/// write-back hook. Only runs when an observer is attached.
fn bus_tritwise(instr: &Instruction, trf: &[Word9; 9], pc: usize) -> Word9 {
    use Instruction::*;
    match instr {
        Mv { b, .. } => trf[b.index()],
        Pti { b, .. } => map_trits(trf[b.index()], Trit::pti),
        Nti { b, .. } => map_trits(trf[b.index()], Trit::nti),
        Sti { b, .. } => map_trits(trf[b.index()], Trit::sti),
        And { a, b } => zip_trits(trf[a.index()], trf[b.index()], Trit::and),
        Or { a, b } => zip_trits(trf[a.index()], trf[b.index()], Trit::or),
        Xor { a, b } => zip_trits(trf[a.index()], trf[b.index()], Trit::xor),
        Add { a, b } => arith::add_tritwise(trf[a.index()], trf[b.index()]).0,
        Sub { a, b } => {
            let neg_b = map_trits(trf[b.index()], Trit::sti);
            arith::add_tritwise(trf[a.index()], neg_b).0
        }
        Sr { a, b } => shift_trits(trf[a.index()], -low2_value(trf[b.index()])),
        Sl { a, b } => shift_trits(trf[a.index()], low2_value(trf[b.index()])),
        Comp { a, b } => compare_trits(trf[a.index()], trf[b.index()]),
        Andi { a, imm } => zip_trits(trf[a.index()], extend(*imm), Trit::and),
        Addi { a, imm } => arith::add_tritwise(trf[a.index()], extend(*imm)).0,
        Sri { a, imm } => shift_trits(trf[a.index()], -signed_value(*imm)),
        Sli { a, imm } => shift_trits(trf[a.index()], signed_value(*imm)),
        Lui { imm, .. } => {
            let mut out = [Trit::Z; 9];
            for (i, t) in imm.trits().iter().enumerate() {
                out[5 + i] = *t;
            }
            Trits::from_trits(out)
        }
        Li { a, imm } => {
            let mut out = trf[a.index()].trits();
            for (i, t) in imm.trits().iter().enumerate() {
                out[i] = *t;
            }
            Trits::from_trits(out)
        }
        Beq { .. } | Bne { .. } => Word9::ZERO,
        Jal { .. } | Jalr { .. } => word_from_value(pc as i64 + 1),
        Load { b, offset, .. } => arith::add_tritwise(trf[b.index()], extend(*offset)).0,
        Store { b, offset, .. } => arith::add_tritwise(trf[b.index()], extend(*offset)).0,
    }
}

/// Applies a per-trit unary function.
fn map_trits(w: Word9, f: fn(Trit) -> Trit) -> Word9 {
    let mut out = w.trits();
    for t in &mut out {
        *t = f(*t);
    }
    Trits::from_trits(out)
}

/// Applies a per-trit binary function.
fn zip_trits(a: Word9, b: Word9, f: fn(Trit, Trit) -> Trit) -> Word9 {
    let at = a.trits();
    let bt = b.trits();
    let mut out = [Trit::Z; 9];
    for i in 0..9 {
        out[i] = f(at[i], bt[i]);
    }
    Trits::from_trits(out)
}

/// The signed value of a small immediate, summed per trit
/// (`Σ tᵢ·3^i`) rather than through the packed `to_i64` path.
fn signed_value<const N: usize>(imm: Trits<N>) -> i64 {
    let mut v = 0i64;
    let mut scale = 1i64;
    for t in imm.trits() {
        v += i64::from(t.value()) * scale;
        scale *= 3;
    }
    v
}

/// The balanced value of the low two trits of `w` (the hardware's
/// shift-amount field).
fn low2_value(w: Word9) -> i64 {
    let t = w.trits();
    i64::from(t[0].value()) + 3 * i64::from(t[1].value())
}

/// Builds a [`Word9`] from an in-range signed value one trit at a
/// time — the balanced-ternary digit expansion, not the packed
/// converter. (Used for link values, which are always small and
/// non-negative.)
fn word_from_value(v: i64) -> Word9 {
    canonical_balanced(v)
}

/// Canonical balanced-ternary expansion of `v ∈ [−9841, 9841]`.
fn canonical_balanced(v: i64) -> Word9 {
    debug_assert!((-9841..=9841).contains(&v), "{v} outside the 9-trit range");
    let mut out = [Trit::Z; 9];
    let mut rest = v;
    for slot in &mut out {
        // Truncating remainder is in {-2..=2}; fold ±2 into ∓1 with a
        // carry, giving the balanced digit set {-1, 0, +1}.
        let mut digit = rest % 3;
        rest /= 3;
        if digit == 2 {
            digit = -1;
            rest += 1;
        } else if digit == -2 {
            digit = 1;
            rest -= 1;
        }
        *slot = match digit {
            -1 => Trit::N,
            0 => Trit::Z,
            _ => Trit::P,
        };
    }
    Trits::from_trits(out)
}

/// Per-trit comparison, most significant trit first (the TALU's
/// trit-serial comparator): the first differing trit decides.
fn compare_trits(a: Word9, b: Word9) -> Word9 {
    let at = a.trits();
    let bt = b.trits();
    let mut sign = Trit::Z;
    for i in (0..9).rev() {
        if at[i] != bt[i] {
            sign = if at[i].value() > bt[i].value() {
                Trit::P
            } else {
                Trit::N
            };
            break;
        }
    }
    let mut out = [Trit::Z; 9];
    out[0] = sign;
    Trits::from_trits(out)
}

/// Shift by a signed trit count: positive = left (toward the MST),
/// negative = right; explicit trit-array surgery.
fn shift_trits(w: Word9, amount: i64) -> Word9 {
    let t = w.trits();
    let mut out = [Trit::Z; 9];
    if amount >= 0 {
        let k = amount as usize;
        for i in 0..9 {
            if i >= k {
                out[i] = t[i - k];
            }
        }
    } else {
        let k = (-amount) as usize;
        for i in 0..9 {
            if i + k < 9 {
                out[i] = t[i + k];
            }
        }
    }
    Trits::from_trits(out)
}

/// Sign-extends an immediate to nine trits (in balanced ternary that
/// is literal zero-padding of the upper trits).
fn extend<const N: usize>(imm: Trits<N>) -> Word9 {
    let src = imm.trits();
    let mut out = [Trit::Z; 9];
    out[..N].copy_from_slice(&src);
    Trits::from_trits(out)
}

/// Effective address `base + offset`, added tritwise, read as a signed
/// per-trit value.
fn address_value<const N: usize>(base: Word9, offset: Trits<N>) -> i64 {
    let (sum, _) = arith::add_tritwise(base, extend(offset));
    signed_value(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::SimBuilder;
    use art9_isa::assemble;

    fn run(src: &str) -> ReferenceSim {
        let p = assemble(src).unwrap();
        let mut r = SimBuilder::new(&p).build_reference();
        for _ in 0..100_000 {
            if r.step().unwrap().is_some() {
                return r;
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn countdown_loop_matches_functional_semantics() {
        let r = run("LI t3, 10\nLI t4, 0\nloop:\nADD t4, t3\nADDI t3, -1\n\
             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n");
        assert_eq!(r.reg(TReg::T4).to_i64(), 55);
        assert_eq!(r.halted(), Some(HaltReason::JumpToSelf));
    }

    #[test]
    fn load_store_roundtrip() {
        let r = run(
            ".data\nv: .word 41, 0\n.text\nLI t2, 0\nLOAD t3, t2, 0\nADDI t3, 1\n\
             STORE t3, t2, 1\nLOAD t4, t2, 1\nJAL t0, 0\n",
        );
        assert_eq!(r.reg(TReg::T4).to_i64(), 42);
        assert_eq!(r.state().tdm.read(1).unwrap().to_i64(), 42);
    }

    #[test]
    fn memory_fault_detected() {
        let p = assemble("LI t2, 121\nLUI t2, 40\nLOAD t3, t2, 0\n").unwrap();
        let mut r = SimBuilder::new(&p).build_reference();
        let mut fault = None;
        for _ in 0..10 {
            match r.step() {
                Err(e) => {
                    fault = Some(e);
                    break;
                }
                Ok(Some(_)) => break,
                Ok(None) => {}
            }
        }
        assert!(matches!(fault, Some(SimError::MemoryFault { pc: 2, .. })));
    }

    #[test]
    fn canonical_balanced_round_trips() {
        for v in [-9841i64, -4821, -100, -1, 0, 1, 5, 100, 4821, 9841] {
            assert_eq!(canonical_balanced(v).to_i64(), v, "{v}");
        }
    }

    #[test]
    fn compare_matches_packed() {
        for a in [-9841i64, -100, -1, 0, 1, 100, 9841] {
            for b in [-9841i64, -2, 0, 2, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(compare_trits(wa, wb), wa.compare(wb), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn shift_matches_packed() {
        for v in [-9841i64, -121, -5, 0, 5, 121, 9841] {
            let w = Word9::from_i64(v).unwrap();
            for k in 0..=4i64 {
                assert_eq!(shift_trits(w, k), w.shl(k as usize), "{v} shl {k}");
                assert_eq!(shift_trits(w, -k), w.shr(k as usize), "{v} shr {k}");
            }
        }
    }
}
