//! Serializable execution checkpoints: [`Core::snapshot`] /
//! [`Core::restore`](crate::Core::restore).
//!
//! A [`Checkpoint`] captures the **complete** execution state of a
//! backend — the architectural [`CoreState`] (PC, TRF, TDM), the
//! retirement counters and instruction mix, and the backend-specific
//! microarchitectural state (for the pipelined backend: the fetch
//! engine, all four pipeline latches, the stall accounting and the
//! forwarding setting). Restoring it into a fresh core of the same
//! backend over the same program image continues the run
//! **bit-identically** to one that was never interrupted — the
//! primitive sharded/preemptible batch serving needs. Architectural
//! checkpoints additionally cross-restore between the architectural
//! backends (functional ↔ reference ↔ threaded), since they carry no
//! microarchitectural state.
//!
//! Checkpoints serialize to a line-oriented text format
//! ([`Checkpoint::to_text`] / [`Checkpoint::from_text`]) so they can be
//! written to disk, shipped between hosts and diffed. Instructions in
//! pipeline latches are stored as their canonical 9-trit encodings (the
//! same words the TIM holds), every `Word9` as its balanced value — both
//! bijective, so the round-trip is exact.
//!
//! ```
//! use art9_isa::assemble;
//! use art9_sim::{Backend, Budget, Checkpoint, Core, SimBuilder};
//!
//! let p = assemble("LI t3, 10\nloop:\nADDI t3, -1\nMV t7, t3\n\
//!                   COMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n")?;
//! let builder = SimBuilder::new(&p).backend(Backend::Pipelined);
//!
//! // Run 7 cycles, checkpoint, serialize.
//! let mut a = builder.build();
//! a.run_for(Budget::Steps(7))?;
//! let text = a.snapshot().to_text();
//!
//! // Resume in a fresh core (possibly another process) and finish.
//! let mut b = builder.build();
//! b.restore(&Checkpoint::from_text(&text)?)?;
//! let summary = b.run_for(Budget::Steps(100_000))?;
//! assert!(summary.halt.is_some());
//!
//! // Bit-identical to an uninterrupted run, timing included.
//! let mut c = builder.build();
//! c.run_for(Budget::Steps(100_000))?;
//! assert_eq!(b.state().first_difference(c.state()), None);
//! assert_eq!(b.pipeline_stats(), c.pipeline_stats());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use art9_isa::{decode, encode, Instruction};
use ternary::{TernaryMemory, Word9};

use crate::core::Backend;
use crate::error::SimError;
use crate::functional::{CoreState, HaltReason};
use crate::pipeline::{ExMem, Fetched, IdEx, MemWb};
use crate::stats::PipelineStats;

/// First line of the text serialization (version-gated).
const MAGIC: &str = "art9-checkpoint v1";

/// Backend-specific microarchitectural state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Micro {
    /// The architectural backends (functional, reference, threaded)
    /// carry no state beyond [`CoreState`] and the counters.
    Architectural,
    /// The pipelined backend's fetch engine, latches and accounting
    /// (boxed: it dwarfs the architectural variant).
    Pipelined(Box<PipelineMicro>),
}

/// The pipelined backend's complete microarchitectural state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PipelineMicro {
    pub fetch_pc: usize,
    pub halting: Option<HaltReason>,
    pub forwarding: bool,
    pub stats: PipelineStats,
    pub if_id: Option<Fetched>,
    pub id_ex: Option<IdEx>,
    pub ex_mem: Option<ExMem>,
    pub mem_wb: Option<MemWb>,
}

/// A complete, serializable execution checkpoint capturing the
/// architectural state, the retirement counters, and the
/// backend-specific microarchitectural state.
///
/// Produced by [`Core::snapshot`](crate::Core::snapshot); consumed by
/// [`Core::restore`](crate::Core::restore). The per-cycle trace buffer
/// ([`SimBuilder::trace`](crate::SimBuilder::trace)) is deliberately
/// *not* part of a checkpoint: it is an observation artifact, not
/// execution state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The backend this checkpoint was taken from. Restores into the
    /// same backend, and — for the architectural backends (functional,
    /// reference, threaded), whose checkpoints carry no
    /// microarchitectural state — into any other architectural backend.
    pub backend: Backend,
    /// TIM length of the program the core was running — a shape check
    /// against restoring into a different program.
    pub text_len: usize,
    /// The architectural state (PC, TRF, TDM).
    pub state: CoreState,
    /// Instructions retired at snapshot time.
    pub retired: u64,
    /// Whether (and why) the machine had halted.
    pub halted: Option<HaltReason>,
    pub(crate) mix: [u64; Instruction::OPCODE_COUNT],
    pub(crate) micro: Micro,
}

impl Checkpoint {
    /// The dynamic instruction mix at snapshot time (retired count per
    /// mnemonic, absent when zero).
    pub fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        crate::core::mix_map(&self.mix)
    }

    /// Serializes to the line-oriented `art9-checkpoint v1` text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "backend {}", self.backend.name());
        let _ = writeln!(out, "text-len {}", self.text_len);
        let _ = writeln!(out, "retired {}", self.retired);
        let _ = writeln!(out, "halted {}", halt_name(self.halted));
        let _ = writeln!(out, "pc {}", self.state.pc);
        out.push_str("trf");
        for w in &self.state.trf {
            let _ = write!(out, " {}", w.to_i64());
        }
        out.push('\n');
        let _ = write!(out, "tdm {}", self.state.tdm.size());
        for w in self.state.tdm.iter() {
            let _ = write!(out, " {}", w.to_i64());
        }
        out.push('\n');
        out.push_str("mix");
        for c in &self.mix {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
        match &self.micro {
            Micro::Architectural => {
                let _ = writeln!(out, "micro architectural");
            }
            Micro::Pipelined(m) => {
                let _ = writeln!(out, "micro pipelined");
                let _ = writeln!(out, "fetch-pc {}", m.fetch_pc);
                let _ = writeln!(out, "halting {}", halt_name(m.halting));
                let _ = writeln!(out, "forwarding {}", u8::from(m.forwarding));
                let s = m.stats;
                let _ = writeln!(
                    out,
                    "stats {} {} {} {} {} {} {}",
                    s.cycles,
                    s.instructions,
                    s.load_use_stalls,
                    s.id_use_stalls,
                    s.control_flush_bubbles,
                    s.taken_transfers,
                    s.untaken_branches
                );
                let instr_word = |i: &Instruction| encode(i).to_i64();
                match &m.if_id {
                    None => {
                        let _ = writeln!(out, "if-id none");
                    }
                    Some(f) => {
                        let _ = writeln!(out, "if-id {} {}", f.pc, instr_word(&f.instr));
                    }
                }
                match &m.id_ex {
                    None => {
                        let _ = writeln!(out, "id-ex none");
                    }
                    Some(e) => {
                        let _ = writeln!(
                            out,
                            "id-ex {} {} {} {}",
                            e.pc,
                            instr_word(&e.instr),
                            e.a_val.to_i64(),
                            e.b_val.to_i64()
                        );
                    }
                }
                match &m.ex_mem {
                    None => {
                        let _ = writeln!(out, "ex-mem none");
                    }
                    Some(x) => {
                        let _ = writeln!(
                            out,
                            "ex-mem {} {} {} {}",
                            x.pc,
                            instr_word(&x.instr),
                            x.result.to_i64(),
                            x.store_val.to_i64()
                        );
                    }
                }
                match &m.mem_wb {
                    None => {
                        let _ = writeln!(out, "mem-wb none");
                    }
                    Some(w) => {
                        let _ = writeln!(
                            out,
                            "mem-wb {} {} {}",
                            w.pc,
                            instr_word(&w.instr),
                            w.value.to_i64()
                        );
                    }
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the `art9-checkpoint v1` text format.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on any malformed, truncated or
    /// out-of-range input.
    pub fn from_text(text: &str) -> Result<Self, SimError> {
        let mut lines = text.lines();
        let bad = |detail: &str| SimError::Checkpoint {
            detail: detail.to_string(),
        };
        if lines.next().map(str::trim) != Some(MAGIC) {
            return Err(bad("missing `art9-checkpoint v1` header"));
        }
        let mut fields = Fields { lines };
        let backend: Backend = fields
            .one("backend")?
            .parse()
            .map_err(|e: String| SimError::Checkpoint { detail: e })?;
        let text_len = parse_num::<usize>(&fields.one("text-len")?)?;
        let retired = parse_num::<u64>(&fields.one("retired")?)?;
        let halted = parse_halt(&fields.one("halted")?)?;
        let pc = parse_num::<usize>(&fields.one("pc")?)?;
        let trf_vals = fields.many("trf")?;
        if trf_vals.len() != 9 {
            return Err(bad("trf line must hold 9 values"));
        }
        let mut trf = [Word9::ZERO; 9];
        for (slot, v) in trf.iter_mut().zip(&trf_vals) {
            *slot = parse_word(v)?;
        }
        let tdm_vals = fields.many("tdm")?;
        let (tdm_len, tdm_words) = tdm_vals
            .split_first()
            .ok_or_else(|| bad("tdm line must hold a length"))?;
        let tdm_len = parse_num::<usize>(tdm_len)?;
        if tdm_words.len() != tdm_len {
            return Err(bad("tdm word count does not match its declared length"));
        }
        let mut image = Vec::with_capacity(tdm_len);
        for v in tdm_words {
            image.push(parse_word(v)?);
        }
        let mix_vals = fields.many("mix")?;
        if mix_vals.len() != Instruction::OPCODE_COUNT {
            return Err(bad("mix line must hold one count per opcode"));
        }
        let mut mix = [0u64; Instruction::OPCODE_COUNT];
        for (slot, v) in mix.iter_mut().zip(&mix_vals) {
            *slot = parse_num(v)?;
        }
        let micro = match fields.one("micro")?.as_str() {
            "architectural" => Micro::Architectural,
            "pipelined" => {
                let fetch_pc = parse_num::<usize>(&fields.one("fetch-pc")?)?;
                let halting = parse_halt(&fields.one("halting")?)?;
                let forwarding = match fields.one("forwarding")?.as_str() {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad("forwarding must be 0 or 1")),
                };
                let sv = fields.many("stats")?;
                if sv.len() != 7 {
                    return Err(bad("stats line must hold 7 counters"));
                }
                let stats = PipelineStats {
                    cycles: parse_num(&sv[0])?,
                    instructions: parse_num(&sv[1])?,
                    load_use_stalls: parse_num(&sv[2])?,
                    id_use_stalls: parse_num(&sv[3])?,
                    control_flush_bubbles: parse_num(&sv[4])?,
                    taken_transfers: parse_num(&sv[5])?,
                    untaken_branches: parse_num(&sv[6])?,
                };
                let if_id = fields.latch("if-id", 2)?.map(|v| {
                    Ok::<_, SimError>(Fetched {
                        pc: parse_num(&v[0])?,
                        instr: parse_instr(&v[1])?,
                    })
                });
                let id_ex = fields.latch("id-ex", 4)?.map(|v| {
                    Ok::<_, SimError>(IdEx {
                        pc: parse_num(&v[0])?,
                        instr: parse_instr(&v[1])?,
                        a_val: parse_word(&v[2])?,
                        b_val: parse_word(&v[3])?,
                    })
                });
                let ex_mem = fields.latch("ex-mem", 4)?.map(|v| {
                    Ok::<_, SimError>(ExMem {
                        pc: parse_num(&v[0])?,
                        instr: parse_instr(&v[1])?,
                        result: parse_word(&v[2])?,
                        store_val: parse_word(&v[3])?,
                    })
                });
                let mem_wb = fields.latch("mem-wb", 3)?.map(|v| {
                    Ok::<_, SimError>(MemWb {
                        pc: parse_num(&v[0])?,
                        instr: parse_instr(&v[1])?,
                        value: parse_word(&v[2])?,
                    })
                });
                Micro::Pipelined(Box::new(PipelineMicro {
                    fetch_pc,
                    halting,
                    forwarding,
                    stats,
                    if_id: if_id.transpose()?,
                    id_ex: id_ex.transpose()?,
                    ex_mem: ex_mem.transpose()?,
                    mem_wb: mem_wb.transpose()?,
                }))
            }
            other => {
                return Err(SimError::Checkpoint {
                    detail: format!("unknown micro kind {other:?}"),
                })
            }
        };
        if fields.one("end").is_err() {
            return Err(bad("missing `end` line"));
        }
        let state = CoreState {
            pc,
            trf,
            tdm: TernaryMemory::with_image(tdm_len, &image),
        };
        let cp = Checkpoint {
            backend,
            text_len,
            state,
            retired,
            halted,
            mix,
            micro,
        };
        let micro_matches = matches!(
            (cp.backend, &cp.micro),
            (Backend::Pipelined, Micro::Pipelined(_))
                | (
                    Backend::Functional | Backend::Reference | Backend::Threaded,
                    Micro::Architectural
                )
        );
        if !micro_matches {
            return Err(bad("micro section does not match the declared backend"));
        }
        Ok(cp)
    }

    /// The shape/backend guard every `restore` implementation applies.
    ///
    /// Architectural checkpoints (`Micro::Architectural`) cross-restore
    /// between the architectural backends — a functional snapshot
    /// resumes on the threaded backend and vice versa — because they
    /// capture nothing beyond the software-visible machine and the
    /// retirement counters. Pipelined checkpoints restore only into the
    /// pipelined backend, and the pipelined backend accepts only them.
    pub(crate) fn guard(&self, backend: Backend, text_len: usize) -> Result<(), SimError> {
        let compatible = self.backend == backend
            || (matches!(self.micro, Micro::Architectural) && backend != Backend::Pipelined);
        if !compatible {
            return Err(SimError::Checkpoint {
                detail: format!(
                    "checkpoint is from the {} backend, cannot restore into {}",
                    self.backend, backend
                ),
            });
        }
        if self.text_len != text_len {
            return Err(SimError::Checkpoint {
                detail: format!(
                    "checkpoint was taken over a {}-instruction program, this core runs {}",
                    self.text_len, text_len
                ),
            });
        }
        Ok(())
    }
}

/// Line-cursor over the serialized form.
struct Fields<'a> {
    lines: std::str::Lines<'a>,
}

impl Fields<'_> {
    /// Next line, which must start with `key`; returns the rest.
    fn next_line(&mut self, key: &str) -> Result<String, SimError> {
        let line = self.lines.next().ok_or_else(|| SimError::Checkpoint {
            detail: format!("truncated: expected `{key}`"),
        })?;
        let line = line.trim();
        if line == key {
            return Ok(String::new());
        }
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| SimError::Checkpoint {
                detail: format!("expected `{key} …`, found {line:?}"),
            })
    }

    /// A `key value` line.
    fn one(&mut self, key: &str) -> Result<String, SimError> {
        self.next_line(key)
    }

    /// A `key v1 v2 …` line, split on whitespace.
    fn many(&mut self, key: &str) -> Result<Vec<String>, SimError> {
        Ok(self
            .next_line(key)?
            .split_whitespace()
            .map(str::to_string)
            .collect())
    }

    /// A latch line: `key none` or `key v1 … vn`.
    fn latch(&mut self, key: &str, n: usize) -> Result<Option<Vec<String>>, SimError> {
        let vals = self.many(key)?;
        if vals == ["none"] {
            return Ok(None);
        }
        if vals.len() != n {
            return Err(SimError::Checkpoint {
                detail: format!("{key} line must hold `none` or {n} values"),
            });
        }
        Ok(Some(vals))
    }
}

fn halt_name(h: Option<HaltReason>) -> &'static str {
    match h {
        None => "none",
        Some(HaltReason::JumpToSelf) => "jump-to-self",
        Some(HaltReason::FellOffEnd) => "fell-off-end",
    }
}

fn parse_halt(s: &str) -> Result<Option<HaltReason>, SimError> {
    match s {
        "none" => Ok(None),
        "jump-to-self" => Ok(Some(HaltReason::JumpToSelf)),
        "fell-off-end" => Ok(Some(HaltReason::FellOffEnd)),
        other => Err(SimError::Checkpoint {
            detail: format!("unknown halt reason {other:?}"),
        }),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, SimError> {
    s.parse().map_err(|_| SimError::Checkpoint {
        detail: format!("not a number: {s:?}"),
    })
}

fn parse_word(s: &str) -> Result<Word9, SimError> {
    let v = parse_num::<i64>(s)?;
    Word9::from_i64(v).map_err(|_| SimError::Checkpoint {
        detail: format!("{v} does not fit a 9-trit word"),
    })
}

fn parse_instr(s: &str) -> Result<Instruction, SimError> {
    decode(parse_word(s)?).map_err(|e| SimError::Checkpoint {
        detail: format!("latch holds an undecodable instruction word: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{Budget, SimBuilder};
    use art9_isa::assemble;

    fn program() -> art9_isa::Program {
        assemble(
            ".data\nv: .word 7\n.text\nLI t2, 0\nLOAD t3, t2, 0\nloop:\nADDI t3, -1\n\
             STORE t3, t2, 0\nMV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n",
        )
        .unwrap()
    }

    #[test]
    fn text_roundtrip_is_exact_for_every_backend() {
        for backend in Backend::ALL {
            let mut core = SimBuilder::new(&program()).backend(backend).build();
            core.run_for(Budget::Steps(4)).unwrap();
            let cp = core.snapshot();
            let back = Checkpoint::from_text(&cp.to_text()).unwrap();
            assert_eq!(cp, back, "{backend}");
        }
    }

    #[test]
    fn mid_pipeline_latches_survive_the_roundtrip() {
        // After 4 cycles the pipeline latches are occupied; the
        // serialized form must preserve them exactly.
        let mut core = SimBuilder::new(&program())
            .backend(Backend::Pipelined)
            .build();
        core.run_for(Budget::Steps(4)).unwrap();
        let cp = core.snapshot();
        let Micro::Pipelined(m) = &cp.micro else {
            panic!("pipelined micro expected");
        };
        assert!(m.id_ex.is_some() || m.ex_mem.is_some(), "latches occupied");
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn restore_rejects_backend_and_shape_mismatches() {
        let p = program();
        let mut func = SimBuilder::new(&p).build();
        func.run_for(Budget::Steps(2)).unwrap();
        let cp = func.snapshot();

        let mut pipe = SimBuilder::new(&p).backend(Backend::Pipelined).build();
        assert!(matches!(
            pipe.restore(&cp),
            Err(SimError::Checkpoint { .. })
        ));

        let other = assemble("NOP\nJAL t0, 0\n").unwrap();
        let mut short = SimBuilder::new(&other).build();
        assert!(matches!(
            short.restore(&cp),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn malformed_text_is_rejected_with_detail() {
        for text in [
            "",
            "not a checkpoint",
            "art9-checkpoint v1\nbackend warp-drive\n",
            "art9-checkpoint v1\nbackend functional\ntext-len x\n",
        ] {
            assert!(
                matches!(
                    Checkpoint::from_text(text),
                    Err(SimError::Checkpoint { .. })
                ),
                "{text:?}"
            );
        }
    }

    #[test]
    fn checkpoint_reports_the_mix() {
        let mut core = SimBuilder::new(&program()).build();
        core.run_for(Budget::Steps(3)).unwrap();
        let cp = core.snapshot();
        assert_eq!(cp.instruction_mix(), core.instruction_mix());
        assert_eq!(cp.retired, 3);
    }
}
