//! Shared instruction semantics.
//!
//! Both simulators (functional and pipelined) delegate here so they
//! cannot drift apart: the TALU result function, the shift-amount
//! interpretation, the branch condition, and effective-address
//! computation live in exactly one place. The pipeline ≡ functional
//! equivalence property test (crate tests) then checks the *timing*
//! model, not re-derived semantics.

use art9_isa::Instruction;
use ternary::{Trit, Trits, Word9};

/// Interprets a 2-trit balanced shift amount: magnitude |v| in the
/// direction of the operation for `v ≥ 0`, reversed for `v < 0`
/// (DESIGN.md §3.2).
///
/// Returns `(left, amount)` where `left == true` means shift left.
fn shift_spec(base_left: bool, amount: Trits<2>) -> (bool, usize) {
    let v = amount.to_i64();
    if v >= 0 {
        (base_left, v as usize)
    } else {
        (!base_left, (-v) as usize)
    }
}

/// Applies a shift with the balanced 2-trit amount semantics.
///
/// # Examples
///
/// ```
/// use art9_sim::shift;
/// use ternary::{Trits, Word9};
///
/// let x = Word9::from_i64(10)?;
/// let amt = Trits::<2>::from_i64(2)?;
/// assert_eq!(shift(x, false, amt).to_i64(), 1);  // SR by 2: round(10/9)
/// assert_eq!(shift(x, true, amt).to_i64(), 90);  // SL by 2: x * 9
/// let neg = Trits::<2>::from_i64(-1)?;
/// assert_eq!(shift(x, false, neg).to_i64(), 30); // SR by -1 == SL by 1
/// # Ok::<(), ternary::TernaryError>(())
/// ```
pub fn shift(value: Word9, base_left: bool, amount: Trits<2>) -> Word9 {
    let (left, k) = shift_spec(base_left, amount);
    if left {
        value.shl(k)
    } else {
        value.shr(k)
    }
}

/// The ternary ALU: computes the EX-stage result for every instruction
/// that produces one.
///
/// * `a` — the value read from `TRF[Ta]` (destination-and-source),
/// * `b` — the value read from `TRF[Tb]` (or zero when unused),
/// * `link` — `PC + 1` as a word, used by JAL/JALR.
///
/// For LOAD/STORE the returned value is the effective address
/// `b + offset`; for STORE the datum travels separately. For branches
/// the result is unused (zero).
pub fn talu(instr: &Instruction, a: Word9, b: Word9, link: Word9) -> Word9 {
    use Instruction::*;
    match instr {
        Mv { .. } => b,
        Pti { .. } => b.pti(),
        Nti { .. } => b.nti(),
        Sti { .. } => b.sti(),
        And { .. } => a.and(b),
        Or { .. } => a.or(b),
        Xor { .. } => a.xor(b),
        Add { .. } => a.wrapping_add(b),
        Sub { .. } => a.wrapping_sub(b),
        Sr { .. } => shift(a, false, b.field::<2>(0)),
        Sl { .. } => shift(a, true, b.field::<2>(0)),
        Comp { .. } => a.compare(b),
        Andi { imm, .. } => a.and(imm.resize::<9>()),
        Addi { imm, .. } => a.wrapping_add(imm.resize::<9>()),
        Sri { imm, .. } => shift(a, false, *imm),
        Sli { imm, .. } => shift(a, true, *imm),
        // LUI: {imm[3:0], 00000}
        Lui { imm, .. } => Word9::ZERO.with_field::<4>(5, *imm),
        // LI: {TRF[Ta][8:5], imm[4:0]} — upper trits of the old value kept.
        Li { imm, .. } => a.with_field::<5>(0, *imm),
        Beq { .. } | Bne { .. } => Word9::ZERO,
        Jal { .. } | Jalr { .. } => link,
        Load { offset, .. } | Store { offset, .. } => b.wrapping_add(offset.resize::<9>()),
    }
}

/// Evaluates the B-type condition against the LST of the condition
/// register (paper §IV-A: BEQ taken iff `TRF[Tb][0] == B`, BNE iff `!=`).
pub fn branch_taken(instr: &Instruction, lst: Trit) -> bool {
    match instr {
        Instruction::Beq { cond, .. } => lst == *cond,
        Instruction::Bne { cond, .. } => lst != *cond,
        _ => false,
    }
}

/// Computes the next PC for a control-flow instruction resolved at
/// instruction address `pc` with source value `b` (for JALR).
///
/// Returns `None` for non-control-flow or a not-taken branch.
pub fn control_target(instr: &Instruction, pc: usize, lst: Trit, b: Word9) -> Option<i64> {
    use Instruction::*;
    match instr {
        Beq { offset, .. } | Bne { offset, .. } => {
            branch_taken(instr, lst).then(|| pc as i64 + offset.to_i64())
        }
        Jal { offset, .. } => Some(pc as i64 + offset.to_i64()),
        Jalr { offset, .. } => Some(b.wrapping_add(offset.resize::<9>()).to_i64()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::TReg;
    use ternary::Trits;

    fn w(v: i64) -> Word9 {
        Word9::from_i64(v).unwrap()
    }

    #[test]
    fn alu_arithmetic() {
        use Instruction::*;
        let add = Add {
            a: TReg::T3,
            b: TReg::T4,
        };
        assert_eq!(talu(&add, w(100), w(-30), Word9::ZERO).to_i64(), 70);
        let sub = Sub {
            a: TReg::T3,
            b: TReg::T4,
        };
        assert_eq!(talu(&sub, w(100), w(-30), Word9::ZERO).to_i64(), 130);
    }

    #[test]
    fn alu_single_source_ops_use_b() {
        use Instruction::*;
        let mv = Mv {
            a: TReg::T3,
            b: TReg::T4,
        };
        assert_eq!(talu(&mv, w(1), w(2), Word9::ZERO).to_i64(), 2);
        let sti = Sti {
            a: TReg::T3,
            b: TReg::T4,
        };
        assert_eq!(talu(&sti, w(1), w(2), Word9::ZERO).to_i64(), -2);
    }

    #[test]
    fn lui_li_compose_full_constants() {
        use Instruction::*;
        // Build 1000: hi/lo split then LUI+LI.
        let (hi, lo) = art9_isa::asm::split_hi_lo(1000);
        let lui = Lui {
            a: TReg::T3,
            imm: Trits::<4>::from_i64(hi).unwrap(),
        };
        let upper = talu(&lui, Word9::ZERO, Word9::ZERO, Word9::ZERO);
        assert_eq!(upper.to_i64(), hi * 243);
        let li = Li {
            a: TReg::T3,
            imm: Trits::<5>::from_i64(lo).unwrap(),
        };
        let full = talu(&li, upper, Word9::ZERO, Word9::ZERO);
        assert_eq!(full.to_i64(), 1000);
    }

    #[test]
    fn li_preserves_upper_trits() {
        use Instruction::*;
        let old = w(40 * 243); // upper trits only
        let li = Li {
            a: TReg::T3,
            imm: Trits::<5>::from_i64(-121).unwrap(),
        };
        assert_eq!(
            talu(&li, old, Word9::ZERO, Word9::ZERO).to_i64(),
            40 * 243 - 121
        );
    }

    #[test]
    fn shift_amount_field_comes_from_low_two_trits() {
        use Instruction::*;
        let sl = Sl {
            a: TReg::T3,
            b: TReg::T4,
        };
        // b = 11 -> low 2 trits of 11 = 11 mod 9 (balanced) = 2.
        let b = w(11); // 11 = +102? 11 = 9+3-1 => trits (lsb) [-1,+1,+1]; low2 = -1+3 = 2
        assert_eq!(talu(&sl, w(5), b, Word9::ZERO).to_i64(), 45);
    }

    #[test]
    fn negative_shift_reverses_direction() {
        let amt = Trits::<2>::from_i64(-2).unwrap();
        assert_eq!(shift(w(5), true, amt).to_i64(), 1); // SL by -2 = SR by 2
        assert_eq!(shift(w(5), false, amt).to_i64(), 45); // SR by -2 = SL by 2
    }

    #[test]
    fn branch_conditions() {
        use Instruction::*;
        let beq = Beq {
            b: TReg::T3,
            cond: Trit::P,
            offset: Trits::ZERO,
        };
        assert!(branch_taken(&beq, Trit::P));
        assert!(!branch_taken(&beq, Trit::Z));
        let bne = Bne {
            b: TReg::T3,
            cond: Trit::P,
            offset: Trits::ZERO,
        };
        assert!(!branch_taken(&bne, Trit::P));
        assert!(branch_taken(&bne, Trit::N));
    }

    #[test]
    fn control_targets() {
        use Instruction::*;
        let jal = Jal {
            a: TReg::T1,
            offset: Trits::<5>::from_i64(-3).unwrap(),
        };
        assert_eq!(control_target(&jal, 10, Trit::Z, Word9::ZERO), Some(7));
        let jalr = Jalr {
            a: TReg::T1,
            b: TReg::T2,
            offset: Trits::<3>::from_i64(2).unwrap(),
        };
        assert_eq!(control_target(&jalr, 10, Trit::Z, w(100)), Some(102));
        let beq = Beq {
            b: TReg::T3,
            cond: Trit::Z,
            offset: Trits::<4>::from_i64(5).unwrap(),
        };
        assert_eq!(control_target(&beq, 10, Trit::Z, Word9::ZERO), Some(15));
        assert_eq!(control_target(&beq, 10, Trit::P, Word9::ZERO), None);
        let add = Add {
            a: TReg::T3,
            b: TReg::T4,
        };
        assert_eq!(control_target(&add, 10, Trit::Z, Word9::ZERO), None);
    }

    #[test]
    fn jal_link_value_passes_through_alu() {
        use Instruction::*;
        let jal = Jal {
            a: TReg::T1,
            offset: Trits::ZERO,
        };
        assert_eq!(talu(&jal, Word9::ZERO, Word9::ZERO, w(11)).to_i64(), 11);
    }
}
