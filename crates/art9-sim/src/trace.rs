//! Per-cycle pipeline traces, for debugging and for the stage-occupancy
//! assertions in the test suite.

use std::fmt;

use art9_isa::Instruction;

/// What one stage held at the end of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Instruction address.
    pub pc: usize,
    /// The instruction occupying the stage.
    pub instr: Instruction,
}

/// Stage occupancy at the end of one clock cycle. `None` means a bubble.
///
/// The ID snapshot is implicit: an instruction sitting in `if_stage` at
/// the end of cycle `t` is decoded during cycle `t + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTrace {
    /// 1-based cycle number.
    pub cycle: u64,
    /// IF/ID register (instruction awaiting decode).
    pub if_stage: Option<StageSnapshot>,
    /// ID/EX register (instruction entering execute).
    pub ex_stage: Option<StageSnapshot>,
    /// EX/MEM register.
    pub mem_stage: Option<StageSnapshot>,
    /// MEM/WB register.
    pub wb_stage: Option<StageSnapshot>,
}

impl fmt::Display for CycleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn cell(s: &Option<StageSnapshot>) -> String {
            match s {
                Some(snap) => format!("{:>3}:{}", snap.pc, snap.instr.mnemonic()),
                None => "  --  ".to_string(),
            }
        }
        write!(
            f,
            "c{:>5} | IF {:10} | EX {:10} | MEM {:10} | WB {:10}",
            self.cycle,
            cell(&self.if_stage),
            cell(&self.ex_stage),
            cell(&self.mem_stage),
            cell(&self.wb_stage),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::NOP;

    #[test]
    fn display_shows_bubbles_and_instructions() {
        let t = CycleTrace {
            cycle: 3,
            if_stage: Some(StageSnapshot { pc: 2, instr: NOP }),
            ex_stage: None,
            mem_stage: None,
            wb_stage: None,
        };
        let s = t.to_string();
        assert!(s.contains("ADDI"));
        assert!(s.contains("--"));
    }
}
