//! The functional (architecture-level) instruction-set simulator.
//!
//! Executes one instruction per step with no timing model. It is the
//! reference the cycle-accurate pipeline is property-tested against, and
//! the fast path for workload debugging.
//!
//! ## Halt convention
//!
//! Bare-metal ART-9 programs halt by **jumping to themselves** (e.g.
//! `halt: JAL t0, 0` or a taken branch with offset 0): any control
//! transfer whose target equals its own address stops the machine.
//! Falling off the end of TIM (PC == text length) also halts cleanly.

use std::sync::Arc;

use art9_isa::{Instruction, Program, TReg};
use ternary::{TernaryMemory, Word9};

use crate::checkpoint::{Checkpoint, Micro};
use crate::core::{run_loop, Backend, Budget, Core, RunSummary};
use crate::error::SimError;
use crate::exec::{control_target, talu};
use crate::observer::{MemWrite, MemoryAccess, ObserverSet, RegWrite, Writeback};
use crate::predecode::PredecodedProgram;

/// Default TDM size in words (matches the 256-word memories behind
/// Table V's RAM accounting).
pub const DEFAULT_TDM_WORDS: usize = 256;

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A control transfer targeted its own address (idle loop).
    JumpToSelf,
    /// Execution fell off the end of the instruction memory.
    FellOffEnd,
}

/// Result of a completed functional run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions executed (the branch/jump that halted is counted).
    pub instructions: u64,
    /// Why the machine stopped.
    pub halt: HaltReason,
}

/// The architectural state of an ART-9 core: PC, the nine-register TRF
/// and the data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    /// Program counter (instruction index into TIM).
    pub pc: usize,
    /// The ternary register file, indexed by [`TReg::index`].
    pub trf: [Word9; 9],
    /// The ternary data memory.
    pub tdm: TernaryMemory,
}

impl std::fmt::Display for CoreState {
    /// Register-dump format: PC plus the nine TRF registers, one per
    /// line, as both trits and decimal.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pc  = {}", self.pc)?;
        for (i, w) in self.trf.iter().enumerate() {
            writeln!(f, "t{i}  = {w} ({})", w.to_i64())?;
        }
        Ok(())
    }
}

impl CoreState {
    /// Fresh state: PC 0, zeroed registers, TDM loaded from `program`.
    pub fn new(program: &Program, tdm_words: usize) -> Self {
        Self::with_image(program.data(), tdm_words)
    }

    /// Fresh state with the TDM loaded from a bare data image (grown to
    /// fit if the image is larger than `tdm_words`).
    pub fn with_image(data: &[Word9], tdm_words: usize) -> Self {
        Self {
            pc: 0,
            trf: [Word9::ZERO; 9],
            tdm: TernaryMemory::with_image(tdm_words.max(data.len()), data),
        }
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: TReg) -> Word9 {
        self.trf[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: TReg, v: Word9) {
        self.trf[r.index()] = v;
    }

    /// The first architectural difference between two states, as a
    /// human-readable description — the nine TRF registers, then the
    /// TDM word by word. `None` when the states agree.
    ///
    /// The PC is deliberately *not* compared: it is a fetch-engine
    /// detail the pipelined simulator tracks outside `CoreState`, so
    /// only the software-visible machine state (registers and memory)
    /// is meaningful across simulator backends. This is the comparison
    /// the differential fuzzing oracles (`art9-fuzz`) apply; it lives
    /// here so every consumer diffs states the same way.
    ///
    /// # Examples
    ///
    /// ```
    /// use art9_isa::assemble;
    /// use art9_sim::{Budget, Core, SimBuilder};
    ///
    /// let p = assemble("LI t3, 1\nJAL t0, 0\n")?;
    /// let builder = SimBuilder::new(&p);
    /// let mut a = builder.build();
    /// let mut b = builder.build();
    /// a.run_for(Budget::Steps(100))?;
    /// b.run_for(Budget::Steps(100))?;
    /// assert_eq!(a.state().first_difference(b.state()), None);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn first_difference(&self, other: &CoreState) -> Option<String> {
        for (i, (a, b)) in self.trf.iter().zip(other.trf.iter()).enumerate() {
            if a != b {
                return Some(format!(
                    "t{i} = {a} ({}) vs {b} ({})",
                    a.to_i64(),
                    b.to_i64()
                ));
            }
        }
        if self.tdm.size() != other.tdm.size() {
            return Some(format!(
                "TDM sizes {} vs {}",
                self.tdm.size(),
                other.tdm.size()
            ));
        }
        for (addr, (a, b)) in self.tdm.iter().zip(other.tdm.iter()).enumerate() {
            if a != b {
                return Some(format!(
                    "TDM[{addr}] = {a} ({}) vs {b} ({})",
                    a.to_i64(),
                    b.to_i64()
                ));
            }
        }
        None
    }
}

/// The functional instruction-set simulator.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::SimBuilder;
///
/// // Branches test only the least-significant trit, so loops use the
/// // paper's COMP idiom: copy, compare against zero, branch on sign.
/// let program = assemble("
///     LI   t3, 10
///     LI   t4, 0
/// loop:
///     ADD  t4, t3          ; t4 += t3
///     ADDI t3, -1
///     MV   t7, t3
///     COMP t7, t0          ; t7 = sign(t3)
///     BEQ  t7, +, loop     ; loop while t3 > 0
/// halt:
///     JAL  t0, 0           ; jump-to-self halts
/// ")?;
///
/// let mut sim = SimBuilder::new(&program).build_functional();
/// let result = sim.run(10_000)?;
/// assert_eq!(sim.state().reg("t4".parse()?).to_i64(), 55); // 10+9+...+1
/// assert!(result.instructions > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalSim {
    text: Arc<[Instruction]>,
    links: Arc<[Word9]>,
    state: CoreState,
    instructions: u64,
    halted: Option<HaltReason>,
    mix: [u64; Instruction::OPCODE_COUNT],
    observers: ObserverSet,
}

impl FunctionalSim {
    /// The one real constructor, reached through
    /// [`SimBuilder`](crate::SimBuilder).
    pub(crate) fn build(
        image: &PredecodedProgram,
        tdm_words: usize,
        observers: ObserverSet,
    ) -> Self {
        Self {
            text: image.text_arc(),
            links: image.links_arc(),
            state: CoreState::with_image(image.data(), tdm_words),
            instructions: 0,
            halted: None,
            mix: [0; Instruction::OPCODE_COUNT],
            observers,
        }
    }

    /// Dynamic instruction mix: executed count per mnemonic. The
    /// operation-mix view behind Dhrystone-style workload analysis.
    ///
    /// Internally counts through a flat per-opcode array (the map is
    /// assembled here, off the hot path); mnemonics that never executed
    /// are absent.
    pub fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        crate::core::mix_map(&self.mix)
    }

    /// The architectural state (inspectable mid-run).
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Mutable state access, e.g. to preload registers before a run.
    pub fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether (and why) the machine has halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Executes a single instruction.
    ///
    /// Returns `Ok(Some(reason))` when this step halted the machine,
    /// `Ok(None)` otherwise.
    ///
    /// # Errors
    ///
    /// [`SimError::PcOutOfRange`] on wild control transfers and
    /// [`SimError::MemoryFault`] on TDM access violations.
    pub fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        if let Some(reason) = self.halted {
            return Ok(Some(reason));
        }
        let pc = self.state.pc;
        if pc == self.text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            if !self.observers.is_empty() {
                self.observers
                    .halt(HaltReason::FellOffEnd, self.instructions);
            }
            return Ok(Some(HaltReason::FellOffEnd));
        }
        let instr = self.text[pc];
        self.instructions += 1;
        self.mix[instr.opcode()] += 1;

        let (a_val, b_val) = operand_values(&instr, &self.state);
        let link = self.links[pc]; // PC + 1, precomputed at decode time
        let result = talu(&instr, a_val, b_val, link);

        // Old destination value, captured before any write so the
        // write-back event can report the overwritten contents.
        let observing = !self.observers.is_empty();
        let old_reg = if observing {
            instr.writes().map(|dest| self.state.reg(dest))
        } else {
            None
        };
        let mut mem_write = None;

        use Instruction::*;
        match instr {
            Load { a, .. } => {
                let v = self
                    .state
                    .tdm
                    .read_word_addr(result)
                    .map_err(|cause| SimError::MemoryFault { pc, cause })?;
                self.state.set_reg(a, v);
                if observing {
                    let address = self.state.tdm.resolve(result).expect("read succeeded");
                    self.observers.memory(&MemoryAccess {
                        pc,
                        address,
                        value: v,
                        is_write: false,
                    });
                }
            }
            Store { .. } => {
                let old_cell = if observing {
                    self.state.tdm.read_word_addr(result).ok()
                } else {
                    None
                };
                self.state
                    .tdm
                    .write_word_addr(result, a_val)
                    .map_err(|cause| SimError::MemoryFault { pc, cause })?;
                if observing {
                    let address = self.state.tdm.resolve(result).expect("write succeeded");
                    self.observers.memory(&MemoryAccess {
                        pc,
                        address,
                        value: a_val,
                        is_write: true,
                    });
                    mem_write = Some(MemWrite {
                        address,
                        old: old_cell.expect("write succeeded"),
                        new: a_val,
                    });
                }
            }
            _ => {
                if let Some(dest) = instr.writes() {
                    self.state.set_reg(dest, result);
                }
            }
        }

        // Control flow.
        let lst = b_val.lst();
        let (next, taken) = match control_target(&instr, pc, lst, b_val) {
            Some(target) => {
                if target < 0 || target as usize > self.text.len() {
                    return Err(SimError::PcOutOfRange {
                        at: self.instructions,
                        pc: target,
                        tim_size: self.text.len(),
                    });
                }
                (target as usize, true)
            }
            None => (pc + 1, false),
        };

        if observing {
            if instr.is_control_flow() {
                self.observers.control(pc, &instr, taken, next);
            }
            self.observers.writeback(&Writeback {
                pc,
                instr,
                reg: instr.writes().map(|dest| RegWrite {
                    reg: dest,
                    old: old_reg.expect("captured above"),
                    new: self.state.reg(dest),
                }),
                mem: mem_write,
                bus: result,
            });
            self.observers.retire(pc, &instr, &self.state);
        }

        let halt = if next == pc {
            Some(HaltReason::JumpToSelf)
        } else if next == self.text.len() {
            self.state.pc = next;
            Some(HaltReason::FellOffEnd)
        } else {
            self.state.pc = next;
            None
        };
        if let Some(reason) = halt {
            self.halted = Some(reason);
            if !self.observers.is_empty() {
                self.observers.halt(reason, self.instructions);
            }
        }
        Ok(halt)
    }

    /// Runs until halt or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the budget is exhausted, plus any fault
    /// from [`FunctionalSim::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, SimError> {
        for _ in 0..max_steps {
            if let Some(halt) = self.step()? {
                return Ok(RunResult {
                    instructions: self.instructions,
                    halt,
                });
            }
        }
        if let Some(halt) = self.halted {
            return Ok(RunResult {
                instructions: self.instructions,
                halt,
            });
        }
        Err(SimError::Timeout { limit: max_steps })
    }
}

impl Core for FunctionalSim {
    fn backend(&self) -> Backend {
        Backend::Functional
    }

    fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        FunctionalSim::step(self)
    }

    fn run_for(&mut self, budget: Budget) -> Result<RunSummary, SimError> {
        run_loop(self, budget)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    fn retired(&self) -> u64 {
        self.instructions
    }

    fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        FunctionalSim::instruction_mix(self)
    }

    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            backend: Backend::Functional,
            text_len: self.text.len(),
            state: self.state.clone(),
            retired: self.instructions,
            halted: self.halted,
            mix: self.mix,
            micro: Micro::Architectural,
        }
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError> {
        checkpoint.guard(Backend::Functional, self.text.len())?;
        self.state = checkpoint.state.clone();
        self.instructions = checkpoint.retired;
        self.halted = checkpoint.halted;
        self.mix = checkpoint.mix;
        Ok(())
    }
}

/// Reads the operand values an instruction consumes: `(a_val, b_val)`.
///
/// `a_val` is the current value of the `Ta` register for instructions
/// that read it (zero otherwise); `b_val` the `Tb` register value (zero
/// when the instruction has no `Tb`).
pub(crate) fn operand_values(instr: &Instruction, state: &CoreState) -> (Word9, Word9) {
    use Instruction::*;
    let a_val = match instr {
        And { a, .. }
        | Or { a, .. }
        | Xor { a, .. }
        | Add { a, .. }
        | Sub { a, .. }
        | Sr { a, .. }
        | Sl { a, .. }
        | Comp { a, .. }
        | Andi { a, .. }
        | Addi { a, .. }
        | Sri { a, .. }
        | Sli { a, .. }
        | Li { a, .. }
        | Store { a, .. } => state.reg(*a),
        _ => Word9::ZERO,
    };
    let b_val = match instr {
        Mv { b, .. }
        | Pti { b, .. }
        | Nti { b, .. }
        | Sti { b, .. }
        | And { b, .. }
        | Or { b, .. }
        | Xor { b, .. }
        | Add { b, .. }
        | Sub { b, .. }
        | Sr { b, .. }
        | Sl { b, .. }
        | Comp { b, .. }
        | Beq { b, .. }
        | Bne { b, .. }
        | Jalr { b, .. }
        | Load { b, .. }
        | Store { b, .. } => state.reg(*b),
        _ => Word9::ZERO,
    };
    (a_val, b_val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::SimBuilder;
    use art9_isa::assemble;

    fn run_src(src: &str) -> FunctionalSim {
        let p = assemble(src).unwrap();
        let mut sim = SimBuilder::new(&p).build_functional();
        sim.run(1_000_000).unwrap();
        sim
    }

    #[test]
    fn countdown_loop_with_comp_idiom() {
        // BNE/BEQ test only the LST, so the loop guard goes through COMP
        // (paper §IV-A: "we preset the LST of TRF[Tb] … by using a COMP
        // instruction").
        let sim = run_src(
            "LI t3, 10\nLI t4, 0\nloop:\nADD t4, t3\nADDI t3, -1\n\
             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n",
        );
        assert_eq!(sim.state().reg(TReg::T4).to_i64(), 55);
        assert_eq!(sim.halted(), Some(HaltReason::JumpToSelf));
    }

    #[test]
    fn branch_tests_lst_only() {
        // LST(9) == 0, so `BNE t3, 0` falls through even though t3 != 0:
        // the 1-trit condition is architectural, not a bug.
        let sim = run_src("LI t3, 9\nBNE t3, 0, skip\nLI t4, 1\nskip:\nJAL t0, 0\n");
        assert_eq!(sim.state().reg(TReg::T4).to_i64(), 1);
    }

    #[test]
    fn fell_off_end_halts() {
        let sim = run_src("LI t3, 1\nADDI t3, 2\n");
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 3);
        assert_eq!(sim.halted(), Some(HaltReason::FellOffEnd));
    }

    #[test]
    fn load_store_roundtrip() {
        let sim = run_src(
            "
            .data
            v: .word 41, 0
            .text
            LI t2, 0
            LOAD t3, t2, 0
            ADDI t3, 1
            STORE t3, t2, 1
            LOAD t4, t2, 1
            JAL t0, 0
            ",
        );
        assert_eq!(sim.state().reg(TReg::T4).to_i64(), 42);
        assert_eq!(sim.state().tdm.read(1).unwrap().to_i64(), 42);
    }

    #[test]
    fn comp_and_branch_three_way() {
        // Take the 'greater' path: t3=5 > t4=3 so COMP LST = +.
        let sim = run_src(
            "
            LI t3, 5
            LI t4, 3
            COMP t3, t4
            BEQ t3, +, greater
            LI t5, -99
            JAL t0, 0
            greater:
            LI t5, 77
            JAL t0, 0
            ",
        );
        assert_eq!(sim.state().reg(TReg::T5).to_i64(), 77);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let sim = run_src(
            "
            LI t3, 0
            JAL t1, sub      ; call
            ADDI t3, 10      ; executed after return
            JAL t0, 0        ; halt
            sub:
            ADDI t3, 1
            JALR t0, t1, 0   ; return
            ",
        );
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 11);
    }

    #[test]
    fn memory_fault_reports_pc() {
        let p = assemble("LI t2, 121\nLUI t2, 40\nLOAD t3, t2, 0\n").unwrap();
        let mut sim = SimBuilder::new(&p).build_functional();
        let err = sim.run(100).unwrap_err();
        match err {
            SimError::MemoryFault { pc, .. } => assert_eq!(pc, 2),
            other => panic!("expected MemoryFault, got {other:?}"),
        }
    }

    #[test]
    fn timeout_reported() {
        // Two-instruction infinite loop (never jumps to self).
        let p = assemble("a: NOP\nJAL t0, a\n").unwrap();
        let mut sim = SimBuilder::new(&p).build_functional();
        assert!(matches!(sim.run(10), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn wild_jump_faults() {
        let p = assemble("LI t2, 121\nJALR t0, t2, 0\n").unwrap();
        let mut sim = SimBuilder::new(&p).build_functional();
        assert!(matches!(sim.run(10), Err(SimError::PcOutOfRange { .. })));
    }

    #[test]
    fn instruction_mix_counts_dynamic_executions() {
        let sim = run_src(
            "LI t3, 3\nloop:\nADDI t3, -1\nMV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n",
        );
        let mix = sim.instruction_mix();
        assert_eq!(mix["LI"], 1);
        assert_eq!(mix["ADDI"], 3);
        assert_eq!(mix["COMP"], 3);
        assert_eq!(mix["BEQ"], 3);
        assert_eq!(mix["JAL"], 1);
        let total: u64 = mix.values().sum();
        assert_eq!(total, sim.instructions());
    }

    #[test]
    fn preloading_registers() {
        let p = assemble("ADD t3, t4\nJAL t0, 0\n").unwrap();
        let mut sim = SimBuilder::new(&p).build_functional();
        sim.state_mut()
            .set_reg(TReg::T3, Word9::from_i64(30).unwrap());
        sim.state_mut()
            .set_reg(TReg::T4, Word9::from_i64(12).unwrap());
        sim.run(10).unwrap();
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 42);
    }
}
