//! Observer hooks: callbacks fired by every [`Core`](crate::Core)
//! backend at architectural events.
//!
//! An [`Observer`] receives five kinds of events — instruction
//! retirement, control-flow resolution, data-memory access,
//! architectural write-back, and halt — from whichever backend it is
//! attached to via
//! [`SimBuilder::observer`](crate::SimBuilder::observer). Observers are
//! shared handles ([`SharedObserver`] is `Arc<Mutex<…>>`), so the caller
//! keeps a clone and inspects the accumulated data after (or during) the
//! run:
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use art9_isa::assemble;
//! use art9_sim::observers::Watchpoint;
//! use art9_sim::{Budget, Core, SimBuilder};
//!
//! let p = assemble("LI t2, 3\nLI t3, 7\nSTORE t3, t2, 0\nJAL t0, 0\n")?;
//! let watch = Arc::new(Mutex::new(Watchpoint::new(3)));
//! let mut core = SimBuilder::new(&p).observer(watch.clone()).build();
//! core.run_for(Budget::Steps(100))?;
//! let hits = watch.lock().unwrap().hits.clone();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].value.to_i64(), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The no-observer hot path pays only one branch per event site (an
//! emptiness check on the observer list); callbacks, locking and
//! allocation happen only when at least one observer is attached.

use std::sync::{Arc, Mutex};

use art9_isa::{Instruction, TReg};
use ternary::Word9;

use crate::functional::{CoreState, HaltReason};

/// One data-memory access, as reported to [`Observer::on_memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Instruction address of the LOAD/STORE.
    pub pc: usize,
    /// Resolved TDM word index.
    pub address: usize,
    /// The word read (LOAD) or written (STORE).
    pub value: Word9,
    /// `true` for STORE, `false` for LOAD.
    pub is_write: bool,
}

/// A register-file write as seen by [`Observer::on_writeback`]: the
/// destination register with its value before and after the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegWrite {
    /// Destination register.
    pub reg: TReg,
    /// Register contents before the write.
    pub old: Word9,
    /// Register contents after the write (read back from the register
    /// file, so backend-specific write paths cannot diverge).
    pub new: Word9,
}

/// A TDM write as seen by [`Observer::on_writeback`]: the word index
/// with the memory cell's value before and after the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Resolved TDM word index.
    pub address: usize,
    /// Cell contents before the store.
    pub old: Word9,
    /// Cell contents after the store (the stored value).
    pub new: Word9,
}

/// The architectural write-back of one retired instruction, as reported
/// to [`Observer::on_writeback`] — everything a switching-activity model
/// needs to see the datapath's old and new values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Instruction address.
    pub pc: usize,
    /// The retired instruction.
    pub instr: Instruction,
    /// The register-file write, when the instruction writes a register
    /// (`None` for BEQ/BNE/STORE).
    pub reg: Option<RegWrite>,
    /// The TDM write, for STORE only.
    pub mem: Option<MemWrite>,
    /// The TALU result driven onto the result bus this instruction:
    /// the computed value for ALU/logic/move ops, the effective address
    /// for LOAD/STORE, the link value for JAL/JALR, and zero for
    /// BEQ/BNE (whose comparison happened at COMP).
    pub bus: Word9,
}

/// Callbacks a [`Core`](crate::Core) backend fires at architectural
/// events. Every method has a no-op default, so an observer implements
/// only the events it cares about.
///
/// ## Contract
///
/// * `on_retire` fires once per retired instruction, **after** its
///   architectural effects are visible in `state`. On the pipelined
///   backend that is the WB stage, so retirement order — not fetch
///   order — is observed.
/// * `on_control` fires when a control-flow instruction resolves
///   (functional/reference: during its step; pipelined: in ID).
///   `target` is the next instruction address, whether or not the
///   transfer was taken.
/// * `on_memory` fires for every successful TDM access, before the
///   instruction retires. Faulting accesses do not report.
/// * `on_writeback` fires once per retired instruction, immediately
///   before its `on_retire`, carrying the old and new values of every
///   architectural write the instruction performed (see [`Writeback`]).
/// * `on_halt` fires exactly once, when the backend halts (for the
///   pipelined backend: after the pipeline drains).
///
/// Observers must not assume a particular backend: the same observer
/// attached to the functional and pipelined backends sees the same
/// retirement/write-back/memory/halt event sequence for the same
/// program.
#[allow(unused_variables)]
pub trait Observer {
    /// An instruction retired; `state` already reflects it.
    fn on_retire(&mut self, pc: usize, instr: &Instruction, state: &CoreState) {}

    /// A control-flow instruction resolved to `target` (`taken` is
    /// `false` for a fall-through conditional branch).
    fn on_control(&mut self, pc: usize, instr: &Instruction, taken: bool, target: usize) {}

    /// A data-memory access completed.
    fn on_memory(&mut self, access: &MemoryAccess) {}

    /// An instruction's architectural writes completed (fires just
    /// before its `on_retire`).
    fn on_writeback(&mut self, wb: &Writeback) {}

    /// The machine halted after retiring `retired` instructions.
    fn on_halt(&mut self, reason: HaltReason, retired: u64) {}
}

/// A shareable observer handle: keep a typed `Arc<Mutex<T>>` clone for
/// yourself and hand the coerced `SharedObserver` to
/// [`SimBuilder::observer`](crate::SimBuilder::observer).
pub type SharedObserver = Arc<Mutex<dyn Observer + Send>>;

/// The observer list a backend carries. Cloning a simulator shares its
/// observers (the handles are `Arc`s).
#[derive(Clone, Default)]
pub(crate) struct ObserverSet {
    list: Vec<SharedObserver>,
}

impl std::fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObserverSet({})", self.list.len())
    }
}

impl ObserverSet {
    pub(crate) fn push(&mut self, obs: SharedObserver) {
        self.list.push(obs);
    }

    /// The hot-path guard: event sites fire only when this is `false`.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    fn each(&self, mut f: impl FnMut(&mut (dyn Observer + Send))) {
        for obs in &self.list {
            // A poisoned lock (an observer panicked earlier) still
            // yields the data; observation must not take the run down.
            let mut guard = obs.lock().unwrap_or_else(|p| p.into_inner());
            f(&mut *guard);
        }
    }

    pub(crate) fn retire(&self, pc: usize, instr: &Instruction, state: &CoreState) {
        self.each(|o| o.on_retire(pc, instr, state));
    }

    pub(crate) fn control(&self, pc: usize, instr: &Instruction, taken: bool, target: usize) {
        self.each(|o| o.on_control(pc, instr, taken, target));
    }

    pub(crate) fn memory(&self, access: &MemoryAccess) {
        self.each(|o| o.on_memory(access));
    }

    pub(crate) fn writeback(&self, wb: &Writeback) {
        self.each(|o| o.on_writeback(wb));
    }

    pub(crate) fn halt(&self, reason: HaltReason, retired: u64) {
        self.each(|o| o.on_halt(reason, retired));
    }
}

/// Ready-made observers: the instruction-mix and trace machinery
/// reformulated on the hook API, plus a store watchpoint.
pub mod observers {
    use super::*;

    /// Per-mnemonic retirement counts, as an observer — the same view
    /// [`Core::instruction_mix`](crate::Core::instruction_mix) keeps
    /// built in, demonstrated over the hook API.
    #[derive(Debug, Clone, Default)]
    pub struct InstructionMix {
        counts: [u64; Instruction::OPCODE_COUNT],
    }

    impl InstructionMix {
        /// A fresh, all-zero mix.
        pub fn new() -> Self {
            Self::default()
        }

        /// Retired count per mnemonic (absent when zero), matching the
        /// shape of [`Core::instruction_mix`](crate::Core::instruction_mix).
        pub fn mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
            crate::core::mix_map(&self.counts)
        }
    }

    impl Observer for InstructionMix {
        fn on_retire(&mut self, _pc: usize, instr: &Instruction, _state: &CoreState) {
            self.counts[instr.opcode()] += 1;
        }
    }

    /// A retirement log: `(pc, instruction)` in retirement order — the
    /// cross-backend counterpart of the pipelined per-cycle trace.
    #[derive(Debug, Clone, Default)]
    pub struct RetireLog {
        /// Retired instructions, in order.
        pub log: Vec<(usize, Instruction)>,
    }

    impl RetireLog {
        /// An empty log.
        pub fn new() -> Self {
            Self::default()
        }
    }

    impl Observer for RetireLog {
        fn on_retire(&mut self, pc: usize, instr: &Instruction, _state: &CoreState) {
            self.log.push((pc, *instr));
        }
    }

    /// One recorded hit of a [`Watchpoint`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WatchHit {
        /// Instruction address of the store.
        pub pc: usize,
        /// The value written.
        pub value: Word9,
    }

    /// Records every store to one watched TDM address — the
    /// event-driven watchpoint the observer API makes possible (no
    /// polling, exact store PCs).
    #[derive(Debug, Clone)]
    pub struct Watchpoint {
        address: usize,
        /// Every store to the watched address, in program order.
        pub hits: Vec<WatchHit>,
    }

    impl Watchpoint {
        /// Watches TDM word `address`.
        pub fn new(address: usize) -> Self {
            Self {
                address,
                hits: Vec::new(),
            }
        }

        /// The watched address.
        pub fn address(&self) -> usize {
            self.address
        }
    }

    impl Observer for Watchpoint {
        fn on_memory(&mut self, access: &MemoryAccess) {
            if access.is_write && access.address == self.address {
                self.hits.push(WatchHit {
                    pc: access.pc,
                    value: access.value,
                });
            }
        }
    }

    /// Records, in order, every time the architectural control flow
    /// **enters** one of a set of watched TIM addresses — the
    /// sync-point detector behind cross-ISA lockstep checking.
    ///
    /// "Entering" address `b` means a retired instruction's successor
    /// was `b`: for a retired control-flow instruction that is its
    /// resolved target (taken or fall-through), for anything else
    /// `pc + 1`. The initial fetch at address 0 is *not* an entry — no
    /// instruction transferred control there.
    ///
    /// Because the contract guarantees every backend reports the same
    /// retirement/control event sequence, the recorded crossing trace
    /// is backend-independent — in particular it works on the pipelined
    /// backend, whose architectural PC is not observable between
    /// cycles. `art9-fuzz` watches the RV32 instruction boundaries of a
    /// translated program and compares the trace against the `rv32`
    /// machine's own execution path.
    #[derive(Debug, Clone, Default)]
    pub struct SyncPoints {
        watched: std::collections::BTreeSet<usize>,
        /// Control-flow targets resolved but not yet retired, in
        /// program order (the pipelined backend resolves in ID, retires
        /// in WB, possibly several instructions apart).
        pending: std::collections::VecDeque<(usize, usize)>,
        /// Every watched address entered, in retirement order.
        pub crossings: Vec<usize>,
    }

    impl SyncPoints {
        /// Watches the given TIM addresses.
        pub fn new(watched: impl IntoIterator<Item = usize>) -> Self {
            Self {
                watched: watched.into_iter().collect(),
                pending: Default::default(),
                crossings: Vec::new(),
            }
        }

        /// The crossing trace recorded so far.
        pub fn crossings(&self) -> &[usize] {
            &self.crossings
        }
    }

    /// Per-opcode switching activity accumulated by [`EnergyAccounting`]:
    /// retirement count plus trit flips attributed to each datapath
    /// structure while instructions of this opcode retired.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct OpcodeActivity {
        /// Instructions of this opcode retired.
        pub retired: u64,
        /// Register-file write-port flips (old vs new destination value).
        pub regfile: u64,
        /// TDM cell flips (old vs stored value; STORE only).
        pub tdm: u64,
        /// Fetch-path flips: instruction-register (encoded word) plus
        /// PC-register switching between consecutive retirements.
        pub fetch: u64,
        /// Result-bus flips: the TALU output against the value it drove
        /// for the previous instruction.
        pub alu: u64,
    }

    impl OpcodeActivity {
        fn absorb(&mut self, other: &OpcodeActivity) {
            self.retired += other.retired;
            self.regfile += other.regfile;
            self.tdm += other.tdm;
            self.fetch += other.fetch;
            self.alu += other.alu;
        }
    }

    /// Measures dynamic switching activity — trit flips per datapath
    /// structure, per opcode — from the [`Writeback`] event stream.
    ///
    /// This is the execution side of the dynamic energy model (see
    /// `docs/ENERGY.md`): every flip counted here is one trit changing
    /// value in a storage element or on the result bus, which `art9-hw`
    /// converts to energy via the tech library's per-cell switching
    /// energies. Structures tracked:
    ///
    /// * **regfile** — write-port activity: old vs new value of the
    ///   destination register at each register-writing retirement;
    /// * **tdm** — data-memory cell activity: old vs stored value at
    ///   each STORE;
    /// * **fetch** — instruction-register and PC-register activity
    ///   between consecutive retirements (the 9-trit encoded
    ///   instruction word, and the PC wrapped to a 9-trit word);
    /// * **alu** — result-bus activity: consecutive TALU outputs.
    ///
    /// The counts are architectural (derived from the retirement
    /// stream), so every backend produces identical totals for the same
    /// program — a property the `energy` fuzz oracle checks against a
    /// per-trit reference ([`EnergyAccounting::with_flip_fn`] +
    /// `ternary::arith::flips_tritwise`).
    ///
    /// ```
    /// use std::sync::{Arc, Mutex};
    /// use art9_isa::assemble;
    /// use art9_sim::observers::EnergyAccounting;
    /// use art9_sim::{Budget, Core, SimBuilder};
    ///
    /// let p = assemble("LI t2, 121\nADDI t2, 1\nJAL t0, 0\n")?;
    /// let energy = Arc::new(Mutex::new(EnergyAccounting::new()));
    /// let mut core = SimBuilder::new(&p).observer(energy.clone()).build();
    /// core.run_for(Budget::Steps(100))?;
    /// let e = energy.lock().unwrap();
    /// // LI writes 121 into a zero register (5 trits flip), ADDI turns
    /// // 121 = 0000+++++ into 122 = 000+----- (6 trits flip), and the
    /// // halting JAL links 3 = 00000000+0 into t0 (1 flip).
    /// assert_eq!(e.totals().regfile, 5 + 6 + 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[derive(Debug, Clone)]
    pub struct EnergyAccounting {
        flip_fn: fn(Word9, Word9) -> u32,
        prev_instr: Word9,
        prev_pc: Word9,
        prev_bus: Word9,
        per_opcode: [OpcodeActivity; Instruction::OPCODE_COUNT],
    }

    impl Default for EnergyAccounting {
        fn default() -> Self {
            Self::new()
        }
    }

    impl EnergyAccounting {
        /// An accumulator using the packed bitplane flip kernel
        /// ([`Word9::flips_from`]).
        pub fn new() -> Self {
            Self::with_flip_fn(|next, prev| next.flips_from(&prev))
        }

        /// An accumulator with a substitute flip function — the
        /// differential energy oracle passes
        /// `ternary::arith::flips_tritwise` here and asserts the totals
        /// are bit-identical to [`EnergyAccounting::new`]'s.
        pub fn with_flip_fn(flip_fn: fn(Word9, Word9) -> u32) -> Self {
            Self {
                flip_fn,
                prev_instr: Word9::ZERO,
                prev_pc: Word9::ZERO,
                prev_bus: Word9::ZERO,
                per_opcode: [OpcodeActivity::default(); Instruction::OPCODE_COUNT],
            }
        }

        /// Activity accumulated per opcode, indexed like
        /// [`Instruction::MNEMONICS`].
        pub fn per_opcode(&self) -> &[OpcodeActivity; Instruction::OPCODE_COUNT] {
            &self.per_opcode
        }

        /// Activity summed over all opcodes.
        pub fn totals(&self) -> OpcodeActivity {
            let mut total = OpcodeActivity::default();
            for acc in &self.per_opcode {
                total.absorb(acc);
            }
            total
        }
    }

    impl Observer for EnergyAccounting {
        fn on_writeback(&mut self, wb: &Writeback) {
            let flip = self.flip_fn;
            let acc = &mut self.per_opcode[wb.instr.opcode()];
            acc.retired += 1;
            if let Some(r) = wb.reg {
                acc.regfile += u64::from(flip(r.new, r.old));
            }
            if let Some(m) = wb.mem {
                acc.tdm += u64::from(flip(m.new, m.old));
            }
            let encoded = art9_isa::encode(&wb.instr);
            let pc_word = Word9::from_i64_wrapping(wb.pc as i64);
            acc.fetch += u64::from(flip(encoded, self.prev_instr));
            acc.fetch += u64::from(flip(pc_word, self.prev_pc));
            acc.alu += u64::from(flip(wb.bus, self.prev_bus));
            self.prev_instr = encoded;
            self.prev_pc = pc_word;
            self.prev_bus = wb.bus;
        }
    }

    impl Observer for SyncPoints {
        fn on_control(&mut self, pc: usize, _instr: &Instruction, _taken: bool, target: usize) {
            self.pending.push_back((pc, target));
        }

        fn on_retire(&mut self, pc: usize, _instr: &Instruction, _state: &CoreState) {
            // In-order retirement: a pending control target belongs to
            // this retirement iff it was recorded for the same pc.
            let next = match self.pending.front() {
                Some((cpc, target)) if *cpc == pc => {
                    let t = *target;
                    self.pending.pop_front();
                    t
                }
                _ => pc + 1,
            };
            if self.watched.contains(&next) {
                self.crossings.push(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::observers::*;
    use super::*;
    use crate::core::{Backend, Budget, SimBuilder};
    use art9_isa::assemble;

    fn looped() -> art9_isa::Program {
        assemble(
            "LI t2, 5\nLI t3, 3\nloop:\nSTORE t3, t2, 0\nADDI t3, -1\n\
             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n",
        )
        .unwrap()
    }

    #[test]
    fn mix_observer_matches_builtin_mix_on_every_backend() {
        for backend in Backend::ALL {
            let handle = Arc::new(Mutex::new(InstructionMix::new()));
            let mut core = SimBuilder::new(&looped())
                .backend(backend)
                .observer(handle.clone())
                .build();
            core.run_for(Budget::Steps(100_000)).unwrap();
            assert_eq!(
                handle.lock().unwrap().mix(),
                core.instruction_mix(),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn watchpoint_sees_every_store_with_pc() {
        let handle = Arc::new(Mutex::new(Watchpoint::new(5)));
        let mut core = SimBuilder::new(&looped()).observer(handle.clone()).build();
        core.run_for(Budget::Steps(100_000)).unwrap();
        let w = handle.lock().unwrap();
        assert_eq!(w.address(), 5);
        assert_eq!(w.hits.len(), 3, "one store per loop iteration");
        assert_eq!(w.hits[0].value.to_i64(), 3);
        assert_eq!(w.hits[2].value.to_i64(), 1);
        assert!(w.hits.iter().all(|h| h.pc == 2), "store is at pc 2");
    }

    #[test]
    fn retire_log_and_halt_agree_across_backends() {
        let run = |backend| {
            let log = Arc::new(Mutex::new(RetireLog::new()));
            let mut core = SimBuilder::new(&looped())
                .backend(backend)
                .observer(log.clone())
                .build();
            core.run_for(Budget::Steps(100_000)).unwrap();
            let l = log.lock().unwrap().log.clone();
            (l, core.retired())
        };
        let (f_log, f_ret) = run(Backend::Functional);
        assert_eq!(f_log.len() as u64, f_ret);
        for backend in [Backend::Pipelined, Backend::Reference, Backend::Threaded] {
            let (log, ret) = run(backend);
            assert_eq!(f_log, log, "{backend:?}: retirement order differs");
            assert_eq!(f_ret, ret, "{backend:?}");
        }
    }

    #[test]
    fn multiple_observers_see_identical_event_order_on_every_backend() {
        // Two retire logs plus an energy accumulator on the same core:
        // every observer must see the same, complete event stream — in
        // particular on the threaded backend, whose precise-interpreter
        // fallback carries the whole observer set.
        for backend in Backend::ALL {
            let first = Arc::new(Mutex::new(RetireLog::new()));
            let second = Arc::new(Mutex::new(RetireLog::new()));
            let energy = Arc::new(Mutex::new(EnergyAccounting::new()));
            let mut core = SimBuilder::new(&looped())
                .backend(backend)
                .observer(first.clone())
                .observer(energy.clone())
                .observer(second.clone())
                .build();
            core.run_for(Budget::Steps(100_000)).unwrap();
            let a = first.lock().unwrap().log.clone();
            let b = second.lock().unwrap().log.clone();
            assert!(!a.is_empty(), "{backend:?}: no retirements observed");
            assert_eq!(a, b, "{backend:?}: observers disagree on order");
            assert_eq!(
                energy.lock().unwrap().totals().retired,
                core.retired(),
                "{backend:?}: energy observer missed retirements"
            );
        }
    }

    #[test]
    fn sync_points_record_identical_crossings_on_every_backend() {
        // Watch the loop head (pc 2): entered twice by the taken
        // backward branch — the initial fall-in from pc 1 is a plain
        // retirement of pc 1 whose successor is 2, which also counts.
        let program = looped();
        let mut traces = Vec::new();
        for backend in Backend::ALL {
            let sp = Arc::new(Mutex::new(SyncPoints::new([2usize])));
            let mut core = SimBuilder::new(&program)
                .backend(backend)
                .observer(sp.clone())
                .build();
            core.run_for(Budget::Steps(100_000)).unwrap();
            traces.push(sp.lock().unwrap().crossings().to_vec());
        }
        assert_eq!(traces[0], traces[1], "functional vs pipelined");
        assert_eq!(traces[0], traces[2], "functional vs reference");
        assert_eq!(traces[0], traces[3], "functional vs threaded");
        // Entered by LI t3 (pc 1 -> 2) and by two taken loop-backs.
        assert_eq!(traces[0], vec![2, 2, 2]);
    }

    #[test]
    fn control_and_halt_events_fire() {
        #[derive(Default)]
        struct Counter {
            taken: u64,
            untaken: u64,
            halts: Vec<(HaltReason, u64)>,
        }
        impl Observer for Counter {
            fn on_control(&mut self, _pc: usize, _i: &Instruction, taken: bool, _t: usize) {
                if taken {
                    self.taken += 1;
                } else {
                    self.untaken += 1;
                }
            }
            fn on_halt(&mut self, reason: HaltReason, retired: u64) {
                self.halts.push((reason, retired));
            }
        }
        for backend in Backend::ALL {
            let c = Arc::new(Mutex::new(Counter::default()));
            let mut core = SimBuilder::new(&looped())
                .backend(backend)
                .observer(c.clone())
                .build();
            core.run_for(Budget::Steps(100_000)).unwrap();
            let c = c.lock().unwrap();
            // 3 taken BEQ? No: taken twice (t3 = 2, 1 -> positive), the
            // third check falls through, then the JAL-to-self halts.
            assert_eq!(c.taken, 3, "{backend:?}: 2 loop-backs + halting JAL");
            assert_eq!(c.untaken, 1, "{backend:?}: final fall-through");
            assert_eq!(c.halts, vec![(HaltReason::JumpToSelf, core.retired())]);
        }
    }
}
