//! An interactive-grade debugger over any [`Core`] backend:
//! breakpoints, data watchpoints, single-stepping and run-to-stop.
//! The kind of tooling a "fully-functional top-level microprocessor"
//! (paper §I) needs around it for software bring-up — the ternary
//! Dhrystone port would have been debugged with exactly this.
//!
//! The debugger drives a `Box<dyn Core>`, so the same breakpoint
//! session works against the functional simulator (the default), the
//! per-trit reference interpreter, or — for watchpoints and stepping —
//! the cycle-accurate pipeline.

use std::collections::BTreeSet;

use art9_isa::{Program, TReg};
use ternary::Word9;

use crate::core::{Core, SimBuilder};
use crate::error::SimError;
use crate::functional::{CoreState, HaltReason};

/// Why the debugger returned control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Hit a breakpoint (instruction address).
    Breakpoint(usize),
    /// A watched TDM word changed.
    Watchpoint {
        /// The watched address.
        address: usize,
        /// Value before the instruction.
        old: Word9,
        /// Value after.
        new: Word9,
    },
    /// A watched register changed.
    RegisterWatch {
        /// The watched register.
        reg: TReg,
        /// Value before the instruction.
        old: Word9,
        /// Value after.
        new: Word9,
    },
    /// The machine halted.
    Halted(HaltReason),
    /// The step budget ran out (machine still live).
    StepLimit,
}

/// Breakpoint/watchpoint debugger over any [`Core`].
///
/// Breakpoints key off `state().pc`, which the architectural backends
/// (functional, reference) maintain exactly; the pipelined backend does
/// not track an architectural PC, so use watchpoints and stepping
/// there.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::{Debugger, StopReason};
///
/// let p = assemble("
///     LI t3, 2
///     ADDI t3, 1
///     ADDI t3, 1
///     JAL t0, 0
/// ")?;
/// let mut dbg = Debugger::new(&p);
/// dbg.add_breakpoint(2);
/// let stop = dbg.run(1_000)?;
/// assert_eq!(stop, StopReason::Breakpoint(2));
/// assert_eq!(dbg.state().reg("t3".parse()?).to_i64(), 3); // before pc=2
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Debugger {
    core: Box<dyn Core>,
    breakpoints: BTreeSet<usize>,
    mem_watch: BTreeSet<usize>,
    reg_watch: BTreeSet<TReg>,
    /// PC whose breakpoint was just reported; skipped once on resume so
    /// `run` makes progress, then re-armed.
    resume_skip: Option<usize>,
}

impl Debugger {
    /// Wraps a fresh functional-backend core for `program`.
    pub fn new(program: &Program) -> Self {
        Self::attach(SimBuilder::new(program).build())
    }

    /// Attaches the debugger to an already-built core of any backend
    /// (use [`SimBuilder`] to configure it).
    ///
    /// # Examples
    ///
    /// ```
    /// use art9_isa::assemble;
    /// use art9_sim::{Backend, Debugger, SimBuilder, StopReason};
    ///
    /// let p = assemble("LI t3, 7\nJAL t0, 0\n")?;
    /// let core = SimBuilder::new(&p).backend(Backend::Reference).build();
    /// let mut dbg = Debugger::attach(core);
    /// dbg.watch_register("t3".parse()?);
    /// assert!(matches!(dbg.run(100)?, StopReason::RegisterWatch { .. }));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn attach(core: Box<dyn Core>) -> Self {
        Self {
            core,
            breakpoints: BTreeSet::new(),
            mem_watch: BTreeSet::new(),
            reg_watch: BTreeSet::new(),
            resume_skip: None,
        }
    }

    /// Sets a breakpoint at an instruction address.
    pub fn add_breakpoint(&mut self, pc: usize) {
        self.breakpoints.insert(pc);
    }

    /// Removes a breakpoint; returns whether it existed.
    pub fn remove_breakpoint(&mut self, pc: usize) -> bool {
        self.breakpoints.remove(&pc)
    }

    /// Watches a TDM word for changes.
    pub fn watch_memory(&mut self, address: usize) {
        self.mem_watch.insert(address);
    }

    /// Watches a register for changes.
    pub fn watch_register(&mut self, reg: TReg) {
        self.reg_watch.insert(reg);
    }

    /// The architectural state.
    pub fn state(&self) -> &CoreState {
        self.core.state()
    }

    /// The core being driven.
    pub fn core(&self) -> &dyn Core {
        self.core.as_ref()
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.core.retired()
    }

    /// Executes exactly one step, reporting watch hits.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn step(&mut self) -> Result<Option<StopReason>, SimError> {
        // Snapshot watched locations.
        let mem_before: Vec<(usize, Word9)> = self
            .mem_watch
            .iter()
            .filter_map(|a| self.core.state().tdm.read(*a).ok().map(|v| (*a, v)))
            .collect();
        let reg_before: Vec<(TReg, Word9)> = self
            .reg_watch
            .iter()
            .map(|r| (*r, self.core.state().reg(*r)))
            .collect();

        if let Some(halt) = self.core.step()? {
            return Ok(Some(StopReason::Halted(halt)));
        }

        for (address, old) in mem_before {
            let new = self
                .core
                .state()
                .tdm
                .read(address)
                .expect("watched address stays valid");
            if new != old {
                return Ok(Some(StopReason::Watchpoint { address, old, new }));
            }
        }
        for (reg, old) in reg_before {
            let new = self.core.state().reg(reg);
            if new != old {
                return Ok(Some(StopReason::RegisterWatch { reg, old, new }));
            }
        }
        Ok(None)
    }

    /// Runs until a breakpoint, watch hit, halt, or the step budget.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn run(&mut self, max_steps: u64) -> Result<StopReason, SimError> {
        for _ in 0..max_steps {
            // Breakpoints fire *before* executing the instruction; the
            // one just reported is skipped once so resume makes
            // progress, then re-arms (standard debugger behaviour).
            let pc = self.core.state().pc;
            if self.breakpoints.contains(&pc)
                && self.core.halted().is_none()
                && self.resume_skip != Some(pc)
            {
                self.resume_skip = Some(pc);
                return Ok(StopReason::Breakpoint(pc));
            }
            self.resume_skip = None;
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(StopReason::StepLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Backend;
    use art9_isa::assemble;

    fn program() -> Program {
        assemble(
            "
            LI t3, 5
            LI t2, 0
            STORE t3, t2, 7
            ADDI t3, -1
            STORE t3, t2, 7
            JAL t0, 0
            ",
        )
        .unwrap()
    }

    #[test]
    fn breakpoint_stops_before_execution() {
        let mut dbg = Debugger::new(&program());
        dbg.add_breakpoint(2);
        let stop = dbg.run(100).unwrap();
        assert_eq!(stop, StopReason::Breakpoint(2));
        assert_eq!(dbg.state().pc, 2);
        // STORE at 2 not executed yet.
        assert_eq!(dbg.state().tdm.read(7).unwrap().to_i64(), 0);
        // Continuing runs to halt.
        let stop = dbg.run(100).unwrap();
        assert!(matches!(stop, StopReason::Halted(HaltReason::JumpToSelf)));
    }

    #[test]
    fn breakpoints_work_on_the_reference_backend_too() {
        let core = SimBuilder::new(&program())
            .backend(Backend::Reference)
            .build();
        let mut dbg = Debugger::attach(core);
        dbg.add_breakpoint(3);
        assert_eq!(dbg.run(100).unwrap(), StopReason::Breakpoint(3));
        assert_eq!(dbg.core().backend(), Backend::Reference);
        assert!(matches!(dbg.run(100).unwrap(), StopReason::Halted(_)));
    }

    #[test]
    fn watchpoints_work_on_the_pipelined_backend() {
        let core = SimBuilder::new(&program())
            .backend(Backend::Pipelined)
            .build();
        let mut dbg = Debugger::attach(core);
        dbg.watch_memory(7);
        let stop = dbg.run(1_000).unwrap();
        assert!(
            matches!(stop, StopReason::Watchpoint { address: 7, .. }),
            "{stop:?}"
        );
    }

    #[test]
    fn memory_watchpoint_reports_change() {
        let mut dbg = Debugger::new(&program());
        dbg.watch_memory(7);
        let stop = dbg.run(100).unwrap();
        match stop {
            StopReason::Watchpoint { address, old, new } => {
                assert_eq!(address, 7);
                assert_eq!(old.to_i64(), 0);
                assert_eq!(new.to_i64(), 5);
            }
            other => panic!("expected watchpoint, got {other:?}"),
        }
        // Second store triggers again.
        let stop = dbg.run(100).unwrap();
        match stop {
            StopReason::Watchpoint { old, new, .. } => {
                assert_eq!(old.to_i64(), 5);
                assert_eq!(new.to_i64(), 4);
            }
            other => panic!("expected second watchpoint, got {other:?}"),
        }
    }

    #[test]
    fn register_watch_reports_change() {
        let mut dbg = Debugger::new(&program());
        dbg.watch_register(TReg::T3);
        let stop = dbg.run(100).unwrap();
        match stop {
            StopReason::RegisterWatch { reg, new, .. } => {
                assert_eq!(reg, TReg::T3);
                assert_eq!(new.to_i64(), 5);
            }
            other => panic!("expected register watch, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble("a: NOP\nJAL t8, a\n").unwrap();
        let mut dbg = Debugger::new(&p);
        assert_eq!(dbg.run(10).unwrap(), StopReason::StepLimit);
        assert!(dbg.instructions() >= 10);
    }

    #[test]
    fn breakpoint_in_loop_rearms() {
        let p = assemble(
            "
            LI t3, 3
            loop:
            ADDI t3, -1
            MV t7, t3
            COMP t7, t0
            BEQ t7, +, loop
            JAL t0, 0
            ",
        )
        .unwrap();
        let mut dbg = Debugger::new(&p);
        dbg.add_breakpoint(1); // loop head
        let mut hits = 0;
        loop {
            match dbg.run(10_000).unwrap() {
                StopReason::Breakpoint(1) => hits += 1,
                StopReason::Halted(_) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(hits, 3, "loop head hit once per iteration");
    }

    #[test]
    fn removing_breakpoint_works() {
        let mut dbg = Debugger::new(&program());
        dbg.add_breakpoint(3);
        assert!(dbg.remove_breakpoint(3));
        assert!(!dbg.remove_breakpoint(3));
        let stop = dbg.run(100).unwrap();
        assert!(matches!(stop, StopReason::Halted(_)));
    }
}
