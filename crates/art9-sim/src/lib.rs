//! # `art9-sim` — ART-9 processor simulators
//!
//! The simulation half of the paper's hardware-level evaluation
//! framework (§III-B):
//!
//! * [`FunctionalSim`] — architecture-level reference simulator (one
//!   instruction per step, no timing).
//! * [`PipelinedSim`] — the cycle-accurate model of the 5-stage pipeline
//!   of Fig. 4, with the hazard detection unit, full forwarding, the
//!   ID-stage branch unit, and the exact stall behaviour the paper
//!   claims (load-use hazards and taken branches only).
//! * [`PipelineStats`] — cycle/stall accounting feeding the DMIPS and
//!   DMIPS/W numbers of Tables II–V.
//! * [`PredecodedProgram`] — a decode-once, `Arc`-shared program image
//!   (instructions plus a precomputed link table) both simulators can
//!   fetch from; the throughput path for batch runs (see
//!   `docs/PERFORMANCE.md`).
//!
//! Both simulators share one semantics module ([`talu`], [`shift`],
//! [`branch_taken`]) and are property-tested to agree architecturally.
//!
//! ## Quick start
//!
//! ```
//! use art9_isa::assemble;
//! use art9_sim::{FunctionalSim, PipelinedSim};
//!
//! let program = assemble("
//!     LI   t3, 100
//!     LI   t4, 0
//! loop:
//!     ADD  t4, t3
//!     ADDI t3, -1
//!     MV   t7, t3
//!     COMP t7, t0          ; branches test one trit: preset it via COMP
//!     BEQ  t7, +, loop
//!     JAL  t0, 0
//! ")?;
//!
//! let mut pipe = PipelinedSim::new(&program);
//! let stats = pipe.run(100_000)?;
//! assert_eq!(pipe.state().reg("t4".parse()?).to_i64(), 5050);
//! println!("CPI = {:.2}", stats.cpi());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod debug;
mod error;
mod exec;
mod functional;
mod pipeline;
mod predecode;
mod stats;
mod trace;

pub use debug::{Debugger, StopReason};
pub use error::SimError;
pub use exec::{branch_taken, control_target, shift, talu};
pub use functional::{CoreState, FunctionalSim, HaltReason, RunResult, DEFAULT_TDM_WORDS};
pub use pipeline::PipelinedSim;
pub use predecode::PredecodedProgram;
pub use stats::PipelineStats;
pub use trace::{CycleTrace, StageSnapshot};
