//! # `art9-sim` — ART-9 processor simulators
//!
//! The simulation half of the paper's hardware-level evaluation
//! framework (§III-B): **one execution API, four backends**. Every
//! backend implements the [`Core`] trait and is built through the one
//! [`SimBuilder`]:
//!
//! * [`Backend::Functional`] → [`FunctionalSim`] — architecture-level
//!   reference simulator (one instruction per step, no timing).
//! * [`Backend::Pipelined`] → [`PipelinedSim`] — the cycle-accurate
//!   model of the 5-stage pipeline of Fig. 4, with the hazard detection
//!   unit, full forwarding, the ID-stage branch unit, and the exact
//!   stall behaviour the paper claims (load-use hazards and taken
//!   branches only).
//! * [`Backend::Reference`] → [`ReferenceSim`] — a deliberately slow
//!   per-trit interpreter sharing no execution code with the others;
//!   the third corner of the differential-fuzzing triangle.
//! * [`Backend::Threaded`] → [`ThreadedSim`] — the throughput backend:
//!   the program is compiled once into direct-threaded host code with
//!   superblock formation, fused op pairs and inline-cached TDM bases,
//!   architecturally identical to the functional backend (and fuzzed
//!   against it in lockstep).
//!
//! Around the trait:
//!
//! * [`Observer`] hooks — retire/control/memory/halt callbacks on any
//!   backend, with ready-made observers in [`observers`].
//! * [`Checkpoint`] — serializable snapshot/resume
//!   ([`Core::snapshot`]/[`Core::restore`]) that continues
//!   bit-identically, microarchitectural state included.
//! * [`PipelineStats`] — cycle/stall accounting feeding the DMIPS and
//!   DMIPS/W numbers of Tables II–V.
//! * [`PredecodedProgram`] — a decode-once, `Arc`-shared program image
//!   (instructions plus a precomputed link table) every backend
//!   fetches from; the throughput path for batch runs (see
//!   `docs/PERFORMANCE.md`).
//!
//! The packed-bitplane backends share one semantics module ([`talu`],
//! [`shift`], [`branch_taken`]) and all four are property-tested to
//! agree architecturally. The full API contract lives in `docs/API.md`.
//!
//! ## Quick start
//!
//! ```
//! use art9_isa::assemble;
//! use art9_sim::{Backend, Budget, Core, SimBuilder};
//!
//! let program = assemble("
//!     LI   t3, 100
//!     LI   t4, 0
//! loop:
//!     ADD  t4, t3
//!     ADDI t3, -1
//!     MV   t7, t3
//!     COMP t7, t0          ; branches test one trit: preset it via COMP
//!     BEQ  t7, +, loop
//!     JAL  t0, 0
//! ")?;
//!
//! let mut core = SimBuilder::new(&program)
//!     .backend(Backend::Pipelined)
//!     .build();
//! let summary = core.run_for(Budget::Steps(100_000))?;
//! assert!(summary.halt.is_some());
//! assert_eq!(core.state().reg("t4".parse()?).to_i64(), 5050);
//! let stats = core.pipeline_stats().expect("pipelined backend");
//! println!("CPI = {:.2}", stats.cpi());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod core;
mod debug;
mod error;
mod exec;
mod functional;
mod observer;
mod pipeline;
mod predecode;
mod reference;
mod stats;
mod threaded;
mod trace;

pub use crate::core::{Backend, Budget, Core, RunSummary, SimBuilder};
pub use checkpoint::Checkpoint;
pub use debug::{Debugger, StopReason};
pub use error::SimError;
pub use exec::{branch_taken, control_target, shift, talu};
pub use functional::{CoreState, FunctionalSim, HaltReason, RunResult, DEFAULT_TDM_WORDS};
pub use observer::{
    observers, MemWrite, MemoryAccess, Observer, RegWrite, SharedObserver, Writeback,
};
pub use pipeline::PipelinedSim;
pub use predecode::PredecodedProgram;
pub use reference::ReferenceSim;
pub use stats::PipelineStats;
pub use threaded::ThreadedSim;
pub use trace::{CycleTrace, StageSnapshot};
