//! The unified execution API: one [`Core`] trait over all four
//! simulator backends, built through one [`SimBuilder`].
//!
//! The paper's evaluation framework (§III-B) runs the *same* program
//! through several processor models and compares them; this module is
//! that discipline as an API. Every backend — the architecture-level
//! [`FunctionalSim`], the cycle-accurate [`PipelinedSim`], the
//! per-trit [`ReferenceSim`](crate::ReferenceSim) and the
//! direct-threaded [`ThreadedSim`](crate::ThreadedSim) — implements
//! [`Core`], and every consumer (the batch driver, the debugger, the
//! differential fuzzing oracles, the benches) drives them through it.
//!
//! ```
//! use art9_isa::assemble;
//! use art9_sim::{Backend, Budget, Core, SimBuilder};
//!
//! let program = assemble("LI t3, 41\nADDI t3, 1\nJAL t0, 0\n")?;
//! for backend in Backend::ALL {
//!     let mut core = SimBuilder::new(&program).backend(backend).build();
//!     let summary = core.run_for(Budget::Steps(1_000))?;
//!     assert!(summary.halt.is_some(), "{backend:?} halted");
//!     assert_eq!(core.state().reg("t3".parse()?).to_i64(), 42);
//!     assert_eq!(core.retired(), 3);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;

use art9_isa::{Instruction, Program};

use crate::checkpoint::Checkpoint;
use crate::error::SimError;
use crate::functional::{CoreState, FunctionalSim, HaltReason, DEFAULT_TDM_WORDS};
use crate::observer::{ObserverSet, SharedObserver};
use crate::pipeline::PipelinedSim;
use crate::predecode::PredecodedProgram;
use crate::reference::ReferenceSim;
use crate::stats::PipelineStats;
use crate::threaded::ThreadedSim;
use crate::trace::CycleTrace;

/// Which execution model backs a [`Core`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Architecture-level reference simulator (one instruction per
    /// step, no timing) — [`FunctionalSim`].
    Functional,
    /// Cycle-accurate 5-stage pipeline (one clock cycle per step) —
    /// [`PipelinedSim`].
    Pipelined,
    /// Deliberately slow per-trit interpreter (one instruction per
    /// step) — [`ReferenceSim`](crate::ReferenceSim).
    Reference,
    /// Direct-threaded compiled backend (one instruction per step,
    /// superblock execution under `run_for`) —
    /// [`ThreadedSim`](crate::ThreadedSim).
    Threaded,
}

impl Backend {
    /// Every backend, in comparison-matrix order.
    pub const ALL: [Backend; 4] = [
        Backend::Functional,
        Backend::Pipelined,
        Backend::Reference,
        Backend::Threaded,
    ];

    /// Stable display name (`functional` / `pipelined` / `reference` /
    /// `threaded`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Functional => "functional",
            Backend::Pipelined => "pipelined",
            Backend::Reference => "reference",
            Backend::Threaded => "threaded",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "functional" => Ok(Backend::Functional),
            "pipelined" => Ok(Backend::Pipelined),
            "reference" => Ok(Backend::Reference),
            "threaded" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend {other:?} (expected functional | pipelined | reference | threaded)"
            )),
        }
    }
}

/// An execution budget for [`Core::run_for`].
///
/// Budgets make long runs **preemptible**: `run_for` returns cleanly
/// (rather than erroring) when the budget is exhausted, so a driver can
/// interleave, checkpoint ([`Core::snapshot`]) and resume
/// ([`Core::restore`]) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// At most this many [`Core::step`] calls — instructions on the
    /// architectural backends, clock cycles on the pipelined one.
    Steps(u64),
    /// Run until the *total* retired-instruction count
    /// ([`Core::retired`]) reaches this value — the backend-independent
    /// way to cut a run at an instruction boundary.
    Retired(u64),
}

/// What one [`Core::run_for`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Steps this call executed (instructions or cycles, per backend).
    pub steps: u64,
    /// Total instructions retired so far (not just by this call).
    pub retired: u64,
    /// `Some` when the machine has halted, `None` when the budget ran
    /// out first (call `run_for` again, or snapshot and resume later).
    pub halt: Option<HaltReason>,
}

/// One ART-9 execution backend behind a uniform interface.
///
/// Implemented by [`FunctionalSim`], [`PipelinedSim`] and
/// [`ReferenceSim`](crate::ReferenceSim); built by [`SimBuilder`].
/// The contract every backend upholds:
///
/// * [`step`](Core::step) advances by the backend's natural quantum
///   (instruction or clock cycle) and reports the halt reason once per
///   run, sticky thereafter.
/// * [`state`](Core::state) exposes the software-visible machine
///   (registers and memory) mid-run; the pipelined backend does not
///   maintain `state().pc` (fetch is a microarchitectural detail).
/// * [`snapshot`](Core::snapshot)/[`restore`](Core::restore) round-trip
///   the *complete* execution state — architectural plus
///   backend-specific microarchitectural — so a restored core continues
///   bit-identically to an uninterrupted one.
pub trait Core: std::fmt::Debug + Send {
    /// Which backend this core is.
    fn backend(&self) -> Backend;

    /// Advances by one step (instruction or cycle). Returns
    /// `Ok(Some(reason))` when the machine is halted.
    ///
    /// # Errors
    ///
    /// [`SimError::PcOutOfRange`] on wild control transfers and
    /// [`SimError::MemoryFault`] on TDM access violations.
    fn step(&mut self) -> Result<Option<HaltReason>, SimError>;

    /// Runs until halt or until `budget` is exhausted — exhaustion is a
    /// clean return (`halt: None`), not an error, so runs can be
    /// budgeted, checkpointed and resumed.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Core::step`].
    fn run_for(&mut self, budget: Budget) -> Result<RunSummary, SimError>;

    /// The software-visible machine state.
    fn state(&self) -> &CoreState;

    /// Mutable state access, e.g. to preload registers before a run.
    fn state_mut(&mut self) -> &mut CoreState;

    /// Whether (and why) the machine has halted.
    fn halted(&self) -> Option<HaltReason>;

    /// Total instructions retired.
    fn retired(&self) -> u64;

    /// Dynamic instruction mix: retired count per mnemonic.
    fn instruction_mix(&self) -> BTreeMap<&'static str, u64>;

    /// Captures the complete execution state as a serializable
    /// [`Checkpoint`].
    fn snapshot(&self) -> Checkpoint;

    /// Restores a [`Checkpoint`] taken from the same backend running
    /// the same program image; the restored core continues
    /// bit-identically to the snapshotted one. Architectural
    /// checkpoints (functional/reference/threaded) also cross-restore
    /// between those backends.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] when the checkpoint's backend or
    /// program shape does not match this core.
    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError>;

    /// Cycle/stall accounting — `Some` only on the pipelined backend.
    fn pipeline_stats(&self) -> Option<PipelineStats> {
        None
    }

    /// The per-cycle trace — `Some` only on the pipelined backend with
    /// tracing enabled ([`SimBuilder::trace`]).
    fn trace(&self) -> Option<&[CycleTrace]> {
        None
    }
}

/// Folds a flat per-opcode counter array into the per-mnemonic map
/// every `instruction_mix` accessor returns (zero counts omitted) —
/// the one place the counter layout meets the mnemonic table.
pub(crate) fn mix_map(counts: &[u64; Instruction::OPCODE_COUNT]) -> BTreeMap<&'static str, u64> {
    Instruction::MNEMONICS
        .iter()
        .zip(counts.iter())
        .filter(|(_, count)| **count > 0)
        .map(|(name, count)| (*name, *count))
        .collect()
}

/// The shared `run_for` loop. Each backend's [`Core::run_for`] calls
/// this with `C = Self`, so the per-step dispatch is static (and
/// inlinable) even when the core itself is driven as `dyn Core` — the
/// virtual call happens once per `run_for`, not once per step.
pub(crate) fn run_loop<C: Core + ?Sized>(
    core: &mut C,
    budget: Budget,
) -> Result<RunSummary, SimError> {
    let mut steps = 0u64;
    loop {
        if let Some(halt) = core.halted() {
            return Ok(RunSummary {
                steps,
                retired: core.retired(),
                halt: Some(halt),
            });
        }
        let exhausted = match budget {
            Budget::Steps(n) => steps >= n,
            Budget::Retired(n) => core.retired() >= n,
        };
        if exhausted {
            return Ok(RunSummary {
                steps,
                retired: core.retired(),
                halt: None,
            });
        }
        let halt = core.step()?;
        steps += 1;
        if halt.is_some() {
            return Ok(RunSummary {
                steps,
                retired: core.retired(),
                halt,
            });
        }
    }
}

/// Builder-style configuration for every backend — the single
/// constructor replacing the old `new` / `with_tdm_size` /
/// `from_predecoded` zoo.
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::{Backend, Budget, Core, SimBuilder};
///
/// let program = assemble("LI t3, 5\nJAL t0, 0\n")?;
/// let mut core = SimBuilder::new(&program)
///     .backend(Backend::Pipelined)
///     .tdm_words(512)
///     .forwarding(false)
///     .trace(true)
///     .build();
/// core.run_for(Budget::Steps(1_000))?;
/// assert!(core.trace().is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// `build` borrows the builder, so one configured builder can stamp out
/// any number of cores over the same shared (`Arc`'d) program image —
/// the pattern the batch driver and the benches use.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    image: PredecodedProgram,
    backend: Backend,
    tdm_words: usize,
    forwarding: bool,
    trace: bool,
    observers: ObserverSet,
}

impl SimBuilder {
    /// Starts a builder over a program image. Accepts an assembled
    /// [`Program`] by reference (predecoded here, once) or an existing
    /// [`PredecodedProgram`] (shared, no re-decode).
    ///
    /// Defaults: [`Backend::Functional`], a
    /// [`DEFAULT_TDM_WORDS`]-word TDM, forwarding on, tracing off, no
    /// observers.
    pub fn new(image: impl Into<PredecodedProgram>) -> Self {
        Self {
            image: image.into(),
            backend: Backend::Functional,
            tdm_words: DEFAULT_TDM_WORDS,
            forwarding: true,
            trace: false,
            observers: ObserverSet::default(),
        }
    }

    /// Selects the execution backend [`build`](Self::build) constructs.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the TDM size in words (grown automatically if the program's
    /// data image is larger).
    pub fn tdm_words(mut self, words: usize) -> Self {
        self.tdm_words = words;
        self
    }

    /// Enables/disables the forwarding multiplexers (pipelined backend
    /// only; the ablation study of the paper). Ignored elsewhere.
    pub fn forwarding(mut self, on: bool) -> Self {
        self.forwarding = on;
        self
    }

    /// Enables per-cycle tracing (pipelined backend only).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Attaches an observer; may be called repeatedly. Keep your own
    /// `Arc` clone to inspect the observer after the run (see the
    /// [`Observer`](crate::Observer) contract).
    pub fn observer(mut self, observer: SharedObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Builds the selected backend behind the uniform [`Core`] API.
    pub fn build(&self) -> Box<dyn Core> {
        match self.backend {
            Backend::Functional => Box::new(self.build_functional()),
            Backend::Pipelined => Box::new(self.build_pipelined()),
            Backend::Reference => Box::new(self.build_reference()),
            Backend::Threaded => Box::new(self.build_threaded()),
        }
    }

    /// Builds a concrete [`FunctionalSim`] (ignores the
    /// [`backend`](Self::backend) selection).
    pub fn build_functional(&self) -> FunctionalSim {
        FunctionalSim::build(&self.image, self.tdm_words, self.observers.clone())
    }

    /// Builds a concrete [`PipelinedSim`] (ignores the
    /// [`backend`](Self::backend) selection).
    pub fn build_pipelined(&self) -> PipelinedSim {
        PipelinedSim::build(
            &self.image,
            self.tdm_words,
            self.forwarding,
            self.trace,
            self.observers.clone(),
        )
    }

    /// Builds a concrete [`ReferenceSim`](crate::ReferenceSim) (ignores
    /// the [`backend`](Self::backend) selection).
    pub fn build_reference(&self) -> ReferenceSim {
        ReferenceSim::build(&self.image, self.tdm_words, self.observers.clone())
    }

    /// Builds a concrete [`ThreadedSim`](crate::ThreadedSim) (ignores
    /// the [`backend`](Self::backend) selection). Compilation to
    /// direct-threaded code happens here, once.
    pub fn build_threaded(&self) -> ThreadedSim {
        ThreadedSim::build(&self.image, self.tdm_words, self.observers.clone())
    }
}

impl From<&Program> for PredecodedProgram {
    /// Predecodes an assembled program (the convenience behind
    /// `SimBuilder::new(&program)`).
    fn from(p: &Program) -> Self {
        PredecodedProgram::new(p)
    }
}

impl From<&PredecodedProgram> for PredecodedProgram {
    /// O(1): the image is `Arc`-shared, not copied.
    fn from(p: &PredecodedProgram) -> Self {
        p.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::assemble;

    fn program() -> Program {
        assemble(
            "LI t3, 10\nLI t4, 0\nloop:\nADD t4, t3\nADDI t3, -1\n\
             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n",
        )
        .unwrap()
    }

    #[test]
    fn all_backends_agree_through_one_code_path() {
        let builder = SimBuilder::new(&program());
        let mut results = Vec::new();
        for backend in Backend::ALL {
            let mut core = builder.clone().backend(backend).build();
            let summary = core.run_for(Budget::Steps(1_000_000)).unwrap();
            assert_eq!(summary.halt, Some(HaltReason::JumpToSelf), "{backend}");
            assert_eq!(core.backend(), backend);
            assert_eq!(core.state().reg(art9_isa::TReg::T4).to_i64(), 55);
            results.push((core.retired(), core.instruction_mix()));
        }
        assert_eq!(results[0], results[1], "functional vs pipelined");
        assert_eq!(results[0], results[2], "functional vs reference");
        assert_eq!(results[0], results[3], "functional vs threaded");
    }

    #[test]
    fn budget_exhaustion_is_clean_and_resumable() {
        let builder = SimBuilder::new(&program());
        let mut core = builder.build();
        let first = core.run_for(Budget::Steps(3)).unwrap();
        assert_eq!(first.steps, 3);
        assert_eq!(first.halt, None);
        // Resuming the same core finishes the program.
        let rest = core.run_for(Budget::Steps(1_000_000)).unwrap();
        assert_eq!(rest.halt, Some(HaltReason::JumpToSelf));
        assert_eq!(first.steps + rest.steps, rest.retired);
    }

    #[test]
    fn retired_budget_cuts_at_instruction_boundaries_on_every_backend() {
        for backend in Backend::ALL {
            let mut core = SimBuilder::new(&program()).backend(backend).build();
            let summary = core.run_for(Budget::Retired(7)).unwrap();
            assert_eq!(summary.halt, None, "{backend}");
            assert!(
                core.retired() >= 7,
                "{backend}: retired {} < 7",
                core.retired()
            );
            // The pipelined backend overshoots by at most the pipeline
            // depth; architectural backends are exact.
            if backend != Backend::Pipelined {
                assert_eq!(core.retired(), 7, "{backend}");
            }
        }
    }

    #[test]
    fn run_for_on_a_halted_core_is_a_no_op() {
        let mut core = SimBuilder::new(&program()).build();
        core.run_for(Budget::Steps(1_000_000)).unwrap();
        let retired = core.retired();
        let again = core.run_for(Budget::Steps(10)).unwrap();
        assert_eq!(again.steps, 0);
        assert_eq!(again.retired, retired);
        assert_eq!(again.halt, Some(HaltReason::JumpToSelf));
    }

    #[test]
    fn pipelined_extras_surface_through_the_trait() {
        let builder = SimBuilder::new(&program())
            .backend(Backend::Pipelined)
            .trace(true);
        let mut core = builder.build();
        core.run_for(Budget::Steps(1_000_000)).unwrap();
        let stats = core.pipeline_stats().expect("pipelined has stats");
        assert_eq!(stats.instructions, core.retired());
        assert!(core.trace().is_some_and(|t| !t.is_empty()));
        // Functional backend has neither.
        let func = SimBuilder::new(&program()).build();
        assert!(func.pipeline_stats().is_none());
        assert!(func.trace().is_none());
    }

    #[test]
    fn forwarding_off_costs_cycles_not_correctness() {
        let fwd = {
            let mut c = SimBuilder::new(&program())
                .backend(Backend::Pipelined)
                .build();
            c.run_for(Budget::Steps(1_000_000)).unwrap();
            (c.pipeline_stats().unwrap(), c.state().trf)
        };
        let nofwd = {
            let mut c = SimBuilder::new(&program())
                .backend(Backend::Pipelined)
                .forwarding(false)
                .build();
            c.run_for(Budget::Steps(1_000_000)).unwrap();
            (c.pipeline_stats().unwrap(), c.state().trf)
        };
        assert_eq!(fwd.1, nofwd.1, "same architecture");
        assert!(nofwd.0.cycles > fwd.0.cycles, "no-forwarding must stall");
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("bogus".parse::<Backend>().is_err());
    }
}
