//! Cycle and stall accounting for the pipelined model.

use std::fmt;

/// Cycle-accurate statistics collected by
/// [`PipelinedSim`](crate::PipelinedSim).
///
/// The paper's pipeline inserts hardware stalls in exactly two cases
/// (§IV-B): load-use data hazards and taken branches; this struct
/// additionally separates the ID-use stalls (a branch waiting for its
/// condition/base register) that fall under the load-use umbrella when
/// the producer is a LOAD.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total clock cycles from reset until the pipeline drained.
    pub cycles: u64,
    /// Instructions retired (completed WB).
    pub instructions: u64,
    /// Stalls from load-use hazards feeding the EX stage.
    pub load_use_stalls: u64,
    /// Stalls from B-type instructions waiting in ID for an operand that
    /// is still in flight.
    pub id_use_stalls: u64,
    /// Bubbles from taken branches and jumps (one squashed fetch each).
    pub control_flush_bubbles: u64,
    /// Taken control transfers (taken branches + JAL + JALR).
    pub taken_transfers: u64,
    /// Conditional branches that were not taken (no penalty).
    pub untaken_branches: u64,
}

impl PipelineStats {
    /// Cycles per instruction.
    ///
    /// Returns `0.0` before any instruction retires (never `NaN`).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// Instructions per cycle.
    ///
    /// Returns `0.0` before the first cycle (never `NaN`).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Total stall/bubble cycles of all causes.
    pub fn lost_cycles(&self) -> u64 {
        self.load_use_stalls + self.id_use_stalls + self.control_flush_bubbles
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:              {}", self.cycles)?;
        writeln!(f, "instructions:        {}", self.instructions)?;
        writeln!(f, "CPI:                 {:.3}", self.cpi())?;
        writeln!(f, "load-use stalls:     {}", self.load_use_stalls)?;
        writeln!(f, "ID-use stalls:       {}", self.id_use_stalls)?;
        writeln!(f, "control bubbles:     {}", self.control_flush_bubbles)?;
        writeln!(f, "taken transfers:     {}", self.taken_transfers)?;
        write!(f, "untaken branches:    {}", self.untaken_branches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = PipelineStats {
            cycles: 120,
            instructions: 100,
            load_use_stalls: 5,
            id_use_stalls: 3,
            control_flush_bubbles: 8,
            taken_transfers: 8,
            untaken_branches: 2,
        };
        assert!((s.cpi() - 1.2).abs() < 1e-9);
        assert!((s.ipc() - 100.0 / 120.0).abs() < 1e-9);
        assert_eq!(s.lost_cycles(), 16);
        let text = s.to_string();
        assert!(text.contains("CPI"));
        assert!(text.contains("120"));
    }

    #[test]
    fn zero_counters_yield_finite_metrics() {
        let s = PipelineStats::default();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert!(s.cpi().is_finite() && s.ipc().is_finite());
    }
}
